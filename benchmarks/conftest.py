"""Shared fixtures for the benchmark suite.

Run with ``pytest benchmarks/ --benchmark-only``.  Set ``ESD_BENCH_SCALE``
(e.g. ``0.3``) to shrink the stand-in datasets for a quick pass.
"""

import pytest

from repro.bench import bench_scale


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()
