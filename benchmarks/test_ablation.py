"""Ablations: pruning power, H(c) backing structure, load strategy."""

from repro.bench import emit
from repro.bench.experiments import run_ablation


def test_ablation_series(benchmark, capsys, scale):
    tables = benchmark.pedantic(lambda: run_ablation(scale), rounds=1)
    emit(tables, "ablation", capsys)
    prune, structure, _load, frameworks, _orientation, builders = tables
    # The tighter bound never evaluates more edges than the looser one,
    # and both beat the full scan.
    for _name, edges, evals_md, evals_cn, full in prune.rows:
        assert evals_cn <= evals_md <= full
    # Treap updates beat sorted-array updates (the reason for the BST).
    for row in structure.rows:
        _name, _tb, _ab, treap_upd, array_upd = row
        assert treap_upd < array_upd
    # Both online frameworks prune relative to the full scan.
    for _name, _t_dq, _t_ord, evals_dq, evals_ord in frameworks.rows:
        assert evals_dq > 0
        assert evals_ord > 0
    # The bitset builder is competitive with the best alternative.
    for _name, t_basic, t_fast, t_bitset in builders.rows:
        assert t_bitset <= 1.5 * min(t_basic, t_fast)
