"""Exp-5 / Fig. 10: PESDIndex+ scalability at 1 vs 20 threads."""

from repro.bench import emit
from repro.bench.experiments import run_exp5_fig10


def test_fig10_series(benchmark, capsys, scale):
    tables = benchmark.pedantic(lambda: run_exp5_fig10(scale), rounds=1)
    emit(tables, "fig10", capsys)
    (table,) = tables
    t1 = [row[2] for row in table.rows]
    speedups = [row[4] for row in table.rows]
    # Paper shape: t=1 runtime grows smoothly with subgraph size ...
    assert t1[-1] > t1[0]
    # ... and the 20-thread speedup stays in a healthy band on all sizes.
    assert all(s > 3 for s in speedups)
