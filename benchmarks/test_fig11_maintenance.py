"""Exp-6 / Fig. 11: dynamic maintenance vs reconstruction."""

from repro.bench import dataset, emit
from repro.bench.experiments import run_exp6_fig11
from repro.core import DynamicESDIndex


def test_fig11_series(benchmark, capsys, scale):
    tables = benchmark.pedantic(lambda: run_exp6_fig11(scale), rounds=1)
    emit(tables, "fig11", capsys)
    (table,) = tables
    for _name, build, avg_insert, avg_delete in table.rows:
        # Paper shape: maintenance is far cheaper than reconstruction.
        assert avg_insert < build / 5
        assert avg_delete < build / 5


def test_single_insert_delete_roundtrip(benchmark, scale):
    """Representative op: one delete+insert pair on the youtube stand-in."""
    dyn = DynamicESDIndex(dataset("youtube", scale))
    edge = dyn.graph.edge_list()[0]

    def roundtrip():
        dyn.delete_edge(*edge)
        dyn.insert_edge(*edge)

    benchmark.pedantic(roundtrip, rounds=10, iterations=1)
