"""Exp-7 / Fig. 12: DBLP case study -- ESD vs CN vs BT top edges."""

from repro.bench import emit
from repro.bench.experiments import run_exp7_fig12


def test_fig12_case_study(benchmark, capsys):
    tables = benchmark.pedantic(run_exp7_fig12, rounds=1)
    emit(tables, "fig12", capsys)
    (table,) = tables
    esd = [row for row in table.rows if row[0] == "ESD"]
    cn = [row for row in table.rows if row[0] == "CN"]
    bt = [row for row in table.rows if row[0] == "BT"]
    # Paper shape: ESD edges have many ego components across many
    # communities; CN edges have at most 2 components; BT edges share few
    # common neighbors.
    assert min(row[2] for row in esd) >= 3
    assert min(row[3] for row in esd) >= 3
    assert max(row[2] for row in cn) <= 2
    avg_cn_common = sum(row[4] for row in cn) / len(cn)
    avg_bt_common = sum(row[4] for row in bt) / len(bt)
    assert avg_bt_common < avg_cn_common
