"""Exp-8 / Fig. 13: word association case study (tau=2, k=2)."""

from repro.bench import emit
from repro.bench.experiments import run_exp8_fig13


def test_fig13_case_study(benchmark, capsys):
    tables = benchmark.pedantic(run_exp8_fig13, rounds=1)
    emit(tables, "fig13", capsys)
    (table,) = tables
    edges = [row[0] for row in table.rows]
    scores = [row[1] for row in table.rows]
    # Paper shape: (bank, money) tops the list with 6 semantic contexts.
    assert edges[0] == "(bank, money)"
    assert scores[0] == 6
    # The runner-up is the other planted polysemous pair.
    assert "wood" in edges[1] or "house" in edges[1]
