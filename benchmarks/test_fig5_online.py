"""Exp-1 / Fig. 5: OnlineBFS vs OnlineBFS+ with varying k and tau."""

from repro.bench import DEFAULT_TAU, dataset, emit
from repro.bench.experiments import run_exp1_fig5
from repro.core import topk_online


def test_fig5_series(benchmark, capsys, scale):
    tables = benchmark.pedantic(lambda: run_exp1_fig5(scale), rounds=1)
    emit(tables, "fig5", capsys)
    # Paper shape: the tighter bound never evaluates more edges exactly.
    for table in tables:
        for row in table.rows:
            _, _t_md, _t_cn, evals_md, evals_cn = row
            assert evals_cn <= evals_md


def test_online_bfs_plus_default_query(benchmark, scale):
    """Representative op: OnlineBFS+ at the default (k=100, tau=3)."""
    graph = dataset("pokec", scale)
    results = benchmark(lambda: topk_online(graph, 100, DEFAULT_TAU))
    assert len(results) == 100


def test_online_bfs_min_degree_query(benchmark, scale):
    graph = dataset("pokec", scale)
    results = benchmark(
        lambda: topk_online(graph, 100, DEFAULT_TAU, bound="min-degree")
    )
    assert len(results) == 100
