"""Exp-2 / Fig. 6: ESDIndex size and construction time."""

from repro.bench import dataset, emit
from repro.bench.experiments import run_exp2_fig6
from repro.core import build_index_basic, build_index_fast


def test_fig6_series(benchmark, capsys, scale):
    tables = benchmark.pedantic(lambda: run_exp2_fig6(scale), rounds=1)
    emit(tables, "fig6", capsys)
    size_table, time_table = tables
    # Paper shape: the index is a small constant factor of the graph size.
    for row in size_table.rows:
        assert row[3] <= 10  # entries/m ratio
    # Paper shape: ESDIndex+ is competitive everywhere and clearly faster
    # on the degree-skewed graphs (the paper's 2-10x compresses in pure
    # Python, where union-find object overhead eats part of the win).
    speedups = [row[3] for row in time_table.rows]
    assert all(s >= 0.7 for s in speedups)
    assert max(speedups) >= 1.5


def test_build_fast_pokec(benchmark, scale):
    graph = dataset("pokec", scale)
    index = benchmark.pedantic(
        lambda: build_index_fast(graph), rounds=3, iterations=1
    )
    assert index.edge_count > 0


def test_build_basic_pokec(benchmark, scale):
    graph = dataset("pokec", scale)
    index = benchmark.pedantic(
        lambda: build_index_basic(graph), rounds=3, iterations=1
    )
    assert index.edge_count > 0
