"""Exp-3 / Fig. 7: PESDIndex+ speedup ratio vs thread count."""

from repro.bench import dataset, emit
from repro.bench.experiments import run_exp3_fig7
from repro.core import build_index_parallel


def test_fig7_series(benchmark, capsys, scale):
    tables = benchmark.pedantic(lambda: run_exp3_fig7(scale), rounds=1)
    emit(tables, "fig7", capsys)
    for table in tables:
        speedups = [row[1] for row in table.rows]
        # Paper shape: speedup grows with threads (near-linear early on).
        assert speedups == sorted(speedups)
        assert speedups[-1] > 4  # t=20 well above serial


def test_parallel_build_pokec(benchmark, scale):
    """Real pool execution (single-core container: expect ~no speedup)."""
    graph = dataset("pokec", scale)
    index = benchmark.pedantic(
        lambda: build_index_parallel(graph, threads=2), rounds=2, iterations=1
    )
    assert index.edge_count > 0
