"""Exp-4 / Fig. 8: OnlineBFS+ vs IndexSearch across datasets, k and tau."""

import pytest

from repro.bench import DEFAULT_K, DEFAULT_TAU, dataset, emit
from repro.bench.experiments import run_exp4_fig8
from repro.core import build_index_fast


def test_fig8_series(benchmark, capsys, scale):
    tables = benchmark.pedantic(lambda: run_exp4_fig8(scale), rounds=1)
    emit(tables, "fig8", capsys)
    by_k, by_tau = tables
    # Paper shape: IndexSearch beats OnlineBFS+ by a large factor everywhere.
    for row in by_k.rows + by_tau.rows:
        assert row[4] >= 10  # speedup column
    # Paper shape: IndexSearch is robust w.r.t. tau (all times tiny).
    index_times = [row[3] for row in by_tau.rows]
    assert max(index_times) < 0.05


@pytest.fixture(scope="module")
def pokec_index(scale):
    return build_index_fast(dataset("pokec", scale))


def test_index_search_default(benchmark, pokec_index):
    """Representative op: the paper's headline sub-millisecond query."""
    results = benchmark(lambda: pokec_index.topk(DEFAULT_K, DEFAULT_TAU))
    assert len(results) <= DEFAULT_K


def test_index_search_k1(benchmark, pokec_index):
    results = benchmark(lambda: pokec_index.topk(1, DEFAULT_TAU))
    assert len(results) <= 1


def test_index_search_k200_tau1(benchmark, pokec_index):
    results = benchmark(lambda: pokec_index.topk(200, 1))
    assert len(results) == 200
