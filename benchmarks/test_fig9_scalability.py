"""Exp-5 / Fig. 9: scalability on random edge/vertex subgraphs."""

from repro.bench import emit
from repro.bench.experiments import run_exp5_fig9


def test_fig9_series(benchmark, capsys, scale):
    tables = benchmark.pedantic(lambda: run_exp5_fig9(scale), rounds=1)
    emit(tables, "fig9", capsys)
    for table in tables:
        online_times = [row[2] for row in table.rows]
        index_times = [row[3] for row in table.rows]
        # Paper shape: OnlineBFS+ grows with graph size ...
        assert online_times[-1] >= online_times[0]
        # ... while IndexSearch stays flat (sub-10ms at every size).
        assert max(index_times) < 0.05
