"""Extra experiment: pair-diversity link prediction (Dong et al. [3])."""

from repro.bench import emit
from repro.bench.experiments import run_link_prediction


def test_link_prediction_series(benchmark, capsys, scale):
    tables = benchmark.pedantic(lambda: run_link_prediction(scale), rounds=1)
    emit(tables, "link_prediction", capsys)
    (table,) = tables
    best = {}
    for ds, _pred, p10, _p50, _p100, baseline in table.rows:
        top, _base = best.get(ds, (0.0, 0.0))
        best[ds] = (max(top, p10), baseline)
    for ds, (top_p10, baseline) in best.items():
        # The best structural predictor clearly beats random guessing
        # among candidates (individual predictors vary by graph shape).
        assert top_p10 >= 0.2, ds
        assert top_p10 >= 2 * baseline, ds
