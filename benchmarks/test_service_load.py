"""Service load benchmark: 64 concurrent clients against ``esd serve``.

Beyond the paper's figures but demanded by its motivation: standing
analytics over a dynamic graph is a repeated-query workload, so the
serving layer is benchmarked like one -- throughput, p50/p99 latency,
cache effectiveness, and an offline audit proving every ``topk``
response exactly matched a from-scratch index at its graph version.
"""

from repro.bench import emit
from repro.bench.experiments import run_service_bench


def test_service_load(benchmark, capsys, scale):
    tables = benchmark.pedantic(run_service_bench, args=(scale,), rounds=1)
    emit(tables, "service", capsys)
    latency, summary = tables
    values = {row[0]: row[1] for row in summary.rows}
    # The acceptance bar for the serving layer:
    assert values["clients"] >= 64
    assert values["incorrect topk responses"] == 0
    assert values["client-side errors"] == 0
    assert values["cache hits"] > 0
    assert values["overload rejections (probe)"] > 0
    assert {row[0] for row in latency.rows} >= {"topk", "update"}
