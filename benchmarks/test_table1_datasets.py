"""Table I: dataset statistics for the five stand-ins."""

from repro.bench import dataset, emit
from repro.bench.experiments import run_table1
from repro.graph import graph_stats


def test_table1_statistics(benchmark, capsys, scale):
    tables = benchmark.pedantic(lambda: run_table1(scale), rounds=1)
    emit(tables, "table1", capsys)
    # Paper shape: size ordering youtube < ... < livejournal holds.
    ms = [row[2] for row in tables[0].rows]
    assert ms == sorted(ms)


def test_degeneracy_computation(benchmark, scale):
    """Microbenchmark: the Table I degeneracy column on the largest graph."""
    graph = dataset("livejournal", scale)
    stats = benchmark(lambda: graph_stats(graph))
    assert stats.degeneracy > 0
