"""Extra experiment: score distribution vs tau (Exp-7 discussion)."""

from repro.bench import emit
from repro.bench.experiments import run_tau_sensitivity


def test_tau_sensitivity_series(benchmark, capsys, scale):
    tables = benchmark.pedantic(lambda: run_tau_sensitivity(scale), rounds=1)
    emit(tables, "tau_sensitivity", capsys)
    (table,) = tables
    # Paper shape: positive-score edge counts fall monotonically with tau.
    by_dataset = {}
    for name, tau, positive, _mx, _p99 in table.rows:
        by_dataset.setdefault(name, []).append(positive)
    for series in by_dataset.values():
        assert series == sorted(series, reverse=True)
