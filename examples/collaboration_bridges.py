"""Collaboration-network scenario: find community-bridging author pairs.

Reproduces the paper's Exp-7 case study on a DBLP-like co-authorship
graph.  Three rankings are contrasted:

* **ESD** (this paper): top edges are pairs of co-authors whose shared
  collaborators split into many components, each in a different research
  community -- "bridge" pairs with strong ties.
* **CN** (common neighbors): top edges are prolific same-community pairs;
  many shared collaborators but one dense blob (<= 2 components).
* **BT** (edge betweenness): top edges are weak barbell links between
  communities with almost no shared collaborators.

Run:  python examples/collaboration_bridges.py
"""

from repro import build_index_fast, topk_common_neighbors, topk_edge_betweenness
from repro.analytics import communities_touched, label_propagation
from repro.graph import components_of_subset
from repro.graph.datasets import db_subgraph


def describe(graph, labels, edge) -> str:
    u, v = edge
    common = graph.common_neighbors(u, v)
    components = components_of_subset(graph, common)
    big = [c for c in components if len(c) >= 2]
    communities = communities_touched(labels, common)
    return (
        f"({u}, {v}): {len(common)} shared collaborators, "
        f"{len(big)} social contexts, {communities} communities"
    )


def main() -> None:
    graph = db_subgraph()
    print(f"DB collaboration graph: {graph.n} authors, {graph.m} co-authorships\n")
    labels = label_propagation(graph, seed=3)
    index = build_index_fast(graph)

    print("Top-3 edges by structural diversity (tau=2) -- community bridges:")
    for edge, score in index.topk(k=3, tau=2):
        print(f"  ESD={score}  {describe(graph, labels, edge)}")

    print("\nTop-3 edges by common neighbors -- dense single-community pairs:")
    for edge, count in topk_common_neighbors(graph, 3):
        print(f"  CN={count}  {describe(graph, labels, edge)}")

    print("\nTop-3 edges by betweenness -- weak cross-community links:")
    for edge, bt in topk_edge_betweenness(graph, 3):
        print(f"  BT={bt:.4f}  {describe(graph, labels, edge)}")

    print(
        "\nReading: ESD edges combine many contexts with a strong tie; CN "
        "edges are strong but context-poor; BT edges span communities but "
        "the tie itself is weak (few shared collaborators)."
    )


if __name__ == "__main__":
    main()
