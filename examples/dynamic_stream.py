"""Streaming scenario: keep the ESDIndex fresh under an edge stream.

Social graphs change constantly; rebuilding the index per update would
cost full construction time.  This example replays a stream of edge
insertions and deletions through :class:`repro.DynamicESDIndex`
(Algorithms 4/5) and shows (a) every query stays exact versus a
from-scratch rebuild, and (b) maintenance is far cheaper than rebuilding.

Run:  python examples/dynamic_stream.py
"""

import random
import time

from repro import DynamicESDIndex, build_index_fast, load_dataset


def main() -> None:
    graph = load_dataset("youtube", scale=0.5)
    print(f"Base graph: {graph.n} vertices, {graph.m} edges")

    build_start = time.perf_counter()
    dyn = DynamicESDIndex(graph)
    build_time = time.perf_counter() - build_start
    print(f"Initial index construction: {build_time:.2f}s\n")

    rng = random.Random(42)
    deleted = []
    update_time = 0.0
    updates = 0
    print("Replaying a stream of 120 updates (60 deletes, 60 re-inserts)...")
    for step in range(120):
        start = time.perf_counter()
        if step % 2 == 0:
            edge = rng.choice(dyn.graph.edge_list())
            dyn.delete_edge(*edge)
            deleted.append(edge)
        else:
            dyn.insert_edge(*deleted.pop())
        update_time += time.perf_counter() - start
        updates += 1

        if step % 40 == 39:
            top = dyn.topk(3, 2)
            rebuilt = build_index_fast(dyn.graph).topk(3, 2)
            status = "exact" if top == rebuilt else "MISMATCH"
            print(f"  step {step + 1}: top-3 at tau=2 -> {top} [{status}]")

    print(f"\nAverage update time: {update_time / updates * 1000:.2f}ms "
          f"vs {build_time * 1000:.0f}ms per rebuild "
          f"({build_time / (update_time / updates):.0f}x cheaper)")


if __name__ == "__main__":
    main()
