"""Friend-suggestion scenario: predict missing links with pair diversity.

Dong et al. (the paper's reference [3]) introduced structural diversity
for arbitrary vertex pairs and named friend suggestion as its killer
application: pairs whose shared friends span several social contexts are
strong candidates for a future tie.  This example hides 10% of a
network's edges, ranks the non-adjacent 2-hop pairs with three
predictors, and reports how many hidden friendships each one recovers.

Run:  python examples/friend_suggestion.py
"""

from repro import load_dataset
from repro.core import (
    link_prediction_experiment,
    pair_structural_diversity,
    topk_pairs_online,
)


def main() -> None:
    graph = load_dataset("dblp", scale=0.6)
    print(f"Network: {graph.n} users, {graph.m} friendships\n")

    # --- who would we suggest right now? -----------------------------
    print("Top-5 non-adjacent pairs by structural diversity (tau=1):")
    for (u, v), score in topk_pairs_online(graph, k=5, tau=1):
        common = len(graph.common_neighbors(u, v))
        print(f"  suggest {u} <-> {v}: {score} shared contexts "
              f"({common} mutual friends)")

    # --- does it find real (hidden) links? -----------------------------
    ks = (10, 50, 100)
    print("\nHiding 10% of the edges and ranking candidates:")
    print(f"  {'predictor':<18}" + "".join(f"p@{k:<8}" for k in ks))
    for result in link_prediction_experiment(
        graph, hide_fraction=0.1, ks=ks, seed=7
    ):
        row = "".join(f"{result.precision_at[k]:<10.3f}" for k in ks)
        print(f"  {result.predictor:<18}{row}")

    # --- inspect one suggestion ------------------------------------------
    (pair, score), *_ = topk_pairs_online(graph, k=1, tau=1)
    print(f"\nWhy suggest {pair}? Their {len(graph.common_neighbors(*pair))} "
          f"mutual friends split into {score} separate groups:")
    from repro.graph import components_of_subset

    for component in sorted(
        components_of_subset(graph, graph.common_neighbors(*pair)),
        key=len, reverse=True,
    ):
        print(f"  group: {sorted(component)}")
    print(
        "\nReading: a pair backed by several independent friend groups is "
        "connected through multiple social contexts at once -- Dong et "
        "al.'s signal that a real tie is likely."
    )
    assert pair_structural_diversity(graph, *pair) == score


if __name__ == "__main__":
    main()
