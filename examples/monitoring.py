"""Operations scenario: alert on changes to the most diverse edges.

A standing top-k structural diversity query runs over a live graph; each
edge update flows through the maintained ESDIndex (Algorithms 4/5), and
the monitor reports exactly which edges entered or left the answer set.
When an alert fires, the affected edge's ego-network is rendered so an
operator can see *why* it became (or stopped being) diverse.

Run:  python examples/monitoring.py
"""

import random

from repro.analytics import render_ego_network
from repro.core import TopKMonitor
from repro.graph import load_dataset


def main() -> None:
    graph = load_dataset("youtube", scale=0.4)
    print(f"Watching {graph.n} vertices / {graph.m} edges; "
          f"standing query: top-5 edges at tau=2\n")
    monitor = TopKMonitor(graph, k=5, tau=2)
    print("Initial top-5:")
    for edge, score in monitor.top:
        print(f"  {edge}  score={score}")

    rng = random.Random(7)
    alerts = 0
    print("\nReplaying 150 random updates...")
    for step in range(150):
        live = monitor.dynamic_index.graph
        if rng.random() < 0.5 and live.m > 0:
            change = monitor.delete(*rng.choice(live.edge_list()))
        else:
            u, v = rng.randrange(graph.n), rng.randrange(graph.n)
            if u == v or live.has_edge(u, v):
                continue
            change = monitor.insert(u, v)
        if change.changed:
            alerts += 1
            print(f"\n[step {step}] {change.update} {change.edge} "
                  f"changed the top-5:")
            for edge, score in change.entered:
                print(f"  + {edge} entered with score {score}")
                print("    " + render_ego_network(
                    live, *edge, tau=2
                ).replace("\n", "\n    "))
            for edge, score in change.left:
                print(f"  - {edge} left (had score {score})")

    print(f"\n{alerts} alerts over 150 updates; final top-5:")
    for edge, score in monitor.top:
        print(f"  {edge}  score={score}")


if __name__ == "__main__":
    main()
