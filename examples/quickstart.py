"""Quickstart: edge structural diversity in five minutes.

Walks through the library on the paper's own running example (Fig. 1):
score one edge, run the online top-k search, build the ESDIndex, query
it, and keep it maintained while the graph changes.

Run:  python examples/quickstart.py
"""

from repro import (
    DynamicESDIndex,
    build_index_fast,
    edge_structural_diversity,
    paper_example_graph,
    topk_online,
)


def main() -> None:
    graph = paper_example_graph()
    print(f"Fig. 1 graph: {graph.n} vertices, {graph.m} edges\n")

    # --- score a single edge (Definition 2) -----------------------------
    # The ego-network of (f, g) splits into {d, e} and {h, i}.
    for tau in (1, 2, 3):
        score = edge_structural_diversity(graph, "f", "g", tau)
        print(f"score(f, g) at tau={tau}: {score}")

    # --- online top-k search (Algorithm 1) ------------------------------
    print("\nTop-3 edges at tau=2 (OnlineBFS+):")
    for (u, v), score in topk_online(graph, k=3, tau=2):
        print(f"  ({u}, {v})  score={score}")

    # --- index-based search (ESDIndex, §IV) -----------------------------
    index = build_index_fast(graph)
    print(f"\nESDIndex: size classes C={index.size_classes}, "
          f"{index.entry_count} entries")
    print("Top-3 edges at tau=5 (IndexSearch):")
    for (u, v), score in index.topk(k=3, tau=5):
        print(f"  ({u}, {v})  score={score}")

    # --- dynamic maintenance (Algorithms 4/5) -----------------------------
    dyn = DynamicESDIndex(graph)
    dyn.delete_edge("u", "k")  # the paper's Example 7
    print(f"\nAfter deleting (u, k): C={dyn.index.size_classes} "
          f"(H(3) appeared, as in Example 7)")
    print("(j, k) ego components are now "
          f"{dyn.index.component_sizes(('j', 'k'))}")

    dyn.insert_edge("c", "d")  # the paper's Example 6
    print("After inserting (c, d): (d, e) ego components are "
          f"{dyn.index.component_sizes(('d', 'e'))} (one merged component)")


if __name__ == "__main__":
    main()
