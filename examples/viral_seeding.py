"""Viral-marketing scenario: diverse edges spread across communities.

The paper's motivation (after Ugander et al.): adoption probability grows
with the number of *social contexts* among a user's adopting neighbors.
High edge-structural-diversity edges sit at the crossroads of many
contexts, so cascades seeded there should *diversify* -- reach many
communities -- even when count-based seeds (common neighbors, degree)
reach similar raw volume inside one region.

This example runs the diversity-driven cascade on a collaboration graph
with planted communities and measures both raw reach and the number of
communities the cascade penetrates.

Run:  python examples/viral_seeding.py
"""

from repro import build_index_fast, topk_common_neighbors
from repro.analytics import diversity_cascade, label_propagation
from repro.graph.datasets import db_subgraph


def seed_pairs(ranked, budget):
    """First `budget` distinct vertices from a ranked edge list."""
    seeds = []
    for (u, v), _score in ranked:
        for x in (u, v):
            if x not in seeds:
                seeds.append(x)
            if len(seeds) == budget:
                return seeds
    return seeds


def communities_reached(labels, adopted, threshold=3):
    """Communities with at least `threshold` adopters."""
    counts = {}
    for u in adopted:
        counts[labels[u]] = counts.get(labels[u], 0) + 1
    return sum(1 for c in counts.values() if c >= threshold)


def main() -> None:
    graph = db_subgraph()
    labels = label_propagation(graph, seed=3)
    print(f"Collaboration network: {graph.n} authors, {graph.m} edges")

    budget, trials, rate = 4, 8, 0.05
    index = build_index_fast(graph)
    esd_seeds = seed_pairs(index.topk(budget, 2), budget)
    cn_seeds = seed_pairs(topk_common_neighbors(graph, budget), budget)
    degree_seeds = sorted(graph.vertices(), key=lambda u: -graph.degree(u))[:budget]

    print(f"\nSeeding {budget} authors, diversity-driven cascade "
          f"(adoption rate {rate}), {trials} trials each:\n")
    print(f"  {'strategy':<16}{'mean reach':>12}{'mean communities':>20}")
    for label, seeds in [
        ("ESD top edges", esd_seeds),
        ("CN top edges", cn_seeds),
        ("highest degree", degree_seeds),
    ]:
        sizes, comms = [], []
        for t in range(trials):
            result = diversity_cascade(
                graph, seeds, adoption_rate=rate, seed=100 + t
            )
            sizes.append(result.size)
            comms.append(communities_reached(labels, result.adopted))
        print(f"  {label:<16}{sum(sizes) / trials:>12.1f}"
              f"{sum(comms) / trials:>20.1f}")

    print(
        "\nReading: between the paper's two edge rankings, ESD seeds reach "
        "several times more users and communities than CN seeds -- the "
        "'bridge' role the case study ascribes to high-structural-"
        "diversity edges, versus CN's dense single-community pairs.  Raw "
        "degree hubs reach further still, but that is vertex-count "
        "information; among *edge*-structure signals, diversity wins."
    )


if __name__ == "__main__":
    main()
