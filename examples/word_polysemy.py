"""NLU scenario: find polysemous word pairs in an association network.

Reproduces the paper's Exp-8 case study: on a word-association graph, the
edges with the highest structural diversity connect word pairs whose
shared associations split into several semantic contexts -- each
connected component of the edge's ego-network is one *meaning* of the
pair.  The paper's headline example is ("bank", "money") with six
contexts (accounts, lending, river banks, robbery, vaults, wealth).

Run:  python examples/word_polysemy.py
"""

from repro import build_index_fast
from repro.graph import components_of_subset, word_association


def main() -> None:
    graph = word_association()
    print(f"Word association network: {graph.n} words, {graph.m} associations\n")

    index = build_index_fast(graph)
    print("Top-3 polysemous word pairs (tau=2):\n")
    for (a, b), score in index.topk(k=3, tau=2):
        print(f"  ({a}, {b})  --  {score} distinct semantic contexts:")
        common = graph.common_neighbors(a, b)
        contexts = [
            sorted(c) for c in components_of_subset(graph, common) if len(c) >= 2
        ]
        for context in sorted(contexts, key=len, reverse=True):
            print(f"      {{{', '.join(context)}}}")
        singletons = sorted(
            w for c in components_of_subset(graph, common) if len(c) == 1
            for w in c
        )
        if singletons:
            print(f"      (weak associations: {', '.join(singletons)})")
        print()


if __name__ == "__main__":
    main()
