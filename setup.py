"""Shim for environments without the ``wheel`` package (offline installs).

All metadata lives in pyproject.toml; this file only enables the legacy
``pip install -e . --no-build-isolation`` code path.
"""

from setuptools import setup

setup()
