"""repro: efficient top-k edge structural diversity search.

A from-scratch Python reproduction of *Efficient Top-k Edge Structural
Diversity Search* (Zhang, Li, Yang, Wang, Qin -- ICDE 2020): the
dequeue-twice online search framework, the ESDIndex with basic /
4-clique-based / parallel construction, dynamic index maintenance, and
the evaluation harness.

Quickstart::

    from repro import Graph, build_index_fast, topk_online

    g = Graph([(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (2, 3)])
    print(topk_online(g, k=2, tau=1))          # online search
    index = build_index_fast(g)
    print(index.topk(k=2, tau=1))              # index-based search
"""

from repro.core import (
    DynamicESDIndex,
    ESDIndex,
    all_edge_structural_diversities,
    build_index_basic,
    build_index_fast,
    build_index_parallel,
    edge_structural_diversity,
    online_bfs,
    online_bfs_plus,
    topk_common_neighbors,
    topk_edge_betweenness,
    topk_exact,
    topk_online,
    topk_vertex_online,
    vertex_structural_diversity,
)
from repro.graph import (
    DATASET_NAMES,
    Graph,
    canonical_edge,
    load_dataset,
    paper_example_graph,
    read_edge_list,
    write_edge_list,
)

__version__ = "1.0.0"

__all__ = [
    # graph substrate
    "Graph",
    "canonical_edge",
    "load_dataset",
    "DATASET_NAMES",
    "paper_example_graph",
    "read_edge_list",
    "write_edge_list",
    # scores
    "edge_structural_diversity",
    "all_edge_structural_diversities",
    "vertex_structural_diversity",
    # search
    "topk_online",
    "online_bfs",
    "online_bfs_plus",
    "topk_exact",
    "topk_vertex_online",
    # index
    "ESDIndex",
    "build_index_basic",
    "build_index_fast",
    "build_index_parallel",
    "DynamicESDIndex",
    # baselines
    "topk_common_neighbors",
    "topk_edge_betweenness",
    "__version__",
]
