"""Analytics used by case studies: betweenness, communities, contagion."""

from repro.analytics.betweenness import edge_betweenness, topk_edge_betweenness
from repro.analytics.communities import (
    communities_from_labels,
    communities_touched,
    label_propagation,
)
from repro.analytics.contagion import (
    CascadeResult,
    diversity_cascade,
    expected_reach,
)
from repro.analytics.render import render_ego_network
from repro.analytics.truss import (
    k_truss_subgraph,
    max_truss,
    topk_truss_edges,
    truss_numbers,
)

__all__ = [
    "edge_betweenness",
    "topk_edge_betweenness",
    "label_propagation",
    "communities_from_labels",
    "communities_touched",
    "CascadeResult",
    "diversity_cascade",
    "expected_reach",
    "render_ego_network",
    "truss_numbers",
    "max_truss",
    "k_truss_subgraph",
    "topk_truss_edges",
]
