"""Edge betweenness: global Brandes and the local ego-net variant.

The paper's case studies (Exp-7/8) compare the top-k structural-diversity
edges against the top-k edges by betweenness (``BT``).  Brandes'
accumulation computes exact edge betweenness in ``O(n m)`` for unweighted
graphs -- fine at case-study scale, but a full-graph recompute per
serving query.  :func:`edge_ego_betweenness` is the serving-path
alternative (following the top-k ego-betweenness line of work): the same
shortest-path-fraction accounting restricted to the edge's own 2-hop
neighborhood, computable per edge in ``O(d(u) + d(v))`` intersections.
"""

from __future__ import annotations

from collections import deque
from math import fsum
from typing import Dict, List, Tuple

from repro.graph.graph import Edge, Graph, Vertex, canonical_edge
from repro.graph.ordering import edge_sort_key
from repro.kernels.dispatch import kernels_enabled


def betweenness_normalization(n: int) -> float:
    """The ``normalized=True`` divisor for an ``n``-vertex graph.

    ``n (n - 1) / 2`` -- the number of unordered vertex pairs -- whenever
    at least one pair exists, else ``0.0`` (nothing to normalize: a
    graph with fewer than 2 vertices has no edges).  The previous guard
    skipped normalization for every ``n <= 2``, so a 2-vertex graph
    silently took the unnormalized branch on the ``normalized=True``
    path instead of dividing by this documented denominator.
    """
    if n < 2:
        return 0.0
    return n * (n - 1) / 2.0


def edge_betweenness(graph: Graph, normalized: bool = True) -> Dict[Edge, float]:
    """Exact edge betweenness of every edge.

    The betweenness of edge ``e`` is the sum over vertex pairs ``(s, t)``
    of the fraction of shortest s-t paths passing through ``e``.  With
    ``normalized`` the scores are divided by
    :func:`betweenness_normalization` (``n (n - 1) / 2``) for every
    ``n >= 2``, including the 2-vertex boundary.
    """
    scores: Dict[Edge, float] = {edge: 0.0 for edge in graph.edges()}
    for s in graph.vertices():
        _accumulate_from_source(graph, s, scores)
    # Each undirected pair (s, t) is counted from both endpoints.
    for edge in scores:
        scores[edge] /= 2.0
    if normalized:
        norm = betweenness_normalization(graph.n)
        if norm > 0:
            for edge in scores:
                scores[edge] /= norm
    return scores


def _accumulate_from_source(
    graph: Graph, s: Vertex, scores: Dict[Edge, float]
) -> None:
    """One source of Brandes' algorithm: BFS + dependency accumulation."""
    sigma: Dict[Vertex, float] = {s: 1.0}
    dist: Dict[Vertex, int] = {s: 0}
    predecessors: Dict[Vertex, List[Vertex]] = {s: []}
    order: List[Vertex] = []
    queue = deque([s])
    while queue:
        v = queue.popleft()
        order.append(v)
        for w in graph.neighbors(v):
            if w not in dist:
                dist[w] = dist[v] + 1
                sigma[w] = 0.0
                predecessors[w] = []
                queue.append(w)
            if dist[w] == dist[v] + 1:
                sigma[w] += sigma[v]
                predecessors[w].append(v)
    delta: Dict[Vertex, float] = {v: 0.0 for v in order}
    for w in reversed(order):
        for v in predecessors[w]:
            contribution = sigma[v] / sigma[w] * (1.0 + delta[w])
            scores[canonical_edge(v, w)] += contribution
            delta[v] += contribution


def edge_ego_betweenness(graph: Graph, u: Vertex, v: Vertex) -> float:
    """Ego-betweenness of one edge: betweenness over distance-<=2 pairs.

    ``1 + sum_{a in N(u)\\N[v]} 1/|N(a) ∩ N(v)|
       + sum_{b in N(v)\\N[u]} 1/|N(u) ∩ N(b)|`` --
    each term is the fraction of length-2 shortest paths between the
    pair that route through ``(u, v)``; the ``1`` is the pair
    ``(u, v)`` itself.  ``u`` witnesses every ``(a, v)`` pair (and
    symmetrically), so no denominator is zero.  Local: touches only the
    edge's 2-hop neighborhood, in ``O(d(u) + d(v))`` intersections.

    The reduction uses :func:`math.fsum` (correctly rounded, hence
    summation-order independent), so the value is bit-identical to the
    CSR kernel's (:func:`repro.kernels.betweenness.csr_ego_betweenness`).
    """
    nu = graph.neighbors(u)
    nv = graph.neighbors(v)
    terms = [1.0]
    for a in nu:
        if a != v and a not in nv:
            terms.append(1.0 / len(graph.common_neighbors(a, v)))
    for b in nv:
        if b != u and b not in nu:
            terms.append(1.0 / len(graph.common_neighbors(u, b)))
    return fsum(terms)


def all_edge_ego_betweenness(graph: Graph) -> Dict[Edge, float]:
    """Ego-betweenness of every edge (kernel-dispatched).

    With kernels enabled the whole table is computed on the CSR
    snapshot's packed bitsets; the set path calls
    :func:`edge_ego_betweenness` per edge.  Identical floats either way.
    """
    if kernels_enabled() and graph.m:
        from repro.kernels.betweenness import csr_ego_betweenness
        from repro.kernels.csr import snapshot_csr

        return csr_ego_betweenness(snapshot_csr(graph))
    return {
        canonical_edge(u, v): edge_ego_betweenness(graph, u, v)
        for u, v in graph.edges()
    }


def topk_edge_betweenness(
    graph: Graph, k: int
) -> List[Tuple[Edge, float]]:
    """Top-k edges by betweenness (the ``BT`` baseline of Exp-7/8).

    Ties break on the type-tagged edge key, so graphs mixing ``int``
    and ``str`` vertex labels (legal: the types live in disjoint
    components) rank deterministically instead of raising ``TypeError``
    from the raw-tuple comparison.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    scores = edge_betweenness(graph)
    ranked = sorted(
        scores.items(), key=lambda item: (-item[1], edge_sort_key(item[0]))
    )
    return ranked[:k]
