"""Edge betweenness centrality (Brandes' algorithm).

The paper's case studies (Exp-7/8) compare the top-k structural-diversity
edges against the top-k edges by betweenness (``BT``).  Brandes'
accumulation computes exact edge betweenness in ``O(n m)`` for unweighted
graphs -- fine at case-study scale.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Tuple

from repro.graph.graph import Edge, Graph, Vertex, canonical_edge
from repro.graph.ordering import edge_sort_key


def betweenness_normalization(n: int) -> float:
    """The ``normalized=True`` divisor for an ``n``-vertex graph.

    ``n (n - 1) / 2`` -- the number of unordered vertex pairs -- whenever
    at least one pair exists, else ``0.0`` (nothing to normalize: a
    graph with fewer than 2 vertices has no edges).  The previous guard
    skipped normalization for every ``n <= 2``, so a 2-vertex graph
    silently took the unnormalized branch on the ``normalized=True``
    path instead of dividing by this documented denominator.
    """
    if n < 2:
        return 0.0
    return n * (n - 1) / 2.0


def edge_betweenness(graph: Graph, normalized: bool = True) -> Dict[Edge, float]:
    """Exact edge betweenness of every edge.

    The betweenness of edge ``e`` is the sum over vertex pairs ``(s, t)``
    of the fraction of shortest s-t paths passing through ``e``.  With
    ``normalized`` the scores are divided by
    :func:`betweenness_normalization` (``n (n - 1) / 2``) for every
    ``n >= 2``, including the 2-vertex boundary.
    """
    scores: Dict[Edge, float] = {edge: 0.0 for edge in graph.edges()}
    for s in graph.vertices():
        _accumulate_from_source(graph, s, scores)
    # Each undirected pair (s, t) is counted from both endpoints.
    for edge in scores:
        scores[edge] /= 2.0
    if normalized:
        norm = betweenness_normalization(graph.n)
        if norm > 0:
            for edge in scores:
                scores[edge] /= norm
    return scores


def _accumulate_from_source(
    graph: Graph, s: Vertex, scores: Dict[Edge, float]
) -> None:
    """One source of Brandes' algorithm: BFS + dependency accumulation."""
    sigma: Dict[Vertex, float] = {s: 1.0}
    dist: Dict[Vertex, int] = {s: 0}
    predecessors: Dict[Vertex, List[Vertex]] = {s: []}
    order: List[Vertex] = []
    queue = deque([s])
    while queue:
        v = queue.popleft()
        order.append(v)
        for w in graph.neighbors(v):
            if w not in dist:
                dist[w] = dist[v] + 1
                sigma[w] = 0.0
                predecessors[w] = []
                queue.append(w)
            if dist[w] == dist[v] + 1:
                sigma[w] += sigma[v]
                predecessors[w].append(v)
    delta: Dict[Vertex, float] = {v: 0.0 for v in order}
    for w in reversed(order):
        for v in predecessors[w]:
            contribution = sigma[v] / sigma[w] * (1.0 + delta[w])
            scores[canonical_edge(v, w)] += contribution
            delta[v] += contribution


def topk_edge_betweenness(
    graph: Graph, k: int
) -> List[Tuple[Edge, float]]:
    """Top-k edges by betweenness (the ``BT`` baseline of Exp-7/8).

    Ties break on the type-tagged edge key, so graphs mixing ``int``
    and ``str`` vertex labels (legal: the types live in disjoint
    components) rank deterministically instead of raising ``TypeError``
    from the raw-tuple comparison.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    scores = edge_betweenness(graph)
    ranked = sorted(
        scores.items(), key=lambda item: (-item[1], edge_sort_key(item[0]))
    )
    return ranked[:k]
