"""Edge betweenness centrality (Brandes' algorithm).

The paper's case studies (Exp-7/8) compare the top-k structural-diversity
edges against the top-k edges by betweenness (``BT``).  Brandes'
accumulation computes exact edge betweenness in ``O(n m)`` for unweighted
graphs -- fine at case-study scale.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Tuple

from repro.graph.graph import Edge, Graph, Vertex, canonical_edge


def edge_betweenness(graph: Graph, normalized: bool = True) -> Dict[Edge, float]:
    """Exact edge betweenness of every edge.

    The betweenness of edge ``e`` is the sum over vertex pairs ``(s, t)``
    of the fraction of shortest s-t paths passing through ``e``.  With
    ``normalized`` the scores are divided by ``n (n - 1) / 2``.
    """
    scores: Dict[Edge, float] = {edge: 0.0 for edge in graph.edges()}
    for s in graph.vertices():
        _accumulate_from_source(graph, s, scores)
    # Each undirected pair (s, t) is counted from both endpoints.
    for edge in scores:
        scores[edge] /= 2.0
    if normalized and graph.n > 2:
        norm = graph.n * (graph.n - 1) / 2.0
        for edge in scores:
            scores[edge] /= norm
    return scores


def _accumulate_from_source(
    graph: Graph, s: Vertex, scores: Dict[Edge, float]
) -> None:
    """One source of Brandes' algorithm: BFS + dependency accumulation."""
    sigma: Dict[Vertex, float] = {s: 1.0}
    dist: Dict[Vertex, int] = {s: 0}
    predecessors: Dict[Vertex, List[Vertex]] = {s: []}
    order: List[Vertex] = []
    queue = deque([s])
    while queue:
        v = queue.popleft()
        order.append(v)
        for w in graph.neighbors(v):
            if w not in dist:
                dist[w] = dist[v] + 1
                sigma[w] = 0.0
                predecessors[w] = []
                queue.append(w)
            if dist[w] == dist[v] + 1:
                sigma[w] += sigma[v]
                predecessors[w].append(v)
    delta: Dict[Vertex, float] = {v: 0.0 for v in order}
    for w in reversed(order):
        for v in predecessors[w]:
            contribution = sigma[v] / sigma[w] * (1.0 + delta[w])
            scores[canonical_edge(v, w)] += contribution
            delta[v] += contribution


def topk_edge_betweenness(
    graph: Graph, k: int
) -> List[Tuple[Edge, float]]:
    """Top-k edges by betweenness (the ``BT`` baseline of Exp-7/8)."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    scores = edge_betweenness(graph)
    ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
    return ranked[:k]
