"""Label-propagation community detection.

Used by the Exp-7 harness to *quantify* the paper's qualitative claim:
the top structural-diversity edges bridge many communities (their
ego-network components map to distinct communities), whereas the top
common-neighbor edges sit inside a single dense community.
"""

from __future__ import annotations

import random
from typing import Dict, List, Set

from repro.graph.graph import Graph, Vertex


def label_propagation(
    graph: Graph, max_rounds: int = 30, seed: int = 0
) -> Dict[Vertex, int]:
    """Synchronous-ish label propagation; returns vertex -> community id.

    Vertices adopt the most frequent label among their neighbors (ties
    broken by the smallest label for determinism given the seed-shuffled
    visit order).  Converges quickly on modular graphs; ``max_rounds``
    caps oscillation.
    """
    rng = random.Random(seed)
    labels: Dict[Vertex, int] = {
        u: i for i, u in enumerate(sorted(graph.vertices()))
    }
    vertices = sorted(graph.vertices())
    for _ in range(max_rounds):
        rng.shuffle(vertices)
        changed = 0
        for u in vertices:
            neighbor_labels: Dict[int, int] = {}
            for v in graph.neighbors(u):
                lab = labels[v]
                neighbor_labels[lab] = neighbor_labels.get(lab, 0) + 1
            if not neighbor_labels:
                continue
            best = min(
                neighbor_labels,
                key=lambda lab: (-neighbor_labels[lab], lab),
            )
            if best != labels[u]:
                labels[u] = best
                changed += 1
        if not changed:
            break
    return labels


def communities_from_labels(labels: Dict[Vertex, int]) -> List[Set[Vertex]]:
    """Group a label assignment into communities (size > 0), largest first."""
    groups: Dict[int, Set[Vertex]] = {}
    for u, lab in labels.items():
        groups.setdefault(lab, set()).add(u)
    return sorted(groups.values(), key=len, reverse=True)


def communities_touched(
    labels: Dict[Vertex, int], vertices: Set[Vertex]
) -> int:
    """Number of distinct communities among ``vertices``."""
    return len({labels[u] for u in vertices if u in labels})
