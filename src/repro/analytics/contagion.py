"""Structural-diversity-driven social contagion simulation.

Ugander et al. (the paper's motivating reference [1]) showed that the
probability a user joins a contagion grows with the number of connected
components among its already-infected neighbors, not with their count.
This module simulates exactly that adoption rule, so the examples can
demonstrate the paper's motivating claim: seeding a cascade across the
endpoints of high edge-structural-diversity edges reaches more of the
network than seeding around high common-neighbor edges.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Set

from repro.graph.components import components_of_subset
from repro.graph.graph import Graph, Vertex


@dataclass(frozen=True)
class CascadeResult:
    """Outcome of one contagion simulation."""

    adopted: Set[Vertex]
    rounds: int

    @property
    def size(self) -> int:
        return len(self.adopted)


def diversity_cascade(
    graph: Graph,
    seeds: Iterable[Vertex],
    adoption_rate: float = 0.35,
    max_rounds: int = 30,
    seed: int = 0,
) -> CascadeResult:
    """Run a cascade where adoption depends on *structural diversity*.

    Each round, a susceptible vertex ``u`` observes the connected
    components among its adopted neighbors (its infected social contexts)
    and adopts with probability ``1 - (1 - adoption_rate) ** contexts`` --
    one independent chance per context, the Ugander et al. effect.
    """
    if not 0.0 <= adoption_rate <= 1.0:
        raise ValueError(f"adoption_rate must be in [0, 1], got {adoption_rate}")
    rng = random.Random(seed)
    adopted: Set[Vertex] = {s for s in seeds if s in graph}
    rounds = 0
    frontier_changed = True
    while frontier_changed and rounds < max_rounds:
        rounds += 1
        frontier_changed = False
        candidates = sorted(
            {
                v
                for u in adopted
                for v in graph.neighbors(u)
                if v not in adopted
            }
        )
        newly: List[Vertex] = []
        for v in candidates:
            infected_neighbors = {w for w in graph.neighbors(v) if w in adopted}
            contexts = len(components_of_subset(graph, infected_neighbors))
            if contexts == 0:
                continue
            p = 1.0 - (1.0 - adoption_rate) ** contexts
            if rng.random() < p:
                newly.append(v)
        if newly:
            adopted.update(newly)
            frontier_changed = True
    return CascadeResult(adopted=adopted, rounds=rounds)


def expected_reach(
    graph: Graph,
    seeds: Iterable[Vertex],
    trials: int = 10,
    adoption_rate: float = 0.35,
    seed: int = 0,
) -> float:
    """Mean cascade size over ``trials`` independent simulations."""
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    seeds = list(seeds)
    total = 0
    for t in range(trials):
        total += diversity_cascade(
            graph, seeds, adoption_rate=adoption_rate, seed=seed + t
        ).size
    return total / trials
