"""Plain-text rendering of edge ego-networks (Fig. 12/13 style).

The paper's case-study figures draw each top edge's ego-network with its
connected components grouped.  For a terminal-first library the same
information renders as indented component blocks; the case-study
benchmarks and examples use this to make their output self-explanatory.
"""

from __future__ import annotations

from typing import List, Optional

from repro.graph.components import components_of_subset
from repro.graph.graph import Graph, Vertex


def render_ego_network(
    graph: Graph,
    u: Vertex,
    v: Vertex,
    tau: int = 1,
    labels: Optional[dict] = None,
) -> str:
    """Render edge ``(u, v)``'s ego-network, one component per block.

    Components are sorted by size (descending); those below ``tau`` are
    grouped under a "below threshold" footer.  ``labels`` optionally maps
    vertices to display names.
    """
    if tau < 1:
        raise ValueError(f"tau must be >= 1, got {tau}")

    def name(x: Vertex) -> str:
        return str(labels.get(x, x)) if labels else str(x)

    common = graph.common_neighbors(u, v)
    components = sorted(
        components_of_subset(graph, common), key=lambda c: (-len(c), sorted(map(str, c)))
    )
    score = sum(1 for c in components if len(c) >= tau)
    lines: List[str] = [
        f"edge ({name(u)}, {name(v)}) -- {len(common)} common neighbors, "
        f"score {score} at tau={tau}"
    ]
    counted = [c for c in components if len(c) >= tau]
    skipped = [c for c in components if len(c) < tau]
    for i, component in enumerate(counted, start=1):
        members = sorted(component, key=str)
        inner = _component_edges(graph, members)
        lines.append(f"  component {i} (size {len(component)}): "
                     f"{{{', '.join(name(w) for w in members)}}}")
        if inner:
            rendered = ", ".join(f"{name(a)}-{name(b)}" for a, b in inner)
            lines.append(f"    edges: {rendered}")
    if skipped:
        small = ", ".join(
            "{" + ", ".join(name(w) for w in sorted(c, key=str)) + "}"
            for c in skipped
        )
        lines.append(f"  below threshold: {small}")
    if not components:
        lines.append("  (empty ego-network)")
    return "\n".join(lines)


def _component_edges(graph: Graph, members: List[Vertex]) -> List[tuple]:
    out = []
    member_set = set(members)
    for a in members:
        for b in graph.neighbors(a):
            if b in member_set and a < b:
                out.append((a, b))
    return sorted(out, key=lambda e: (str(e[0]), str(e[1])))
