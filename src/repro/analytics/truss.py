"""k-truss decomposition.

The paper's related work builds on truss decomposition (Wang & Cheng;
Huang et al.), and the quantity it iterates on -- the *support* of an
edge, ``|N(u) ∩ N(v)|`` -- is exactly the numerator of the paper's
common-neighbor upper bound.  The truss number of an edge is the largest
``k`` such that the edge survives in the k-truss (the maximal subgraph
where every edge closes at least ``k - 2`` triangles), a classic measure
of tie strength that the case studies contrast with structural
diversity: high-truss edges are strong but context-poor, while
high-diversity edges are strong *and* context-rich.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graph.graph import Edge, Graph, canonical_edge
from repro.graph.ordering import edge_sort_key
from repro.kernels.dispatch import kernels_enabled


def truss_numbers(graph: Graph) -> Dict[Edge, int]:
    """The truss number of every edge (peeling algorithm, O(m^1.5)-ish).

    Edges are iteratively removed in order of lowest support; the truss
    number records the peel level: ``truss(e) = k`` means ``e`` is in the
    k-truss but not the (k+1)-truss.  Edges in no triangle get truss 2.

    With kernels enabled the peel runs in id space on the CSR snapshot
    (:func:`repro.kernels.truss.csr_truss_numbers`); truss numbers are
    peel-order independent, so both paths return identical tables.
    """
    if kernels_enabled() and graph.m:
        from repro.kernels.csr import snapshot_csr
        from repro.kernels.truss import csr_truss_numbers

        return csr_truss_numbers(snapshot_csr(graph))
    work = graph.copy()
    support: Dict[Edge, int] = {
        edge: len(work.common_neighbors(*edge)) for edge in work.edges()
    }
    # Bucket queue over support values.
    max_support = max(support.values(), default=0)
    buckets: List[set] = [set() for _ in range(max_support + 1)]
    for edge, s in support.items():
        buckets[s].add(edge)

    truss: Dict[Edge, int] = {}
    k = 2
    cursor = 0
    remaining = len(support)
    while remaining:
        while cursor <= max_support and not buckets[cursor]:
            cursor += 1
        if cursor > max_support:
            break
        # All edges with support <= k - 2 belong to the current truss level.
        k = max(k, cursor + 2)
        edge = buckets[cursor].pop()
        u, v = edge
        truss[edge] = k
        # Removing (u, v) lowers the support of edges in its triangles.
        for w in work.common_neighbors(u, v):
            for other in (canonical_edge(u, w), canonical_edge(v, w)):
                s = support[other]
                if s > cursor:
                    buckets[s].discard(other)
                    support[other] = s - 1
                    buckets[s - 1].add(other)
        work.remove_edge(u, v)
        del support[edge]
        remaining -= 1
        cursor = max(cursor - 1, 0)
    return truss


def max_truss(graph: Graph) -> int:
    """The largest k such that the k-truss is nonempty (0 if no edges)."""
    numbers = truss_numbers(graph)
    return max(numbers.values(), default=0)


def k_truss_subgraph(graph: Graph, k: int) -> Graph:
    """The k-truss: maximal subgraph whose edges all have truss >= k."""
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    numbers = truss_numbers(graph)
    return Graph(edge for edge, t in numbers.items() if t >= k)


def topk_truss_edges(graph: Graph, k: int) -> List[Tuple[Edge, int]]:
    """Top-k edges by truss number -- a strength baseline.

    Ties break on the type-tagged edge key (not the raw edge tuple):
    tied edges whose vertex labels have different types -- an ``int``
    component next to a ``str`` component -- are not mutually orderable,
    and the raw tuple comparison raised ``TypeError`` on such graphs.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    numbers = truss_numbers(graph)
    ranked = sorted(
        numbers.items(), key=lambda item: (-item[1], edge_sort_key(item[0]))
    )
    return ranked[:k]
