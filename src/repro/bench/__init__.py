"""Benchmark harness: workloads, experiment runners, reporting."""

from repro.bench.harness import (
    ExperimentTable,
    RESULTS_DIR,
    bench_scale,
    emit,
    load_results,
    save_tables,
    time_call,
)
from repro.bench.workloads import (
    DEFAULT_K,
    DEFAULT_TAU,
    K_VALUES,
    MAINTENANCE_UPDATES,
    ONLINE_DATASETS,
    SCALABILITY_DATASET,
    TAU_VALUES,
    THREAD_VALUES,
    all_datasets,
    dataset,
)

__all__ = [
    "ExperimentTable",
    "RESULTS_DIR",
    "bench_scale",
    "emit",
    "load_results",
    "save_tables",
    "time_call",
    "K_VALUES",
    "TAU_VALUES",
    "THREAD_VALUES",
    "DEFAULT_K",
    "DEFAULT_TAU",
    "ONLINE_DATASETS",
    "SCALABILITY_DATASET",
    "MAINTENANCE_UPDATES",
    "dataset",
    "all_datasets",
]
