"""Experiment runners: one per table/figure of the paper's §VI.

Each ``run_*`` function regenerates the corresponding artifact on the
synthetic stand-ins and returns :class:`ExperimentTable` objects; the
pytest-benchmark wrappers in ``benchmarks/`` call these, print the tables
and persist the JSON that EXPERIMENTS.md is assembled from.
"""

from __future__ import annotations

import random
import statistics
from typing import Dict, List, Tuple

from repro.analytics import (
    communities_touched,
    label_propagation,
    topk_edge_betweenness,
)
from repro.bench.harness import ExperimentTable, Seconds, time_call
from repro.bench.workloads import (
    DEFAULT_K,
    DEFAULT_TAU,
    K_VALUES,
    MAINTENANCE_UPDATES,
    ONLINE_DATASETS,
    SCALABILITY_DATASET,
    TAU_VALUES,
    THREAD_VALUES,
    all_datasets,
    dataset,
)
from repro.core import (
    DynamicESDIndex,
    build_index_basic,
    build_index_fast,
    simulate_parallel_speedup,
    topk_common_neighbors,
    topk_online,
)
from repro.core.diversity import ego_component_sizes
from repro.graph import (
    Graph,
    components_of_subset,
    graph_stats,
    random_edge_subgraph,
    random_vertex_subgraph,
    scalability_fractions,
)
from repro.graph.datasets import db_subgraph, word_association


def run_table1(scale: float = 1.0) -> List[ExperimentTable]:
    """Table I: dataset statistics (n, m, d_max, degeneracy δ)."""
    table = ExperimentTable(
        "Table I", "Datasets (synthetic stand-ins)",
        ["dataset", "n", "m", "d_max", "delta"],
    )
    for name, graph in all_datasets(scale).items():
        stats = graph_stats(graph)
        table.add_row(name, stats.n, stats.m, stats.d_max, stats.degeneracy)
    table.note(
        "Stand-ins are ~1000x smaller than the SNAP originals; the paper's "
        "size ordering and per-dataset character are preserved (DESIGN.md §3)."
    )
    return [table]


def run_exp1_fig5(scale: float = 1.0) -> List[ExperimentTable]:
    """Exp-1 / Fig. 5: OnlineBFS vs OnlineBFS+ with varying k and τ."""
    tables = []
    for name in ONLINE_DATASETS:
        graph = dataset(name, scale)
        by_k = ExperimentTable(
            "Fig. 5", f"OnlineBFS vs OnlineBFS+ on {name} (vary k, tau={DEFAULT_TAU})",
            ["k", "OnlineBFS (s)", "OnlineBFS+ (s)", "BFS evals", "BFS+ evals"],
        )
        for k in K_VALUES:
            t_md, s_md = _timed_online(graph, k, DEFAULT_TAU, "min-degree")
            t_cn, s_cn = _timed_online(graph, k, DEFAULT_TAU, "common-neighbor")
            by_k.add_row(k, t_md, t_cn, s_md, s_cn)
        by_tau = ExperimentTable(
            "Fig. 5", f"OnlineBFS vs OnlineBFS+ on {name} (vary tau, k={DEFAULT_K})",
            ["tau", "OnlineBFS (s)", "OnlineBFS+ (s)", "BFS evals", "BFS+ evals"],
        )
        for tau in TAU_VALUES:
            t_md, s_md = _timed_online(graph, DEFAULT_K, tau, "min-degree")
            t_cn, s_cn = _timed_online(graph, DEFAULT_K, tau, "common-neighbor")
            by_tau.add_row(tau, t_md, t_cn, s_md, s_cn)
        tables += [by_k, by_tau]
    tables[-1].note(
        "Paper claim: OnlineBFS+ dominates because the common-neighbor "
        "bound evaluates fewer edges exactly (compare the eval columns)."
    )
    return tables


def _timed_online(
    graph: Graph, k: int, tau: int, bound: str
) -> Tuple[float, int]:
    evaluated = 0

    def run() -> None:
        nonlocal evaluated
        _, stats = topk_online(graph, k, tau, bound=bound, with_stats=True)
        evaluated = stats.evaluated

    return time_call(run), evaluated


def run_exp2_fig6(scale: float = 1.0) -> List[ExperimentTable]:
    """Exp-2 / Fig. 6: index size and construction time, all datasets."""
    size_table = ExperimentTable(
        "Fig. 6(a)", "ESDIndex size vs graph size",
        ["dataset", "graph m", "index entries", "ratio", "|C|"],
    )
    time_table = ExperimentTable(
        "Fig. 6(b)", "ESDIndex vs ESDIndex+ construction time",
        ["dataset", "ESDIndex (s)", "ESDIndex+ (s)", "speedup"],
    )
    for name, graph in all_datasets(scale).items():
        index = build_index_fast(graph)
        ratio = index.entry_count / max(graph.m, 1)
        size_table.add_row(
            name, graph.m, index.entry_count, round(ratio, 2),
            len(index.size_classes),
        )
        t_basic = time_call(lambda: build_index_basic(graph), repeats=2)
        t_fast = time_call(lambda: build_index_fast(graph), repeats=2)
        time_table.add_row(
            name, t_basic, t_fast, round(t_basic / max(t_fast, 1e-9), 2)
        )
    size_table.note(
        "Paper: index is 4-8x the graph size.  Entries/m plays that role "
        "here and tracks ego-network richness: the clique-dense stand-ins "
        "(dblp, wikitalk) land in the paper's 4-8x band while the sparser "
        "ones stay below -- always a small multiple of m (Theorem 3)."
    )
    time_table.note(
        "Paper: ESDIndex+ is 2-10x faster since each 4-clique is visited "
        "once instead of six times.  In pure Python union-find object "
        "overhead compresses the gap (largest on the degree-skewed "
        "wikitalk, near parity on the most clique-dense dblp)."
    )
    return [size_table, time_table]


def run_exp3_fig7(scale: float = 1.0) -> List[ExperimentTable]:
    """Exp-3 / Fig. 7: PESDIndex+ speedup vs thread count."""
    tables = []
    for name in ONLINE_DATASETS:
        graph = dataset(name, scale)
        table = ExperimentTable(
            "Fig. 7", f"PESDIndex+ speedup on {name}",
            ["threads", "speedup", "parallel work (s)", "serial (s)"],
        )
        for t in THREAD_VALUES:
            r = simulate_parallel_speedup(graph, t)
            table.add_row(
                t, round(r["speedup"], 2), Seconds(r["parallel_seconds"]),
                Seconds(r["serial_seconds"]),
            )
        table.note(
            "Single-core container: speedups are measured-work simulations "
            "(per-chunk wall times under perfect overlap, DESIGN.md §3); "
            "the paper reports ~12x at t=20 on real cores."
        )
        tables.append(table)
    return tables


def run_exp4_fig8(scale: float = 1.0) -> List[ExperimentTable]:
    """Exp-4 / Fig. 8: OnlineBFS+ vs IndexSearch, vary k and τ."""
    by_k = ExperimentTable(
        "Fig. 8(a-e)", f"OnlineBFS+ vs IndexSearch (vary k, tau={DEFAULT_TAU})",
        ["dataset", "k", "OnlineBFS+ (s)", "IndexSearch (s)", "speedup"],
    )
    by_tau = ExperimentTable(
        "Fig. 8(f-j)", f"OnlineBFS+ vs IndexSearch (vary tau, k={DEFAULT_K})",
        ["dataset", "tau", "OnlineBFS+ (s)", "IndexSearch (s)", "speedup"],
    )
    for name, graph in all_datasets(scale).items():
        index = build_index_fast(graph)
        for k in K_VALUES:
            t_online = time_call(
                lambda: topk_online(graph, k, DEFAULT_TAU), repeats=1
            )
            t_index = time_call(lambda: index.topk(k, DEFAULT_TAU), repeats=3)
            by_k.add_row(
                name, k, t_online, t_index,
                int(t_online / max(t_index, 1e-9)),
            )
        for tau in TAU_VALUES:
            t_online = time_call(lambda: topk_online(graph, DEFAULT_K, tau))
            t_index = time_call(lambda: index.topk(DEFAULT_K, tau), repeats=3)
            by_tau.add_row(
                name, tau, t_online, t_index,
                int(t_online / max(t_index, 1e-9)),
            )
    by_tau.note(
        "Paper: IndexSearch is >= 4 orders of magnitude faster and robust "
        "w.r.t. tau; at stand-in scale the gap is smaller but decisive."
    )
    return [by_k, by_tau]


def run_exp5_fig9(scale: float = 1.0) -> List[ExperimentTable]:
    """Exp-5 / Fig. 9: scalability on random subgraphs of LiveJournal."""
    graph = dataset(SCALABILITY_DATASET, scale)
    tables = []
    for mode, sampler in (
        ("edges", random_edge_subgraph),
        ("vertices", random_vertex_subgraph),
    ):
        table = ExperimentTable(
            "Fig. 9", f"Scalability on {SCALABILITY_DATASET} (vary {mode})",
            ["fraction", "m", "OnlineBFS+ (s)", "IndexSearch (s)"],
        )
        for fraction in scalability_fractions():
            sub = sampler(graph, fraction, seed=17)
            index = build_index_fast(sub)
            t_online = time_call(lambda: topk_online(sub, DEFAULT_K, DEFAULT_TAU))
            t_index = time_call(
                lambda: index.topk(DEFAULT_K, DEFAULT_TAU), repeats=3
            )
            table.add_row(f"{fraction:.0%}", sub.m, t_online, t_index)
        tables.append(table)
    tables[-1].note(
        "Paper: OnlineBFS+ grows linearly with graph size; IndexSearch "
        "stays flat."
    )
    return tables


def run_exp5_fig10(scale: float = 1.0) -> List[ExperimentTable]:
    """Exp-5 / Fig. 10: PESDIndex+ scalability (1 vs 20 threads)."""
    graph = dataset(SCALABILITY_DATASET, scale)
    table = ExperimentTable(
        "Fig. 10", f"PESDIndex+ scalability on {SCALABILITY_DATASET}",
        ["fraction", "m", "t=1 (s)", "t=20 (s)", "speedup"],
    )
    for fraction in scalability_fractions():
        sub = random_edge_subgraph(graph, fraction, seed=17)
        r1 = simulate_parallel_speedup(sub, 1)
        r20 = simulate_parallel_speedup(sub, 20)
        table.add_row(
            f"{fraction:.0%}", sub.m,
            Seconds(r1["overlapped_total"]), Seconds(r20["overlapped_total"]),
            round(r1["overlapped_total"] / max(r20["overlapped_total"], 1e-9), 2),
        )
    table.note(
        "Paper: runtime grows smoothly with graph size; 20-thread speedup "
        "between 6 and 9 on all subgraphs (simulated here, DESIGN.md §3)."
    )
    return [table]


def run_exp6_fig11(scale: float = 1.0) -> List[ExperimentTable]:
    """Exp-6 / Fig. 11: average insertion/deletion maintenance time."""
    table = ExperimentTable(
        "Fig. 11", f"Index maintenance ({MAINTENANCE_UPDATES} random updates)",
        ["dataset", "construction (s)", "avg insert (s)", "avg delete (s)"],
    )
    for name, graph in all_datasets(scale).items():
        t_build = time_call(lambda: build_index_fast(graph))
        dyn = DynamicESDIndex(graph)
        rng = random.Random(97)
        edges = dyn.graph.edge_list()
        victims = [edges[rng.randrange(len(edges))] for _ in range(MAINTENANCE_UPDATES)]
        victims = list(dict.fromkeys(victims))  # unique, keep order
        delete_times: List[float] = []
        insert_times: List[float] = []
        for u, v in victims:
            delete_times.append(time_call(lambda: dyn.delete_edge(u, v)))
            insert_times.append(time_call(lambda: dyn.insert_edge(u, v)))
        table.add_row(
            name, t_build,
            Seconds(statistics.mean(insert_times)),
            Seconds(statistics.mean(delete_times)),
        )
    table.note(
        "Paper: both maintenance costs are far below construction; "
        "deletion is the slower of the two (Update procedure)."
    )
    return [table]


def run_exp7_fig12() -> List[ExperimentTable]:
    """Exp-7 / Fig. 12: DBLP case study -- ESD vs CN vs BT."""
    graph = db_subgraph()
    labels = label_propagation(graph, seed=3)
    index = build_index_fast(graph)

    def ego_profile(u, v) -> Tuple[int, int, int]:
        common = graph.common_neighbors(u, v)
        comps = components_of_subset(graph, common)
        big = [c for c in comps if len(c) >= 2]
        comms = communities_touched(labels, common)
        return len(big), comms, len(common)

    table = ExperimentTable(
        "Fig. 12", "DB case study: top edges by ESD / CN / BT (tau=2)",
        ["method", "edge", "ego comps (>=2)", "communities", "common nbrs"],
    )
    for edge, _score in index.topk(5, 2):
        table.add_row("ESD", edge, *ego_profile(*edge))
    for edge, _count in topk_common_neighbors(graph, 2):
        table.add_row("CN", edge, *ego_profile(*edge))
    for edge, _bt in topk_edge_betweenness(graph, 2):
        table.add_row("BT", edge, *ego_profile(*edge))
    table.note(
        "Paper claims: ESD edges contain many components spanning many "
        "communities (bridges with strong ties); CN edges sit in one dense "
        "community (<= 2 components); BT edges are weak links with few "
        "common neighbors."
    )
    return [table]


def run_exp8_fig13() -> List[ExperimentTable]:
    """Exp-8 / Fig. 13: word association case study (tau=2, k=2)."""
    graph = word_association()
    index = build_index_fast(graph)
    table = ExperimentTable(
        "Fig. 13", "Word association: top-2 edges by ESD (tau=2)",
        ["edge", "score", "context components"],
    )
    for edge, score in index.topk(2, 2):
        common = graph.common_neighbors(*edge)
        comps = [
            sorted(c)
            for c in components_of_subset(graph, common)
            if len(c) >= 2
        ]
        comps.sort(key=len, reverse=True)
        rendered = "; ".join("{" + ", ".join(c) + "}" for c in comps)
        table.add_row(f"({edge[0]}, {edge[1]})", score, rendered)
    table.note(
        "Paper: the top edge is (bank, money) with 6 semantic-context "
        "components; each component is one meaning of the word pair."
    )
    return [table]


def run_tau_sensitivity(scale: float = 1.0) -> List[ExperimentTable]:
    """Extra experiment: score distribution per tau (Exp-7 discussion).

    The paper observes that for tau >= 3 most DBLP edges score <= 3, so
    the top-k results lose discriminative power and recommends small tau
    (e.g. 2).  This table quantifies that: per dataset and tau, the
    number of edges with positive score and the maximum score.
    """
    from repro.core.diversity import all_edge_structural_diversities

    table = ExperimentTable(
        "Extra", "Score distribution vs tau (why the paper recommends tau=2)",
        ["dataset", "tau", "edges with score>0", "max score", "p99 score"],
    )
    for name, graph in all_datasets(scale).items():
        for tau in TAU_VALUES:
            scores = sorted(
                all_edge_structural_diversities(graph, tau).values(),
                reverse=True,
            )
            positive = sum(1 for s in scores if s > 0)
            p99 = scores[max(len(scores) // 100, 0)] if scores else 0
            table.add_row(name, tau, positive, scores[0] if scores else 0, p99)
    table.note(
        "Paper (Exp-7): for tau >= 3 most scores collapse toward 0-3, so "
        "top-k edges stop revealing diverse contexts; tau = 2 is the "
        "recommended operating point."
    )
    return [table]


def run_link_prediction(scale: float = 1.0) -> List[ExperimentTable]:
    """Extra experiment: pair-diversity link prediction (Dong et al. [3]).

    The paper's motivating reference for pair diversity showed that
    high-diversity pairs are likelier to connect.  We hide 10% of the
    edges of two stand-ins and rank non-adjacent 2-hop pairs by pair
    diversity / common neighbors / Jaccard, reporting precision@k along
    with the random-candidate baseline.
    """
    from repro.core import link_prediction_experiment
    from repro.core.pair_diversity import iter_candidate_pairs

    table = ExperimentTable(
        "Extra", "Link prediction on hidden edges (precision@k)",
        ["dataset", "predictor", "p@10", "p@50", "p@100", "random"],
    )
    for name in ("dblp", "pokec"):
        graph = dataset(name, scale)
        results = link_prediction_experiment(
            graph, hide_fraction=0.1, ks=(10, 50, 100), seed=5
        )
        candidates = sum(1 for _ in iter_candidate_pairs(graph))
        baseline = results[0].hidden / max(candidates, 1)
        for r in results:
            table.add_row(
                name, r.predictor,
                round(r.precision_at[10], 3), round(r.precision_at[50], 3),
                round(r.precision_at[100], 3), round(baseline, 4),
            )
    table.note(
        "Dong et al.'s effect concerns real link formation, which the "
        "synthetic stand-ins do not encode; the checkable shape here is "
        "that structural predictors clearly beat random guessing among "
        "candidates.  Which predictor wins depends on the graph's "
        "generative structure (team cliques favor CN/Jaccard)."
    )
    return [table]


def run_ablation(scale: float = 1.0) -> List[ExperimentTable]:
    """Design-choice ablations called out in DESIGN.md.

    (a) pruning power of the dequeue-twice framework per bound rule,
    (b) treap-backed H(c) vs a sorted-array rebuild strategy,
    (c) bulk load vs incremental set_edge construction,
    (d) dequeue-twice vs the ordering-based scan (Chang et al. style),
    (e) degree vs degeneracy orientation for 4-clique enumeration.
    """
    prune = ExperimentTable(
        "Ablation A", f"Dequeue-twice pruning (k={DEFAULT_K}, tau={DEFAULT_TAU})",
        ["dataset", "edges", "evals (min-degree)", "evals (common-nbr)",
         "full scan"],
    )
    for name, graph in all_datasets(scale).items():
        _, s_md = _timed_online(graph, DEFAULT_K, DEFAULT_TAU, "min-degree")
        _, s_cn = _timed_online(graph, DEFAULT_K, DEFAULT_TAU, "common-neighbor")
        prune.add_row(name, graph.m, s_md, s_cn, graph.m)

    structure = ExperimentTable(
        "Ablation B", "H(c) backing structure: treap vs sorted array",
        ["dataset", "treap build (s)", "array build (s)",
         "treap 100 updates (s)", "array 100 updates (s)"],
    )
    for name in ("youtube", "dblp"):
        graph = dataset(name, scale)
        sizes = {
            (u, v): ego_component_sizes(graph, u, v) for u, v in graph.edges()
        }
        from repro.core import ESDIndex, index_from_sizes

        t_treap = time_call(lambda: index_from_sizes(sizes))
        t_array = time_call(lambda: _sorted_array_index(sizes))
        index = index_from_sizes(sizes)
        arrays = _sorted_array_index(sizes)
        tracked = [e for e, s in sizes.items() if s][:100]

        def treap_updates() -> None:
            for e in tracked:
                index.set_edge(e, sizes[e])

        def array_updates() -> None:
            for e in tracked:
                _sorted_array_update(arrays, e, sizes[e])

        structure.add_row(
            name, t_treap, t_array,
            time_call(treap_updates), time_call(array_updates),
        )
    structure.note(
        "Sorted arrays build faster but each update pays an O(n) re-sort "
        "per touched list; the treap keeps updates logarithmic -- the "
        "reason the paper uses a self-balancing BST."
    )

    load = ExperimentTable(
        "Ablation C", "Index load strategy: bulk vs incremental",
        ["dataset", "bulk load (s)", "incremental set_edge (s)"],
    )
    for name in ("youtube", "dblp"):
        graph = dataset(name, scale)
        sizes = {
            (u, v): ego_component_sizes(graph, u, v) for u, v in graph.edges()
        }
        from repro.core import ESDIndex, index_from_sizes

        def incremental() -> None:
            idx = ESDIndex()
            for e, s in sizes.items():
                if s:
                    idx.set_edge(e, s)

        load.add_row(
            name, time_call(lambda: index_from_sizes(sizes)),
            time_call(incremental),
        )

    frameworks = ExperimentTable(
        "Ablation D", f"Dequeue-twice vs ordering scan (k={DEFAULT_K}, "
        f"tau={DEFAULT_TAU}, common-neighbor bound)",
        ["dataset", "dequeue-twice (s)", "ordering (s)",
         "dq evals", "ord evals"],
    )
    from repro.core import topk_ordering

    for name, graph in all_datasets(scale).items():
        t_dq, evals_dq = _timed_online(
            graph, DEFAULT_K, DEFAULT_TAU, "common-neighbor"
        )
        evals_ord = 0

        def run_ordering() -> None:
            nonlocal evals_ord
            _, s = topk_ordering(
                graph, DEFAULT_K, DEFAULT_TAU, with_stats=True
            )
            evals_ord = s.evaluated

        t_ord = time_call(run_ordering)
        frameworks.add_row(name, t_dq, t_ord, evals_dq, evals_ord)
    frameworks.note(
        "Both return the same score multiset; the ordering scan trades the "
        "heap for one sort plus an early-terminating pass."
    )

    orientation = ExperimentTable(
        "Ablation E", "4-clique enumeration: degree vs degeneracy ordering",
        ["dataset", "degree order (s)", "degeneracy order (s)", "cliques"],
    )
    from repro.cliques import count_four_cliques

    for name in ("pokec", "livejournal"):
        graph = dataset(name, scale)
        cliques = count_four_cliques(graph)
        t_deg = time_call(lambda: count_four_cliques(graph, order="degree"))
        t_dgn = time_call(
            lambda: count_four_cliques(graph, order="degeneracy")
        )
        orientation.add_row(name, t_deg, t_dgn, cliques)
    orientation.note(
        "The paper orients by degree (§II); kClist uses the degeneracy "
        "ordering -- both enumerate each 4-clique exactly once."
    )

    builders = ExperimentTable(
        "Ablation F", "Index builders: BFS vs 4-clique vs bitset",
        ["dataset", "basic (s)", "4-clique (s)", "bitset (s)"],
    )
    from repro.core import build_index_bitset

    for name in ("dblp", "livejournal"):
        graph = dataset(name, scale)
        builders.add_row(
            name,
            time_call(lambda: build_index_basic(graph), repeats=2),
            time_call(lambda: build_index_fast(graph), repeats=2),
            time_call(lambda: build_index_bitset(graph), repeats=2),
        )
    builders.note(
        "All three produce identical indexes; the bitset path packs "
        "adjacency into big-int words so the ego-network BFS runs at "
        "machine speed -- the fastest pure-Python option here."
    )
    return [prune, structure, load, frameworks, orientation, builders]


def _sorted_array_index(sizes: Dict) -> Dict[int, List]:
    """Ablation baseline: H(c) as plain sorted Python lists."""
    classes: Dict[int, List] = {}
    all_c = sorted({c for s in sizes.values() for c in s})
    for c in all_c:
        entries = []
        for edge, s in sizes.items():
            if s and max(s) >= c:
                entries.append((-sum(1 for x in s if x >= c), edge))
        entries.sort()
        classes[c] = entries
    return classes


def _sorted_array_update(classes: Dict[int, List], edge, s) -> None:
    """Replace one edge's entries in the sorted-array baseline (O(n) each)."""
    for c, entries in classes.items():
        filtered = [item for item in entries if item[1] != edge]
        if s and max(s) >= c:
            filtered.append((-sum(1 for x in s if x >= c), edge))
        filtered.sort()
        classes[c] = filtered


def run_service_bench(scale: float = 1.0) -> List[ExperimentTable]:
    """Service: concurrent mixed read/write load against ``esd serve``.

    Beyond the paper's letter but squarely in its motivation (standing
    analytics over a dynamic graph): 64 concurrent clients drive one
    server with a mixed topk/score/update workload, then every recorded
    ``topk`` response is audited offline against a from-scratch
    ``build_index_fast`` at its graph version.  A second, deliberately
    tiny server demonstrates structured overload rejection.
    """
    import threading
    import time

    from repro.bench.workloads import (
        SERVICE_CLIENTS,
        SERVICE_DATASET,
        SERVICE_QUERY_GRID,
        SERVICE_REQUESTS_PER_CLIENT,
        SERVICE_WRITE_RATIO,
    )
    from repro.service import ESDServer, ServerConfig, ServiceClient, ServiceError
    from repro.service.verify import verify_topk_responses

    graph = dataset(SERVICE_DATASET, scale)
    server = ESDServer(
        graph,
        ServerConfig(max_pending=max(2 * SERVICE_CLIENTS, 128), queue_timeout=60.0),
    ).start()
    host, port = server.address

    edges = sorted(graph.edges())
    topk_records: List[Tuple[int, int, Dict]] = []
    update_records: List[Tuple[int, str, Tuple]] = []
    client_errors: List[str] = []
    record_lock = threading.Lock()

    def worker(cid: int) -> None:
        rng = random.Random(0xC11E47 + cid)
        # Each client owns a private slice of edges, so concurrent
        # toggles never collide (and every update request succeeds).
        owned = {edge: True for edge in edges[cid::SERVICE_CLIENTS]}
        try:
            with ServiceClient(host, port, timeout=120.0) as client:
                for _ in range(SERVICE_REQUESTS_PER_CLIENT):
                    if owned and rng.random() < SERVICE_WRITE_RATIO:
                        edge = rng.choice(sorted(owned))
                        action = "delete" if owned[edge] else "insert"
                        result = client.update(action, *edge)
                        owned[edge] = not owned[edge]
                        with record_lock:
                            update_records.append(
                                (result["graph_version"], action, edge)
                            )
                    elif rng.random() < 0.1:
                        client.score(*rng.choice(edges), tau=DEFAULT_TAU)
                    else:
                        k, tau = rng.choice(SERVICE_QUERY_GRID)
                        result = client.request("topk", k=k, tau=tau)
                        with record_lock:
                            topk_records.append((k, tau, result))
        except (ServiceError, OSError) as exc:
            with record_lock:
                client_errors.append(f"client {cid}: {exc}")

    threads = [
        threading.Thread(target=worker, args=(cid,), name=f"svc-client-{cid}")
        for cid in range(SERVICE_CLIENTS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start

    snapshot = server.engine.metrics_snapshot()
    server.shutdown()

    mismatches = verify_topk_responses(graph, update_records, topk_records)
    total_requests = sum(
        endpoint["requests"] for endpoint in snapshot["endpoints"].values()
    )

    latency = ExperimentTable(
        "Service A", "Per-endpoint server-side latency under 64-client load",
        ["endpoint", "requests", "errors", "mean", "p50", "p99"],
    )
    for name, endpoint in snapshot["endpoints"].items():
        latency.add_row(
            name,
            endpoint["requests"],
            endpoint["errors"],
            Seconds(endpoint["mean_ms"] / 1000),
            Seconds(endpoint["p50_ms"] / 1000),
            Seconds(endpoint["p99_ms"] / 1000),
        )
    latency.note(
        f"{SERVICE_CLIENTS} concurrent clients x "
        f"{SERVICE_REQUESTS_PER_CLIENT} requests "
        f"({SERVICE_WRITE_RATIO:.0%} writes) against one shared "
        f"DynamicESDIndex on '{SERVICE_DATASET}' (scale {scale})."
    )

    # Overload demonstration: a server sized to reject, not to serve.
    tiny = ESDServer(
        graph, ServerConfig(max_pending=2, queue_timeout=0.05, debug=True)
    ).start()
    tiny_host, tiny_port = tiny.address
    overloads: List[int] = []

    def occupy() -> None:
        try:
            with ServiceClient(tiny_host, tiny_port) as client:
                client.request("sleep", seconds=0.5)
        except ServiceError:
            pass

    occupiers = [threading.Thread(target=occupy) for _ in range(2)]
    for thread in occupiers:
        thread.start()
    time.sleep(0.15)
    for _ in range(3):
        try:
            with ServiceClient(tiny_host, tiny_port) as client:
                client.ping()
        except ServiceError as exc:
            if exc.code == "overloaded":
                overloads.append(1)
    for thread in occupiers:
        thread.join()
    tiny.shutdown()

    cache = snapshot["cache"]
    batcher = snapshot["batcher"]
    summary = ExperimentTable(
        "Service B", "Correctness, caching and admission control",
        ["quantity", "value"],
    )
    summary.add_row("clients", SERVICE_CLIENTS)
    summary.add_row("requests served", total_requests)
    summary.add_row("wall time", Seconds(wall))
    summary.add_row("throughput (req/s)", round(total_requests / wall, 1))
    summary.add_row("topk responses audited", len(topk_records))
    summary.add_row("incorrect topk responses", len(mismatches))
    summary.add_row("updates applied", len(update_records))
    summary.add_row("cache hits", cache["hits"])
    summary.add_row("cache hit rate", cache["hit_rate"])
    summary.add_row("batched (coalesced) requests", batcher["coalesced"])
    summary.add_row("largest batch", batcher["largest_batch"])
    summary.add_row("overload rejections (probe)", len(overloads))
    summary.add_row("client-side errors", len(client_errors))
    summary.note(
        "Every topk response is re-derived offline: the update log is "
        "replayed to the response's graph_version and compared against a "
        "fresh ESDIndex -- 'incorrect' must be 0."
    )
    if mismatches:
        summary.note(f"MISMATCHES: {mismatches[:3]}")
    if client_errors:
        summary.note(f"client errors: {client_errors[:3]}")
    return [latency, summary]
