"""Benchmark harness: timing, table formatting and result persistence.

Every experiment in ``benchmarks/`` produces (a) a paper-style table
printed to the terminal, (b) a JSON record under ``benchmarks/results/``
that ``repro.bench.report`` assembles into EXPERIMENTS.md, and (c) a
pytest-benchmark timing for the representative operation.  This module
holds the shared machinery.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

#: Where experiment outputs are written (created on demand).
RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def bench_scale() -> float:
    """Dataset scale factor, settable via ``ESD_BENCH_SCALE`` (default 1)."""
    return float(os.environ.get("ESD_BENCH_SCALE", "1.0"))


class Seconds(float):
    """A float that renders with time units in tables (s / ms)."""


def time_call(fn: Callable[[], object], repeats: int = 1) -> Seconds:
    """Best-of-``repeats`` wall-clock seconds for ``fn()``."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return Seconds(best)


@dataclass
class ExperimentTable:
    """One paper-style table: header row + data rows + free-form notes."""

    experiment: str
    title: str
    columns: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(values)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        """Render as an aligned plain-text table."""
        cells = [list(map(_fmt, self.columns))]
        cells += [[_fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(row[i]) for row in cells) for i in range(len(self.columns))
        ]
        lines = [f"== {self.experiment}: {self.title} =="]
        lines.append("  ".join(c.ljust(w) for c, w in zip(cells[0], widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells[1:]:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def as_dict(self) -> Dict:
        return {
            "experiment": self.experiment,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(map(_jsonable, row)) for row in self.rows],
            "rendered_rows": [[_fmt(v) for v in row] for row in self.rows],
            "notes": list(self.notes),
        }


def _fmt(value: object) -> str:
    if isinstance(value, Seconds):
        if value == 0:
            return "0"
        if abs(value) < 0.001:
            return f"{value * 1000:.3f}ms"
        if abs(value) < 1:
            return f"{value * 1000:.1f}ms"
        return f"{value:.2f}s" if value < 100 else f"{value:.0f}s"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _jsonable(value: object) -> object:
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


def save_tables(name: str, tables: Sequence[ExperimentTable]) -> Path:
    """Persist rendered + JSON outputs for one experiment module."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    text = "\n\n".join(t.render() for t in tables)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    payload = {"name": name, "tables": [t.as_dict() for t in tables]}
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def emit(tables: Sequence[ExperimentTable], name: str, capsys=None) -> None:
    """Print tables to the real terminal (if possible) and persist them."""
    text = "\n\n".join(t.render() for t in tables)
    if capsys is not None:
        with capsys.disabled():
            print(f"\n{text}")
    else:
        print(f"\n{text}")
    save_tables(name, tables)


def load_results(name: str) -> Optional[Dict]:
    """Load a previously saved experiment record (None if missing)."""
    path = RESULTS_DIR / f"{name}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text(encoding="utf-8"))
