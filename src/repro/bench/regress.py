"""Perf-regression harness: pinned workloads, per-op medians, BENCH files.

``esd bench regress`` times every hot path of the library -- index
construction, online top-k, indexed top-k, dynamic maintenance, triangle
counting -- on pinned synthetic workloads, in **both** kernel modes
(``csr`` and ``set``), and writes a ``BENCH_<tag>.json`` record to the
repository root.  Committed BENCH files form a chain: each new run is
compared against the most recent previous record and flagged when an op
regresses beyond tolerance.

Two metrics are supported for the comparison:

* ``median`` -- raw kernel-mode median seconds.  Meaningful only on the
  same machine that produced the baseline.
* ``speedup`` -- the ``set_median / csr_median`` ratio.  Machine
  independent (both modes run in the same process on the same data), so
  it is what CI checks: a drop means the kernels lost ground against
  the reference implementation, whatever the hardware.

The default run times every suite -- the classic ``full``/``quick``
index workloads plus the specialized ``truss_build`` and
``metric_maintenance`` suites -- so a committed BENCH file can serve as
the baseline for quick CI runs (``--quick`` drops only ``full``) and
for full local runs alike.
"""

from __future__ import annotations

import gc
import json
import platform
import statistics
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.analytics.truss import truss_numbers
from repro.bench.harness import ExperimentTable, Seconds
from repro.core.build import build_index_fast
from repro.core.maintenance import DynamicESDIndex
from repro.core.online import topk_online
from repro.graph.generators import erdos_renyi, planted_partition
from repro.graph.graph import Graph
from repro.kernels.counters import KERNEL_COUNTERS
from repro.kernels.dispatch import use_kernels
from repro.metrics import (
    BetweennessScorer,
    EgoBetweennessScorer,
    TrussScorer,
)

#: Repository root -- where BENCH_*.json records live, next to README.md.
REPO_ROOT = Path(__file__).resolve().parents[3]

#: Tag of the record this revision of the harness emits.
BENCH_TAG = "PR10"

#: Relative regression tolerance for baseline comparison (25%).
DEFAULT_TOLERANCE = 0.25

#: Pinned workloads.  Changing these invalidates baseline comparability,
#: so treat them like a file-format version.  The ``maint_*`` keys pin a
#: *separate, denser* graph for ``maintenance_batch``: incremental
#: maintenance is dominated by shared index traffic on sparse graphs
#: (both kernel modes pay the same treap cost), so the kernels' edge
#: only shows where partition/enumeration work dominates -- exactly the
#: dense ego-network regime the delta kernels were built for.
SUITES: Dict[str, Dict[str, int | float | str]] = {
    "full": {
        "n": 1200, "p": 0.015, "seed": 7, "k": 20, "tau": 2, "repeats": 5,
        "maint_n": 200, "maint_p": 0.3, "maint_probes": 24,
    },
    "quick": {
        "n": 600, "p": 0.022, "seed": 7, "k": 10, "tau": 2, "repeats": 5,
        "maint_n": 140, "maint_p": 0.4, "maint_probes": 16,
    },
    # Whole-graph k-truss decomposition, kernel bucket-peel vs the set
    # reference.  Sized so the csr region sits well above clock jitter.
    "truss_build": {
        "kind": "truss_build",
        "n": 500, "p": 0.05, "seed": 11, "repeats": 5,
    },
    # The metric family's full-recompute cliff: mutate an edge, then
    # query topk.  The clustered graph keeps each truss re-peel local
    # to one community while the set-mode baseline rebuilds the whole
    # table, so the csr/set ratio *is* the incremental-vs-full speedup.
    # Betweenness is mode-aware by design: csr serves the re-founded
    # local ego-betweenness (``metric=betweenness``), set runs the
    # global Brandes pass it replaced (``metric=betweenness_global``)
    # on a pinned smaller graph -- the ratio measures what re-founding
    # the serving-path metric bought.
    "metric_maintenance": {
        "kind": "metric_maintenance",
        "communities": 40, "community_size": 26, "p_in": 0.45,
        "seed": 11, "k": 10, "probes": 6,
        "bt_n": 260, "bt_p": 0.07, "bt_probes": 2,
        "repeats": 3,
    },
}

#: Op execution order (and display order).
OPS = (
    "build_index_fast",
    "count_triangles",
    "topk_online",
    "topk_indexed",
    "maintenance",
    "maintenance_batch",
)

#: Ops whose csr-vs-set speedup the kernels are accountable for.
SPEEDUP_OPS = ("build_index_fast", "count_triangles")

#: Ops each non-classic suite kind runs (classic suites run :data:`OPS`).
SUITE_KIND_OPS: Dict[str, Tuple[str, ...]] = {
    "truss_build": ("truss_numbers",),
    "metric_maintenance": ("truss_mutate_query", "betweenness_mutate_query"),
}

#: Ops reported but never *gated*: their timed region is at most a few
#: milliseconds, and a null experiment (timing the same mode against
#: itself) swings the ratio by more than the default tolerance on an
#: ordinary CI machine.  ``topk_indexed`` is additionally a pure treap
#: walk the kernels never touch, so its true ratio is 1.0 and any
#: deviation is noise.  ``maintenance_batch`` is the gated maintenance
#: metric -- its hundreds-of-milliseconds region sits far above the
#: noise floor.
UNGATED_OPS = ("maintenance", "topk_indexed")

#: Minimum csr-vs-set speedup each op must hold in a *committed* BENCH
#: record (checked by ``--require-floors`` and the test suite).  The
#: ratio is machine independent, so the floor is a real property of the
#: kernels, not of the hardware that produced the record.
SPEEDUP_FLOORS: Dict[str, float] = {
    "maintenance_batch": 1.5,
    # Kernel bucket-peel vs set truss decomposition: measured ~2.1-2.3x
    # across densities; 1.5 leaves honest headroom.
    "truss_numbers": 1.5,
    # The PR-10 acceptance gate: incremental maintenance (re-peel /
    # local ego-betweenness) must hold >= 5x over the full-recompute
    # baseline on the mutate-then-query workload.
    "truss_mutate_query": 5.0,
    "betweenness_mutate_query": 5.0,
}


def _median_seconds(fn: Callable[[], object], repeats: int) -> float:
    """Median wall-clock seconds of ``repeats`` calls to ``fn``.

    Collects garbage before the loop so debris from the previous op
    (dropped indexes, bitset layers) is not charged to this one, and
    pauses the collector during the timed region: collection pauses
    land on whichever op happens to cross an allocation threshold,
    which can skew a 25%-tolerance ratio gate all by itself.
    """
    gc.collect()
    times: List[float] = []
    gc.disable()
    try:
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
    finally:
        gc.enable()
    return statistics.median(times)


def _make_ops(
    graph: Graph, dense: Graph, k: int, tau: int, probes: int
) -> Dict[str, Callable[[], object]]:
    """The pinned op closures, shared by both kernel modes.

    The indexed-query and maintenance ops prepare their index inside the
    closure-building step below (per mode), so only the steady-state
    operation is timed.
    """
    from repro.cliques.triangles import count_triangles

    index = build_index_fast(graph)
    dyn = DynamicESDIndex(graph)
    probe_edges = graph.edge_list()[: max(4, k)]

    # maintenance_batch targets the edges with the largest common
    # neighborhoods -- the updates whose partition/enumeration work the
    # delta kernels accelerate.  Each repeat deletes then re-inserts the
    # probe set through ``apply_batch``, restoring the graph.
    dyn_batch = DynamicESDIndex(dense)
    batch_probes = sorted(
        dense.edge_list(),
        key=lambda e: (
            -len(dense.neighbors(e[0]) & dense.neighbors(e[1])), e,
        ),
    )[:probes]

    def op_maintenance() -> None:
        # 5 rounds per repeat: a single pass over the probes is sub-ms
        # and dominated by heavy-tailed treap rebalancing, so one lucky
        # pass can swing the speedup ratio past the tolerance gate.
        for _ in range(5):
            for u, v in probe_edges:
                dyn.delete_edge(u, v)
                dyn.insert_edge(u, v)

    def op_maintenance_batch() -> None:
        dyn_batch.apply_batch(deletions=batch_probes)
        dyn_batch.apply_batch(insertions=batch_probes)

    def op_topk_indexed() -> None:
        # A single indexed query is sub-microsecond; 50 per repeat keeps
        # the measurement above clock jitter (both modes pay the same
        # factor, so ratios are unaffected).
        for _ in range(50):
            index.topk(k, tau)

    return {
        "build_index_fast": lambda: build_index_fast(graph),
        "count_triangles": lambda: count_triangles(graph),
        "topk_online": lambda: topk_online(graph, k, tau),
        "topk_indexed": op_topk_indexed,
        "maintenance": op_maintenance,
        "maintenance_batch": op_maintenance_batch,
    }


def _classic_suite(spec: Dict) -> Tuple[Dict, Tuple[str, ...], Callable]:
    """Workload + ops of the original full/quick suite shape."""
    seed = int(spec["seed"])
    graph = erdos_renyi(int(spec["n"]), float(spec["p"]), seed=seed)
    dense = erdos_renyi(
        int(spec.get("maint_n", spec["n"])),
        float(spec.get("maint_p", spec["p"])),
        seed=seed,
    )
    k, tau = int(spec["k"]), int(spec["tau"])
    probes = int(spec.get("maint_probes", max(4, k)))
    workload = {**spec, "m": graph.m, "maint_m": dense.m}

    def make_ops(mode: str) -> Dict[str, Callable[[], object]]:
        return _make_ops(graph, dense, k, tau, probes)

    return workload, OPS, make_ops


def _truss_build_suite(spec: Dict) -> Tuple[Dict, Tuple[str, ...], Callable]:
    """Whole-graph truss decomposition, kernel peel vs set reference."""
    graph = erdos_renyi(
        int(spec["n"]), float(spec["p"]), seed=int(spec["seed"])
    )
    workload = {**spec, "m": graph.m}

    def make_ops(mode: str) -> Dict[str, Callable[[], object]]:
        return {"truss_numbers": lambda: truss_numbers(graph)}

    return workload, SUITE_KIND_OPS["truss_build"], make_ops


def _clustered_graph(
    communities: int, size: int, p_in: float, seed: int
) -> Graph:
    """Dense communities joined by triangle-free ring bridges.

    With ``p_out = 0`` a bridge's endpoints share no neighbor, so a
    bridge closes no triangle and every truss re-peel region stays
    inside the mutated edge's own community -- the locality the
    incremental scorer is being measured on.
    """
    graph = planted_partition(communities, size, p_in, 0.0, seed=seed)
    for c in range(communities):
        graph.add_edge(c * size, ((c + 1) % communities) * size + 1)
    return graph


def _intra_probes(graph: Graph, size: int, count: int) -> List[Tuple]:
    """One deterministic intra-community edge from each of ``count``
    communities (skipping a community in the vanishingly unlikely case
    its anchor vertex has no intra neighbor)."""
    probes: List[Tuple] = []
    for c in range(count):
        base = c * size
        intra = sorted(v for v in graph.neighbors(base) if v // size == c)
        if intra:
            probes.append((base, intra[0]))
    return probes


def _metric_maintenance_suite(
    spec: Dict,
) -> Tuple[Dict, Tuple[str, ...], Callable]:
    """Mutate-then-query latency of the memoized metric family.

    Scorers are primed at op-build time (inside the mode context), so
    the timed region is steady-state maintenance: every query after a
    mutation must refresh the memoized table.  In csr mode that refresh
    is the incremental path (truss re-peel, kernel ego-betweenness); in
    set mode it is the full-recompute baseline this PR removed from the
    serving path.
    """
    communities = int(spec["communities"])
    size = int(spec["community_size"])
    seed, k = int(spec["seed"]), int(spec["k"])
    graph = _clustered_graph(communities, size, float(spec["p_in"]), seed)
    probes = _intra_probes(graph, size, int(spec["probes"]))
    bt_graph = erdos_renyi(int(spec["bt_n"]), float(spec["bt_p"]), seed=seed)
    bt_probes = bt_graph.edge_list()[: int(spec["bt_probes"])]
    workload = {
        **spec, "n": graph.n, "m": graph.m, "bt_m": bt_graph.m,
    }

    def make_ops(mode: str) -> Dict[str, Callable[[], object]]:
        truss_scorer = TrussScorer()
        truss_scorer.topk(graph, k)
        bt_scorer = (
            EgoBetweennessScorer() if mode == "csr" else BetweennessScorer()
        )
        bt_scorer.topk(bt_graph, k)

        def op_truss_mutate_query() -> None:
            for u, v in probes:
                graph.remove_edge(u, v)
                truss_scorer.topk(graph, k)
                graph.add_edge(u, v)
                truss_scorer.topk(graph, k)

        def op_betweenness_mutate_query() -> None:
            for u, v in bt_probes:
                bt_graph.remove_edge(u, v)
                bt_scorer.topk(bt_graph, k)
                bt_graph.add_edge(u, v)
                bt_scorer.topk(bt_graph, k)

        return {
            "truss_mutate_query": op_truss_mutate_query,
            "betweenness_mutate_query": op_betweenness_mutate_query,
        }

    return workload, SUITE_KIND_OPS["metric_maintenance"], make_ops


#: Suite ``kind`` field -> builder returning (workload, ops, make_ops).
_SUITE_BUILDERS: Dict[str, Callable] = {
    "classic": _classic_suite,
    "truss_build": _truss_build_suite,
    "metric_maintenance": _metric_maintenance_suite,
}


def run_suite(name: str) -> Dict:
    """Time every op of suite ``name`` in both kernel modes."""
    spec = SUITES[name]
    builder = _SUITE_BUILDERS[str(spec.get("kind", "classic"))]
    workload, op_names, make_ops = builder(spec)
    repeats = int(spec["repeats"])

    result: Dict = {"workload": workload, "ops": {}}
    timings: Dict[str, Dict[str, float]] = {op: {} for op in op_names}
    for mode in ("csr", "set"):
        with use_kernels(mode):
            ops = make_ops(mode)
            if mode == "csr":
                baseline = KERNEL_COUNTERS.snapshot()
            for op in op_names:
                timings[op][mode] = _median_seconds(ops[op], repeats)
            if mode == "csr":
                result["kernel_counters"] = KERNEL_COUNTERS.delta_since(
                    baseline
                )
    for op in op_names:
        csr_s, set_s = timings[op]["csr"], timings[op]["set"]
        result["ops"][op] = {
            "csr_median_s": csr_s,
            "set_median_s": set_s,
            "speedup": (set_s / csr_s) if csr_s > 0 else float("inf"),
            "repeats": repeats,
        }
    return result


def run_regress(quick: bool = False) -> Dict:
    """Run the suites and return the BENCH payload (not yet persisted).

    ``--quick`` drops only the big classic ``full`` suite; the
    specialized suites (truss build, metric maintenance) are already
    CI-sized, and skipping them would skip their floors.
    """
    suite_names = (
        [name for name in SUITES if name != "full"]
        if quick
        else list(SUITES)
    )
    return {
        "bench": BENCH_TAG,
        "schema": 1,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "suites": {name: run_suite(name) for name in suite_names},
    }


def check_floors(payload: Dict) -> List[str]:
    """Ops in ``payload`` whose speedup fell below :data:`SPEEDUP_FLOORS`.

    Returns ``"suite/op"`` strings (empty = all floors hold).  Ops not
    present in a suite are ignored -- floors constrain what ran, they do
    not force every suite to run every op.
    """
    failures: List[str] = []
    for suite, record in payload.get("suites", {}).items():
        for op, floor in SPEEDUP_FLOORS.items():
            op_record = record.get("ops", {}).get(op)
            if op_record is None:
                continue
            if op_record.get("speedup", 0.0) < floor:
                failures.append(f"{suite}/{op}")
    return failures


# -- baseline comparison ------------------------------------------------------


def _bench_ordinal(path: Path) -> Tuple[int, str]:
    """Sort key: the PR number in the stem, then the name.

    Lexical sorting is a trap once the chain passes PR 9:
    ``BENCH_PR10.json`` sorts *before* ``BENCH_PR5.json``.
    """
    digits = "".join(ch for ch in path.stem if ch.isdigit())
    return (int(digits) if digits else -1, path.name)


def find_baseline(output: Path) -> Optional[Path]:
    """The most recent committed regress record other than ``output``.

    Only payloads carrying a ``suites`` table qualify: the repository
    root also holds loadgen capacity records (``BENCH_PR8.json``) that
    share the naming scheme but not the schema.
    """
    candidates: List[Path] = []
    for path in REPO_ROOT.glob("BENCH_*.json"):
        if path.resolve() == output.resolve():
            continue
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        if not isinstance(payload, dict) or "suites" not in payload:
            continue
        candidates.append(path)
    candidates.sort(key=_bench_ordinal)
    return candidates[-1] if candidates else None


def _metric_value(op_record: Dict, metric: str) -> Optional[float]:
    if metric == "median":
        return op_record.get("csr_median_s")
    if metric == "speedup":
        return op_record.get("speedup")
    raise ValueError(f"unknown metric {metric!r}; choose median or speedup")


def compare(
    current: Dict,
    baseline: Dict,
    tolerance: float = DEFAULT_TOLERANCE,
    metric: str = "speedup",
) -> Dict:
    """Compare shared suites/ops of two BENCH payloads.

    ``median`` regresses when the time grows by more than ``tolerance``;
    ``speedup`` regresses when the ratio shrinks by more than
    ``tolerance``.  Ops or suites present on only one side are reported
    but never fail the comparison (the workload set may legitimately
    grow between PRs).
    """
    entries: List[Dict] = []
    regressions: List[str] = []
    for suite, cur_suite in current.get("suites", {}).items():
        base_suite = baseline.get("suites", {}).get(suite)
        if base_suite is None:
            continue
        for op, cur_op in cur_suite.get("ops", {}).items():
            base_op = base_suite.get("ops", {}).get(op)
            if base_op is None:
                entries.append(
                    {"suite": suite, "op": op, "status": "new"}
                )
                continue
            cur_v = _metric_value(cur_op, metric)
            base_v = _metric_value(base_op, metric)
            if not cur_v or not base_v:
                entries.append(
                    {"suite": suite, "op": op, "status": "incomparable"}
                )
                continue
            if metric == "median":
                ratio = cur_v / base_v  # >1 = slower
                regressed = ratio > 1 + tolerance
            else:
                ratio = cur_v / base_v  # <1 = lost speedup
                regressed = ratio < 1 - tolerance
            if op in UNGATED_OPS:
                status = "noisy" if regressed else "ok"
                regressed = False
            else:
                status = "regression" if regressed else "ok"
            entries.append(
                {
                    "suite": suite,
                    "op": op,
                    "status": status,
                    "metric": metric,
                    "current": cur_v,
                    "baseline": base_v,
                    "ratio": ratio,
                }
            )
            if regressed:
                regressions.append(f"{suite}/{op}")
    return {
        "metric": metric,
        "tolerance": tolerance,
        "baseline_bench": baseline.get("bench"),
        "entries": entries,
        "regressions": regressions,
    }


# -- presentation -------------------------------------------------------------


def tables_for(payload: Dict) -> List[ExperimentTable]:
    """Render the payload as paper-style tables (one per suite)."""
    tables: List[ExperimentTable] = []
    for suite, record in payload["suites"].items():
        w = record["workload"]
        table = ExperimentTable(
            experiment="regress",
            title=(
                f"suite={suite} G(n={w.get('n', '?')}, m={w.get('m', '?')}) "
                f"k={w.get('k', '-')} tau={w.get('tau', '-')}"
            ),
            columns=["op", "csr median", "set median", "speedup"],
        )
        for op, rec in record["ops"].items():
            table.add_row(
                op,
                Seconds(rec["csr_median_s"]),
                Seconds(rec["set_median_s"]),
                f"{rec['speedup']:.2f}x",
            )
        counters = record.get("kernel_counters", {})
        if counters:
            hot = ", ".join(
                f"{key}={value}"
                for key, value in sorted(counters.items())
                if value
            )
            table.note(f"kernel counters (csr pass): {hot}")
        tables.append(table)
    comparison = payload.get("comparison")
    if comparison and comparison.get("entries"):
        table = ExperimentTable(
            experiment="regress",
            title=(
                f"vs baseline {comparison.get('baseline_bench')} "
                f"(metric={comparison['metric']}, "
                f"tolerance={comparison['tolerance']:.0%})"
            ),
            columns=["suite", "op", "status", "current", "baseline", "ratio"],
        )
        for entry in comparison["entries"]:
            table.add_row(
                entry["suite"],
                entry["op"],
                entry["status"],
                _fmt_metric(entry.get("current")),
                _fmt_metric(entry.get("baseline")),
                f"{entry['ratio']:.2f}" if "ratio" in entry else "-",
            )
        tables.append(table)
    return tables


def _fmt_metric(value: Optional[float]) -> str:
    return f"{value:.4g}" if isinstance(value, float) else "-"


def run_and_persist(
    quick: bool = False,
    output: Optional[Path] = None,
    baseline: Optional[Path] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    metric: str = "speedup",
    require_floors: bool = False,
) -> Tuple[Dict, List[ExperimentTable], int]:
    """Full CLI workflow: run, compare, persist, render.

    Returns ``(payload, tables, exit_code)``; exit code 1 means at least
    one op regressed beyond tolerance against the baseline, or (with
    ``require_floors``) fell below its :data:`SPEEDUP_FLOORS` minimum.
    """
    output = output or (REPO_ROOT / f"BENCH_{BENCH_TAG}.json")
    payload = run_regress(quick=quick)
    baseline_path = baseline or find_baseline(output)
    if baseline_path is not None and baseline_path.exists():
        baseline_payload = json.loads(
            baseline_path.read_text(encoding="utf-8")
        )
        payload["comparison"] = compare(
            payload, baseline_payload, tolerance=tolerance, metric=metric
        )
        payload["comparison"]["baseline_path"] = str(baseline_path)
    payload["floor_failures"] = check_floors(payload)
    output.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    tables = tables_for(payload)
    failed = bool(payload.get("comparison", {}).get("regressions")) or (
        require_floors and bool(payload["floor_failures"])
    )
    return payload, tables, 1 if failed else 0
