"""Experiment workloads: the paper's parameter grids (§VI, "Parameters").

The paper sweeps ``τ ∈ [1, 6]`` (default 3) and
``k ∈ {1, 10, 50, 100, 150, 200}`` (default 100) over the five datasets.
The stand-in graphs are ~1000x smaller than the originals, so the k grid
is kept as-is (it is size-independent) while thread counts and update
batch sizes are scaled to what a pure-Python single-container run can
finish in minutes (see DESIGN.md §3).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List

from repro.graph import Graph, load_dataset
from repro.graph.datasets import DATASET_NAMES

#: Paper grid: k ∈ {1, 10, 50, 100, 150, 200}, default 100.
K_VALUES: List[int] = [1, 10, 50, 100, 150, 200]
DEFAULT_K: int = 100

#: Paper grid: τ ∈ [1, 6], default 3.
TAU_VALUES: List[int] = [1, 2, 3, 4, 5, 6]
DEFAULT_TAU: int = 3

#: Fig. 7 sweeps t = 1..20; we keep the endpoints and powers of two.
THREAD_VALUES: List[int] = [1, 2, 4, 8, 20]

#: Fig. 5/7 report on these two datasets; Fig. 9/10 on the largest.
ONLINE_DATASETS: List[str] = ["pokec", "livejournal"]
SCALABILITY_DATASET: str = "livejournal"

#: Exp-6 uses 1000 random updates; scaled down for pure Python.
MAINTENANCE_UPDATES: int = 200

#: Service bench (beyond the paper): a mixed read/write load against
#: ``esd serve``.  64 concurrent clients is the acceptance floor for the
#: serving layer; writes are a minority share, as in the motivating
#: standing-analytics workload.
SERVICE_DATASET: str = "dblp"
SERVICE_CLIENTS: int = 64
SERVICE_REQUESTS_PER_CLIENT: int = 12
SERVICE_WRITE_RATIO: float = 0.15
#: (k, τ) pairs the service clients draw from -- a small slice of the
#: paper grid so repeated queries exercise the result cache.
SERVICE_QUERY_GRID: List[tuple] = [(10, 2), (10, 3), (50, 2), (100, 3)]

#: Vertex-id base for synthetic load-test mutations.  Every stand-in
#: dataset uses small integer ids, so edges minted up here never collide
#: with dataset vertices -- an insert of a fresh pair is always valid.
LOADGEN_EDGE_BASE: int = 900_000


def mutation_edges(
    count: int, base: int = LOADGEN_EDGE_BASE, stride: int = 2
) -> List[tuple]:
    """``count`` fresh synthetic edges disjoint from dataset id space.

    Used by the service bench and by ``repro.loadgen`` scenarios: each
    edge is a brand-new vertex pair, so inserts cannot conflict with
    existing edges and deletes of previously minted edges cannot dangle.
    Distinct ``base`` values give disjoint pools (one per sweep trial).
    """
    return [(base + stride * i, base + stride * i + 1) for i in range(count)]


@lru_cache(maxsize=None)
def dataset(name: str, scale: float = 1.0) -> Graph:
    """Cached dataset stand-in (benchmarks reuse graphs across tests)."""
    return load_dataset(name, scale=scale)


def all_datasets(scale: float = 1.0) -> Dict[str, Graph]:
    """All five Table I stand-ins, in paper order."""
    return {name: dataset(name, scale) for name in DATASET_NAMES}
