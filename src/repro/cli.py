"""Command-line interface: ``esd`` (or ``python -m repro.cli``).

Subcommands
-----------
``stats``        Table-I statistics of an edge-list file or named dataset.
``topk``         Top-k edge search (online / exact); ``--metric`` picks the
                 scorer (esd / truss / betweenness / betweenness_global /
                 common_neighbors).
``build-index``  Build an ESDIndex and save it to disk.
``query``        Query a saved ESDIndex.
``serve``        Long-lived query service over a maintained index (TCP/JSON);
                 with ``--data-dir`` it is durable (snapshot + WAL, crash
                 recovery on restart); ``--trace`` emits JSONL spans.
``cluster``      Replicated serving tier (docs/CLUSTER.md): ``cluster start``
                 boots a writer + N replicas + router; ``cluster status``
                 queries a running router; ``cluster writer`` / ``cluster
                 replica`` run one node (normally spawned by ``start``).
``profile``      Trace one build+query+update+persist cycle on a graph and
                 print the per-stage breakdown (docs/OBSERVABILITY.md).
``fsck``         Validate a ``--data-dir`` offline (checksums, WAL replay).
``bench``        Run one of the paper's experiments and print its table;
                 ``bench regress`` runs the pinned perf-regression suite
                 (docs/PERFORMANCE.md) and writes a BENCH_*.json record.
``load``         Open-loop load harness (docs/BENCHMARKS.md): ``load run``
                 drives one offered-rate trial against a running server,
                 ``load sweep`` bisects for the SLO knee and writes
                 BENCH_PR8.json, ``load report`` renders a saved record.

Graph-taking subcommands accept ``--kernels {csr,set}`` to pick the
compute-kernel mode explicitly (default: ``ESD_KERNELS`` or ``csr``).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.core import (
    ESDIndex,
    build_index_fast,
    topk_exact,
    topk_online,
    topk_ordering,
    topk_vertex_online,
)
from repro.graph import Graph, graph_stats, load_dataset, read_edge_list
from repro.graph.datasets import DATASET_NAMES


def _load_graph(args: argparse.Namespace) -> Graph:
    """Resolve the --graph/--dataset pair into a Graph."""
    if args.dataset:
        return load_dataset(args.dataset, scale=args.scale)
    if args.graph:
        return read_edge_list(args.graph)
    raise SystemExit("error: provide --graph FILE or --dataset NAME")


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--graph", help="edge-list file (SNAP format)")
    parser.add_argument(
        "--dataset", choices=DATASET_NAMES,
        help="named synthetic stand-in dataset",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="dataset scale factor (default 1.0)",
    )
    parser.add_argument(
        "--kernels", choices=["csr", "set"],
        help="compute-kernel mode: 'csr' (interned array/bitset kernels, "
        "the default) or 'set' (reference dict-of-set paths); overrides "
        "the ESD_KERNELS environment variable",
    )


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    stats = graph_stats(graph)
    print(f"n                {stats.n}")
    print(f"m                {stats.m}")
    print(f"d_max            {stats.d_max}")
    print(f"degeneracy       {stats.degeneracy}")
    print(f"arboricity       [{stats.arboricity_lower}, {stats.arboricity_upper}]")
    print(f"avg degree       {stats.average_degree:.2f}")
    print(f"components       {stats.components}")
    return 0


def _cmd_topk(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    start = time.perf_counter()
    if args.metric != "esd":
        # Non-esd metrics rank through the scorer registry; the esd
        # path below keeps its specialized online/ordering/exact
        # algorithms (and its historic output) untouched.
        if args.target == "vertex":
            raise SystemExit(
                "error: --target vertex is only defined for --metric esd"
            )
        from repro.metrics import get_metric

        results = get_metric(args.metric).topk(graph, args.k, tau=args.tau)
        elapsed = time.perf_counter() - start
        for (u, v), score in results:
            print(f"{u}\t{v}\t{score}")
        print(f"# {args.metric} search: {elapsed:.4f}s", file=sys.stderr)
        return 0
    if args.target == "vertex":
        vertex_results = topk_vertex_online(graph, args.k, args.tau)
        elapsed = time.perf_counter() - start
        for v, score in vertex_results:
            print(f"{v}\t{score}")
        print(f"# vertex search: {elapsed:.4f}s", file=sys.stderr)
        return 0
    if args.method == "online":
        results = topk_online(graph, args.k, args.tau, bound=args.bound)
    elif args.method == "ordering":
        results = topk_ordering(graph, args.k, args.tau, bound=args.bound)
    else:
        results = topk_exact(graph, args.k, args.tau)
    elapsed = time.perf_counter() - start
    for (u, v), score in results:
        print(f"{u}\t{v}\t{score}")
    print(f"# {args.method} search: {elapsed:.4f}s", file=sys.stderr)
    return 0


def _cmd_build_index(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    start = time.perf_counter()
    index = build_index_fast(graph)
    elapsed = time.perf_counter() - start
    index.save(args.output)
    print(
        f"index built in {elapsed:.2f}s: {index.edge_count} edges, "
        f"{index.entry_count} entries, C={index.size_classes} -> {args.output}"
    )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    index = ESDIndex.load(args.index)
    start = time.perf_counter()
    results = index.topk(args.k, args.tau)
    elapsed = time.perf_counter() - start
    for (u, v), score in results:
        print(f"{u}\t{v}\t{score}")
    print(f"# index query: {elapsed * 1000:.3f}ms", file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import os

    from repro.service import ESDServer, ServerConfig

    trace_sink = None
    if args.trace:
        from repro.obs import JsonlSink, TRACER
        from repro.obs.sinks import stderr_sink

        trace_sink = stderr_sink() if args.trace == "-" else JsonlSink(args.trace)
        TRACER.configure(trace_sink)
    # With a recoverable data dir, the graph flags are only a bootstrap
    # fallback; without one, they are required as before.
    graph = None
    have_snapshot = args.data_dir and os.path.exists(
        os.path.join(args.data_dir, "snapshot.esd")
    )
    if args.dataset or args.graph or not have_snapshot:
        graph = _load_graph(args)
    server = ESDServer(
        graph,
        ServerConfig(
            host=args.host,
            port=args.port,
            max_pending=args.max_pending,
            queue_timeout=args.queue_timeout,
            batch_window=args.batch_window,
            cache_size=args.cache_size,
            data_dir=args.data_dir,
            snapshot_interval=args.snapshot_interval,
            fsync=not args.no_fsync,
            slow_query_threshold=args.slow_query_ms / 1000.0,
            slow_log_capacity=args.slow_log_capacity,
            invariant_check_interval=args.check_invariants_every,
            warm_metrics=tuple(
                name.strip()
                for name in (args.warm_metrics or "").split(",")
                if name.strip()
            ),
        ),
    )
    if server.recovery is not None:
        r = server.recovery
        mode = "bootstrapped" if r.bootstrapped else "recovered"
        print(
            f"esd serve: {mode} data dir {args.data_dir} "
            f"(snapshot v{r.snapshot_version}, replayed {r.records_replayed} "
            f"WAL records, version {r.final_version})",
            flush=True,
        )
    host, port = server.address
    live = server.engine.dynamic_index.graph
    print(
        f"esd serve: listening on {host}:{port} "
        f"(n={live.n}, m={live.m}, max_pending={args.max_pending})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("esd serve: interrupted, shutting down", file=sys.stderr)
    finally:
        server.shutdown()
        if trace_sink is not None:
            from repro.obs import TRACER

            TRACER.disable()
            close = getattr(trace_sink, "close", None)
            if close is not None:
                close()
    return 0


def _cmd_cluster_writer(args: argparse.Namespace) -> int:
    import os

    from repro.cluster import WriterConfig, WriterNode

    graph = None
    have_snapshot = args.data_dir and os.path.exists(
        os.path.join(args.data_dir, "snapshot.esd")
    )
    if args.dataset or args.graph or not have_snapshot:
        graph = _load_graph(args)
    writer = WriterNode(
        graph,
        WriterConfig(
            host=args.host,
            port=args.port,
            repl_host=args.host,
            repl_port=args.repl_port,
            data_dir=args.data_dir,
            snapshot_interval=args.snapshot_interval,
            fsync=not args.no_fsync,
        ),
    )
    host, port = writer.address
    print(f"esd cluster-writer: listening on {host}:{port}", flush=True)
    repl_host, repl_port = writer.repl_address
    print(
        f"esd cluster-writer: replicating on {repl_host}:{repl_port}",
        flush=True,
    )
    try:
        writer.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        writer.shutdown()
    return 0


def _cmd_cluster_replica(args: argparse.Namespace) -> int:
    from repro.cluster import ReplicaConfig, ReplicaNode

    replica = ReplicaNode(
        ReplicaConfig(
            writer_host=args.writer_host,
            writer_repl_port=args.writer_repl_port,
            host=args.host,
            port=args.port,
            name=args.name,
            shm_namespace=args.shm_namespace,
        )
    )
    host, port = replica.address
    print(
        f"esd cluster-replica[{args.name}]: listening on {host}:{port}",
        flush=True,
    )
    try:
        replica.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        replica.shutdown()
    return 0


def _cmd_cluster_start(args: argparse.Namespace) -> int:
    import signal

    from repro.cluster import ClusterConfig, ClusterSupervisor

    writer_args: List[str] = []
    if args.dataset:
        writer_args += ["--dataset", args.dataset, "--scale", str(args.scale)]
    if args.graph:
        writer_args += ["--graph", args.graph]
    if args.data_dir:
        writer_args += ["--data-dir", args.data_dir]
    if args.no_fsync:
        writer_args.append("--no-fsync")
    supervisor = ClusterSupervisor(
        ClusterConfig(
            replicas=args.replicas,
            host=args.host,
            router_port=args.port,
            writer_args=writer_args,
            max_lag=args.max_lag,
        )
    )
    # A supervisor that dies must take its children with it: translate
    # SIGTERM into the same clean teardown as Ctrl-C.
    def _terminate(_signum, _frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)
    supervisor.start()
    host, port = supervisor.writer_address
    print(f"esd cluster: writer on {host}:{port}", flush=True)
    for name, (rhost, rport) in supervisor.replica_addresses.items():
        print(f"esd cluster: {name} on {rhost}:{rport}", flush=True)
    host, port = supervisor.address
    print(f"esd cluster: listening on {host}:{port}", flush=True)
    try:
        supervisor.serve_forever()
    except KeyboardInterrupt:
        print("esd cluster: interrupted, shutting down", file=sys.stderr)
    finally:
        supervisor.stop()
    return 0


def _cmd_cluster_status(args: argparse.Namespace) -> int:
    import json
    import socket

    with socket.create_connection(
        (args.host, args.port), timeout=args.timeout
    ) as sock:
        sock.sendall(b'{"op": "cluster-status"}\n')
        data = b""
        while not data.endswith(b"\n"):
            chunk = sock.recv(1 << 16)
            if not chunk:
                break
            data += chunk
    response = json.loads(data.decode("utf-8"))
    if not response.get("ok"):
        print(json.dumps(response, indent=2, sort_keys=True))
        return 2
    print(json.dumps(response["result"], indent=2, sort_keys=True))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs.profile import profile_cycle

    graph = _load_graph(args)
    report = profile_cycle(
        graph,
        k=args.k,
        tau=args.tau,
        repeat=args.repeat,
        updates=args.updates,
    )
    print(report.render())
    if args.trace_out:
        import json

        with open(args.trace_out, "w", encoding="ascii") as handle:
            for record in report.records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        print(
            f"# {len(report.records)} spans -> {args.trace_out}",
            file=sys.stderr,
        )
    return 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    from repro.persistence.fsck import fsck_data_dir

    report = fsck_data_dir(args.data_dir, deep=args.deep)
    print(report.render())
    if not report.ok:
        return 2
    if report.warnings:
        return 1
    return 0


#: experiment name -> runner (lazy import keeps CLI startup fast).
_BENCH_NAMES = [
    "table1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "fig12", "fig13", "tau-sensitivity", "link-prediction", "ablation",
    "service", "regress",
]


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import experiments, harness

    if args.experiment == "regress":
        from pathlib import Path

        from repro.bench import regress

        _payload, tables, exit_code = regress.run_and_persist(
            quick=args.quick,
            output=Path(args.output) if args.output else None,
            baseline=Path(args.baseline) if args.baseline else None,
            tolerance=args.tolerance,
            metric=args.metric,
            require_floors=args.require_floors,
        )
        print("\n\n".join(t.render() for t in tables))
        if exit_code:
            failures = list(
                _payload.get("comparison", {}).get("regressions", ())
            )
            if args.require_floors:
                failures += [
                    f"{name} (floor)"
                    for name in _payload.get("floor_failures", ())
                ]
            print("REGRESSION: " + ", ".join(failures), file=sys.stderr)
        return exit_code

    runners = {
        "table1": lambda: experiments.run_table1(args.scale),
        "fig5": lambda: experiments.run_exp1_fig5(args.scale),
        "fig6": lambda: experiments.run_exp2_fig6(args.scale),
        "fig7": lambda: experiments.run_exp3_fig7(args.scale),
        "fig8": lambda: experiments.run_exp4_fig8(args.scale),
        "fig9": lambda: experiments.run_exp5_fig9(args.scale),
        "fig10": lambda: experiments.run_exp5_fig10(args.scale),
        "fig11": lambda: experiments.run_exp6_fig11(args.scale),
        "fig12": experiments.run_exp7_fig12,
        "fig13": experiments.run_exp8_fig13,
        "tau-sensitivity": lambda: experiments.run_tau_sensitivity(args.scale),
        "link-prediction": lambda: experiments.run_link_prediction(args.scale),
        "ablation": lambda: experiments.run_ablation(args.scale),
        "service": lambda: experiments.run_service_bench(args.scale),
    }
    tables = runners[args.experiment]()
    print("\n\n".join(t.render() for t in tables))
    harness.save_tables(args.experiment.replace("-", "_"), tables)
    return 0


def _cmd_load_run(args: argparse.Namespace) -> int:
    import json

    from repro.loadgen import runner

    summary, prometheus = runner.run_with_scrapes(
        args.host,
        args.port,
        scenario=args.scenario,
        rate=args.rate,
        duration=args.duration,
        workers=args.workers,
        seed=args.seed,
        process=args.process,
        timeout=args.timeout,
    )
    document = {"summary": summary}
    if prometheus:
        document["prometheus"] = prometheus
    print(json.dumps(document, indent=2, sort_keys=True))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.slo_p99_ms is not None:
        from repro.loadgen.analysis import Slo

        slo = Slo(p99_ms=args.slo_p99_ms, max_error_rate=args.slo_error_rate)
        if not slo.met(summary):
            print(
                f"SLO VIOLATION: p99={summary['latency_ms']['p99']}ms "
                f"err={summary['error_rate']} vs {slo.as_dict()}",
                file=sys.stderr,
            )
            return 1
    return 0


def _cmd_load_sweep(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.loadgen import runner
    from repro.loadgen.analysis import Slo
    from repro.loadgen.report import (
        render_tables,
        save_payload,
        validate_payload,
    )

    payload = runner.run_sweep(
        args.host,
        args.port,
        scenario=args.scenario,
        slo=Slo(p99_ms=args.slo_p99_ms, max_error_rate=args.slo_error_rate),
        lo=args.lo,
        hi=args.hi,
        duration=args.duration,
        workers=args.workers,
        seed=args.seed,
        iterations=args.iterations,
        baseline_duration=args.baseline_duration,
        timeout=args.timeout,
    )
    path = save_payload(
        payload, Path(args.output) if args.output else None
    )
    print("\n\n".join(t.render() for t in render_tables(payload)))
    print(f"# record -> {path}", file=sys.stderr)
    problems = validate_payload(payload)
    if problems:
        print("INVALID RECORD: " + "; ".join(problems), file=sys.stderr)
        return 2
    if payload["knee_rate_rps"] is None:
        print(
            "SLO VIOLATION: even the lowest probed rate missed the SLO",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_load_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.loadgen.report import (
        load_payload,
        render_tables,
        validate_payload,
    )

    payload = load_payload(Path(args.record))
    problems = validate_payload(payload)
    print("\n\n".join(t.render() for t in render_tables(payload)))
    if problems:
        print("INVALID RECORD: " + "; ".join(problems), file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="esd",
        description="Top-k edge structural diversity search (ICDE 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="graph statistics (Table I columns)")
    _add_graph_arguments(p_stats)
    p_stats.set_defaults(func=_cmd_stats)

    p_topk = sub.add_parser("topk", help="top-k edge structural diversity")
    _add_graph_arguments(p_topk)
    p_topk.add_argument("-k", type=int, default=10, help="result count")
    p_topk.add_argument("--tau", type=int, default=2, help="component size threshold")
    p_topk.add_argument(
        "--method", choices=["online", "ordering", "exact"], default="online"
    )
    from repro.metrics import metric_names

    p_topk.add_argument(
        "--metric",
        choices=metric_names(),
        default="esd",
        help="ranking metric (non-esd metrics ignore --method/--bound)",
    )
    p_topk.add_argument(
        "--target", choices=["edge", "vertex"], default="edge",
        help="rank edges (the paper) or vertices (Huang et al. extension)",
    )
    p_topk.add_argument(
        "--bound", choices=["min-degree", "common-neighbor"],
        default="common-neighbor",
    )
    p_topk.set_defaults(func=_cmd_topk)

    p_build = sub.add_parser("build-index", help="build and save an ESDIndex")
    _add_graph_arguments(p_build)
    p_build.add_argument("-o", "--output", required=True, help="index file path")
    p_build.set_defaults(func=_cmd_build_index)

    p_query = sub.add_parser("query", help="query a saved ESDIndex")
    p_query.add_argument("--index", required=True, help="index file path")
    p_query.add_argument("-k", type=int, default=10)
    p_query.add_argument("--tau", type=int, default=2)
    p_query.set_defaults(func=_cmd_query)

    p_serve = sub.add_parser(
        "serve", help="serve top-k queries over a maintained index"
    )
    _add_graph_arguments(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=7031,
        help="listening port (0 = ephemeral, printed at startup)",
    )
    p_serve.add_argument(
        "--max-pending", type=int, default=64,
        help="admission-control slots before overload rejection",
    )
    p_serve.add_argument(
        "--queue-timeout", type=float, default=2.0,
        help="seconds a request may wait for a slot",
    )
    p_serve.add_argument(
        "--batch-window", type=float, default=0.002,
        help="topk coalescing window in seconds",
    )
    p_serve.add_argument(
        "--cache-size", type=int, default=1024,
        help="LRU result-cache capacity",
    )
    p_serve.add_argument(
        "--data-dir",
        help="durable snapshot+WAL directory; recovered on restart "
        "(--graph/--dataset then only bootstraps an empty directory)",
    )
    p_serve.add_argument(
        "--snapshot-interval", type=int, default=1000,
        help="mutations between snapshot compactions (default 1000)",
    )
    p_serve.add_argument(
        "--no-fsync", action="store_true",
        help="skip the per-append WAL fsync (faster, may lose the "
        "final acknowledged mutations on crash)",
    )
    p_serve.add_argument(
        "--slow-query-ms", type=float, default=250.0,
        help="slow-query log threshold in milliseconds (0 disables; "
        "entries surface in the metrics op)",
    )
    p_serve.add_argument(
        "--slow-log-capacity", type=int, default=128,
        help="slow-query ring-buffer entries kept (default 128)",
    )
    p_serve.add_argument(
        "--check-invariants-every", type=int, default=0,
        help="run a sampled index invariant check every N mutations "
        "(0 = off)",
    )
    p_serve.add_argument(
        "--warm-metrics",
        help="comma-separated metric names to re-warm in the background "
        "after each write (e.g. 'truss,betweenness'), so the next "
        "query of those metrics hits a hot table",
    )
    p_serve.add_argument(
        "--trace",
        help="emit JSONL trace spans to FILE ('-' for stderr)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_cluster = sub.add_parser(
        "cluster", help="replicated serving tier (writer + replicas + router)"
    )
    csub = p_cluster.add_subparsers(dest="cluster_command", required=True)

    pc_start = csub.add_parser(
        "start", help="boot writer + N replicas + router as one cluster"
    )
    _add_graph_arguments(pc_start)
    pc_start.add_argument("--host", default="127.0.0.1")
    pc_start.add_argument(
        "--port", type=int, default=7030,
        help="router listening port (0 = ephemeral, printed at startup)",
    )
    pc_start.add_argument(
        "--replicas", type=int, default=2,
        help="read replicas to spawn (default 2)",
    )
    pc_start.add_argument(
        "--max-lag", type=int, default=256,
        help="versions of replication lag before a replica is evicted "
        "from the read pool (bounded staleness)",
    )
    pc_start.add_argument(
        "--data-dir",
        help="writer's durable snapshot+WAL directory (recovered on restart)",
    )
    pc_start.add_argument(
        "--no-fsync", action="store_true",
        help="writer skips the per-append WAL fsync",
    )
    pc_start.set_defaults(func=_cmd_cluster_start)

    pc_status = csub.add_parser(
        "status", help="print a running router's cluster-status as JSON"
    )
    pc_status.add_argument("--host", default="127.0.0.1")
    pc_status.add_argument("--port", type=int, default=7030)
    pc_status.add_argument("--timeout", type=float, default=5.0)
    pc_status.set_defaults(func=_cmd_cluster_status)

    pc_writer = csub.add_parser(
        "writer", help="run one cluster writer node (spawned by start)"
    )
    _add_graph_arguments(pc_writer)
    pc_writer.add_argument("--host", default="127.0.0.1")
    pc_writer.add_argument(
        "--port", type=int, default=0,
        help="client port (0 = ephemeral, printed at startup)",
    )
    pc_writer.add_argument(
        "--repl-port", type=int, default=0,
        help="replication port replicas connect to (0 = ephemeral)",
    )
    pc_writer.add_argument("--data-dir")
    pc_writer.add_argument("--snapshot-interval", type=int, default=1000)
    pc_writer.add_argument("--no-fsync", action="store_true")
    pc_writer.set_defaults(func=_cmd_cluster_writer)

    pc_replica = csub.add_parser(
        "replica", help="run one read replica node (spawned by start)"
    )
    pc_replica.add_argument("--name", default="replica")
    pc_replica.add_argument("--host", default="127.0.0.1")
    pc_replica.add_argument(
        "--port", type=int, default=0,
        help="client port (0 = ephemeral, printed at startup)",
    )
    pc_replica.add_argument("--writer-host", required=True)
    pc_replica.add_argument("--writer-repl-port", type=int, required=True)
    pc_replica.add_argument(
        "--shm-namespace", default="",
        help="shared-memory namespace for snapshot CSR segments "
        "(empty = per-process kernels, no sharing)",
    )
    pc_replica.set_defaults(func=_cmd_cluster_replica)

    p_profile = sub.add_parser(
        "profile",
        help="trace one build+query+update+persist cycle and print "
        "the per-stage breakdown",
    )
    _add_graph_arguments(p_profile)
    p_profile.add_argument("-k", type=int, default=10, help="result count")
    p_profile.add_argument(
        "--tau", type=int, default=2, help="component size threshold"
    )
    p_profile.add_argument(
        "--repeat", type=int, default=5,
        help="top-k queries timed in the query stage (default 5)",
    )
    p_profile.add_argument(
        "--updates", type=int, default=8,
        help="edges deleted and re-inserted in the update stage (default 8)",
    )
    p_profile.add_argument(
        "--trace-out", help="also write the raw spans as JSONL to FILE"
    )
    p_profile.set_defaults(func=_cmd_profile)

    p_fsck = sub.add_parser(
        "fsck", help="validate a serve --data-dir offline"
    )
    p_fsck.add_argument("data_dir", help="data directory to check")
    p_fsck.add_argument(
        "--deep", action="store_true",
        help="also replay the WAL and compare top-k answers against a "
        "from-scratch index rebuild",
    )
    p_fsck.set_defaults(func=_cmd_fsck)

    p_bench = sub.add_parser("bench", help="run one paper experiment")
    p_bench.add_argument("experiment", choices=_BENCH_NAMES)
    p_bench.add_argument("--scale", type=float, default=1.0)
    p_bench.add_argument(
        "--quick", action="store_true",
        help="regress only: run the small pinned suite (CI smoke)",
    )
    p_bench.add_argument(
        "--output", help="regress only: BENCH JSON output path "
        "(default BENCH_<tag>.json in the repo root)",
    )
    p_bench.add_argument(
        "--baseline", help="regress only: BENCH JSON to compare against "
        "(default: newest other BENCH_*.json in the repo root)",
    )
    p_bench.add_argument(
        "--tolerance", type=float, default=0.25,
        help="regress only: relative regression tolerance (default 0.25)",
    )
    p_bench.add_argument(
        "--metric", choices=["median", "speedup"], default="speedup",
        help="regress only: comparison metric; 'speedup' (set/csr ratio) "
        "is machine independent, 'median' is raw csr seconds",
    )
    p_bench.add_argument(
        "--require-floors", action="store_true",
        help="regress only: additionally fail if any op's speedup falls "
        "below its pinned SPEEDUP_FLOORS minimum",
    )
    p_bench.set_defaults(func=_cmd_bench)

    p_load = sub.add_parser(
        "load",
        help="open-loop load harness against a running server "
        "(docs/BENCHMARKS.md)",
    )
    lsub = p_load.add_subparsers(dest="load_command", required=True)

    def _add_load_target(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--host", default="127.0.0.1")
        parser.add_argument(
            "--port", type=int, default=7031,
            help="esd serve or cluster router port (default 7031)",
        )
        from repro.loadgen.scenario import PROFILES

        parser.add_argument(
            "--scenario", choices=sorted(PROFILES),
            default="mixed", help="read/write mix profile (default mixed)",
        )
        parser.add_argument(
            "--workers", type=int, default=8,
            help="driver connections draining the schedule (default 8)",
        )
        parser.add_argument("--seed", type=int, default=0)
        parser.add_argument(
            "--timeout", type=float, default=30.0,
            help="per-connection socket timeout in seconds",
        )

    pl_run = lsub.add_parser(
        "run", help="one open-loop trial at a fixed offered rate"
    )
    _add_load_target(pl_run)
    pl_run.add_argument(
        "--rate", type=float, default=50.0,
        help="offered arrival rate, requests/second (default 50)",
    )
    pl_run.add_argument(
        "--duration", type=float, default=5.0,
        help="trial length in seconds (default 5)",
    )
    pl_run.add_argument(
        "--process", choices=["poisson", "constant"], default="poisson",
        help="arrival process (default poisson)",
    )
    pl_run.add_argument(
        "--slo-p99-ms", type=float, default=None,
        help="exit 1 if open-loop p99 exceeds this many milliseconds",
    )
    pl_run.add_argument(
        "--slo-error-rate", type=float, default=0.0,
        help="error-rate ceiling used with --slo-p99-ms (default 0)",
    )
    pl_run.add_argument("--output", help="also write the summary JSON here")
    pl_run.set_defaults(func=_cmd_load_run)

    pl_sweep = lsub.add_parser(
        "sweep",
        help="bisect for the SLO knee and write a BENCH_PR8.json record",
    )
    _add_load_target(pl_sweep)
    pl_sweep.add_argument(
        "--slo-p99-ms", type=float, default=50.0,
        help="SLO: open-loop p99 ceiling in milliseconds (default 50)",
    )
    pl_sweep.add_argument(
        "--slo-error-rate", type=float, default=0.0,
        help="SLO: error-rate ceiling (default 0)",
    )
    pl_sweep.add_argument(
        "--lo", type=float, default=5.0,
        help="lower offered-rate bracket, requests/second (default 5)",
    )
    pl_sweep.add_argument(
        "--hi", type=float, default=400.0,
        help="upper offered-rate bracket, requests/second (default 400)",
    )
    pl_sweep.add_argument(
        "--duration", type=float, default=2.0,
        help="seconds per bisection trial (default 2)",
    )
    pl_sweep.add_argument(
        "--iterations", type=int, default=5,
        help="bisection steps after the bracket probes (default 5)",
    )
    pl_sweep.add_argument(
        "--baseline-duration", type=float, default=1.0,
        help="seconds of closed-loop baseline measurement (default 1)",
    )
    pl_sweep.add_argument(
        "--output",
        help="BENCH JSON output path (default BENCH_PR8.json in repo root)",
    )
    pl_sweep.set_defaults(func=_cmd_load_sweep)

    pl_report = lsub.add_parser(
        "report", help="render and validate a saved load record"
    )
    pl_report.add_argument("record", help="BENCH_PR8.json path")
    pl_report.set_defaults(func=_cmd_load_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "kernels", None):
        from repro.kernels.dispatch import set_kernel_mode

        set_kernel_mode(args.kernels)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: exit quietly, POSIX-style.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
