"""Clique enumeration and sparsity measures."""

from repro.cliques.arboricity import arboricity_bounds, core_numbers, degeneracy
from repro.cliques.forests import (
    forest_decomposition,
    greedy_arboricity_upper_bound,
    verify_forest_decomposition,
)
from repro.cliques.maximal import (
    clique_number,
    iter_maximal_cliques,
    maximal_cliques,
)
from repro.cliques.kclique import (
    count_cliques,
    count_four_cliques,
    iter_cliques,
    iter_four_cliques,
    iter_four_cliques_oriented,
)
from repro.cliques.triangles import (
    count_triangles,
    iter_triangles,
    triangle_count_per_edge,
)

__all__ = [
    "iter_triangles",
    "count_triangles",
    "triangle_count_per_edge",
    "iter_four_cliques",
    "iter_four_cliques_oriented",
    "count_four_cliques",
    "iter_cliques",
    "count_cliques",
    "core_numbers",
    "degeneracy",
    "arboricity_bounds",
    "forest_decomposition",
    "greedy_arboricity_upper_bound",
    "verify_forest_decomposition",
    "iter_maximal_cliques",
    "maximal_cliques",
    "clique_number",
]
