"""Degeneracy, core decomposition and arboricity bounds.

The paper's complexity results are stated in terms of the arboricity ``α``
(Definition 3).  Exact arboricity needs matroid machinery; in practice the
paper (like Chiba-Nishizeki and kClist) uses the degeneracy ``δ`` as a
proxy, since ``⌈δ/2⌉ <= α <= δ`` (Eppstein et al. / Lin et al.).  This
module provides the k-core decomposition, degeneracy, and the
density-based lower bound ``α >= max_S ⌈m_S / (n_S - 1)⌉`` evaluated on
the cores.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.graph.graph import Graph, Vertex
from repro.graph.ordering import degeneracy_ordering


def core_numbers(graph: Graph) -> Dict[Vertex, int]:
    """The k-core number of every vertex (Batagelj-Zaversnik peeling)."""
    degrees = {u: graph.degree(u) for u in graph.vertices()}
    max_deg = max(degrees.values(), default=0)
    buckets = [set() for _ in range(max_deg + 1)]
    for u, d in degrees.items():
        buckets[d].add(u)
    core: Dict[Vertex, int] = {}
    current = 0
    cursor = 0
    removed = set()
    for _ in range(graph.n):
        while cursor <= max_deg and not buckets[cursor]:
            cursor += 1
        u = buckets[cursor].pop()
        current = max(current, cursor)
        core[u] = current
        removed.add(u)
        for v in graph.neighbors(u):
            if v in removed:
                continue
            d = degrees[v]
            if d > cursor:
                buckets[d].discard(v)
                degrees[v] = d - 1
                buckets[d - 1].add(v)
        cursor = max(cursor - 1, 0)
    return core


def degeneracy(graph: Graph) -> int:
    """The degeneracy ``δ`` (maximum core number)."""
    if graph.n == 0:
        return 0
    _, delta = degeneracy_ordering(graph)
    return delta


def arboricity_bounds(graph: Graph) -> Tuple[int, int]:
    """``(lower, upper)`` bounds on the arboricity ``α``.

    Upper bound: the degeneracy ``δ`` (greedily orient along a degeneracy
    ordering -> forests).  Lower bound: Nash-Williams density on the whole
    graph and on every k-core subgraph, and ``⌈δ/2⌉``.
    """
    if graph.m == 0:
        return (0, 0)
    delta = degeneracy(graph)
    lower = max((delta + 1) // 2, _density_bound(graph))
    cores = core_numbers(graph)
    # Evaluate the density bound on the densest core.
    top = max(cores.values())
    dense_core = [u for u, c in cores.items() if c == top]
    if len(dense_core) >= 2:
        lower = max(lower, _density_bound(graph.induced_subgraph(dense_core)))
    return (lower, delta)


def _density_bound(graph: Graph) -> int:
    """``⌈m / (n - 1)⌉`` -- Nash-Williams lower bound for one subgraph."""
    if graph.n <= 1 or graph.m == 0:
        return 0
    return -(-graph.m // (graph.n - 1))
