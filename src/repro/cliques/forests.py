"""Constructive forest decomposition (arboricity witness).

The arboricity ``α`` (Definition 3) is *defined* via Nash-Williams as a
density maximum, but its operational meaning is a partition of the edges
into ``α`` forests.  Exact minimum decomposition needs matroid-union
machinery; this module provides the standard greedy witness: assign each
edge to the first forest in which it closes no cycle, processing edges
along the degeneracy ordering so the greedy stays within a small factor
of optimal on sparse graphs.  The resulting forest count is a
*constructive upper bound* on α, complementing the analytic bounds in
:mod:`repro.cliques.arboricity`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.graph.graph import Edge, Graph
from repro.graph.ordering import degeneracy_ordering
from repro.structures.dsu import DisjointSet


def forest_decomposition(graph: Graph) -> List[List[Edge]]:
    """Partition the edges into forests (greedy, degeneracy-ordered).

    Returns a list of edge lists; every list is acyclic and together they
    cover each edge exactly once.  ``len(result)`` upper-bounds the
    arboricity.
    """
    if graph.m == 0:
        return []
    order, _delta = degeneracy_ordering(graph)
    position = {u: i for i, u in enumerate(order)}
    # Lower-positioned endpoint first: edges appear in peel order, which
    # keeps early forests spanning and the greedy count small.
    edges = sorted(
        graph.edges(),
        key=lambda e: (min(position[e[0]], position[e[1]]),
                       max(position[e[0]], position[e[1]])),
    )
    forests: List[List[Edge]] = []
    dsus: List[DisjointSet] = []
    for u, v in edges:
        for forest, dsu in zip(forests, dsus):
            if not (u in dsu and v in dsu and dsu.connected(u, v)):
                dsu.union(u, v)
                forest.append((u, v))
                break
        else:
            dsu = DisjointSet()
            dsu.union(u, v)
            forests.append([(u, v)])
            dsus.append(dsu)
    return forests


def greedy_arboricity_upper_bound(graph: Graph) -> int:
    """Number of forests used by the greedy decomposition (>= α)."""
    return len(forest_decomposition(graph))


def verify_forest_decomposition(graph: Graph, forests: List[List[Edge]]) -> None:
    """Assert that ``forests`` is a valid forest partition of the edges."""
    seen: Dict[Edge, int] = {}
    for i, forest in enumerate(forests):
        dsu = DisjointSet()
        for u, v in forest:
            assert graph.has_edge(u, v), f"foreign edge {(u, v)} in forest {i}"
            assert (u, v) not in seen, f"edge {(u, v)} appears twice"
            seen[(u, v)] = i
            assert not (
                u in dsu and v in dsu and dsu.connected(u, v)
            ), f"cycle in forest {i} at {(u, v)}"
            dsu.union(u, v)
    assert len(seen) == graph.m, "not all edges covered"
