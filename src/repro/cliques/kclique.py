"""k-clique enumeration on the degree-ordered DAG (Chiba-Nishizeki / kClist).

Observation 1 of the paper ties edge structural diversity to 4-cliques:
``{u, v, w1, w2}`` is a 4-clique iff ``(w1, w2)`` is an edge of the
ego-network ``G_N(uv)``.  Algorithm 3 therefore enumerates 4-cliques once
each and feeds six Union operations per clique.  :func:`iter_four_cliques`
implements exactly the enumeration of Algorithm 3, lines 6-9: for each
directed edge ``(u, v)`` of the DAG, list the edges inside
``N+(u) ∩ N+(v)``.

:func:`iter_cliques` generalizes to arbitrary ``k`` with the kClist-style
recursive intersection (Danisch et al.), used by tests as an independent
cross-check and available as a library feature.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.graph.graph import Graph, Vertex
from repro.graph.ordering import OrientedGraph


def iter_four_cliques(
    graph: Graph, order: str = "degree"
) -> Iterator[Tuple[Vertex, Vertex, Vertex, Vertex]]:
    """Yield each 4-clique of ``graph`` exactly once.

    Emitted as ``(u, v, w1, w2)`` where ``u ≺ v`` are the two lowest-ranked
    vertices and ``w1 ≺ w2``; the DAG orientation guarantees each 4-clique
    appears exactly once (rooted at its two lowest-ranked members).
    ``order`` selects the orientation: the paper's ``"degree"`` ordering
    or the kClist-style ``"degeneracy"`` ordering.

    Under the degree ordering this routes through the CSR kernel
    (bitset intersections on the interned snapshot) when kernels are
    enabled; the degeneracy ordering keeps the set-based walk.
    """
    from repro.kernels.dispatch import kernels_enabled

    if order == "degree" and kernels_enabled():
        from repro.kernels.csr import snapshot_csr
        from repro.kernels.triangles import csr_iter_four_cliques

        yield from csr_iter_four_cliques(snapshot_csr(graph))
        return
    dag = OrientedGraph(graph, order=order)
    yield from iter_four_cliques_oriented(dag)


def iter_four_cliques_oriented(
    dag: OrientedGraph,
) -> Iterator[Tuple[Vertex, Vertex, Vertex, Vertex]]:
    """4-clique enumeration from a pre-built orientation (Algorithm 3)."""
    for u in dag.vertices():
        outs_u = dag.out_neighbors(u)
        for v in outs_u:
            common = outs_u & dag.out_neighbors(v)
            if len(common) < 2:
                continue
            for w1 in common:
                for w2 in dag.out_neighbors(w1):
                    if w2 in common:
                        yield (u, v, w1, w2)


def count_four_cliques(graph: Graph, order: str = "degree") -> int:
    """Total number of 4-cliques."""
    return sum(1 for _ in iter_four_cliques(graph, order=order))


def iter_cliques(
    graph: Graph, k: int, order: str = "degree"
) -> Iterator[Tuple[Vertex, ...]]:
    """Yield each k-clique exactly once (kClist-style recursion).

    ``k = 1`` yields vertices, ``k = 2`` edges, etc.  Cliques come out as
    tuples ordered by the chosen orientation order (``"degree"`` or
    ``"degeneracy"``).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if k == 1:
        for u in graph.vertices():
            yield (u,)
        return
    dag = OrientedGraph(graph, order=order)

    def extend(
        prefix: List[Vertex], candidates: set
    ) -> Iterator[Tuple[Vertex, ...]]:
        if len(prefix) == k:
            yield tuple(prefix)
            return
        for w in list(candidates):
            prefix.append(w)
            yield from extend(prefix, candidates & dag.out_neighbors(w))
            prefix.pop()

    for u in dag.vertices():
        yield from extend([u], set(dag.out_neighbors(u)))


def count_cliques(graph: Graph, k: int, order: str = "degree") -> int:
    """Number of k-cliques in ``graph``."""
    return sum(1 for _ in iter_cliques(graph, k, order=order))
