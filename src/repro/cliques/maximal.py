"""Maximal clique enumeration (Bron-Kerbosch with pivoting).

The paper's sparsity toolkit leans on Eppstein, Löffler & Strash's
observation that real-world graphs have small degeneracy; their maximal
clique algorithm processes vertices in degeneracy order and runs
Bron-Kerbosch with pivoting inside each (small) later-neighborhood,
giving ``O(d n 3^{d/3})`` time for degeneracy ``d``.  Implemented here as
a library feature and as an independent oracle for the k-clique listers.
"""

from __future__ import annotations

from typing import Iterator, List, Set, Tuple

from repro.graph.graph import Graph, Vertex
from repro.graph.ordering import degeneracy_ordering


def iter_maximal_cliques(graph: Graph) -> Iterator[Tuple[Vertex, ...]]:
    """Yield every maximal clique exactly once (sorted tuples).

    Vertices are processed in degeneracy order; each clique is emitted
    from its first vertex in that order, so no duplicates arise.
    """
    order, _delta = degeneracy_ordering(graph)
    position = {u: i for i, u in enumerate(order)}
    for u in order:
        later = {v for v in graph.neighbors(u) if position[v] > position[u]}
        earlier = {v for v in graph.neighbors(u) if position[v] < position[u]}
        yield from _bron_kerbosch(graph, [u], later, earlier)


def _bron_kerbosch(
    graph: Graph, clique: List[Vertex], candidates: Set[Vertex], excluded: Set[Vertex]
) -> Iterator[Tuple[Vertex, ...]]:
    """Pivoting Bron-Kerbosch on (clique, candidates, excluded)."""
    if not candidates and not excluded:
        yield tuple(sorted(clique))
        return
    # Pivot: the vertex covering the most candidates prunes the most.
    pivot = max(
        candidates | excluded,
        key=lambda p: len(candidates & graph.neighbors(p)),
    )
    for v in list(candidates - graph.neighbors(pivot)):
        neighbors = graph.neighbors(v)
        clique.append(v)
        yield from _bron_kerbosch(
            graph, clique, candidates & neighbors, excluded & neighbors
        )
        clique.pop()
        candidates.remove(v)
        excluded.add(v)


def maximal_cliques(graph: Graph) -> List[Tuple[Vertex, ...]]:
    """All maximal cliques as a sorted list of sorted tuples."""
    return sorted(iter_maximal_cliques(graph))


def clique_number(graph: Graph) -> int:
    """Size of the largest clique (0 for an empty graph)."""
    return max((len(c) for c in iter_maximal_cliques(graph)), default=0)
