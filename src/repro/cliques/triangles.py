"""Oriented triangle listing and counting.

Triangle listing on the degree-ordered DAG (Ortmann & Brandes) runs in
``O(α m)``: for every directed edge ``(u, v)``, each common out-neighbor
``w ∈ N+(u) ∩ N+(v)`` closes exactly one triangle, and every triangle is
produced exactly once (by its lowest-ranked vertex).

Both entry points route through the CSR kernels
(:mod:`repro.kernels.triangles`) when enabled -- word-parallel bitset
intersections on the interned snapshot -- and otherwise share one
set-based oriented-DAG walk (:func:`_oriented_common_out_neighbors`),
so listing and counting can never drift apart again.
"""

from __future__ import annotations

from typing import Iterator, Set, Tuple

from repro.graph.graph import Graph, Vertex
from repro.graph.ordering import OrientedGraph
from repro.kernels.dispatch import kernels_enabled


def _oriented_common_out_neighbors(
    dag: OrientedGraph,
) -> Iterator[Tuple[Vertex, Vertex, Set[Vertex]]]:
    """The one oriented-DAG walk both listing and counting consume.

    Yields ``(u, v, N+(u) ∩ N+(v))`` for every directed edge ``(u, v)``;
    each element of the intersection closes exactly one triangle.
    """
    for u in dag.vertices():
        outs = dag.out_neighbors(u)
        for v in outs:
            yield u, v, outs & dag.out_neighbors(v)


def iter_triangles(graph: Graph) -> Iterator[Tuple[Vertex, Vertex, Vertex]]:
    """Yield each triangle of ``graph`` exactly once.

    Triangles come out as ``(u, v, w)`` where ``u ≺ v ≺ w`` in the degree
    ordering, so output is canonical and duplicate-free.
    """
    if kernels_enabled():
        from repro.kernels.csr import snapshot_csr
        from repro.kernels.triangles import csr_iter_triangles

        yield from csr_iter_triangles(snapshot_csr(graph))
        return
    dag = OrientedGraph(graph)
    for u, v, common in _oriented_common_out_neighbors(dag):
        for w in common:
            yield (u, v, w) if dag.precedes(v, w) else (u, w, v)


def count_triangles(graph: Graph) -> int:
    """Total number of triangles in ``graph``."""
    if kernels_enabled():
        from repro.kernels.csr import snapshot_csr
        from repro.kernels.triangles import csr_count_triangles

        return csr_count_triangles(snapshot_csr(graph))
    dag = OrientedGraph(graph)
    return sum(
        len(common) for _u, _v, common in _oriented_common_out_neighbors(dag)
    )


def triangle_count_per_edge(graph: Graph) -> dict:
    """Map canonical edge -> number of triangles through it.

    Equals ``|N(u) ∩ N(v)|`` for each edge, i.e. the numerator of the
    common-neighbor upper bound (§III).
    """
    if kernels_enabled():
        from repro.kernels.csr import snapshot_csr
        from repro.kernels.triangles import csr_triangle_count_per_edge

        return csr_triangle_count_per_edge(snapshot_csr(graph))

    from repro.graph.graph import canonical_edge

    counts = {edge: 0 for edge in graph.edges()}
    for a, b, c in iter_triangles(graph):
        counts[canonical_edge(a, b)] += 1
        counts[canonical_edge(a, c)] += 1
        counts[canonical_edge(b, c)] += 1
    return counts
