"""Oriented triangle listing and counting.

Triangle listing on the degree-ordered DAG (Ortmann & Brandes) runs in
``O(α m)``: for every directed edge ``(u, v)``, each common out-neighbor
``w ∈ N+(u) ∩ N+(v)`` closes exactly one triangle, and every triangle is
produced exactly once (by its lowest-ranked vertex).
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.graph.graph import Graph, Vertex
from repro.graph.ordering import OrientedGraph


def iter_triangles(graph: Graph) -> Iterator[Tuple[Vertex, Vertex, Vertex]]:
    """Yield each triangle of ``graph`` exactly once.

    Triangles come out as ``(u, v, w)`` where ``u ≺ v ≺ w`` in the degree
    ordering, so output is canonical and duplicate-free.
    """
    dag = OrientedGraph(graph)
    for u in dag.vertices():
        outs = dag.out_neighbors(u)
        for v in outs:
            common = outs & dag.out_neighbors(v)
            for w in common:
                yield (u, v, w) if dag.precedes(v, w) else (u, w, v)


def count_triangles(graph: Graph) -> int:
    """Total number of triangles in ``graph``."""
    dag = OrientedGraph(graph)
    total = 0
    for u in dag.vertices():
        outs = dag.out_neighbors(u)
        for v in outs:
            total += len(outs & dag.out_neighbors(v))
    return total


def triangle_count_per_edge(graph: Graph) -> dict:
    """Map canonical edge -> number of triangles through it.

    Equals ``|N(u) ∩ N(v)|`` for each edge, i.e. the numerator of the
    common-neighbor upper bound (§III).
    """
    from repro.graph.graph import canonical_edge

    counts = {edge: 0 for edge in graph.edges()}
    for a, b, c in iter_triangles(graph):
        counts[canonical_edge(a, b)] += 1
        counts[canonical_edge(a, c)] += 1
        counts[canonical_edge(b, c)] += 1
    return counts
