"""repro.cluster -- replicated serving tier over the ESD query engine.

A cluster is one durable **writer** (:class:`~repro.cluster.writer.WriterNode`,
an :class:`~repro.service.server.ESDServer` that ships its committed WAL
stream), N **read replicas**
(:class:`~repro.cluster.replica.ReplicaNode`, tailing that stream into a
:class:`~repro.core.maintenance.DynamicESDIndex` and serving reads on a
``selectors`` event loop), and a **router**
(:class:`~repro.cluster.router.Router`) that gives clients one address
with read-your-writes version tokens, bounded-staleness replica
eviction, and fail-fast writes when the writer is down.

See ``docs/CLUSTER.md`` for the topology and the consistency model;
``esd cluster start`` boots the whole thing from the command line.
"""

from repro.cluster.eventloop import Channel, EventLoop, Listener
from repro.cluster.replica import ReplicaConfig, ReplicaNode
from repro.cluster.replication import ReplicationPublisher, ReplicationTailer
from repro.cluster.router import Router, RouterConfig
from repro.cluster.supervisor import ClusterConfig, ClusterSupervisor
from repro.cluster.writer import WriterConfig, WriterNode

__all__ = [
    "Channel",
    "ClusterConfig",
    "ClusterSupervisor",
    "EventLoop",
    "Listener",
    "ReplicaConfig",
    "ReplicaNode",
    "ReplicationPublisher",
    "ReplicationTailer",
    "Router",
    "RouterConfig",
    "WriterConfig",
    "WriterNode",
]
