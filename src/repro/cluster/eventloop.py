"""A ``selectors``-based single-threaded event loop for line protocols.

The cluster serve path (replicas and the router) runs on this reactor
instead of the thread-per-connection model of
:class:`~repro.service.server.ESDServer`: one thread multiplexes every
connection through :func:`selectors.DefaultSelector`, with explicit
per-connection read/write buffers.  That bounds the cost of a client to
one :class:`Channel` object rather than one OS thread, which is what
lets a replica hold thousands of idle watchers.

Concepts
--------
:class:`EventLoop`
    Owns the selector and the loop thread's run state.  ``listen()``
    adds an accepting socket, ``connect()`` adds an outbound channel
    (the router's backend links), ``add_timer()`` registers a callback
    run every tick (health checks, timeouts, idle sweeps), and
    ``call_soon()`` is the *only* thread-safe entry point -- it hands a
    callable to the loop thread via a wakeup pipe.

:class:`Channel`
    One connection: ``inbuf`` accumulates bytes until newlines complete
    requests, ``outbuf`` drains when the socket is writable (the
    selector only watches writability while there is something to
    write).  ``send_bytes`` and ``close`` must be called on the loop
    thread.

Back-pressure and hygiene: a line that exceeds ``max_line_bytes``
closes the connection (after an optional canned response) instead of
buffering without bound; accepted connections idle longer than their
listener's ``idle_timeout`` are closed by the tick sweep.
"""

from __future__ import annotations

import selectors
import socket
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["Channel", "EventLoop", "Listener"]

#: Bytes read per readable event.
_RECV_CHUNK = 1 << 16

#: Callback invoked per complete request line: ``(channel, line)``.
LineHandler = Callable[["Channel", bytes], None]
#: Callback invoked once when a channel dies: ``(channel,)``.
CloseHandler = Callable[["Channel"], None]


class Channel:
    """One buffered connection owned by an :class:`EventLoop`."""

    __slots__ = (
        "sock", "addr", "on_line", "on_close", "inbuf", "outbuf",
        "last_activity", "closing", "closed", "idle_timeout", "attrs",
        "_loop",
    )

    def __init__(
        self,
        loop: "EventLoop",
        sock: socket.socket,
        addr: Tuple[str, int],
        on_line: LineHandler,
        on_close: Optional[CloseHandler],
        idle_timeout: Optional[float],
    ) -> None:
        self._loop = loop
        self.sock = sock
        self.addr = addr
        self.on_line = on_line
        self.on_close = on_close
        self.inbuf = bytearray()
        self.outbuf = bytearray()
        self.last_activity = time.monotonic()
        self.closing = False  # flush outbuf, then close
        self.closed = False
        self.idle_timeout = idle_timeout
        #: Free-form per-connection state for the dispatch layer (the
        #: router keeps its read-your-writes version token here).
        self.attrs: Dict[str, Any] = {}

    def send_bytes(self, data: bytes) -> None:
        """Queue ``data`` for writing (loop thread only)."""
        if self.closed or self.closing:
            return
        was_empty = not self.outbuf
        self.outbuf += data
        if was_empty:
            self._loop._interest(self, write=True)

    def close(self, *, flush: bool = False) -> None:
        """Close now, or after ``outbuf`` drains when ``flush`` is set."""
        if self.closed:
            return
        if flush and self.outbuf:
            self.closing = True
        else:
            self._loop._close_channel(self)


class Listener:
    """An accepting socket plus the handlers its channels inherit."""

    __slots__ = ("sock", "on_line", "on_close", "idle_timeout", "address")

    def __init__(
        self,
        sock: socket.socket,
        on_line: LineHandler,
        on_close: Optional[CloseHandler],
        idle_timeout: Optional[float],
    ) -> None:
        self.sock = sock
        self.on_line = on_line
        self.on_close = on_close
        self.idle_timeout = idle_timeout
        self.address: Tuple[str, int] = sock.getsockname()[:2]


class EventLoop:
    """Single-threaded selector reactor (see module docstring)."""

    def __init__(
        self,
        *,
        tick_interval: float = 0.05,
        max_line_bytes: int = 1 << 20,
    ) -> None:
        self._selector = selectors.DefaultSelector()
        self._tick_interval = tick_interval
        self._max_line_bytes = max_line_bytes
        self._timers: List[Callable[[], None]] = []
        self._listeners: List[Listener] = []
        self._channels: List[Channel] = []
        self._stop = threading.Event()
        self._calls: List[Callable[[], None]] = []
        self._calls_lock = threading.Lock()
        # Wakeup pipe so call_soon()/stop() interrupt a sleeping select.
        self._wake_recv, self._wake_send = socket.socketpair()
        self._wake_recv.setblocking(False)
        self._selector.register(self._wake_recv, selectors.EVENT_READ, "wake")
        #: Canned bytes sent before closing an over-long-line offender
        #: (the dispatch layer sets a protocol error response here).
        self.overflow_response: Optional[bytes] = None
        self.stats = {
            "accepted": 0,
            "closed": 0,
            "idle_closed": 0,
            "overflow_closed": 0,
            "lines": 0,
            "bytes_in": 0,
            "bytes_out": 0,
        }

    # -- setup (loop thread or before run) ------------------------------------

    def listen(
        self,
        host: str,
        port: int,
        on_line: LineHandler,
        *,
        on_close: Optional[CloseHandler] = None,
        idle_timeout: Optional[float] = None,
        backlog: int = 128,
    ) -> Listener:
        """Bind and register an accepting socket; returns its listener."""
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, port))
        sock.listen(backlog)
        sock.setblocking(False)
        listener = Listener(sock, on_line, on_close, idle_timeout)
        self._selector.register(sock, selectors.EVENT_READ, listener)
        self._listeners.append(listener)
        return listener

    def connect(
        self,
        host: str,
        port: int,
        on_line: LineHandler,
        *,
        on_close: Optional[CloseHandler] = None,
        timeout: float = 1.0,
    ) -> Channel:
        """Open an outbound channel (router -> backend); raises ``OSError``.

        The connect itself is blocking-with-timeout (backends are
        LAN-local); the channel is non-blocking from then on.  Loop
        thread only.
        """
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.setblocking(False)
        channel = Channel(self, sock, (host, port), on_line, on_close, None)
        self._selector.register(sock, selectors.EVENT_READ, channel)
        self._channels.append(channel)
        return channel

    def add_timer(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` on every tick (loop thread)."""
        self._timers.append(callback)

    def call_soon(self, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` on the loop thread (thread-safe)."""
        with self._calls_lock:
            self._calls.append(callback)
        try:
            self._wake_send.send(b"\x00")
        except OSError:
            pass

    # -- run state -------------------------------------------------------------

    def stop(self) -> None:
        """Ask the loop to exit; safe from any thread, idempotent."""
        self._stop.set()
        try:
            self._wake_send.send(b"\x00")
        except OSError:
            pass

    def run(self) -> None:
        """Serve until :meth:`stop`; closes every socket on the way out."""
        next_tick = time.monotonic() + self._tick_interval
        try:
            while not self._stop.is_set():
                timeout = max(0.0, next_tick - time.monotonic())
                for key, events in self._selector.select(timeout):
                    data = key.data
                    if data == "wake":
                        self._drain_wakeups()
                    elif isinstance(data, Listener):
                        self._accept(data)
                    else:
                        self._service(data, events)
                self._run_calls()
                now = time.monotonic()
                if now >= next_tick:
                    next_tick = now + self._tick_interval
                    self._tick(now)
        finally:
            self._teardown()

    # -- internals -------------------------------------------------------------

    def _drain_wakeups(self) -> None:
        try:
            while self._wake_recv.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass

    def _run_calls(self) -> None:
        with self._calls_lock:
            calls, self._calls = self._calls, []
        for callback in calls:
            callback()

    def _tick(self, now: float) -> None:
        for timer in list(self._timers):
            timer()
        for channel in list(self._channels):
            if (
                channel.idle_timeout is not None
                and not channel.closed
                and now - channel.last_activity > channel.idle_timeout
            ):
                self.stats["idle_closed"] += 1
                self._close_channel(channel)

    def _accept(self, listener: Listener) -> None:
        try:
            sock, addr = listener.sock.accept()
        except OSError:
            return
        sock.setblocking(False)
        channel = Channel(
            self, sock, addr, listener.on_line, listener.on_close,
            listener.idle_timeout,
        )
        self._selector.register(sock, selectors.EVENT_READ, channel)
        self._channels.append(channel)
        self.stats["accepted"] += 1

    def _interest(self, channel: Channel, *, write: bool) -> None:
        if channel.closed:
            return
        events = selectors.EVENT_READ
        if write or channel.outbuf:
            events |= selectors.EVENT_WRITE
        try:
            self._selector.modify(channel.sock, events, channel)
        except (KeyError, ValueError, OSError):
            pass

    def _service(self, channel: Channel, events: int) -> None:
        if channel.closed:
            return
        if events & selectors.EVENT_READ:
            self._readable(channel)
        if not channel.closed and events & selectors.EVENT_WRITE:
            self._writable(channel)

    def _readable(self, channel: Channel) -> None:
        try:
            data = channel.sock.recv(_RECV_CHUNK)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close_channel(channel)
            return
        if not data:
            self._close_channel(channel)
            return
        channel.last_activity = time.monotonic()
        channel.inbuf += data
        self.stats["bytes_in"] += len(data)
        while not channel.closed and not channel.closing:
            newline = channel.inbuf.find(b"\n")
            if newline < 0:
                break
            line = bytes(channel.inbuf[:newline]).strip()
            del channel.inbuf[: newline + 1]
            if not line:
                continue
            self.stats["lines"] += 1
            channel.on_line(channel, line)
        if (
            not channel.closed
            and len(channel.inbuf) > self._max_line_bytes
        ):
            # A "line" that big cannot be a legal request: answer with
            # the canned rejection (if any) and drop the connection
            # rather than buffering an unbounded stream.
            self.stats["overflow_closed"] += 1
            if self.overflow_response:
                channel.send_bytes(self.overflow_response)
                channel.close(flush=True)
            else:
                self._close_channel(channel)

    def _writable(self, channel: Channel) -> None:
        if channel.outbuf:
            try:
                sent = channel.sock.send(channel.outbuf)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                self._close_channel(channel)
                return
            del channel.outbuf[:sent]
            self.stats["bytes_out"] += sent
            channel.last_activity = time.monotonic()
        if not channel.outbuf:
            if channel.closing:
                self._close_channel(channel)
            else:
                self._interest(channel, write=False)

    def _close_channel(self, channel: Channel) -> None:
        if channel.closed:
            return
        channel.closed = True
        try:
            self._selector.unregister(channel.sock)
        except (KeyError, ValueError, OSError):
            pass
        try:
            channel.sock.close()
        except OSError:
            pass
        try:
            self._channels.remove(channel)
        except ValueError:
            pass
        self.stats["closed"] += 1
        if channel.on_close is not None:
            channel.on_close(channel)

    def _teardown(self) -> None:
        for channel in list(self._channels):
            self._close_channel(channel)
        for listener in self._listeners:
            try:
                self._selector.unregister(listener.sock)
            except (KeyError, ValueError, OSError):
                pass
            try:
                listener.sock.close()
            except OSError:
                pass
        self._listeners.clear()
        try:
            self._selector.unregister(self._wake_recv)
        except (KeyError, ValueError, OSError):
            pass
        self._wake_recv.close()
        self._wake_send.close()
        self._selector.close()

    def snapshot(self) -> Dict[str, Any]:
        """Loop counters for the metrics registries (racy reads are fine)."""
        stats = dict(self.stats)
        stats["open_connections"] = len(self._channels)
        return stats
