"""A read replica: tailed WAL state + an event-loop serve path.

:class:`ReplicaNode` holds one :class:`~repro.core.maintenance.DynamicESDIndex`
it never mutates on behalf of clients.  State arrives exclusively from
the writer through a :class:`~repro.cluster.replication.ReplicationTailer`:
a snapshot (loaded via ``from_state``, skipping the 4-clique build) and
then the live WAL record stream, applied through the same maintenance
path the writer used -- so a replica at applied version ``v`` holds the
bit-identical index the writer held at ``v``, and serves
snapshot-consistent ``topk``/``score``/``stats`` at exactly that
version under a local readers-writer lock.

Serving runs on the :class:`~repro.cluster.eventloop.EventLoop`
(``selectors``-based, per-connection buffers, idle timeouts) -- there
is no thread per connection anywhere in the replica.  Mutating ops are
answered with the structured ``read_only`` error; reads carrying a
``min_version`` token newer than the applied version are answered
``unavailable`` so the router can retry elsewhere (bounded staleness is
enforced at the router; the token check here makes read-your-writes
robust even against a stale router view).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.core.maintenance import DynamicESDIndex
from repro.kernels.shm import shm_metrics
from repro.metrics import get_metric
from repro.obs.promtext import http_metrics_response, render_prometheus
from repro.obs.registry import UnifiedRegistry
from repro.obs.trace import TRACER
from repro.persistence.wal import WALRecord
from repro.service import protocol
from repro.service.cache import ResultCache
from repro.service.metrics import MetricsRegistry
from repro.service.protocol import ProtocolError
from repro.service.rwlock import RWLock
from repro.cluster.eventloop import Channel, EventLoop
from repro.cluster.replication import ReplicationTailer

#: Ops a replica refuses outright (single-writer discipline).
MUTATING_OPS = frozenset({"update", "watch", "changes", "unwatch"})


@dataclass
class ReplicaConfig:
    """Tunables for one :class:`ReplicaNode`."""

    writer_host: str
    writer_repl_port: int
    host: str = "127.0.0.1"
    port: int = 0  #: 0 = ephemeral; read the bound port from ``address``
    name: str = "replica"
    cache_size: int = 1024  #: LRU result-cache capacity (version-keyed)
    idle_timeout: float = 300.0  #: seconds before an idle client is dropped
    reconnect_backoff: float = 0.2
    #: Shared-memory namespace for snapshot CSR segments (empty =
    #: per-replica private kernels, no shared segments).  All replicas
    #: of one cluster get the same namespace from the supervisor: the
    #: first to install snapshot version ``v`` publishes
    #: ``<namespace>-v<v>`` and the rest map it read-only.
    shm_namespace: str = ""


class ReplicaNode:
    """One read replica process/thread (see module docstring)."""

    def __init__(self, config: ReplicaConfig) -> None:
        self.config = config
        self._lock = RWLock()
        self._dyn: Optional[DynamicESDIndex] = None
        self._applied = -1
        self._writer_version = -1
        self._cache = ResultCache(config.cache_size)
        self.metrics = MetricsRegistry()
        self._loop = EventLoop()
        self._loop.overflow_response = protocol.encode(
            protocol.error_response(
                protocol.BAD_REQUEST,
                f"request line exceeds {protocol.MAX_LINE_BYTES} bytes",
            )
        )
        self._listener = self._loop.listen(
            config.host, config.port, self._on_line,
            idle_timeout=config.idle_timeout,
        )
        self._tailer = ReplicationTailer(
            config.writer_host, config.writer_repl_port,
            name=config.name,
            get_applied=lambda: self._applied,
            on_snapshot=self._load_snapshot,
            on_record=self._apply_record,
            on_writer_version=self._note_writer_version,
            reconnect_backoff=config.reconnect_backoff,
        )
        self.obs = UnifiedRegistry(self.metrics)
        self.obs.add_source("replication", self.replication_status)
        self.obs.add_source("eventloop", self._loop.snapshot)
        self.obs.add_source("cache", self._cache.stats)
        self.obs.add_source("graph_version", lambda: self._applied)
        self.obs.add_source("shm", shm_metrics)
        self._segment = None  #: shared CSR segment of the applied snapshot
        self._thread: Optional[threading.Thread] = None
        self._shutdown_lock = threading.Lock()
        self._closed = False

    # -- lifecycle -------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound client ``(host, port)`` (valid once constructed)."""
        return self._listener.address

    @property
    def applied_version(self) -> int:
        """The replica's applied ``graph_version`` (``-1`` = no state)."""
        return self._applied

    def serve_forever(self) -> None:
        """Tail the writer and serve on the calling thread."""
        self._tailer.start()
        self._loop.run()

    def start(self) -> "ReplicaNode":
        """Serve on a background daemon thread; returns ``self``."""
        if self._thread is not None:
            raise RuntimeError("replica already started")
        self._tailer.start()
        self._thread = threading.Thread(
            target=self._loop.run, name=f"esd-{self.config.name}", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self, join_timeout: float = 5.0) -> None:
        """Stop tailing and serving; idempotent, bounded join."""
        with self._shutdown_lock:
            if self._closed:
                return
            self._closed = True
        self._tailer.stop()
        self._loop.stop()
        self._release_segment()
        if self._thread is not None:
            self._thread.join(timeout=join_timeout)
            self._thread = None

    def __enter__(self) -> "ReplicaNode":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- replication callbacks (tailer thread) ---------------------------------

    def _load_snapshot(self, state: Dict[str, Any]) -> None:
        with TRACER.span(
            "cluster.load_snapshot", version=state["graph_version"]
        ):
            dyn = DynamicESDIndex.from_state(state)
            self._seed_kernel(dyn, state)
        with self._lock.write_locked():
            self._dyn = dyn
            self._applied = dyn.graph_version
            self._cache.clear()
        self.metrics.incr("snapshots_loaded")

    def _seed_kernel(self, dyn: DynamicESDIndex, state: Dict[str, Any]) -> None:
        """Install the snapshot CSR as a shared segment; seed the kernel.

        With a namespace configured, replicas of one cluster share one
        read-only CSR segment per snapshot version: the first installer
        builds it straight from the state's edge list
        (:func:`~repro.persistence.snapshot.csr_from_state`) and
        publishes; the rest attach and map.  Either way the replica's
        maintenance kernel adopts the segment's id space, so replication
        records apply through the same id-space path the writer used --
        no per-replica snapshot rebuild on the first mutation.  Any
        failure falls back to the lazy per-replica kernel; serving
        correctness never depends on shared memory.
        """
        from repro.kernels.dispatch import kernels_enabled

        if not kernels_enabled():
            return
        from repro.kernels import shm
        from repro.kernels.delta import MaintenanceKernel
        from repro.persistence.snapshot import csr_from_state

        if not self.config.shm_namespace or not shm.shm_available():
            return
        name = f"{self.config.shm_namespace}-v{state['graph_version']}"
        try:
            segment, created = shm.create_or_attach(
                name, lambda: csr_from_state(state)
            )
            dyn.adopt_kernel(
                MaintenanceKernel.from_csr(segment.csr(), dyn.graph.revision)
            )
        except Exception:
            self.metrics.incr("shm_seed_failures")
            return
        self._release_segment()
        self._segment = segment
        self.metrics.incr(
            "shm_segments_published" if created else "shm_segments_mapped"
        )

    def _release_segment(self) -> None:
        segment, self._segment = self._segment, None
        if segment is None:
            return
        if segment.creator:
            segment.destroy()
        else:
            segment.detach()

    def _apply_record(self, record: WALRecord) -> bool:
        with self._lock.write_locked():
            if self._dyn is None:
                return False
            if record.version <= self._applied:
                return True  # duplicate delivery is harmless
            if record.version != self._applied + 1:
                self.metrics.incr("replication_gaps")
                return False
            with TRACER.span(
                "cluster.apply", op=record.op, version=record.version
            ):
                try:
                    if record.op == "insert":
                        self._dyn.insert_edge(record.u, record.v)
                    else:
                        self._dyn.delete_edge(record.u, record.v)
                except (ValueError, KeyError):
                    # A record the state cannot absorb means we diverged:
                    # force a snapshot-resync rather than guessing.
                    self.metrics.incr("replication_gaps")
                    self._dyn = None
                    self._applied = -1
                    return False
            self._applied = self._dyn.graph_version
            self._cache.purge_stale(self._applied)
        self.metrics.incr("records_applied")
        return True

    def _note_writer_version(self, version: int) -> None:
        self._writer_version = max(self._writer_version, version)

    def replication_status(self) -> Dict[str, Any]:
        writer_version = max(self._writer_version, self._applied)
        return {
            "applied_version": self._applied,
            "writer_version": writer_version,
            "lag": (
                max(0, writer_version - self._applied)
                if self._applied >= 0
                else None
            ),
            "tailer": self._tailer.status(),
        }

    # -- serve path (event-loop thread) ----------------------------------------

    def metrics_text(self) -> str:
        return render_prometheus(self.obs.snapshot())

    def _on_line(self, channel: Channel, line: bytes) -> None:
        if protocol.is_http_get(line):
            channel.send_bytes(http_metrics_response(self.metrics_text()))
            channel.close(flush=True)
            return
        try:
            message = protocol.decode_line(line)
        except ProtocolError as exc:
            channel.send_bytes(
                protocol.encode(protocol.error_response(exc.code, exc.message))
            )
            return
        request_id = message.get("id")
        op = message["op"]
        try:
            with self.metrics.timed(op):
                response = protocol.ok_response(
                    self._dispatch(op, message), request_id
                )
        except ProtocolError as exc:
            response = protocol.error_response(exc.code, exc.message, request_id)
        except (ValueError, TypeError) as exc:
            response = protocol.error_response(
                protocol.INVALID_ARGUMENT, str(exc), request_id
            )
        except KeyError as exc:
            detail = exc.args[0] if exc.args else exc
            response = protocol.error_response(
                protocol.NOT_FOUND, str(detail), request_id
            )
        except Exception as exc:  # never take the loop down
            self.metrics.incr("internal_errors")
            response = protocol.error_response(
                protocol.INTERNAL, f"{type(exc).__name__}: {exc}", request_id
            )
        channel.send_bytes(protocol.encode(response))

    def _checked_index(self, message: Dict[str, Any]) -> DynamicESDIndex:
        """The live index, after enforcing the request's version token."""
        if self._dyn is None:
            raise ProtocolError(
                protocol.UNAVAILABLE,
                "replica has no state yet (awaiting writer snapshot)",
            )
        min_version = protocol.int_field(
            message, "min_version", default=0, minimum=0
        )
        if self._applied < min_version:
            raise ProtocolError(
                protocol.UNAVAILABLE,
                f"replica at version {self._applied} is behind the "
                f"requested min_version {min_version}",
            )
        return self._dyn

    def _dispatch(self, op: str, message: Dict[str, Any]) -> Any:
        if op == "ping":
            return "pong"
        if op in MUTATING_OPS:
            raise ProtocolError(
                protocol.READ_ONLY,
                f"op {op!r} mutates state; replicas are read-only -- "
                "send it to the router or the writer",
            )
        if op == "cluster-info":
            return dict(
                self.replication_status(),
                role="replica",
                name=self.config.name,
                graph_version=self._applied,
            )
        if op == "metrics":
            return self.obs.snapshot()
        if op == "metrics-text":
            from repro.service.server import PROMETHEUS_CONTENT_TYPE

            return {"content_type": PROMETHEUS_CONTENT_TYPE,
                    "text": self.metrics_text()}
        if op == "topk":
            k = protocol.int_field(message, "k", default=10)
            tau = protocol.int_field(message, "tau", default=2)
            metric = protocol.metric_field(message)
            scorer = get_metric(metric)
            with self.metrics.timed(f"topk|metric={metric}"):
                with self._lock.read_locked():
                    dyn = self._checked_index(message)
                    version = dyn.graph_version
                    hit, payload = self._cache.get((metric, k, tau, version))
                    if not hit:
                        payload = {
                            "items": [
                                [u, v, score]
                                for (u, v), score in scorer.topk(
                                    dyn.graph, k, tau=tau, index=dyn
                                )
                            ],
                            "graph_version": version,
                            "metric": metric,
                        }
                        self._cache.put((metric, k, tau, version), payload)
                    return dict(payload, cached=hit, batched=1)
        if op == "score":
            u = protocol.vertex_field(message, "u")
            v = protocol.vertex_field(message, "v")
            tau = protocol.int_field(message, "tau", default=2)
            metric = protocol.metric_field(message)
            scorer = get_metric(metric)
            with self.metrics.timed(f"score|metric={metric}"):
                with self._lock.read_locked():
                    dyn = self._checked_index(message)
                    return {
                        "edge": [u, v],
                        "tau": tau,
                        "metric": metric,
                        "score": scorer.score(
                            dyn.graph, (u, v), tau=tau, index=dyn
                        ),
                        "in_graph": dyn.graph.has_edge(u, v),
                        "graph_version": dyn.graph_version,
                    }
        if op == "stats":
            with self._lock.read_locked():
                dyn = self._checked_index(message)
                counters = dyn.mutation_counters
                return {
                    "n": dyn.graph.n,
                    "m": dyn.graph.m,
                    "graph_version": dyn.graph_version,
                    "mutations": {
                        "insertions": counters.insertions,
                        "deletions": counters.deletions,
                        "total": counters.total,
                    },
                    "index": dyn.index.stats(),
                    "watches": 0,
                    "role": "replica",
                    "replication": self.replication_status(),
                }
        raise ProtocolError(protocol.UNKNOWN_OP, f"unknown op: {op!r}")
