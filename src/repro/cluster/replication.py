"""WAL shipping between the cluster writer and its read replicas.

The persistence layer's write-ahead log is already a replication log:
every committed mutation is a self-verifying
:class:`~repro.persistence.wal.WALRecord` whose ``version`` is the
``graph_version`` it produces.  This module ships that stream over TCP
with a small length-prefixed frame protocol:

    offset  size  field
    ------  ----  ---------------------------------------
    0       1     frame type (ASCII byte, below)
    1       4     payload length, big-endian u32
    5       len   payload

======  =========  ====================================================
``H``   ->writer   hello: ``{"name": ..., "applied_version": n}``
                   (``-1`` = no state, always triggers a snapshot)
``S``   ->replica  snapshot: the exact bytes of a
                   :func:`~repro.persistence.snapshot.encode_snapshot`
                   container, version ``Vs`` -- load via ``from_state``
``R``   ->replica  record: one WAL record payload
                   ``{"op", "u", "v", "ver"}``
``V``   ->replica  version heartbeat: ``{"version": n}`` -- lets an
                   idle replica measure replication lag
``A``   ->writer   ack: ``{"applied_version": n}``
======  =========  ====================================================

Catch-up contract (:class:`ReplicationPublisher`): the writer retains
the most recent ``retain`` committed records in memory.  A replica
whose ``applied_version`` still falls inside that window resumes with
records only; anything older (or a fresh replica) gets a full snapshot
exported under the engine's read lock, followed by every record
committed after it.  Because the peer is registered while that lock is
held, no committed version can fall between the snapshot and the live
stream -- the same no-gap argument the crash-recovery path makes on
disk.

Replay on the replica (:class:`ReplicationTailer` driving
:class:`~repro.core.maintenance.DynamicESDIndex` through the
maintenance path) is self-verifying exactly like WAL recovery: applying
record ``ver`` must move the replica to ``graph_version == ver``, and
any gap forces a reconnect (whose hello then requests a snapshot if
needed).
"""

from __future__ import annotations

import json
import socket
import struct
import threading
import time
from collections import deque
from queue import Empty, Full, Queue
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.obs.trace import TRACER
from repro.persistence.snapshot import encode_snapshot
from repro.persistence.wal import WALRecord

__all__ = [
    "ReplicationError",
    "ReplicationPublisher",
    "ReplicationTailer",
    "recv_frame",
    "send_frame",
]

_FRAME = struct.Struct(">cI")

FRAME_HELLO = b"H"
FRAME_SNAPSHOT = b"S"
FRAME_RECORD = b"R"
FRAME_VERSION = b"V"
FRAME_ACK = b"A"

_FRAME_TYPES = frozenset(
    {FRAME_HELLO, FRAME_SNAPSHOT, FRAME_RECORD, FRAME_VERSION, FRAME_ACK}
)

#: Hard cap on one frame's payload (snapshots of a big graph are the
#: largest legitimate frame; anything beyond this is a framing error).
MAX_FRAME_BYTES = 1 << 30


class ReplicationError(RuntimeError):
    """A replication peer spoke the protocol wrong."""


def send_frame(sock: socket.socket, ftype: bytes, payload: bytes) -> None:
    """Write one frame; raises ``OSError`` on a dead connection."""
    sock.sendall(_FRAME.pack(ftype, len(payload)) + payload)


def send_json(sock: socket.socket, ftype: bytes, obj: Any) -> None:
    send_frame(
        sock,
        ftype,
        json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8"),
    )


def _recv_exact(sock: socket.socket, size: int) -> Optional[bytes]:
    """Read exactly ``size`` bytes; ``None`` on clean EOF at offset 0."""
    chunks: List[bytes] = []
    remaining = size
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == size:
                return None
            raise ReplicationError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Tuple[bytes, bytes]]:
    """Read one frame; ``None`` on clean EOF between frames.

    Raises :class:`ReplicationError` on an unknown type or implausible
    length, ``OSError``/``socket.timeout`` on transport trouble.
    """
    header = _recv_exact(sock, _FRAME.size)
    if header is None:
        return None
    ftype, length = _FRAME.unpack(header)
    if ftype not in _FRAME_TYPES:
        raise ReplicationError(f"unknown replication frame type {ftype!r}")
    if length > MAX_FRAME_BYTES:
        raise ReplicationError(f"implausible frame length {length}")
    payload = _recv_exact(sock, length) if length else b""
    if payload is None:
        raise ReplicationError("connection closed mid-frame")
    return ftype, payload


def _json_payload(payload: bytes) -> Dict[str, Any]:
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ReplicationError(f"malformed frame payload: {exc}") from None
    if not isinstance(obj, dict):
        raise ReplicationError("frame payload must be a JSON object")
    return obj


def record_to_payload(record: WALRecord) -> Dict[str, Any]:
    return {"op": record.op, "u": record.u, "v": record.v,
            "ver": record.version}


def record_from_payload(payload: bytes) -> WALRecord:
    obj = _json_payload(payload)
    if obj.get("op") not in ("insert", "delete") or not isinstance(
        obj.get("ver"), int
    ):
        raise ReplicationError(f"malformed record frame: {obj!r}")
    return WALRecord(op=obj["op"], u=obj["u"], v=obj["v"], version=obj["ver"])


class _Peer:
    """Writer-side state for one connected replica."""

    __slots__ = (
        "name", "sock", "addr", "queue", "acked_version", "last_ack",
        "connected_at", "snapshot_sent", "records_sent", "dead",
    )

    def __init__(self, name: str, sock: socket.socket, addr, max_queue: int):
        self.name = name
        self.sock = sock
        self.addr = addr
        self.queue: "Queue[WALRecord]" = Queue(maxsize=max_queue)
        self.acked_version = -1
        self.last_ack = time.monotonic()
        self.connected_at = time.monotonic()
        self.snapshot_sent = False
        self.records_sent = 0
        self.dead = False

    def kill(self) -> None:
        self.dead = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class ReplicationPublisher:
    """Writer side: accept replicas, ship snapshot + WAL stream.

    Subscribes to the engine's :class:`DynamicESDIndex` mutation feed --
    the callback runs under the engine's exclusive write lock, right
    after the mutation was WAL-logged and applied, so the published
    stream is exactly the committed WAL order.  Each peer gets a
    bounded queue; a replica too slow to drain it is disconnected (it
    will reconnect and catch up via the ring or a snapshot) rather than
    letting the writer buffer without bound.
    """

    def __init__(
        self,
        engine,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        retain: int = 4096,
        heartbeat_interval: float = 0.5,
        max_queue: int = 16384,
    ) -> None:
        if retain < 1:
            raise ValueError(f"retain must be >= 1, got {retain}")
        self._engine = engine
        self._retain = retain
        self._heartbeat = heartbeat_interval
        self._max_queue = max_queue
        self._mutex = threading.Lock()
        self._ring: Deque[WALRecord] = deque()
        self._ring_base = engine.graph_version
        self._version = engine.graph_version
        self._peers: Dict[int, _Peer] = {}
        self._peer_ids = iter(range(1, 1 << 62)).__next__
        self._threads: List[threading.Thread] = []
        self._stopped = threading.Event()
        self.snapshots_sent = 0
        self.records_published = 0
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(16)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        engine.dynamic_index.subscribe(self._on_commit)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="esd-repl-accept", daemon=True
        )

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "ReplicationPublisher":
        if not self._accept_thread.is_alive() and not self._stopped.is_set():
            self._accept_thread.start()
        return self

    def stop(self) -> None:
        if self._stopped.is_set():
            return
        self._stopped.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._mutex:
            peers = list(self._peers.values())
        for peer in peers:
            peer.kill()
        if self._accept_thread.is_alive():
            self._accept_thread.join(timeout=2)

    # -- publish side ----------------------------------------------------------

    def _on_commit(self, kind: str, edge, version: int) -> None:
        # Runs under the engine's write lock: ring append + fan-out are
        # atomic with the commit, so peers registered under the read
        # lock can never miss a version.
        record = WALRecord(op=kind, u=edge[0], v=edge[1], version=version)
        with self._mutex:
            self._version = version
            self._ring.append(record)
            while len(self._ring) > self._retain:
                self._ring_base = self._ring.popleft().version
            self.records_published += 1
            for peer in self._peers.values():
                if peer.dead:
                    continue
                try:
                    peer.queue.put_nowait(record)
                except Full:
                    peer.kill()  # reconnect-and-catch-up beats unbounded RAM

    # -- accept / per-peer service ---------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopped.is_set():
            try:
                sock, addr = self._listener.accept()
            except OSError:
                return
            thread = threading.Thread(
                target=self._serve_peer, args=(sock, addr),
                name="esd-repl-peer", daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _serve_peer(self, sock: socket.socket, addr) -> None:
        peer: Optional[_Peer] = None
        try:
            sock.settimeout(5.0)
            frame = recv_frame(sock)
            if frame is None or frame[0] != FRAME_HELLO:
                raise ReplicationError("expected hello frame")
            hello = _json_payload(frame[1])
            applied = hello.get("applied_version")
            if not isinstance(applied, int):
                raise ReplicationError(f"malformed hello: {hello!r}")
            name = str(hello.get("name") or f"{addr[0]}:{addr[1]}")
            # Under the engine read lock no commit can land, so the
            # snapshot/backlog decision plus peer registration is
            # atomic with respect to the stream.
            with self._engine.read_locked():
                current = self._engine.graph_version
                with self._mutex:
                    snapshot_bytes: Optional[bytes] = None
                    if self._ring_base <= applied <= current:
                        backlog = [
                            r for r in self._ring if r.version > applied
                        ]
                    else:
                        with TRACER.span(
                            "repl.snapshot", version=current, peer=name
                        ):
                            snapshot_bytes = encode_snapshot(
                                self._engine.dynamic_index.export_state()
                            )
                        backlog = []
                    peer = _Peer(name, sock, addr, self._max_queue)
                    peer.acked_version = applied
                    self._peers[self._peer_ids()] = peer
            sock.settimeout(None)
            ack_thread = threading.Thread(
                target=self._ack_loop, args=(peer,),
                name="esd-repl-ack", daemon=True,
            )
            ack_thread.start()
            with TRACER.span(
                "repl.stream", peer=name,
                mode="snapshot" if snapshot_bytes is not None else "records",
            ):
                if snapshot_bytes is not None:
                    send_frame(peer.sock, FRAME_SNAPSHOT, snapshot_bytes)
                    peer.snapshot_sent = True
                    self.snapshots_sent += 1
                for record in backlog:
                    send_json(
                        peer.sock, FRAME_RECORD, record_to_payload(record)
                    )
                    peer.records_sent += 1
            send_json(peer.sock, FRAME_VERSION, {"version": current})
            self._sender_loop(peer)
        except (OSError, ReplicationError):
            pass
        finally:
            if peer is not None:
                self._remove_peer(peer)
            else:
                try:
                    sock.close()
                except OSError:
                    pass

    def _sender_loop(self, peer: _Peer) -> None:
        while not peer.dead and not self._stopped.is_set():
            try:
                record = peer.queue.get(timeout=self._heartbeat)
            except Empty:
                send_json(
                    peer.sock, FRAME_VERSION, {"version": self._version}
                )
                continue
            send_json(peer.sock, FRAME_RECORD, record_to_payload(record))
            peer.records_sent += 1

    def _ack_loop(self, peer: _Peer) -> None:
        try:
            while not peer.dead:
                frame = recv_frame(peer.sock)
                if frame is None:
                    break
                ftype, payload = frame
                if ftype != FRAME_ACK:
                    break
                ack = _json_payload(payload)
                version = ack.get("applied_version")
                if isinstance(version, int):
                    peer.acked_version = max(peer.acked_version, version)
                    peer.last_ack = time.monotonic()
        except (OSError, ReplicationError):
            pass
        finally:
            peer.kill()  # wakes the sender out of its queue wait

    def _remove_peer(self, peer: _Peer) -> None:
        peer.kill()
        with self._mutex:
            for key, value in list(self._peers.items()):
                if value is peer:
                    del self._peers[key]

    # -- introspection ---------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        with self._mutex:
            peers = list(self._peers.values())
            ring_len = len(self._ring)
            ring_base = self._ring_base
            version = self._version
        now = time.monotonic()
        return {
            "address": list(self.address),
            "version": version,
            "retained_records": ring_len,
            "retained_base_version": ring_base,
            "records_published": self.records_published,
            "snapshots_sent": self.snapshots_sent,
            "replicas": {
                peer.name: {
                    "acked_version": peer.acked_version,
                    "lag": max(0, version - peer.acked_version),
                    "snapshot_sent": peer.snapshot_sent,
                    "records_sent": peer.records_sent,
                    "connected_seconds": round(now - peer.connected_at, 3),
                    "last_ack_seconds": round(now - peer.last_ack, 3),
                }
                for peer in peers
                if not peer.dead
            },
        }


class ReplicationTailer:
    """Replica side: maintain the connection to the writer's publisher.

    Runs on a daemon thread (the replica's *serve* path stays on the
    event loop; only the replication client blocks here).  The three
    callbacks run on this thread:

    * ``on_snapshot(state_dict)`` -- replace the replica's whole state;
    * ``on_record(record) -> bool`` -- apply one mutation; returning
      ``False`` signals a gap/out-of-sync state and forces a reconnect
      (whose hello will request a snapshot when needed);
    * ``on_writer_version(v)`` -- heartbeat, for lag accounting.

    ``get_applied()`` supplies the hello's ``applied_version`` (``-1``
    when the replica has no state yet).
    """

    def __init__(
        self,
        writer_host: str,
        writer_port: int,
        *,
        name: str,
        get_applied: Callable[[], int],
        on_snapshot: Callable[[Dict[str, Any]], None],
        on_record: Callable[[WALRecord], bool],
        on_writer_version: Callable[[int], None],
        reconnect_backoff: float = 0.2,
        max_backoff: float = 2.0,
        recv_timeout: float = 5.0,
    ) -> None:
        self._writer = (writer_host, writer_port)
        self._name = name
        self._get_applied = get_applied
        self._on_snapshot = on_snapshot
        self._on_record = on_record
        self._on_writer_version = on_writer_version
        self._backoff = reconnect_backoff
        self._max_backoff = max_backoff
        self._recv_timeout = recv_timeout
        self._stop = threading.Event()
        self._sock: Optional[socket.socket] = None
        self._thread = threading.Thread(
            target=self._run, name=f"esd-tail-{name}", daemon=True
        )
        self.connected = False
        self.reconnects = 0
        self.snapshots_loaded = 0
        self.records_applied = 0

    def start(self) -> "ReplicationTailer":
        if not self._thread.is_alive() and not self._stop.is_set():
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._stop.is_set():
            return
        self._stop.set()
        sock = self._sock
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        if self._thread.is_alive():
            self._thread.join(timeout=2)

    # -- internals -------------------------------------------------------------

    def _run(self) -> None:
        backoff = self._backoff
        while not self._stop.is_set():
            try:
                self._session()
                backoff = self._backoff  # a session ran: reset the backoff
            except (OSError, ReplicationError):
                pass
            if self._stop.is_set():
                return
            self.connected = False
            self.reconnects += 1
            self._stop.wait(backoff)
            backoff = min(self._max_backoff, backoff * 2)

    def _session(self) -> None:
        from repro.persistence.snapshot import decode_snapshot

        sock = socket.create_connection(self._writer, timeout=2.0)
        self._sock = sock
        try:
            sock.settimeout(self._recv_timeout)
            send_json(
                sock, FRAME_HELLO,
                {"name": self._name, "applied_version": self._get_applied()},
            )
            self.connected = True
            while not self._stop.is_set():
                frame = recv_frame(sock)
                if frame is None:
                    return
                ftype, payload = frame
                if ftype == FRAME_SNAPSHOT:
                    state = decode_snapshot(payload)
                    self._on_snapshot(state)
                    self.snapshots_loaded += 1
                    send_json(
                        sock, FRAME_ACK,
                        {"applied_version": self._get_applied()},
                    )
                elif ftype == FRAME_RECORD:
                    record = record_from_payload(payload)
                    if not self._on_record(record):
                        return  # out of sync: reconnect renegotiates
                    self.records_applied += 1
                    send_json(
                        sock, FRAME_ACK,
                        {"applied_version": self._get_applied()},
                    )
                elif ftype == FRAME_VERSION:
                    version = _json_payload(payload).get("version")
                    if isinstance(version, int):
                        self._on_writer_version(version)
                # Any other frame type from the writer is ignored.
        finally:
            self.connected = False
            self._sock = None
            try:
                sock.close()
            except OSError:
                pass

    def status(self) -> Dict[str, Any]:
        return {
            "writer": list(self._writer),
            "connected": self.connected,
            "reconnects": self.reconnects,
            "snapshots_loaded": self.snapshots_loaded,
            "records_applied": self.records_applied,
        }
