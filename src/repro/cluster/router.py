"""The cluster router: one client-facing address over writer + replicas.

The router speaks the same JSON line protocol as every other node and
runs entirely on one :class:`~repro.cluster.eventloop.EventLoop`
thread: client connections *and* the persistent backend links to the
writer and each replica are all registered in the same selector, so a
request is parsed, routed, proxied, and answered without a single
per-connection thread.

Routing policy
--------------
* **Writes** (``update``, and the stateful ``watch``/``changes``/
  ``unwatch`` feeds) are forwarded to the single writer.  When the
  writer link is down they fail *fast* with ``unavailable`` -- no
  queueing -- while reads keep flowing to replicas (graceful
  degradation).
* **Reads** (``topk``, ``score``, ``stats``) -- including any
  ``metric`` selector, which is proxied verbatim and validated by the
  serving backend -- are load-balanced over
  the healthy, non-evicted replicas whose applied version satisfies the
  request's *version token*: the effective minimum is
  ``max(request.min_version, connection token)``, where the connection
  token is the newest ``graph_version`` this client has ever seen
  through this router connection.  That yields read-your-writes and
  monotonic reads without any client cooperation; explicit
  ``min_version`` fields extend the guarantee across connections.  The
  chosen replica re-validates the token (the router injects it into
  the forwarded request), so a stale router view degrades to a retry,
  never a stale read.  When no replica qualifies, the read falls back
  to the writer.
* **Health**: every ``probe_interval`` the router probes each backend
  with ``cluster-info``; replicas whose replication lag (writer version
  minus applied version) exceeds ``max_lag`` are *evicted* from the
  read pool until they catch back up below ``max_lag / 2``
  (hysteresis).  Dead links are retried with exponential backoff, and
  every eviction/restoration/disconnect counts as a failover event in
  the metrics.

Responses stream back by FIFO correlation per backend link (each
backend answers one connection's requests in order), so proxied bytes
pass through untouched -- request ids included.  A backend that misses
its deadline poisons the FIFO, so the link is reset and all its
in-flight requests are answered ``unavailable``.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.kernels.shm import shm_metrics
from repro.obs.promtext import http_metrics_response, render_prometheus
from repro.obs.registry import UnifiedRegistry
from repro.obs.trace import TRACER
from repro.service import protocol
from repro.service.metrics import MetricsRegistry
from repro.service.protocol import ProtocolError
from repro.cluster.eventloop import Channel, EventLoop

#: Ops that must reach the writer (mutations and stateful feeds).
WRITE_OPS = frozenset({"update", "watch", "changes", "unwatch"})
#: Ops load-balanced across replicas.
READ_OPS = frozenset({"topk", "score", "stats"})

#: Seconds of request timestamps kept per backend for QPS estimation.
_QPS_WINDOW = 5.0


@dataclass
class RouterConfig:
    """Tunables for one :class:`Router`."""

    host: str = "127.0.0.1"
    port: int = 0  #: 0 = ephemeral; read the bound port from ``address``
    writer: Optional[Tuple[str, int]] = None  #: writer's *client* address
    replicas: List[Tuple[str, str, int]] = field(default_factory=list)
    #: eviction threshold: replication lag in versions before a replica
    #: leaves the read pool (bounded staleness)
    max_lag: int = 256
    probe_interval: float = 0.25  #: seconds between backend health probes
    request_timeout: float = 10.0  #: seconds before a proxied request fails
    idle_timeout: float = 300.0  #: seconds before an idle client is dropped
    reconnect_backoff: float = 0.25
    max_backoff: float = 2.0


class _Pending:
    """One proxied request awaiting its backend response."""

    __slots__ = ("channel", "request_id", "deadline", "op")

    def __init__(self, channel, request_id, deadline, op):
        self.channel = channel  # None marks an internal health probe
        self.request_id = request_id
        self.deadline = deadline
        self.op = op


class _Backend:
    """Router-side state for one upstream node (writer or replica)."""

    __slots__ = (
        "name", "kind", "host", "port", "channel", "pending",
        "applied_version", "evicted", "next_retry", "failures",
        "routed", "window", "last_probe", "was_connected",
    )

    def __init__(self, name: str, kind: str, host: str, port: int) -> None:
        self.name = name
        self.kind = kind  # "writer" | "replica"
        self.host = host
        self.port = port
        self.channel: Optional[Channel] = None
        self.pending: Deque[_Pending] = deque()
        self.applied_version = -1
        self.evicted = False
        self.next_retry = 0.0
        self.failures = 0
        self.routed = 0
        self.window: Deque[float] = deque()
        self.last_probe = 0.0
        self.was_connected = False

    @property
    def connected(self) -> bool:
        return self.channel is not None

    def qps(self, now: float) -> float:
        while self.window and now - self.window[0] > _QPS_WINDOW:
            self.window.popleft()
        return round(len(self.window) / _QPS_WINDOW, 3)


class Router:
    """The coordinator process (see module docstring)."""

    def __init__(self, config: RouterConfig) -> None:
        self.config = config
        self.metrics = MetricsRegistry()
        self._loop = EventLoop()
        self._loop.overflow_response = protocol.encode(
            protocol.error_response(
                protocol.BAD_REQUEST,
                f"request line exceeds {protocol.MAX_LINE_BYTES} bytes",
            )
        )
        self._listener = self._loop.listen(
            config.host, config.port, self._on_client_line,
            idle_timeout=config.idle_timeout,
        )
        self._writer: Optional[_Backend] = (
            _Backend("writer", "writer", *config.writer)
            if config.writer is not None
            else None
        )
        self._replicas: List[_Backend] = [
            _Backend(name, "replica", host, port)
            for name, host, port in config.replicas
        ]
        self._writer_version = -1
        self._rr = 0  # round-robin cursor over eligible replicas
        self._loop.add_timer(self._tick)
        self.obs = UnifiedRegistry(self.metrics)
        self.obs.add_source("cluster", self.status)
        self.obs.add_source("eventloop", self._loop.snapshot)
        self.obs.add_source("shm", shm_metrics)
        self._thread: Optional[threading.Thread] = None
        self._shutdown_lock = threading.Lock()
        self._closed = False

    # -- lifecycle -------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound client ``(host, port)`` (valid once constructed)."""
        return self._listener.address

    def serve_forever(self) -> None:
        """Route on the calling thread until :meth:`shutdown`."""
        self._loop.run()

    def start(self) -> "Router":
        """Route on a background daemon thread; returns ``self``."""
        if self._thread is not None:
            raise RuntimeError("router already started")
        self._thread = threading.Thread(
            target=self._loop.run, name="esd-router", daemon=True
        )
        self._thread.start()
        return self

    def wait_ready(self, timeout: float = 10.0) -> bool:
        """Block until every configured backend link is up (or timeout).

        Callable from any thread (it only polls :meth:`status`).  Use it
        after :meth:`start` before advertising the router to clients, so
        the first write does not race the initial backend connects.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status = self.status()
            writer_ok = (
                self._writer is None or status["writer"]["connected"]
            )
            if writer_ok and all(
                entry["connected"] for entry in status["replicas"]
            ):
                return True
            time.sleep(0.02)
        return False

    def shutdown(self, join_timeout: float = 5.0) -> None:
        """Stop routing; idempotent, bounded join."""
        with self._shutdown_lock:
            if self._closed:
                return
            self._closed = True
        self._loop.stop()
        if self._thread is not None:
            self._thread.join(timeout=join_timeout)
            self._thread = None

    def __enter__(self) -> "Router":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- client side (event-loop thread) ---------------------------------------

    def metrics_text(self) -> str:
        return render_prometheus(self.obs.snapshot())

    def _reply(self, channel: Channel, response: Dict[str, Any]) -> None:
        channel.send_bytes(protocol.encode(response))

    def _on_client_line(self, channel: Channel, line: bytes) -> None:
        if protocol.is_http_get(line):
            channel.send_bytes(http_metrics_response(self.metrics_text()))
            channel.close(flush=True)
            return
        try:
            message = protocol.decode_line(line)
        except ProtocolError as exc:
            self._reply(
                channel, protocol.error_response(exc.code, exc.message)
            )
            return
        request_id = message.get("id")
        op = message["op"]
        try:
            if op == "ping":
                self._reply(channel, protocol.ok_response("pong", request_id))
            elif op == "cluster-status":
                self._reply(
                    channel, protocol.ok_response(self.status(), request_id)
                )
            elif op == "metrics":
                self._reply(
                    channel,
                    protocol.ok_response(self.obs.snapshot(), request_id),
                )
            elif op == "metrics-text":
                from repro.service.server import PROMETHEUS_CONTENT_TYPE

                self._reply(
                    channel,
                    protocol.ok_response(
                        {"content_type": PROMETHEUS_CONTENT_TYPE,
                         "text": self.metrics_text()},
                        request_id,
                    ),
                )
            elif op in WRITE_OPS:
                self._route_write(channel, message, request_id)
            elif op in READ_OPS:
                self._route_read(channel, message, request_id)
            else:
                raise ProtocolError(
                    protocol.UNKNOWN_OP,
                    f"op {op!r} is not served by the router",
                )
        except ProtocolError as exc:
            self._reply(
                channel,
                protocol.error_response(exc.code, exc.message, request_id),
            )

    def _route_write(
        self, channel: Channel, message: Dict[str, Any], request_id
    ) -> None:
        writer = self._writer
        if writer is None or not writer.connected:
            # Fail fast: a queued write behind a dead writer only turns
            # one failure into a timeout storm.
            self.metrics.incr("writes_failed_fast")
            raise ProtocolError(
                protocol.UNAVAILABLE,
                "the cluster writer is down; writes are unavailable "
                "(reads keep serving)",
            )
        self.metrics.incr("writes_forwarded")
        self._forward(writer, channel, message, request_id)

    def _route_read(
        self, channel: Channel, message: Dict[str, Any], request_id
    ) -> None:
        metric = message.get("metric")
        if isinstance(metric, str) and metric.isidentifier():
            # Per-metric read-classification counter.  The message is
            # proxied verbatim, so the backend still validates the name;
            # the identifier gate only keeps counter keys label-safe.
            self.metrics.incr(f"reads_metric_{metric}")
        required = max(
            protocol.int_field(message, "min_version", default=0, minimum=0),
            channel.attrs.get("version_token", 0),
        )
        eligible = [
            backend
            for backend in self._replicas
            if backend.connected
            and not backend.evicted
            and backend.applied_version >= required
        ]
        if eligible:
            # Round-robin among the least-loaded candidates.
            depth = min(len(backend.pending) for backend in eligible)
            candidates = [
                backend for backend in eligible
                if len(backend.pending) == depth
            ]
            self._rr += 1
            backend = candidates[self._rr % len(candidates)]
            self.metrics.incr("reads_routed")
        elif self._writer is not None and self._writer.connected:
            # No replica is fresh enough: the writer is always current.
            backend = self._writer
            self.metrics.incr("reads_fallback_writer")
        else:
            self.metrics.incr("reads_failed")
            raise ProtocolError(
                protocol.UNAVAILABLE,
                f"no replica has caught up to version {required} and the "
                "writer is down",
            )
        if required and backend.kind == "replica":
            message = dict(message, min_version=required)
        self._forward(backend, channel, message, request_id)

    def _forward(
        self, backend: _Backend, channel: Channel,
        message: Dict[str, Any], request_id,
    ) -> None:
        now = time.monotonic()
        backend.pending.append(
            _Pending(
                channel, request_id,
                now + self.config.request_timeout, message["op"],
            )
        )
        backend.routed += 1
        backend.window.append(now)
        with TRACER.span(
            "router.forward", op=message["op"], backend=backend.name
        ):
            backend.channel.send_bytes(protocol.encode(message))

    # -- backend side (event-loop thread) --------------------------------------

    def _on_backend_line(self, backend: _Backend, line: bytes) -> None:
        if not backend.pending:
            self._fail_backend(backend, "unsolicited backend response")
            return
        pending = backend.pending.popleft()
        version: Optional[int] = None
        try:
            response = json.loads(line)
        except ValueError:
            response = None
        if isinstance(response, dict) and response.get("ok"):
            result = response.get("result")
            if isinstance(result, dict):
                candidate = result.get("graph_version")
                if isinstance(candidate, int):
                    version = candidate
                writer_version = result.get("writer_version")
                if isinstance(writer_version, int):
                    self._writer_version = max(
                        self._writer_version, writer_version
                    )
        if version is not None:
            if backend.kind == "replica":
                backend.applied_version = max(
                    backend.applied_version, version
                )
            else:
                self._writer_version = max(self._writer_version, version)
        if pending.channel is None:
            return  # internal health probe; versions harvested above
        if pending.channel.closed:
            return
        if version is not None:
            pending.channel.attrs["version_token"] = max(
                pending.channel.attrs.get("version_token", 0), version
            )
        pending.channel.send_bytes(bytes(line) + b"\n")

    def _on_backend_close(self, backend: _Backend, channel: Channel) -> None:
        if backend.channel is not channel:
            return  # an already-replaced link
        self._fail_backend(backend, "connection lost")

    def _fail_backend(self, backend: _Backend, reason: str) -> None:
        was_connected = backend.connected
        channel, backend.channel = backend.channel, None
        pending, backend.pending = backend.pending, deque()
        if channel is not None and not channel.closed:
            channel.on_close = None  # avoid re-entering via the close hook
            channel.close()
        for entry in pending:
            if entry.channel is None or entry.channel.closed:
                continue
            self._reply(
                entry.channel,
                protocol.error_response(
                    protocol.UNAVAILABLE,
                    f"backend {backend.name} failed mid-request: {reason}",
                    entry.request_id,
                ),
            )
        backend.failures += 1
        backoff = min(
            self.config.max_backoff,
            self.config.reconnect_backoff * (2 ** min(backend.failures, 6)),
        )
        backend.next_retry = time.monotonic() + backoff
        if was_connected:
            backend.was_connected = False
            self.metrics.incr("failover_events")
            self.metrics.incr(f"{backend.kind}_disconnects")

    # -- periodic maintenance (event-loop tick) --------------------------------

    def _backends(self) -> List[_Backend]:
        backends = list(self._replicas)
        if self._writer is not None:
            backends.append(self._writer)
        return backends

    def _tick(self) -> None:
        now = time.monotonic()
        for backend in self._backends():
            # A backend that blew its deadline has poisoned its FIFO:
            # reset the link, which also answers every in-flight request.
            if backend.pending and backend.pending[0].deadline <= now:
                self.metrics.incr("backend_timeouts")
                self._fail_backend(backend, "request timeout")
            if not backend.connected and now >= backend.next_retry:
                self._connect_backend(backend)
            if backend.connected and (
                now - backend.last_probe >= self.config.probe_interval
            ):
                backend.last_probe = now
                self._probe(backend)
        self._apply_staleness_policy()

    def _connect_backend(self, backend: _Backend) -> None:
        try:
            channel = self._loop.connect(
                backend.host, backend.port,
                lambda channel, line, b=backend: self._on_backend_line(b, line),
                on_close=lambda channel, b=backend: self._on_backend_close(
                    b, channel
                ),
                timeout=0.5,
            )
        except OSError:
            backend.failures += 1
            backend.next_retry = time.monotonic() + min(
                self.config.max_backoff,
                self.config.reconnect_backoff
                * (2 ** min(backend.failures, 6)),
            )
            return
        backend.channel = channel
        backend.failures = 0
        backend.last_probe = 0.0
        if not backend.was_connected:
            backend.was_connected = True
            self.metrics.incr(f"{backend.kind}_connects")

    def _probe(self, backend: _Backend) -> None:
        backend.pending.append(
            _Pending(
                None, None,
                time.monotonic() + self.config.request_timeout,
                "cluster-info",
            )
        )
        backend.channel.send_bytes(protocol.encode({"op": "cluster-info"}))

    def _apply_staleness_policy(self) -> None:
        if self._writer_version < 0:
            return
        restore_below = max(0, self.config.max_lag // 2)
        for backend in self._replicas:
            if backend.applied_version < 0:
                continue
            lag = max(0, self._writer_version - backend.applied_version)
            if not backend.evicted and lag > self.config.max_lag:
                backend.evicted = True
                self.metrics.incr("failover_events")
                self.metrics.incr("replicas_evicted")
            elif backend.evicted and lag <= restore_below:
                backend.evicted = False
                self.metrics.incr("replicas_restored")

    # -- introspection ---------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        now = time.monotonic()
        writer = self._writer
        return {
            "role": "router",
            "address": list(self.address),
            "writer_version": self._writer_version,
            "max_lag": self.config.max_lag,
            "writer": (
                {
                    "address": [writer.host, writer.port],
                    "connected": writer.connected,
                    "pending": len(writer.pending),
                    "routed": writer.routed,
                    "qps": writer.qps(now),
                }
                if writer is not None
                else None
            ),
            "replicas": [
                {
                    "name": backend.name,
                    "address": [backend.host, backend.port],
                    "connected": backend.connected,
                    "evicted": backend.evicted,
                    "applied_version": backend.applied_version,
                    "lag": (
                        max(0, self._writer_version - backend.applied_version)
                        if self._writer_version >= 0
                        and backend.applied_version >= 0
                        else None
                    ),
                    "pending": len(backend.pending),
                    "routed": backend.routed,
                    "qps": backend.qps(now),
                }
                for backend in self._replicas
            ],
        }
