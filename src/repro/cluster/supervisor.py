"""Boot a whole cluster: writer + N replicas as processes, router in-process.

``esd cluster start`` uses :class:`ClusterSupervisor` to spawn the
writer and each replica as its *own OS process* (``python -m repro.cli
cluster writer|replica ...``), scrape the announced addresses from
their stdout, and then run the :class:`~repro.cluster.router.Router`
in the supervisor process.  Children inherit stdout/stderr pipes; each
announces itself with a ``listening on host:port`` line (and the writer
additionally ``replicating on host:port``), the same contract the
kill-9 recovery tests already rely on for the single-node server.

Everything binds ephemeral ports by default so clusters stack up in CI
without port arithmetic; pass explicit ports for a stable production
topology.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, IO, List, Optional, Tuple

from repro.cluster.router import Router, RouterConfig
from repro.kernels.shm import sweep_stale_segments, unlink_namespace

__all__ = [
    "ClusterConfig",
    "ClusterSupervisor",
    "wait_for_address",
]

#: Matches the address announce lines every node prints at startup.
_ADDRESS_RE = re.compile(
    r"(listening|replicating) on (?P<host>[\w.\-]+):(?P<port>\d+)"
)


def wait_for_address(
    stream: IO[str], label: str, *, timeout: float = 30.0
) -> Tuple[str, int]:
    """Scrape the next ``<label> on host:port`` announce line.

    Reads ``stream`` line by line (blocking reads; the per-line timeout
    is enforced against a deadline) until a line matches, and returns
    the ``(host, port)``.  Raises ``RuntimeError`` on EOF or timeout --
    a child that died before announcing is a boot failure, not a hang.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = stream.readline()
        if not line:
            raise RuntimeError(
                f"child exited before announcing '{label} on host:port'"
            )
        match = _ADDRESS_RE.search(line)
        if match and match.group(1) == label:
            return match.group("host"), int(match.group("port"))
    raise RuntimeError(f"timed out waiting for '{label}' announce line")


@dataclass
class ClusterConfig:
    """Topology and tunables for one :class:`ClusterSupervisor`."""

    replicas: int = 2
    host: str = "127.0.0.1"
    router_port: int = 0  #: 0 = ephemeral (read ``supervisor.address``)
    writer_port: int = 0  #: writer's client port
    repl_port: int = 0  #: writer's replication port
    replica_ports: List[int] = field(default_factory=list)  #: pad with 0s
    #: extra CLI args for the writer child (graph source, --data-dir,
    #: --no-fsync, ...), passed through verbatim
    writer_args: List[str] = field(default_factory=list)
    max_lag: int = 256
    boot_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.replicas < 0:
            raise ValueError(f"replicas must be >= 0, got {self.replicas}")


class ClusterSupervisor:
    """Spawns the children, runs the router, tears everything down."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.writer_proc: Optional[subprocess.Popen] = None
        self.replica_procs: Dict[str, subprocess.Popen] = {}
        self.writer_address: Optional[Tuple[str, int]] = None
        self.repl_address: Optional[Tuple[str, int]] = None
        self.replica_addresses: Dict[str, Tuple[str, int]] = {}
        self.router: Optional[Router] = None
        #: Shared-memory namespace the replicas publish/map snapshot CSR
        #: segments under.  Prefixed ``esd-<supervisor pid>-`` so
        #: :func:`sweep_stale_segments` can reclaim it even if this
        #: process dies without running :meth:`stop`.
        self.shm_namespace = f"esd-{os.getpid()}-snap"

    # -- boot ------------------------------------------------------------------

    def _spawn(self, argv: List[str]) -> subprocess.Popen:
        return subprocess.Popen(
            [sys.executable, "-m", "repro.cli", *argv],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            bufsize=1,  # line buffered: announce lines arrive promptly
        )

    def start(self) -> "ClusterSupervisor":
        """Boot writer, replicas, then the router; returns ``self``."""
        config = self.config
        try:
            self.writer_proc = self._spawn(
                [
                    "cluster", "writer",
                    "--host", config.host,
                    "--port", str(config.writer_port),
                    "--repl-port", str(config.repl_port),
                    *config.writer_args,
                ]
            )
            self.writer_address = wait_for_address(
                self.writer_proc.stdout, "listening",
                timeout=config.boot_timeout,
            )
            self.repl_address = wait_for_address(
                self.writer_proc.stdout, "replicating",
                timeout=config.boot_timeout,
            )
            for i in range(config.replicas):
                name = f"replica-{i}"
                port = (
                    config.replica_ports[i]
                    if i < len(config.replica_ports)
                    else 0
                )
                proc = self._spawn(
                    [
                        "cluster", "replica",
                        "--name", name,
                        "--host", config.host,
                        "--port", str(port),
                        "--writer-host", self.repl_address[0],
                        "--writer-repl-port", str(self.repl_address[1]),
                        "--shm-namespace", self.shm_namespace,
                    ]
                )
                self.replica_procs[name] = proc
                self.replica_addresses[name] = wait_for_address(
                    proc.stdout, "listening", timeout=config.boot_timeout
                )
            self.router = Router(
                RouterConfig(
                    host=config.host,
                    port=config.router_port,
                    writer=self.writer_address,
                    replicas=[
                        (name, host, port)
                        for name, (host, port)
                        in self.replica_addresses.items()
                    ],
                    max_lag=config.max_lag,
                )
            ).start()
            if not self.router.wait_ready(config.boot_timeout):
                raise RuntimeError(
                    "router could not reach every backend: "
                    f"{self.router.status()}"
                )
        except Exception:
            self.stop()
            raise
        return self

    @property
    def address(self) -> Tuple[str, int]:
        """The router's client-facing ``(host, port)``."""
        if self.router is None:
            raise RuntimeError("cluster not started")
        return self.router.address

    def serve_forever(self) -> None:
        """Block until :meth:`stop` (the router thread is already running)."""
        if self.router is None:
            raise RuntimeError("cluster not started")
        thread = self.router._thread
        while thread is not None and thread.is_alive():
            thread.join(timeout=0.5)

    # -- teardown --------------------------------------------------------------

    def _reap(self, proc: subprocess.Popen, grace: float) -> None:
        if proc.poll() is None:
            proc.terminate()
            try:
                proc.wait(timeout=grace)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=grace)
        if proc.stdout is not None:
            proc.stdout.close()

    def stop(self, grace: float = 5.0) -> None:
        """Stop the router and reap every child; idempotent."""
        if self.router is not None:
            self.router.shutdown()
            self.router = None
        for proc in self.replica_procs.values():
            self._reap(proc, grace)
        self.replica_procs.clear()
        if self.writer_proc is not None:
            self._reap(self.writer_proc, grace)
            self.writer_proc = None
        # Children are dead; hammer any snapshot segments they published
        # (replicas normally unlink their own, but a killed child can't),
        # then sweep segments orphaned by *other* dead processes.
        unlink_namespace(self.shm_namespace)
        sweep_stale_segments()

    def __enter__(self) -> "ClusterSupervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
