"""The cluster writer: a durable :class:`ESDServer` that ships its WAL.

:class:`WriterNode` *is* an :class:`~repro.service.server.ESDServer` --
same engine, same admission control, same client protocol -- with a
:class:`~repro.cluster.replication.ReplicationPublisher` attached to the
engine's mutation feed.  Every mutation therefore takes exactly one
path: WAL append (when durable) -> apply through the maintenance
machinery -> publish to replicas, all under the engine's write lock, so
the replicated stream is bit-for-bit the committed WAL order.

The writer answers ``cluster-info`` with its ``graph_version`` and the
publisher's per-replica ack/lag table, which is what the router's
health probes and ``esd cluster status`` read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.graph.graph import Graph
from repro.service.server import ESDServer, ServerConfig
from repro.cluster.replication import ReplicationPublisher


@dataclass
class WriterConfig(ServerConfig):
    """A :class:`ServerConfig` plus the replication listener's tunables."""

    repl_host: str = "127.0.0.1"
    repl_port: int = 0  #: 0 = ephemeral; read it from ``repl_address``
    retain: int = 4096  #: committed records kept for record-only catch-up
    heartbeat_interval: float = 0.5  #: idle version-frame cadence (seconds)


class WriterNode(ESDServer):
    """One writer process: client service + replication publisher."""

    def __init__(
        self,
        graph: Optional[Graph] = None,
        config: Optional[WriterConfig] = None,
    ) -> None:
        self.cluster_config = config or WriterConfig()
        super().__init__(graph, self.cluster_config)
        self.publisher = ReplicationPublisher(
            self.engine,
            host=self.cluster_config.repl_host,
            port=self.cluster_config.repl_port,
            retain=self.cluster_config.retain,
            heartbeat_interval=self.cluster_config.heartbeat_interval,
        )
        self.engine.obs.add_source("replication", self.publisher.status)

    @property
    def repl_address(self):
        """The bound replication ``(host, port)``."""
        return self.publisher.address

    def serve_forever(self) -> None:
        self.publisher.start()
        super().serve_forever()

    def start(self) -> "WriterNode":
        self.publisher.start()
        super().start()
        return self

    def shutdown(self, join_timeout: float = 5.0) -> None:
        self.publisher.stop()
        super().shutdown(join_timeout)

    def cluster_info(self) -> Dict[str, Any]:
        return {
            "role": "writer",
            "graph_version": self.engine.graph_version,
            "replication": self.publisher.status(),
        }

    def _dispatch(self, message: Dict[str, Any]) -> Any:
        if message["op"] == "cluster-info":
            return self.cluster_info()
        return super()._dispatch(message)
