"""Core algorithms: the paper's primary contribution."""

from repro.core.baselines import (
    topk_common_neighbors,
    topk_edge_betweenness,
    topk_exact,
)
from repro.core.bounds import (
    BOUND_RULES,
    all_bounds,
    common_neighbor_bound,
    min_degree_bound,
)
from repro.core.build import (
    build_index_basic,
    build_index_bitset,
    build_index_fast,
    build_index_fast_with_components,
    compute_components_fast,
    index_from_sizes,
)
from repro.core.diversity import (
    all_edge_structural_diversities,
    all_ego_component_sizes,
    edge_structural_diversity,
    ego_component_sizes,
    score_from_sizes,
)
from repro.core.index import ESDIndex
from repro.core.ordering_search import topk_ordering
from repro.core.maintenance import (
    DynamicESDIndex,
    MutationCounters,
    UpdateStats,
)
from repro.core.monitor import TopKChange, TopKMonitor
from repro.core.online import (
    OnlineSearchStats,
    online_bfs,
    online_bfs_plus,
    topk_online,
)
from repro.core.pair_diversity import (
    LinkPredictionResult,
    link_prediction_experiment,
    pair_structural_diversity,
    rank_candidate_links,
    topk_pairs_online,
)
from repro.core.parallel import (
    build_index_parallel,
    parallel_component_sizes,
    parallel_four_cliques,
    simulate_parallel_speedup,
)
from repro.core.vertex_index import (
    VertexESDIndex,
    build_vertex_index,
    vertex_components_fast,
)
from repro.core.vertex_diversity import (
    all_vertex_structural_diversities,
    topk_vertex_online,
    vertex_structural_diversity,
)

__all__ = [
    "edge_structural_diversity",
    "ego_component_sizes",
    "all_edge_structural_diversities",
    "all_ego_component_sizes",
    "score_from_sizes",
    "topk_exact",
    "min_degree_bound",
    "common_neighbor_bound",
    "all_bounds",
    "BOUND_RULES",
    "topk_online",
    "topk_ordering",
    "online_bfs",
    "online_bfs_plus",
    "OnlineSearchStats",
    "ESDIndex",
    "build_index_basic",
    "build_index_bitset",
    "build_index_fast",
    "build_index_fast_with_components",
    "compute_components_fast",
    "index_from_sizes",
    "build_index_parallel",
    "parallel_four_cliques",
    "parallel_component_sizes",
    "simulate_parallel_speedup",
    "DynamicESDIndex",
    "UpdateStats",
    "MutationCounters",
    "TopKMonitor",
    "TopKChange",
    "VertexESDIndex",
    "build_vertex_index",
    "vertex_components_fast",
    "topk_common_neighbors",
    "topk_edge_betweenness",
    "vertex_structural_diversity",
    "all_vertex_structural_diversities",
    "topk_vertex_online",
    "pair_structural_diversity",
    "topk_pairs_online",
    "rank_candidate_links",
    "link_prediction_experiment",
    "LinkPredictionResult",
]
