"""Comparison baselines from the paper's effectiveness study (Exp-7/8).

* ``CN`` -- rank edges by common-neighbor count ``|N(u) ∩ N(v)|``.
* ``BT`` -- rank edges by betweenness centrality.
* exact -- the full-scan structural-diversity top-k (ground truth),
  re-exported from :mod:`repro.core.diversity`.

The paper's finding: ESD edges bridge many social contexts while keeping
strong ties; CN edges are dense single-community pairs; BT edges are weak
barbell links with few common neighbors.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.analytics.betweenness import topk_edge_betweenness
from repro.core.diversity import topk_exact
from repro.graph.graph import Edge, Graph

__all__ = [
    "topk_common_neighbors",
    "topk_edge_betweenness",
    "topk_exact",
]


def topk_common_neighbors(graph: Graph, k: int) -> List[Tuple[Edge, int]]:
    """Top-k edges by ``|N(u) ∩ N(v)|`` (the CN baseline)."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    scored = [
        ((u, v), len(graph.common_neighbors(u, v))) for u, v in graph.edges()
    ]
    scored.sort(key=lambda item: (-item[1], item[0]))
    return scored[:k]
