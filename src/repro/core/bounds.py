"""Upper-bounding rules for edge structural diversity (paper §III).

Two bounds prune the dequeue-twice search:

* **min-degree**: ``⌊min{d(u), d(v)} / τ⌋`` -- O(1) per edge; the
  ego-network has at most ``min{d(u), d(v)}`` vertices, so at most that
  many components of size >= τ fit.
* **common-neighbor**: ``⌊|N(u) ∩ N(v)| / τ⌋`` -- tighter (the
  ego-network has exactly ``|N(u) ∩ N(v)|`` vertices) but costs
  ``O(min{d(u), d(v)})`` per edge to intersect the neighbor sets.

Both dominate ``score``; OnlineBFS uses the first, OnlineBFS+ the second.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.graph.graph import Edge, Graph, Vertex

BoundRule = Callable[[Graph, Vertex, Vertex, int], int]


def min_degree_bound(graph: Graph, u: Vertex, v: Vertex, tau: int) -> int:
    """``⌊min{d(u), d(v)} / τ⌋`` -- the O(1) bound of OnlineBFS."""
    if tau < 1:
        raise ValueError(f"tau must be >= 1, got {tau}")
    return min(graph.degree(u), graph.degree(v)) // tau


def common_neighbor_bound(graph: Graph, u: Vertex, v: Vertex, tau: int) -> int:
    """``⌊|N(u) ∩ N(v)| / τ⌋`` -- the tighter bound of OnlineBFS+."""
    if tau < 1:
        raise ValueError(f"tau must be >= 1, got {tau}")
    return len(graph.common_neighbors(u, v)) // tau


#: Bound rules by name, as selected by ``topk_online(..., bound=...)``.
BOUND_RULES: Dict[str, BoundRule] = {
    "min-degree": min_degree_bound,
    "common-neighbor": common_neighbor_bound,
}


def all_bounds(graph: Graph, tau: int, rule: str) -> Dict[Edge, int]:
    """Evaluate the named bound rule on every edge."""
    try:
        bound = BOUND_RULES[rule]
    except KeyError:
        raise KeyError(
            f"unknown bound rule {rule!r}; choose from {sorted(BOUND_RULES)}"
        ) from None
    return {(u, v): bound(graph, u, v, tau) for u, v in graph.edges()}
