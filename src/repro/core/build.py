"""ESDIndex construction: Algorithm 2 (basic) and Algorithm 3 (4-clique).

Both builders produce identical indexes; they differ in how the connected
components of all edge ego-networks are computed:

* :func:`build_index_basic` (Algorithm 2) runs one BFS per edge over its
  ego-network -- ``O((d_max + log m) α m)``.  Each 4-clique is traversed
  six times (once from each of its edges).
* :func:`build_index_fast` (Algorithm 3) enumerates every 4-clique exactly
  once on the degree-ordered DAG and applies six Union operations on the
  per-edge disjoint-set structures ``M`` (Observation 1) --
  ``O((α γ(n) + log m) α m)``.

The shared second phase loads the component-size multisets into the
:class:`~repro.core.index.ESDIndex` (Algorithm 2 lines 5-15).
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.core.diversity import all_ego_component_sizes
from repro.core.index import ESDIndex
from repro.graph.graph import Edge, Graph, canonical_edge
from repro.graph.ordering import OrientedGraph
from repro.kernels.dispatch import kernels_enabled
from repro.structures.dsu import EdgeComponentSets


def index_from_sizes(sizes: Dict[Edge, Iterable[int]]) -> ESDIndex:
    """Assemble an ESDIndex from per-edge component-size multisets."""
    return ESDIndex.bulk_load(sizes)


def build_index_basic(graph: Graph) -> ESDIndex:
    """Algorithm 2: BFS per edge, then load the index."""
    return index_from_sizes(all_ego_component_sizes(graph))


def initialize_component_sets(graph: Graph) -> Dict[Edge, EdgeComponentSets]:
    """Algorithm 3 lines 1-4: one disjoint-set per edge, seeded with the
    common neighborhood as singletons."""
    return {
        (u, v): EdgeComponentSets(graph.common_neighbors(u, v))
        for u, v in graph.edges()
    }


def apply_four_clique(
    components: Dict[Edge, EdgeComponentSets], a, b, c, d
) -> None:
    """The six Union operations for one 4-clique (Algorithm 3 lines 10-15).

    For every edge of the clique, the two remaining vertices lie in the
    same connected component of that edge's ego-network.
    """
    components[canonical_edge(a, b)].union(c, d)
    components[canonical_edge(a, c)].union(b, d)
    components[canonical_edge(a, d)].union(b, c)
    components[canonical_edge(b, c)].union(a, d)
    components[canonical_edge(b, d)].union(a, c)
    components[canonical_edge(c, d)].union(a, b)


def _union_raw(state: tuple, a, b) -> None:
    """Union on the raw (parent, size) dict pair, path halving + by size.

    The build hot loop performs six of these per 4-clique; bypassing the
    :class:`EdgeComponentSets` method layers roughly halves construction
    time in CPython.
    """
    parent, size = state
    ra = a
    while parent[ra] != ra:
        parent[ra] = parent[parent[ra]]
        ra = parent[ra]
    rb = b
    while parent[rb] != rb:
        parent[rb] = parent[parent[rb]]
        rb = parent[rb]
    if ra == rb:
        return
    if size[ra] < size[rb]:
        ra, rb = rb, ra
    parent[rb] = ra
    size[ra] += size.pop(rb)


def _raw_components_kernel(graph: Graph) -> Dict[Edge, tuple]:
    """Kernel route of :func:`_raw_components`: id-space union-find on the
    CSR snapshot, translated back to label-keyed states.

    The returned dict preserves ``graph.edges()`` iteration order so
    downstream index loading sees the same insertion order as the
    set-based path.
    """
    from repro.kernels.components import csr_raw_components
    from repro.kernels.csr import snapshot_csr

    csr = snapshot_csr(graph)
    edge_pairs, parents, sizes = csr_raw_components(csr)
    label = csr.interner.label
    canon = csr.canonical_label_edge
    by_edge: Dict[Edge, tuple] = {}
    for (a, b), parent, size in zip(edge_pairs, parents, sizes):
        by_edge[canon(a, b)] = (
            {label(w): label(p) for w, p in parent.items()},
            {label(r): s for r, s in size.items()},
        )
    return {edge: by_edge[edge] for edge in graph.edges()}


def _raw_components(graph: Graph) -> Dict[Edge, tuple]:
    """Algorithm 3's M structures as raw (parent, size) dict pairs.

    Lines 1-4 (init from common neighborhoods) fused with lines 6-15 (the
    single-pass 4-clique enumeration and its six unions per clique).
    With kernels enabled the whole pass runs in interned id space
    (:func:`repro.kernels.components.csr_raw_components`).
    """
    if kernels_enabled() and graph.m:
        return _raw_components_kernel(graph)
    raw: Dict[Edge, tuple] = {}
    for u, v in graph.edges():
        common = graph.common_neighbors(u, v)
        raw[(u, v)] = ({w: w for w in common}, {w: 1 for w in common})

    dag = OrientedGraph(graph)
    for u in dag.vertices():
        outs_u = dag.out_neighbors(u)
        for v in outs_u:
            common = outs_u & dag.out_neighbors(v)
            if len(common) < 2:
                continue
            uv_state = raw[(u, v) if u < v else (v, u)]
            for w1 in common:
                # Hoist the two states involving w1 out of the inner loop.
                uw1_state = raw[(u, w1) if u < w1 else (w1, u)]
                vw1_state = raw[(v, w1) if v < w1 else (w1, v)]
                for w2 in dag.out_neighbors(w1):
                    if w2 not in common:
                        continue
                    # 4-clique {u, v, w1, w2}: six unions (Observation 1).
                    _union_raw(uv_state, w1, w2)
                    _union_raw(raw[(w1, w2) if w1 < w2 else (w2, w1)], u, v)
                    _union_raw(uw1_state, v, w2)
                    _union_raw(raw[(u, w2) if u < w2 else (w2, u)], v, w1)
                    _union_raw(vw1_state, u, w2)
                    _union_raw(raw[(v, w2) if v < w2 else (w2, v)], u, w1)
    return raw


def compute_components_fast(graph: Graph) -> Dict[Edge, EdgeComponentSets]:
    """All edge ego-network components via single-pass 4-clique listing."""
    components: Dict[Edge, EdgeComponentSets] = {}
    for edge, (parent, size) in _raw_components(graph).items():
        m = EdgeComponentSets()
        m._dsu._parent = parent
        m._dsu._size = size
        m._dsu._count = len(size)
        components[edge] = m
    return components


def build_index_fast(graph: Graph) -> ESDIndex:
    """Algorithm 3 (ESDIndex+): 4-clique enumeration + union-find.

    The kernel route takes the bitset flood fill over the shared CSR
    snapshot instead: it produces the same component-size multisets
    (already keyed by canonical label edge, no union-find state to
    translate back) and is the faster of the two kernels when only the
    sizes are needed.  The 4-clique union-find kernel
    (:func:`repro.kernels.components.csr_raw_components`) remains the
    route for :func:`compute_components_fast`, where the per-edge ``M``
    structures must survive for dynamic maintenance.
    """
    if kernels_enabled() and graph.m:
        from repro.kernels.components import csr_all_ego_component_sizes
        from repro.kernels.csr import snapshot_csr

        return index_from_sizes(
            csr_all_ego_component_sizes(snapshot_csr(graph))
        )
    return index_from_sizes(
        {
            edge: list(size.values())
            for edge, (_parent, size) in _raw_components(graph).items()
        }
    )


def build_index_bitset(graph: Graph) -> ESDIndex:
    """Bitset-accelerated construction (extension; fastest in pure Python).

    Packs adjacency into big-integer bitsets
    (:class:`repro.graph.bitset.BitsetAdjacency`) so the per-edge
    ego-network component computation runs on word-parallel AND/OR
    operations.  Produces an index identical to the other builders.

    With kernels enabled the bitset layer lives on the shared CSR
    snapshot instead of a private :class:`BitsetAdjacency`, so repeated
    builds of an unchanged graph skip the packing entirely.
    """
    if kernels_enabled() and graph.m:
        return index_from_sizes(all_ego_component_sizes(graph))
    from repro.graph.bitset import BitsetAdjacency

    bits = BitsetAdjacency(graph)
    return index_from_sizes(bits.all_ego_component_sizes(graph))


def build_index_fast_with_components(
    graph: Graph,
) -> Tuple[ESDIndex, Dict[Edge, EdgeComponentSets]]:
    """Like :func:`build_index_fast` but also return the ``M`` structures.

    The dynamic maintenance algorithms (§V) keep ``M`` alive between
    updates; :class:`repro.core.maintenance.DynamicESDIndex` starts from
    this function's output.
    """
    components = compute_components_fast(graph)
    index = index_from_sizes(
        {edge: m.component_sizes() for edge, m in components.items()}
    )
    return index, components
