"""Edge structural diversity: Definitions 1 and 2 of the paper.

The structural diversity ``score(u, v)`` of an edge is the number of
connected components of its ego-network ``G_N(uv)`` with size at least
``τ``.  This module computes scores directly (BFS over the common
neighborhood), exposes the component-size multiset that the ESDIndex is
built from, and provides the full-scan reference used by baselines and
tests.
"""

from __future__ import annotations

from typing import Dict, List

from repro.graph.components import components_of_subset
from repro.graph.graph import Edge, Graph, Vertex
from repro.kernels.dispatch import kernels_enabled


def validate_parameters(k: int, tau: int) -> None:
    """Reject invalid query parameters with a clear message."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if tau < 1:
        raise ValueError(f"tau must be >= 1, got {tau}")


def ego_component_sizes(graph: Graph, u: Vertex, v: Vertex) -> List[int]:
    """Sizes of the connected components of ``G_N(uv)`` (unordered).

    The BFS runs over the common neighborhood only; its cost is bounded by
    the size of the ego-network, ``O(min{d(u), d(v)}^2)`` in the worst
    case (Theorem 2's inner term).
    """
    if not graph.has_edge(u, v):
        raise KeyError(f"edge not in graph: ({u!r}, {v!r})")
    common = graph.common_neighbors(u, v)
    return [len(c) for c in components_of_subset(graph, common)]


def edge_structural_diversity(
    graph: Graph, u: Vertex, v: Vertex, tau: int = 1
) -> int:
    """``score(u, v)``: components of ``G_N(uv)`` with size >= ``tau``.

    Definition 2.  Raises ``KeyError`` if ``(u, v)`` is not an edge and
    ``ValueError`` for ``tau < 1``.
    """
    if tau < 1:
        raise ValueError(f"tau must be >= 1, got {tau}")
    return sum(1 for s in ego_component_sizes(graph, u, v) if s >= tau)


def all_edge_structural_diversities(graph: Graph, tau: int = 1) -> Dict[Edge, int]:
    """``score`` for every edge -- the straightforward full scan.

    This is the baseline the paper's introduction calls "very costly for
    large graphs"; it is the ground truth for every other algorithm here.
    """
    if tau < 1:
        raise ValueError(f"tau must be >= 1, got {tau}")
    if kernels_enabled() and graph.m:
        sizes = all_ego_component_sizes(graph)
        return {
            edge: sum(1 for s in sizes[edge] if s >= tau)
            for edge in graph.edges()
        }
    return {
        (u, v): edge_structural_diversity(graph, u, v, tau)
        for u, v in graph.edges()
    }


def all_ego_component_sizes(graph: Graph) -> Dict[Edge, List[int]]:
    """Component-size multiset of every edge's ego-network.

    One BFS per edge; this is what Algorithm 2 computes in its first phase
    and what the ESDIndex summarizes.  With kernels enabled the BFS is a
    word-parallel bitset flood fill over the shared CSR snapshot
    (:func:`repro.kernels.components.csr_all_ego_component_sizes`); the
    returned dict keeps ``graph.edges()`` iteration order either way.
    """
    if kernels_enabled() and graph.m:
        from repro.kernels.components import csr_all_ego_component_sizes
        from repro.kernels.csr import snapshot_csr

        sizes = csr_all_ego_component_sizes(snapshot_csr(graph))
        return {edge: sizes[edge] for edge in graph.edges()}
    return {
        (u, v): ego_component_sizes(graph, u, v) for u, v in graph.edges()
    }


def score_from_sizes(sizes: List[int], tau: int) -> int:
    """Structural diversity given a precomputed component-size multiset."""
    if tau < 1:
        raise ValueError(f"tau must be >= 1, got {tau}")
    return sum(1 for s in sizes if s >= tau)


def topk_exact(graph: Graph, k: int, tau: int) -> List[tuple]:
    """Reference top-k: full scan + sort.  Returns ``[(edge, score), ...]``.

    Deterministic tie-break: higher score first, then lexicographically
    smaller edge.  Edges with score 0 still qualify when fewer than ``k``
    positive-score edges exist (matching Algorithm 1, which emits whatever
    tops the queue).
    """
    validate_parameters(k, tau)
    scores = all_edge_structural_diversities(graph, tau)
    ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
    return ranked[:k]
