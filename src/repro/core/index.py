"""The ESDIndex structure and its query algorithm (paper §IV-A/B).

For every component size ``c`` that occurs in some edge ego-network
(``c ∈ C``), the index keeps a list ``H(c)`` of all edges whose
ego-network has a component of size >= ``c``, sorted by the edge's
structural diversity at threshold ``c``.  Each ``H(c)`` is an
order-statistic treap (the paper's "self-balance binary search tree"),
so a top-k query is: binary-search the smallest ``c* ∈ C`` with
``c* >= τ`` (Theorem 4 guarantees scores at τ and c* coincide), then
read the first k entries of ``H(c*)`` -- ``O(k log m + log n)`` total
(Theorem 5).

Beyond the paper's static picture, this implementation keeps the
per-edge component-size histograms inside the index.  That makes two
things possible:

* ``set_edge``/``remove_edge`` for dynamic maintenance (Algorithms 4/5);
* correct *class back-fill*: when an update introduces a component size
  ``c`` never seen before (the paper's Example 7 creates ``H(3)``), every
  existing edge with a component >= c must enter the new list, otherwise
  τ = c queries would miss them.  The paper does not spell this step out,
  but Theorem 4's correctness argument requires it.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import Counter
from typing import Dict, Iterable, List, Optional, Tuple

from repro.graph.graph import Edge, Graph, canonical_edge
from repro.obs.trace import TRACER
from repro.structures.treap import OrderStatTreap


class ESDIndex:
    """Top-k edge structural diversity index.

    Build with :func:`repro.core.build.build_index_basic` /
    :func:`~repro.core.build.build_index_fast` (or incrementally through
    :meth:`set_edge`); query with :meth:`topk` / :meth:`query`.
    """

    #: Canonicalization hook for keyed items.  The edge index normalizes
    #: to (small, large); the vertex variant (repro.core.vertex_index)
    #: overrides this with the identity.
    @staticmethod
    def _canon(item):
        return canonical_edge(*item)

    def __init__(self) -> None:
        # c -> H(c), keyed by (-score_at_c, edge) so ascending = best first.
        self._classes: Dict[int, OrderStatTreap] = {}
        self._class_keys: List[int] = []  # sorted members of C
        # edge -> Counter{component size: multiplicity}
        self._sizes: Dict[Edge, Counter] = {}
        # size -> number of edges whose multiset contains that exact size
        self._support: Counter = Counter()

    # -- inspection -------------------------------------------------------

    @property
    def edge_count(self) -> int:
        """Number of edges with a nonempty ego-network in the index."""
        return len(self._sizes)

    @property
    def size_classes(self) -> List[int]:
        """The sorted set ``C`` of occurring component sizes."""
        return list(self._class_keys)

    @property
    def entry_count(self) -> int:
        """Total entries across all ``H(c)`` -- the index size of Fig. 6(a),
        bounded by ``O(α m)`` (Theorem 3)."""
        return sum(len(t) for t in self._classes.values())

    def component_sizes(self, edge: Edge) -> List[int]:
        """Stored component-size multiset of ``edge`` ([] if untracked)."""
        hist = self._sizes.get(self._canon(edge))
        if not hist:
            return []
        return sorted(hist.elements())

    def score(self, edge: Edge, tau: int) -> int:
        """Structural diversity of ``edge`` at threshold ``tau`` (O(|C_uv|))."""
        if tau < 1:
            raise ValueError(f"tau must be >= 1, got {tau}")
        hist = self._sizes.get(self._canon(edge), None)
        if not hist:
            return 0
        return sum(count for size, count in hist.items() if size >= tau)

    def class_list(self, c: int) -> List[Tuple[Edge, int]]:
        """The full sorted content of ``H(c)`` as ``[(edge, score), ...]``."""
        treap = self._classes.get(c)
        if treap is None:
            return []
        return [(edge, -neg) for neg, edge in treap]

    # -- queries ----------------------------------------------------------------

    def topk(self, k: int, tau: int) -> List[Tuple[Edge, int]]:
        """Top-k edges with the highest structural diversity at ``tau``.

        Implements §IV-B: binary search for the smallest ``c* ∈ C`` with
        ``c* >= τ``, then the first k entries of ``H(c*)``.  Returns fewer
        than ``k`` pairs when fewer edges have a positive score (edges with
        score 0 are by definition in no ``H(c)``).
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if tau < 1:
            raise ValueError(f"tau must be >= 1, got {tau}")
        with TRACER.span("index.topk", k=k, tau=tau) as span:
            pos = bisect_left(self._class_keys, tau)
            if pos == len(self._class_keys):
                span.set(c_star=None, results=0)
                return []
            c_star = self._class_keys[pos]
            results = [
                (edge, -neg) for neg, edge in self._classes[c_star].smallest(k)
            ]
            span.set(c_star=c_star, results=len(results))
            return results

    def query(self, k: int, tau: int) -> List[Edge]:
        """Like :meth:`topk` but returning edges only."""
        return [edge for edge, _ in self.topk(k, tau)]

    def iter_ranked(self, tau: int):
        """Lazily yield ``(edge, score)`` in non-increasing score order.

        Useful when the consumer decides on the fly how many results it
        needs; each step costs O(log m) via the treap's ordered iterator.
        """
        if tau < 1:
            raise ValueError(f"tau must be >= 1, got {tau}")
        pos = bisect_left(self._class_keys, tau)
        if pos == len(self._class_keys):
            return
        for neg, edge in self._classes[self._class_keys[pos]]:
            yield edge, -neg

    def edges_with_score_at_least(
        self, threshold: int, tau: int
    ) -> List[Tuple[Edge, int]]:
        """All edges whose structural diversity at ``tau`` is >= threshold.

        A range scan over the relevant ``H(c*)`` list: stops at the first
        entry below the threshold, so the cost is O(result + log m).
        """
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        out: List[Tuple[Edge, int]] = []
        for edge, score in self.iter_ranked(tau):
            if score < threshold:
                break
            out.append((edge, score))
        return out

    # -- mutation -----------------------------------------------------------

    def set_edge(self, edge: Edge, sizes: Iterable[int]) -> None:
        """Insert or update ``edge`` with its component-size multiset.

        Surgical: only the ``H(c)`` lists where the edge's key
        ``(-score_at_c, edge)`` actually changes are touched.  A typical
        maintenance update grows or shrinks one component by one member,
        which shifts the score in a single class -- the other classes
        keep their treaps byte-for-byte intact instead of paying a
        remove+reinsert of an identical key.  Creates (with back-fill)
        and drops size classes as the global ``C`` changes.
        """
        edge = self._canon(edge)
        new_hist = Counter(sizes)
        if any(s < 1 for s in new_hist):
            raise ValueError(f"component sizes must be >= 1, got {sorted(new_hist)}")
        old_hist = self._sizes.pop(edge, None)
        vanished = self._update_support(old_hist, new_hist)
        if new_hist:
            self._sizes[edge] = new_hist
        self._update_entries(edge, old_hist, new_hist, set(vanished))
        self._create_new_classes(new_hist, old_hist)
        self._drop_classes(vanished)

    def remove_edge(self, edge: Edge) -> None:
        """Remove ``edge`` from the index entirely (no-op if untracked)."""
        edge = self._canon(edge)
        old_hist = self._sizes.pop(edge, None)
        if old_hist is None:
            return
        vanished = self._update_support(old_hist, Counter())
        self._update_entries(edge, old_hist, Counter(), set(vanished))
        self._drop_classes(vanished)

    @classmethod
    def bulk_load(cls, sizes: Dict[Edge, Iterable[int]]) -> "ESDIndex":
        """Build an index from per-edge size multisets in one pass.

        Equivalent to calling :meth:`set_edge` per edge but avoids the
        repeated class back-fill: the global ``C`` is known up front, so
        every edge is inserted into each of its lists exactly once
        (Algorithm 2 lines 5-15).
        """
        index = cls()
        hists = {}
        canon = cls._canon
        for edge, edge_sizes in sizes.items():
            # Most real-world edges have an empty ego-network; skipping
            # them before Counter() avoids its per-call abc machinery,
            # which dominates bulk loading on sparse graphs.  Empty
            # containers are falsy; non-container iterables are truthy
            # and take the normal path.
            if edge_sizes:
                hist = Counter(edge_sizes)
                if hist:
                    hists[canon(edge)] = hist
        for hist in hists.values():
            if any(s < 1 for s in hist):
                raise ValueError(
                    f"component sizes must be >= 1, got {sorted(hist)}"
                )
        index._sizes = hists
        for hist in hists.values():
            for size in hist:
                index._support[size] += 1
        class_keys = sorted(index._support)
        index._class_keys = class_keys
        entries: Dict[int, list] = {c: [] for c in class_keys}
        for edge, hist in hists.items():
            # score at class c = components of size >= c = a suffix count
            # of the sorted multiset, so one bisect per class replaces
            # the O(|hist|) sum the per-edge loop used to pay.
            sizes_sorted = sorted(hist.elements())
            total = len(sizes_sorted)
            pos = bisect_left(class_keys, sizes_sorted[-1] + 1)
            for c in class_keys[:pos]:
                entries[c].append((bisect_left(sizes_sorted, c) - total, edge))
        for c, keys in entries.items():
            keys.sort()
            index._classes[c] = OrderStatTreap.from_sorted(keys, seed=0x5EED ^ c)
        return index

    # -- internals --------------------------------------------------------------

    def _update_entries(
        self,
        edge: Edge,
        old_hist: Optional[Counter],
        new_hist: Counter,
        dropping: set,
    ) -> None:
        """Reconcile the edge's key across every existing ``H(c)``.

        For each class the old and new score are compared; an unchanged
        score means an identical key, so the treap is left alone.
        Classes in ``dropping`` are skipped entirely -- their whole
        treap is deleted by ``_drop_classes`` right after, so removing
        one key from them first is wasted work.
        """
        old_max = max(old_hist) if old_hist else 0
        new_max = max(new_hist) if new_hist else 0
        pos = bisect_left(self._class_keys, max(old_max, new_max) + 1)
        for c in self._class_keys[:pos]:
            old_score = (
                sum(count for size, count in old_hist.items() if size >= c)
                if old_max >= c
                else 0
            )
            new_score = (
                sum(count for size, count in new_hist.items() if size >= c)
                if new_max >= c
                else 0
            )
            if old_score == new_score or c in dropping:
                continue
            treap = self._classes[c]
            if old_score:
                treap.remove((-old_score, edge))
            if new_score:
                treap.insert((-new_score, edge))

    def _update_support(
        self, old_hist: Optional[Counter], new_hist: Counter
    ) -> List[int]:
        """Adjust per-size edge support; return sizes whose support hit 0."""
        vanished: List[int] = []
        old_sizes = set(old_hist) if old_hist else set()
        for size in old_sizes - set(new_hist):
            self._support[size] -= 1
            if self._support[size] == 0:
                del self._support[size]
                vanished.append(size)
        for size in set(new_hist) - old_sizes:
            self._support[size] += 1
        return vanished

    def _create_new_classes(
        self, new_hist: Counter, old_hist: Optional[Counter]
    ) -> None:
        """Create ``H(c)`` for newly occurring sizes, back-filling all edges.

        A size is new when it enters ``C`` for the first time; every edge
        whose maximum component size is >= c must then appear in ``H(c)``
        (see module docstring).
        """
        old_sizes = set(old_hist) if old_hist else set()
        for c in sorted(set(new_hist) - old_sizes):
            if c in self._classes:
                continue
            treap = OrderStatTreap(seed=0x5EED ^ c)
            for other, hist in self._sizes.items():
                if max(hist) >= c:
                    score = sum(n for size, n in hist.items() if size >= c)
                    treap.insert((-score, other))
            self._classes[c] = treap
            insort(self._class_keys, c)

    def _drop_classes(self, vanished: List[int]) -> None:
        """Delete ``H(c)`` for sizes that left ``C``."""
        for c in vanished:
            del self._classes[c]
            self._class_keys.remove(c)

    def diversity_profile(self, edge: Edge) -> Dict[int, int]:
        """Score at every meaningful threshold: ``{tau: score}``.

        Keys are the occurring component sizes of the edge's ego-network;
        the score at any other ``tau`` equals the score at the next key up
        (or 0 above the max) -- Theorem 4's argument applied per edge.
        """
        hist = self._sizes.get(self._canon(edge))
        if not hist:
            return {}
        return {
            c: sum(n for size, n in hist.items() if size >= c)
            for c in sorted(hist)
        }

    def stats(self) -> Dict[str, object]:
        """Introspection snapshot: sizes of the index's moving parts."""
        return {
            "edges": self.edge_count,
            "entries": self.entry_count,
            "size_classes": list(self._class_keys),
            "class_sizes": {c: len(t) for c, t in self._classes.items()},
            "histogram_cells": sum(len(h) for h in self._sizes.values()),
        }

    # -- persistence ---------------------------------------------------------

    #: ``kind`` tag inside the binary container header (see
    #: :mod:`repro.persistence.format`).
    _CONTAINER_KIND = "esd-index"

    def save(self, path) -> None:
        """Serialize the index to ``path`` in the checksummed binary format.

        Stores the per-edge histograms (the compact O(α m) core) in one
        CRC32-guarded container section and rebuilds the treaps on load
        -- small files, no pickle compatibility risk, and bit rot is
        detected instead of silently mis-scoring queries.
        """
        from repro.persistence.format import encode_container, encode_json

        histograms = [
            [list(edge), sorted(hist.elements())]
            for edge, hist in sorted(self._sizes.items())
        ]
        data = encode_container(
            self._CONTAINER_KIND, [(b"HIST", encode_json(histograms))]
        )
        with open(path, "wb") as handle:
            handle.write(data)

    @classmethod
    def load(cls, path) -> "ESDIndex":
        """Load an index previously written by :meth:`save`.

        Reads the binary container format; files from the pre-container
        era (plain JSON) are still accepted for one release.
        """
        import json

        from repro.persistence.format import json_section, read_container

        with open(path, "rb") as handle:
            head = handle.read(1)
        if head == b"{":  # legacy JSON index file
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("version") != 1:
                raise ValueError(
                    f"unsupported index file version: {payload.get('version')!r}"
                )
            histograms = payload["edges"]
        else:
            sections = read_container(path, expect_kind=cls._CONTAINER_KIND)
            histograms = json_section(sections, b"HIST", path)
        return cls.bulk_load(
            {tuple(edge): sizes for edge, sizes in histograms}
        )

    # -- integrity ----------------------------------------------------------

    def check_invariants(self, graph: Optional[Graph] = None) -> None:
        """Validate internal consistency (and, given ``graph``, ground truth).

        Testing hook: asserts that C matches the stored histograms, every
        ``H(c)`` holds exactly the right edges with the right scores, and
        -- when the source graph is provided -- that the histograms match
        a from-scratch BFS recomputation.
        """
        from repro.core.diversity import ego_component_sizes  # avoid cycle

        expected_c = set()
        for hist in self._sizes.values():
            expected_c |= set(hist)
        assert sorted(expected_c) == self._class_keys, "C mismatch"
        assert set(self._support) == expected_c, "support mismatch"

        for c in self._class_keys:
            expected_members = {
                edge: sum(n for size, n in hist.items() if size >= c)
                for edge, hist in self._sizes.items()
                if max(hist) >= c
            }
            actual = dict(self.class_list(c))
            assert actual == expected_members, f"H({c}) content mismatch"
            self._classes[c].check_invariants()

        if graph is not None:
            tracked = set(self._sizes)
            for u, v in graph.edges():
                sizes = sorted(ego_component_sizes(graph, u, v))
                edge = canonical_edge(u, v)
                if sizes:
                    assert (
                        self.component_sizes(edge) == sizes
                    ), f"histogram mismatch for {edge}"
                    tracked.discard(edge)
                else:
                    assert edge not in self._sizes, f"phantom edge {edge}"
            assert not tracked, f"stale edges in index: {tracked}"
