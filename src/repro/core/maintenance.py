"""Dynamic ESDIndex maintenance under edge insertions/deletions (paper §V).

:class:`DynamicESDIndex` owns a mutable graph, the per-edge disjoint-set
structures ``M`` and the :class:`~repro.core.index.ESDIndex`, and keeps
all three consistent through :meth:`insert_edge` (Algorithm 4) and
:meth:`delete_edge` (Algorithm 5).

Locality (Observations 2 and 3): inserting or deleting ``(u, v)`` only
changes the structural diversities of edges inside the closed ego-network
``Ĝ_N(uv)`` -- the edge itself, the triangle edges ``(u, w)``/``(v, w)``
for common neighbors ``w``, and the ego-edges ``(w1, w2)`` inside
``N(uv)``.  Everything else is untouched, which is why updates are cheap
relative to reconstruction (Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Set, Tuple

from repro.core.build import build_index_fast_with_components
from repro.core.index import ESDIndex
from repro.graph.graph import Edge, Graph, Vertex, canonical_edge
from repro.kernels.delta import MaintenanceKernel
from repro.kernels.dispatch import kernels_enabled
from repro.obs.trace import TRACER
from repro.structures.dsu import EdgeComponentSets


@dataclass
class UpdateStats:
    """Instrumentation for one insert/delete: how local was the update?"""

    common_neighbors: int = 0
    ego_edges: int = 0
    edges_rescored: int = 0


@dataclass
class MutationCounters:
    """Lifetime mutation tally of a :class:`DynamicESDIndex`.

    Like :class:`UpdateStats` but cumulative: one counter pair for the
    whole index rather than one record per update.
    """

    insertions: int = 0
    deletions: int = 0
    #: Cumulative index-entry refreshes across all updates -- the
    #: core-layer cost counter surfaced by the unified metrics registry
    #: (not persisted: a restored index restarts it at 0).
    edges_rescored: int = 0

    @property
    def total(self) -> int:
        return self.insertions + self.deletions


#: Signature of :meth:`DynamicESDIndex.subscribe` callbacks:
#: ``(kind, edge, new_version)`` with ``kind in {"insert", "delete"}``.
MutationCallback = Callable[[str, Edge, int], None]

#: Signature of :meth:`DynamicESDIndex.subscribe_batch` callbacks:
#: ``(events, version)`` where ``events`` is the ordered
#: ``[(kind, edge), ...]`` of one committed batch (a single-edge update
#: is a one-element batch) and ``version`` is the index version after
#: the whole batch.
BatchCallback = Callable[[List[Tuple[str, Edge]], int], None]


class DynamicESDIndex:
    """ESDIndex plus the state needed to maintain it under edge updates."""

    def __init__(self, graph: Graph) -> None:
        self._graph = graph.copy()
        self._index, self._components = build_index_fast_with_components(
            self._graph
        )
        self._version = 0
        self._mutations = MutationCounters()
        self._subscribers: List[MutationCallback] = []
        self._batch_subscribers: List[BatchCallback] = []
        #: Non-None while ``apply_batch`` is draining: committed events
        #: accumulate here and batch subscribers see them once, at the end.
        self._pending_events: "List[Tuple[str, Edge]] | None" = None
        self._kmaint: "MaintenanceKernel | None" = None

    # -- read-only views ------------------------------------------------------

    @property
    def graph(self) -> Graph:
        """The current graph.  Mutate only through insert/delete_edge."""
        return self._graph

    @property
    def graph_version(self) -> int:
        """Monotonic version of the maintained graph, for cache invalidation.

        Starts at 0 when the index is built and increases by exactly 1 for
        every *successful* single-edge mutation (a failed insert/delete
        leaves it unchanged; vertex and batch operations advance it once
        per constituent edge update).  Any derived artifact -- a cached
        query result, an exported snapshot -- tagged with version ``V`` is
        valid if and only if ``graph_version == V`` still holds; a version
        mismatch means at least one edge changed in between, so the
        artifact must be recomputed.  The counter never goes backwards and
        is never reused, so ``(query, version)`` pairs are safe cache keys.
        """
        return self._version

    @property
    def mutation_counters(self) -> MutationCounters:
        """Cumulative successful insert/delete counts (live view)."""
        return self._mutations

    def subscribe(self, callback: MutationCallback) -> None:
        """Register ``callback(kind, edge, new_version)`` on each mutation.

        Callbacks fire after the index is fully consistent for every
        successful edge insert/delete -- the hook the serving layer uses
        to purge stale cache entries and feed change monitors.  Callbacks
        run synchronously on the mutating thread (under the caller's
        write lock, if any), so they must be fast and must not mutate
        this index.
        """
        self._subscribers.append(callback)

    def subscribe_batch(self, callback: BatchCallback) -> None:
        """Register ``callback(events, version)``, fired once per commit
        *group*: once per single-edge mutation, and once -- with the full
        ordered event list -- per :meth:`apply_batch`.  This is the hook
        for work that amortizes over a batch (the engine notifies each
        metric scorer once per batch, not once per edge); subscribers
        needing every intermediate version (replication) use
        :meth:`subscribe`.  Same threading contract as :meth:`subscribe`.
        """
        self._batch_subscribers.append(callback)

    def _committed(self, kind: str, edge: Edge) -> None:
        """Record one successful mutation and notify subscribers."""
        self._version += 1
        if kind == "insert":
            self._mutations.insertions += 1
        else:
            self._mutations.deletions += 1
        for callback in self._subscribers:
            callback(kind, edge, self._version)
        if self._pending_events is not None:
            self._pending_events.append((kind, edge))
        elif self._batch_subscribers:
            events = [(kind, edge)]
            for callback in self._batch_subscribers:
                callback(events, self._version)

    @property
    def index(self) -> ESDIndex:
        """The maintained ESDIndex."""
        return self._index

    def topk(self, k: int, tau: int) -> List[Tuple[Edge, int]]:
        """Query the maintained index (see :meth:`ESDIndex.topk`)."""
        return self._index.topk(k, tau)

    def components_of(self, edge: Edge) -> EdgeComponentSets:
        """The live ``M`` structure of ``edge`` (raises KeyError if absent)."""
        return self._components[canonical_edge(*edge)]

    # -- kernel routing (ESD_KERNELS dispatch) -------------------------------

    def _maintenance_kernel(self) -> "MaintenanceKernel | None":
        """The live id-space mirror, or ``None`` when kernels are off.

        Built lazily from the cached CSR snapshot (nearly free right
        after an index build) and rebuilt whenever its revision drifted
        from the graph's -- which happens when the kernel mode was
        flipped mid-life, or after a restore -- or when vertex-removal
        churn left too many dead id slots behind.
        """
        if not kernels_enabled():
            return None
        kernel = self._kmaint
        if (
            kernel is None
            or kernel.revision != self._graph.revision
            or kernel.bloated()
        ):
            from repro.kernels.csr import snapshot_csr

            kernel = MaintenanceKernel.from_csr(
                snapshot_csr(self._graph), self._graph.revision
            )
            self._kmaint = kernel
        return kernel

    def adopt_kernel(self, kernel: MaintenanceKernel) -> bool:
        """Install a pre-built maintenance kernel; False if it is stale.

        Cluster replicas hand over a kernel derived from the shared
        snapshot CSR here, so replication records apply through the
        id-space path without a per-replica rebuild.  A kernel whose
        revision does not match the live graph is refused (the lazy
        path would immediately replace it anyway).
        """
        if kernel.revision != self._graph.revision:
            return False
        self._kmaint = kernel
        return True

    # -- insertion (Algorithm 4) ------------------------------------------------

    def insert_edge(self, u: Vertex, v: Vertex) -> UpdateStats:
        """Insert ``(u, v)`` and restore all invariants.

        Raises ``ValueError`` if the edge already exists or is a
        self-loop (callers see a loud signal instead of silent
        corruption); a rejected insert leaves graph, ``M`` and index
        untouched.
        """
        if u == v:
            raise ValueError(f"self-loop not allowed: ({u!r}, {v!r})")
        edge = canonical_edge(u, v)
        if self._graph.has_edge(u, v):
            raise ValueError(f"edge already in graph: {edge}")
        with TRACER.span("index.insert_edge", edge=list(edge)) as span:
            stats = self._apply_insert(edge, u, v)
            span.set(
                common_neighbors=stats.common_neighbors,
                ego_edges=stats.ego_edges,
                edges_rescored=stats.edges_rescored,
            )
            return stats

    def _apply_insert(self, edge: Edge, u: Vertex, v: Vertex) -> UpdateStats:
        """Algorithm 4 proper, after the entry-point validation."""
        kernel = self._maintenance_kernel()
        if kernel is not None:
            return self._apply_insert_kernel(kernel, edge, u, v)
        self._graph.add_edge(u, v)
        common = self._graph.common_neighbors(u, v)
        stats = UpdateStats(common_neighbors=len(common))

        # Lines 3-9: fresh M for the new edge; each common neighbor w makes
        # {u, v, w} a triangle, adding members to M_uw and M_vw.
        m_new = EdgeComponentSets(common)
        self._components[edge] = m_new
        for w in common:
            self._components[canonical_edge(u, w)].add(v)
            self._components[canonical_edge(v, w)].add(u)

        # Lines 10-19: every ego-edge (w1, w2) inside N(uv) completes the
        # 4-clique {u, v, w1, w2}; apply the six Unions.
        for w1, w2 in self._ego_edges(common):
            stats.ego_edges += 1
            m_new.union(w1, w2)
            self._components[canonical_edge(w1, w2)].union(u, v)
            self._components[canonical_edge(u, w1)].union(v, w2)
            self._components[canonical_edge(v, w1)].union(u, w2)
            self._components[canonical_edge(u, w2)].union(v, w1)
            self._components[canonical_edge(v, w2)].union(u, w1)

        # Lines 20-22: refresh index entries for every affected edge.
        self._rescore(self._affected_edges(edge, common), stats)
        self._committed("insert", edge)
        return stats

    def _apply_insert_kernel(
        self, kernel: MaintenanceKernel, edge: Edge, u: Vertex, v: Vertex
    ) -> UpdateStats:
        """Algorithm 4 on the id-space mirror (bit-identical results).

        The union-find surgery is exactly the set path's; the kernel
        replaces the *enumeration*: the common neighborhood is one AND,
        ego edges come from a single bit scan (the set path walks the
        neighbor sets twice -- once for the unions, once for the
        affected-edge set), the new edge's partition is one flood fill
        instead of per-ego-edge unions, and the affected edges are
        collected as a list (unique by construction, no set hashing).
        """
        self._graph.add_edge(u, v)
        iu, iv = kernel.note_insert(u, v, self._graph.revision)
        common = kernel.common_mask(iu, iv)
        stats = UpdateStats(common_neighbors=common.bit_count())
        labels = kernel.labels
        components = self._components

        # Lines 3-9 via flood fill: M_uv is by definition the partition
        # of N(uv) into components of G_N(uv), already live in the mirror.
        m_new = EdgeComponentSets()
        m_new.replace_partition(
            [kernel.labels_of_mask(g) for g in kernel.flood_groups(common)]
        )
        components[edge] = m_new

        affected: List[Edge] = [edge]
        m_uw: Dict[int, EdgeComponentSets] = {}
        m_vw: Dict[int, EdgeComponentSets] = {}
        for w in kernel.common_ids(common):
            wl = labels[w]
            e_uw = (u, wl) if u < wl else (wl, u)
            e_vw = (v, wl) if v < wl else (wl, v)
            mu = components[e_uw]
            mv = components[e_vw]
            mu.add(v)
            mv.add(u)
            m_uw[w] = mu
            m_vw[w] = mv
            affected.append(e_uw)
            affected.append(e_vw)

        # Lines 10-19: the five remaining Unions per ego edge (the sixth,
        # m_new's own, is subsumed by the flood-fill partition above).
        pairs = kernel.ego_pairs(common)
        stats.ego_edges = len(pairs)
        for w1, w2 in pairs:
            l1, l2 = labels[w1], labels[w2]
            ego_edge = (l1, l2) if l1 < l2 else (l2, l1)
            affected.append(ego_edge)
            components[ego_edge].union(u, v)
            m_uw[w1].union(v, l2)
            m_vw[w1].union(u, l2)
            m_uw[w2].union(v, l1)
            m_vw[w2].union(u, l1)

        self._rescore(affected, stats)
        self._committed("insert", edge)
        return stats

    # -- deletion (Algorithm 5) ---------------------------------------------

    def delete_edge(self, u: Vertex, v: Vertex) -> UpdateStats:
        """Delete ``(u, v)`` and restore all invariants.

        Raises ``KeyError`` if the edge is absent (a self-loop is never
        in the graph, so it reports the same way).
        """
        if u == v:
            raise KeyError(f"edge not in graph: ({u!r}, {v!r})")
        edge = canonical_edge(u, v)
        if not self._graph.has_edge(u, v):
            raise KeyError(f"edge not in graph: {edge}")
        with TRACER.span("index.delete_edge", edge=list(edge)) as span:
            stats = self._apply_delete(edge, u, v)
            span.set(
                common_neighbors=stats.common_neighbors,
                ego_edges=stats.ego_edges,
                edges_rescored=stats.edges_rescored,
            )
            return stats

    def _apply_delete(self, edge: Edge, u: Vertex, v: Vertex) -> UpdateStats:
        """Algorithm 5 proper, after the entry-point validation."""
        kernel = self._maintenance_kernel()
        if kernel is not None:
            return self._apply_delete_kernel(kernel, edge, u, v)
        common = self._graph.common_neighbors(u, v)
        stats = UpdateStats(common_neighbors=len(common))
        self._graph.remove_edge(u, v)

        # Lines 3-9: v leaves N(uw) and u leaves N(vw) for each w in N(uv).
        # If the leaver was isolated it is simply discarded; otherwise its
        # old component must be re-partitioned without it (Update proc).
        for w in common:
            self._remove_member(canonical_edge(u, w), v)
            self._remove_member(canonical_edge(v, w), u)

        # Lines 10-18: each broken 4-clique {u, v, w1, w2}: in M_{w1 w2},
        # u and v stay members but may now fall apart.
        rebuilt: Set[Edge] = set()
        for w1, w2 in self._ego_edges(common):
            stats.ego_edges += 1
            ego_edge = canonical_edge(w1, w2)
            if ego_edge not in rebuilt:
                rebuilt.add(ego_edge)
                self._rebuild_around(ego_edge, u)

        # Lines 19-23: refresh entries, then drop the deleted edge.
        affected = self._affected_edges(edge, common)
        affected.discard(edge)
        self._rescore(affected, stats)
        self._index.remove_edge(edge)
        del self._components[edge]
        self._committed("delete", edge)
        return stats

    def _apply_delete_kernel(
        self, kernel: MaintenanceKernel, edge: Edge, u: Vertex, v: Vertex
    ) -> UpdateStats:
        """Algorithm 5 on the id-space mirror (bit-identical results).

        Same union-find surgery as the set path; the kernel supplies the
        enumeration.  The common neighborhood of ``(u, v)`` is unchanged
        by removing the ``u <-> v`` bits themselves (neither endpoint
        can be its own common neighbor), so it is read off *after* the
        mirror update.
        """
        self._graph.remove_edge(u, v)
        iu, iv = kernel.note_delete(u, v, self._graph.revision)
        common = kernel.common_mask(iu, iv)
        stats = UpdateStats(common_neighbors=common.bit_count())
        labels = kernel.labels
        components = self._components
        affected: List[Edge] = []

        def reflood(m: EdgeComponentSets, a: int, b: int) -> None:
            # Deletion can only split components, and union-find cannot
            # split -- the set path re-partitions by scanning the stale
            # component's members and their neighbor sets.  The mirror
            # already holds the post-delete adjacency, so the fresh
            # partition of M_{ab} is one flood fill over N(a) ∩ N(b).
            m.replace_partition(
                [
                    kernel.labels_of_mask(g)
                    for g in kernel.flood_groups(kernel.common_mask(a, b))
                ]
            )

        # Lines 3-9: v leaves N(uw) and u leaves N(vw) for each w.  A
        # singleton leaver is discarded in O(1); otherwise its whole M is
        # re-derived by flood (the leaver is already out of the mask).
        for w in kernel.common_ids(common):
            wl = labels[w]
            e_uw = (u, wl) if u < wl else (wl, u)
            e_vw = (v, wl) if v < wl else (wl, v)
            m = components[e_uw]
            if not m.discard_singleton(v):
                reflood(m, iu, w)
            m = components[e_vw]
            if not m.discard_singleton(u):
                reflood(m, iv, w)
            affected.append(e_uw)
            affected.append(e_vw)

        # Lines 10-18: u and v may fall apart in each M_{w1 w2}.  The bit
        # scan yields each ego edge exactly once, so no dedup set.
        pairs = kernel.ego_pairs(common)
        stats.ego_edges = len(pairs)
        for w1, w2 in pairs:
            l1, l2 = labels[w1], labels[w2]
            ego_edge = (l1, l2) if l1 < l2 else (l2, l1)
            affected.append(ego_edge)
            reflood(components[ego_edge], w1, w2)

        self._rescore(affected, stats)
        self._index.remove_edge(edge)
        del self._components[edge]
        self._committed("delete", edge)
        return stats

    # -- vertex updates (§V: a vertex update is a series of edge updates) ---

    def insert_vertex(self, v: Vertex, neighbors: Iterable[Vertex]) -> List[UpdateStats]:
        """Insert vertex ``v`` with its incident edges, one at a time.

        Raises ``ValueError`` if ``v`` already exists with edges (so a
        partial overlap cannot silently double-insert) or if ``v`` is
        its own neighbor (a self-loop).  Both are checked *before* any
        mutation: a rejected call leaves graph and index untouched
        rather than half-applied.
        """
        targets = sorted(set(neighbors))
        if v in targets:
            raise ValueError(
                f"self-loop not allowed: vertex {v!r} listed in its own "
                f"neighbors"
            )
        if v in self._graph and self._graph.degree(v) > 0:
            raise ValueError(f"vertex already in graph with edges: {v!r}")
        before = self._graph.revision
        self._graph.add_vertex(v)
        kernel = self._kmaint
        if kernel is not None and kernel.revision == before:
            # Keep an in-sync mirror in sync; a stale one is left to the
            # revision check in _maintenance_kernel.
            kernel.note_add_vertex(v, self._graph.revision)
        return [self.insert_edge(v, w) for w in targets]

    def delete_vertex(self, v: Vertex) -> List[UpdateStats]:
        """Delete vertex ``v`` by deleting its incident edges, then ``v``."""
        if v not in self._graph:
            raise KeyError(f"vertex not in graph: {v!r}")
        stats = [
            self.delete_edge(v, w) for w in sorted(self._graph.neighbors(v))
        ]
        before = self._graph.revision
        self._graph.remove_vertex(v)
        kernel = self._kmaint
        if kernel is not None and kernel.revision == before:
            kernel.note_remove_vertex(v, self._graph.revision)
        return stats

    # -- batch updates ---------------------------------------------------------

    def apply_batch(
        self,
        insertions: Iterable[Tuple[Vertex, Vertex]] = (),
        deletions: Iterable[Tuple[Vertex, Vertex]] = (),
    ) -> UpdateStats:
        """Apply many edge updates; aggregate the per-update stats.

        Deletions run first (so swap-style batches never trip the
        duplicate-insert guard), then insertions.  Each update is applied
        through the exact single-edge algorithms, so the index stays
        query-consistent between every pair of updates.

        Self-loops anywhere in the batch raise ``ValueError`` before
        *any* update is applied -- a malformed batch never leaves the
        index in a half-applied state it would otherwise be impossible
        to distinguish from a successful partial run.
        """
        insertions = list(insertions)
        deletions = list(deletions)
        for u, v in insertions + deletions:
            if u == v:
                raise ValueError(
                    f"self-loop not allowed in batch: ({u!r}, {v!r})"
                )
        if insertions:
            # Batched edge updates amortize re-interning: allocate ids
            # for every incoming label once, up front, instead of one
            # dict miss per constituent update.  Extra ids for labels
            # that never materialize are harmless (empty adjacency).
            kernel = self._maintenance_kernel()
            if kernel is not None:
                kernel.prepare(
                    label for pair in insertions for label in pair
                )
        total = UpdateStats()
        # Buffer per-edge commits so batch subscribers fire once, with
        # the whole event list, after the index is consistent for the
        # entire batch.  The finally flushes whatever *did* commit even
        # if a constituent update raises -- batch subscribers must never
        # miss an applied mutation.
        self._pending_events = []
        try:
            for u, v in deletions:
                s = self.delete_edge(u, v)
                total.common_neighbors += s.common_neighbors
                total.ego_edges += s.ego_edges
                total.edges_rescored += s.edges_rescored
            for u, v in insertions:
                s = self.insert_edge(u, v)
                total.common_neighbors += s.common_neighbors
                total.ego_edges += s.ego_edges
                total.edges_rescored += s.edges_rescored
        finally:
            events = self._pending_events
            self._pending_events = None
            if events:
                for callback in self._batch_subscribers:
                    callback(events, self._version)
        return total

    # -- state export / restore (persistence layer) --------------------------

    def export_state(self) -> Dict[str, Any]:
        """Deterministic, JSON-ready image of the full maintained state.

        Captures what a cold rebuild would have to recompute: the graph
        (vertices + canonical edges) and, aligned entry-for-entry with
        the edge list, the component *partitions* of every edge's
        ego-network (the ``M`` structures).  Groups and members are
        sorted so identical logical state always exports identical
        bytes -- the snapshot golden-file test depends on this.
        """
        vertices = sorted(self._graph.vertices())
        edges = sorted(self._graph.edges())
        components = []
        for edge in edges:
            groups = sorted(
                sorted(members)
                for members in self._components[edge].groups().values()
            )
            components.append(groups)
        return {
            "graph_version": self._version,
            "insertions": self._mutations.insertions,
            "deletions": self._mutations.deletions,
            "vertices": vertices,
            "edges": [list(edge) for edge in edges],
            "components": components,
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "DynamicESDIndex":
        """Restore from :meth:`export_state` output without rebuilding.

        The ``M`` structures are reassembled directly from the stored
        partitions and the ESDIndex is bulk-loaded from their component
        sizes, so the 4-clique enumeration of a cold build is skipped
        entirely -- restoring is ``O(α m log m)`` instead of
        ``O(α² γ(n) m)``.
        """
        self = cls.__new__(cls)
        graph = Graph()
        for vertex in state["vertices"]:
            graph.add_vertex(vertex)
        edges = [tuple(edge) for edge in state["edges"]]
        for u, v in edges:
            graph.add_edge(u, v)
        components: Dict[Edge, EdgeComponentSets] = {}
        sizes: Dict[Edge, List[int]] = {}
        for edge, groups in zip(edges, state["components"]):
            m = EdgeComponentSets()
            for group in groups:
                first = group[0]
                m.add(first)
                for member in group[1:]:
                    m.union(first, member)
            components[edge] = m
            if groups:
                sizes[edge] = [len(group) for group in groups]
        self._graph = graph
        self._components = components
        self._index = ESDIndex.bulk_load(sizes)
        self._version = state["graph_version"]
        self._mutations = MutationCounters(
            insertions=state["insertions"], deletions=state["deletions"]
        )
        self._subscribers = []
        self._batch_subscribers = []
        self._pending_events = None
        self._kmaint = None
        return self

    # -- invariant checking (testing hook) -------------------------------------

    def check_invariants(self) -> None:
        """Assert M and the index both match a from-scratch recomputation."""
        from repro.core.diversity import ego_component_sizes

        assert set(self._components) == set(self._graph.edges())
        for (a, b), m in self._components.items():
            expected = sorted(ego_component_sizes(self._graph, a, b))
            assert (
                sorted(m.component_sizes()) == expected
            ), f"M mismatch for {(a, b)}: {sorted(m.component_sizes())} != {expected}"
            assert set(m.members()) == self._graph.common_neighbors(a, b)
        self._index.check_invariants(self._graph)

    # -- internals -----------------------------------------------------------

    def _ego_edges(self, common: Set[Vertex]) -> Iterable[Tuple[Vertex, Vertex]]:
        """Edges of the ego-network induced by ``common``, each once."""
        for w1 in common:
            for w2 in self._graph.neighbors(w1):
                if w2 in common and w1 < w2:
                    yield (w1, w2)

    def _affected_edges(self, edge: Edge, common: Set[Vertex]) -> Set[Edge]:
        """All edges of the closed ego-network Ĝ_N(uv)."""
        u, v = edge
        affected: Set[Edge] = {edge}
        for w in common:
            affected.add(canonical_edge(u, w))
            affected.add(canonical_edge(v, w))
        for w1, w2 in self._ego_edges(common):
            affected.add(canonical_edge(w1, w2))
        return affected

    def _rescore(self, edges: Iterable[Edge], stats: UpdateStats) -> None:
        """Push the current M component sizes of ``edges`` into the index."""
        for e in edges:
            sizes = self._components[e].component_sizes()
            if sizes:
                self._index.set_edge(e, sizes)
            else:
                self._index.remove_edge(e)
            stats.edges_rescored += 1
            self._mutations.edges_rescored += 1

    def _remove_member(self, edge: Edge, leaver: Vertex) -> None:
        """Remove ``leaver`` from ``M_edge``, re-partitioning if needed."""
        m = self._components[edge]
        if leaver not in m:
            return
        if m.discard_singleton(leaver):
            return
        # The leaver had neighbors inside the ego-network: rebuild its old
        # component from the surviving edges (Algorithm 5's Update).
        component = set(m.component_of(leaver))
        component.discard(leaver)
        surviving = [
            (x, y)
            for x in component
            for y in self._graph.neighbors(x)
            if y in component and x < y
        ]
        m.rebuild_component(leaver, surviving)
        removed = m.discard_singleton(leaver)
        assert removed, "leaver still connected after rebuild"

    def _rebuild_around(self, edge: Edge, anchor: Vertex) -> None:
        """Re-partition the component of ``anchor`` in ``M_edge``.

        Used after deleting (u, v): in M_{w1 w2} the endpoints u, v were in
        one component (joined by the deleted edge); re-scan the surviving
        adjacency inside that component.  ``anchor`` is u; v is in the same
        old component so one rebuild covers both.
        """
        m = self._components[edge]
        if anchor not in m:
            return
        component = set(m.component_of(anchor))
        surviving = [
            (x, y)
            for x in component
            for y in self._graph.neighbors(x)
            if y in component and x < y
        ]
        m.rebuild_component(anchor, surviving)
