"""Streaming top-k monitoring on a dynamic graph (extension).

:class:`TopKMonitor` wraps :class:`~repro.core.maintenance.DynamicESDIndex`
and reports, after every update, how the top-k answer set for a fixed
``(k, τ)`` query changed.  This is the end-to-end use case that motivates
index maintenance: an application watching the most context-diverse edges
of an evolving social graph without recomputing anything from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set, Tuple

from repro.core.maintenance import DynamicESDIndex
from repro.graph.graph import Edge, Graph, Vertex


@dataclass(frozen=True)
class TopKChange:
    """Difference between consecutive top-k answer sets."""

    update: str
    edge: Edge
    entered: Tuple[Tuple[Edge, int], ...]
    left: Tuple[Tuple[Edge, int], ...]

    @property
    def changed(self) -> bool:
        return bool(self.entered or self.left)


@dataclass
class TopKMonitor:
    """Maintain a standing top-k query over a stream of edge updates.

    Example::

        monitor = TopKMonitor(graph, k=10, tau=2)
        change = monitor.insert(u, v)
        if change.changed:
            alert(change.entered, change.left)
    """

    graph: Graph
    k: int
    tau: int
    _dyn: DynamicESDIndex = field(init=False, repr=False)
    _current: List[Tuple[Edge, int]] = field(init=False, repr=False)
    history: List[TopKChange] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.tau < 1:
            raise ValueError(f"tau must be >= 1, got {self.tau}")
        self._dyn = DynamicESDIndex(self.graph)
        self._current = self._dyn.topk(self.k, self.tau)

    @property
    def top(self) -> List[Tuple[Edge, int]]:
        """The current top-k answer."""
        return list(self._current)

    @property
    def dynamic_index(self) -> DynamicESDIndex:
        """The underlying maintained index."""
        return self._dyn

    def insert(self, u: Vertex, v: Vertex) -> TopKChange:
        """Insert edge ``(u, v)`` and report the top-k delta."""
        self._dyn.insert_edge(u, v)
        return self._diff("insert", (u, v))

    def delete(self, u: Vertex, v: Vertex) -> TopKChange:
        """Delete edge ``(u, v)`` and report the top-k delta."""
        self._dyn.delete_edge(u, v)
        return self._diff("delete", (u, v))

    def _diff(self, kind: str, edge: Edge) -> TopKChange:
        new = self._dyn.topk(self.k, self.tau)
        old_set: Set[Tuple[Edge, int]] = set(self._current)
        new_set: Set[Tuple[Edge, int]] = set(new)
        change = TopKChange(
            update=kind,
            edge=edge,
            entered=tuple(sorted(new_set - old_set)),
            left=tuple(sorted(old_set - new_set)),
        )
        self._current = new
        self.history.append(change)
        return change
