"""Streaming top-k monitoring on a dynamic graph (extension).

:class:`TopKMonitor` wraps :class:`~repro.core.maintenance.DynamicESDIndex`
and reports, after every update, how the top-k answer set for a fixed
``(k, τ)`` query changed.  This is the end-to-end use case that motivates
index maintenance: an application watching the most context-diverse edges
of an evolving social graph without recomputing anything from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.core.maintenance import DynamicESDIndex
from repro.graph.graph import Edge, Graph, Vertex


@dataclass(frozen=True)
class TopKChange:
    """Difference between consecutive top-k answer sets."""

    update: str
    edge: Optional[Edge]
    entered: Tuple[Tuple[Edge, int], ...]
    left: Tuple[Tuple[Edge, int], ...]

    @property
    def changed(self) -> bool:
        return bool(self.entered or self.left)


@dataclass
class TopKMonitor:
    """Maintain a standing top-k query over a stream of edge updates.

    Example::

        monitor = TopKMonitor(graph, k=10, tau=2)
        change = monitor.insert(u, v)
        if change.changed:
            alert(change.entered, change.left)
    """

    graph: Graph
    k: int
    tau: int
    _dyn: DynamicESDIndex = field(init=False, repr=False)
    _current: List[Tuple[Edge, int]] = field(init=False, repr=False)
    history: List[TopKChange] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        self._validate(self.k, self.tau)
        self._dyn = DynamicESDIndex(self.graph)
        self._current = self._dyn.topk(self.k, self.tau)

    @staticmethod
    def _validate(k: int, tau: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if tau < 1:
            raise ValueError(f"tau must be >= 1, got {tau}")

    @classmethod
    def attach(cls, dyn: DynamicESDIndex, k: int, tau: int) -> "TopKMonitor":
        """Standing query over an externally-owned :class:`DynamicESDIndex`.

        Unlike the constructor, the index (and its graph) stays owned by
        the caller: updates applied directly to ``dyn`` -- e.g. by a
        query service that multiplexes many monitors over one index --
        are picked up by calling :meth:`refresh` after each mutation.
        The :meth:`insert`/:meth:`delete` methods still work and mutate
        the shared index.
        """
        cls._validate(k, tau)
        monitor = cls.__new__(cls)
        monitor.graph = dyn.graph
        monitor.k = k
        monitor.tau = tau
        monitor._dyn = dyn
        monitor._current = dyn.topk(k, tau)
        monitor.history = []
        return monitor

    def refresh(
        self, update: str = "external", edge: Optional[Edge] = None
    ) -> TopKChange:
        """Re-evaluate the standing query after out-of-band updates.

        For monitors created with :meth:`attach`, the owner calls this
        after mutating the shared index; the returned change (also
        appended to :attr:`history`) diffs against the answer set seen at
        the previous refresh.
        """
        return self._diff(update, edge)

    @property
    def top(self) -> List[Tuple[Edge, int]]:
        """The current top-k answer."""
        return list(self._current)

    @property
    def dynamic_index(self) -> DynamicESDIndex:
        """The underlying maintained index."""
        return self._dyn

    def insert(self, u: Vertex, v: Vertex) -> TopKChange:
        """Insert edge ``(u, v)`` and report the top-k delta."""
        self._dyn.insert_edge(u, v)
        return self._diff("insert", (u, v))

    def delete(self, u: Vertex, v: Vertex) -> TopKChange:
        """Delete edge ``(u, v)`` and report the top-k delta."""
        self._dyn.delete_edge(u, v)
        return self._diff("delete", (u, v))

    def _diff(self, kind: str, edge: Optional[Edge]) -> TopKChange:
        new = self._dyn.topk(self.k, self.tau)
        old_set: Set[Tuple[Edge, int]] = set(self._current)
        new_set: Set[Tuple[Edge, int]] = set(new)
        change = TopKChange(
            update=kind,
            edge=edge,
            entered=tuple(sorted(new_set - old_set)),
            left=tuple(sorted(old_set - new_set)),
        )
        self._current = new
        self.history.append(change)
        return change
