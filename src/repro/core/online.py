"""The dequeue-twice online search framework (Algorithm 1).

``OnlineBFS`` (min-degree bound) and ``OnlineBFS+`` (common-neighbor
bound) are the same framework with different upper-bounding rules: every
edge enters a max-priority queue keyed by its upper bound; on first pop
the exact score is computed by BFS and the edge re-enqueued; on second
pop the edge is a confirmed answer (Theorem 1).  Edges whose bound never
rises to the top are never scored -- that is the entire saving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.bounds import BOUND_RULES
from repro.core.diversity import edge_structural_diversity, validate_parameters
from repro.graph.graph import Edge, Graph
from repro.kernels.dispatch import kernels_enabled
from repro.structures.heap import LazyMaxHeap


@dataclass
class OnlineSearchStats:
    """Instrumentation for one dequeue-twice run.

    ``evaluated`` counts exact BFS score computations -- the quantity the
    bound rules exist to minimize (Exp-1's speedups come from the tighter
    rule shrinking it).
    """

    bound_rule: str = ""
    edges_total: int = 0
    evaluated: int = 0
    pops: int = 0
    bound_evaluations: int = 0
    heap_stale_skips: int = 0
    results: List[Tuple[Edge, int]] = field(default_factory=list)

    @property
    def pruned(self) -> int:
        """Edges never exactly evaluated."""
        return self.edges_total - self.evaluated


def topk_online(
    graph: Graph,
    k: int,
    tau: int,
    bound: str = "common-neighbor",
    with_stats: bool = False,
):
    """Top-k edge structural diversity search, Algorithm 1.

    Parameters
    ----------
    graph:
        The undirected graph.
    k, tau:
        Result count and component-size threshold (both >= 1).
    bound:
        ``"min-degree"`` (OnlineBFS) or ``"common-neighbor"``
        (OnlineBFS+).
    with_stats:
        When true, return ``(results, OnlineSearchStats)``.

    Returns
    -------
    ``[(edge, score), ...]`` sorted by descending score (ties by edge id),
    of length ``min(k, m)``.
    """
    validate_parameters(k, tau)
    try:
        bound_rule = BOUND_RULES[bound]
    except KeyError:
        raise KeyError(
            f"unknown bound rule {bound!r}; choose from {sorted(BOUND_RULES)}"
        ) from None

    stats = OnlineSearchStats(bound_rule=bound, edges_total=graph.m)
    queue: LazyMaxHeap[Edge] = LazyMaxHeap()
    # flag(u, v) = -1 until first dequeue, 0 after re-enqueue (Algorithm 1
    # line 4 onward); a set of already-scored edges plays that role here.
    scored: Dict[Edge, int] = {}

    # Kernel fast path: bounds and exact scores come from the shared CSR
    # snapshot (one bitset pass for all common-neighbor bounds, a flood
    # fill per scored edge).  The edge iteration order and every pushed
    # priority are identical to the set-based path, so heap tie-breaking
    # -- and therefore the result list -- is bit-identical.
    csr = None
    if kernels_enabled() and graph.m:
        from repro.kernels.csr import snapshot_csr

        csr = snapshot_csr(graph)

    if csr is not None and bound == "common-neighbor":
        from repro.kernels.triangles import csr_triangle_count_per_edge

        counts = csr_triangle_count_per_edge(csr)
        for u, v in graph.edges():
            queue.push((u, v), counts[(u, v)] // tau)
            stats.bound_evaluations += 1
    else:
        for u, v in graph.edges():
            queue.push((u, v), bound_rule(graph, u, v, tau))
            stats.bound_evaluations += 1

    if csr is not None:
        from repro.kernels.components import csr_ego_component_sizes_ids

        intern = csr.intern

        def _exact_score(edge: Edge) -> int:
            sizes = csr_ego_component_sizes_ids(
                csr, intern(edge[0]), intern(edge[1])
            )
            return sum(1 for s in sizes if s >= tau)

    else:

        def _exact_score(edge: Edge) -> int:
            return edge_structural_diversity(graph, edge[0], edge[1], tau)

    results: List[Tuple[Edge, int]] = []
    while len(results) < k and queue:
        edge, priority = queue.pop()
        stats.pops += 1
        if edge in scored:
            # Second dequeue: the priority is the exact score and it tops
            # every other edge's bound/score, so it is a confirmed answer.
            results.append((edge, scored[edge]))
            continue
        score = _exact_score(edge)
        stats.evaluated += 1
        scored[edge] = score
        queue.push(edge, score)

    stats.results = results
    stats.heap_stale_skips = queue.stale_skips
    if with_stats:
        return results, stats
    return results


def online_bfs(graph: Graph, k: int, tau: int, **kwargs):
    """OnlineBFS: dequeue-twice with the min-degree bound."""
    return topk_online(graph, k, tau, bound="min-degree", **kwargs)


def online_bfs_plus(graph: Graph, k: int, tau: int, **kwargs):
    """OnlineBFS+: dequeue-twice with the common-neighbor bound."""
    return topk_online(graph, k, tau, bound="common-neighbor", **kwargs)
