"""Ordering-based online search (after Chang et al., ICDE 2017).

The paper's related work cites Chang et al.'s improved top-k *vertex*
structural diversity search, which replaces the priority queue with a
"carefully-designed ordering": candidates are scanned in non-increasing
upper-bound order and the scan stops as soon as the next bound cannot
beat the current k-th best exact score.  This module adapts that idea to
edges as an alternative to the dequeue-twice framework:

1. compute the chosen upper bound for every edge (one pass),
2. sort edges by bound descending (ties by edge id),
3. scan in order, computing exact scores and keeping the best k in a
   min-heap; stop at the first edge whose bound <= the k-th best score
   with k results already in hand.

Versus Algorithm 1 it trades the `O(log m)` per-operation heap for one
`O(m log m)` sort and a branch-free scan; it evaluates exactly the same
set of edges in the worst case but often fewer in practice, because the
termination test uses confirmed exact scores rather than re-enqueued
priorities.  The ablation benchmark compares both frameworks.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

from repro.core.bounds import BOUND_RULES
from repro.core.diversity import edge_structural_diversity, validate_parameters
from repro.core.online import OnlineSearchStats
from repro.graph.graph import Edge, Graph


def topk_ordering(
    graph: Graph,
    k: int,
    tau: int,
    bound: str = "common-neighbor",
    with_stats: bool = False,
):
    """Top-k edge structural diversity via the sorted-order scan.

    Same contract as :func:`repro.core.online.topk_online`: returns
    ``[(edge, score), ...]`` sorted by descending score (ties by edge id),
    of length ``min(k, m)``.
    """
    validate_parameters(k, tau)
    try:
        bound_rule = BOUND_RULES[bound]
    except KeyError:
        raise KeyError(
            f"unknown bound rule {bound!r}; choose from {sorted(BOUND_RULES)}"
        ) from None

    stats = OnlineSearchStats(bound_rule=bound, edges_total=graph.m)
    ranked: List[Tuple[int, Edge]] = sorted(
        ((-bound_rule(graph, u, v, tau), (u, v)) for u, v in graph.edges()),
    )

    # Min-heap of the k best (score, reversed-tie-break edge) seen so far.
    best: List[Tuple[int, Tuple]] = []
    for neg_bound, edge in ranked:
        upper = -neg_bound
        if len(best) == k and upper < best[0][0]:
            break  # no remaining edge can beat the current k-th best
        if len(best) == k and upper == best[0][0]:
            # A tie on the k-th score cannot *improve* the answer set's
            # scores; stop here as well (matches the dequeue-twice
            # result's score multiset).
            break
        score = edge_structural_diversity(graph, edge[0], edge[1], tau)
        stats.evaluated += 1
        entry = (score, _ReversedEdge(edge))
        if len(best) < k:
            heapq.heappush(best, entry)
        elif entry > best[0]:
            heapq.heapreplace(best, entry)

    results = sorted(
        ((item[1].edge, item[0]) for item in best),
        key=lambda pair: (-pair[1], pair[0]),
    )
    stats.results = results
    if with_stats:
        return results, stats
    return results


class _ReversedEdge:
    """Wrapper inverting edge comparison.

    The min-heap keeps the *worst* entry at the top.  Between two equal
    scores the worse entry is the lexicographically *larger* edge (the
    final output prefers smaller edges), so comparisons are reversed.
    """

    __slots__ = ("edge",)

    def __init__(self, edge: Edge) -> None:
        self.edge = edge

    def __lt__(self, other: "_ReversedEdge") -> bool:
        return other.edge < self.edge

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _ReversedEdge) and other.edge == self.edge
