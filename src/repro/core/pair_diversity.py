"""Structural diversity of arbitrary vertex pairs (Dong et al., KDD'17).

The paper's direct inspiration [3] defines the structural diversity of a
*pair* ``(u, v)`` -- adjacent or not -- as the number of connected
components in the subgraph induced by their common neighborhood, and
shows empirically that high-diversity pairs are much more likely to
become connected.  This module implements that measure and the link
prediction workflow built on it:

* :func:`pair_structural_diversity` -- the score for any pair;
* :func:`topk_pairs_online` -- dequeue-twice top-k over the candidate
  pairs (2-hop pairs, i.e. pairs with at least one common neighbor);
* :func:`rank_candidate_links` -- rank *non-adjacent* candidate pairs by
  a choice of predictor (pair diversity, common neighbors, Jaccard);
* :func:`link_prediction_experiment` -- hide a random subset of edges,
  rank candidates, report precision@k per predictor.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.graph.components import components_of_subset
from repro.graph.graph import Graph, Vertex, canonical_edge
from repro.structures.heap import LazyMaxHeap

Pair = Tuple[Vertex, Vertex]


def pair_structural_diversity(
    graph: Graph, u: Vertex, v: Vertex, tau: int = 1
) -> int:
    """Components of size >= tau among the common neighbors of ``(u, v)``.

    Unlike :func:`repro.core.edge_structural_diversity` the pair need not
    be an edge; it must consist of two distinct existing vertices.
    """
    if tau < 1:
        raise ValueError(f"tau must be >= 1, got {tau}")
    if u == v:
        raise ValueError(f"pair must be two distinct vertices, got {u!r} twice")
    common = graph.common_neighbors(u, v)
    return sum(1 for c in components_of_subset(graph, common) if len(c) >= tau)


def iter_candidate_pairs(
    graph: Graph, include_edges: bool = False
) -> Iterable[Pair]:
    """All pairs with >= 1 common neighbor (each exactly once, canonical).

    These are the only pairs with nonzero diversity; they are exactly the
    2-hop pairs, enumerated by pairing neighbors of every vertex.  With
    ``include_edges`` adjacent pairs are kept, otherwise skipped (the
    link-prediction setting).
    """
    seen: Set[Pair] = set()
    for w in graph.vertices():
        neighbors = sorted(graph.neighbors(w))
        for i, u in enumerate(neighbors):
            for v in neighbors[i + 1:]:
                pair = canonical_edge(u, v)
                if pair in seen:
                    continue
                seen.add(pair)
                if include_edges or not graph.has_edge(u, v):
                    yield pair


def topk_pairs_online(
    graph: Graph,
    k: int,
    tau: int = 1,
    include_edges: bool = False,
) -> List[Tuple[Pair, int]]:
    """Top-k vertex pairs by structural diversity (dequeue-twice).

    The candidate set is the 2-hop pairs; the upper bound is the
    common-neighbor rule, which is exact up to the ⌊·/τ⌋ rounding.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if tau < 1:
        raise ValueError(f"tau must be >= 1, got {tau}")
    queue: LazyMaxHeap[Pair] = LazyMaxHeap()
    for pair in iter_candidate_pairs(graph, include_edges=include_edges):
        bound = len(graph.common_neighbors(*pair)) // tau
        if bound > 0:
            queue.push(pair, bound)
    scored: Dict[Pair, int] = {}
    results: List[Tuple[Pair, int]] = []
    while len(results) < k and queue:
        pair, _priority = queue.pop()
        if pair in scored:
            results.append((pair, scored[pair]))
            continue
        score = pair_structural_diversity(graph, *pair, tau=tau)
        if score == 0:
            # Zero-score candidates are indistinguishable from the many
            # non-candidate pairs (which all score 0 too); reporting an
            # arbitrary subset of them would be misleading, so drop them.
            continue
        scored[pair] = score
        queue.push(pair, score)
    return results


#: Predictor name -> scoring function (graph, u, v) -> float.
PREDICTORS = {
    "diversity": lambda g, u, v: pair_structural_diversity(g, u, v, tau=1),
    "common-neighbors": lambda g, u, v: len(g.common_neighbors(u, v)),
    "jaccard": lambda g, u, v: (
        len(g.common_neighbors(u, v))
        / max(len(g.neighbors(u) | g.neighbors(v)), 1)
    ),
}


def rank_candidate_links(
    graph: Graph, predictor: str = "diversity", limit: int = 0
) -> List[Tuple[Pair, float]]:
    """Rank non-adjacent 2-hop pairs by the chosen predictor, best first.

    ``limit`` truncates the output (0 = all).  Ties break by pair id for
    determinism.
    """
    try:
        score = PREDICTORS[predictor]
    except KeyError:
        raise KeyError(
            f"unknown predictor {predictor!r}; choose from {sorted(PREDICTORS)}"
        ) from None
    ranked = sorted(
        (
            (pair, score(graph, *pair))
            for pair in iter_candidate_pairs(graph, include_edges=False)
        ),
        key=lambda item: (-item[1], item[0]),
    )
    return ranked[:limit] if limit else ranked


@dataclass(frozen=True)
class LinkPredictionResult:
    """Outcome of one hide-and-rank experiment for one predictor."""

    predictor: str
    hidden: int
    precision_at: Dict[int, float]
    recovered_in_top: Dict[int, int]


def link_prediction_experiment(
    graph: Graph,
    hide_fraction: float = 0.1,
    ks: Iterable[int] = (10, 50, 100),
    predictors: Iterable[str] = ("diversity", "common-neighbors", "jaccard"),
    seed: int = 0,
) -> List[LinkPredictionResult]:
    """Hide a random edge subset, rank candidates, report precision@k.

    Only hidden edges whose endpoints still share >= 1 common neighbor
    are recoverable by any 2-hop predictor; precision is measured against
    the full hidden set, so all predictors face the same ceiling.
    """
    if not 0.0 < hide_fraction < 1.0:
        raise ValueError(f"hide_fraction must be in (0, 1), got {hide_fraction}")
    rng = random.Random(seed)
    edges = sorted(graph.edges())
    hidden = set(
        rng.sample(edges, k=max(1, round(hide_fraction * len(edges))))
    )
    training = Graph(e for e in edges if e not in hidden)
    for u in graph.vertices():
        training.add_vertex(u)

    ks = sorted(set(ks))
    results = []
    for predictor in predictors:
        ranked = rank_candidate_links(training, predictor, limit=max(ks))
        hits_at: Dict[int, int] = {}
        precision: Dict[int, float] = {}
        hits = 0
        for i, (pair, _score) in enumerate(ranked, start=1):
            if pair in hidden:
                hits += 1
            if i in ks:
                hits_at[i] = hits
                precision[i] = hits / i
        for k in ks:  # ranked list may be shorter than k
            hits_at.setdefault(k, hits)
            precision.setdefault(k, hits / k)
        results.append(
            LinkPredictionResult(
                predictor=predictor,
                hidden=len(hidden),
                precision_at=precision,
                recovered_in_top=hits_at,
            )
        )
    return results
