"""Parallel ESDIndex construction -- PESDIndex+ (paper §IV-E).

The paper parallelizes Algorithm 3 *per directed edge* because the
out-degree skew makes vertex-parallel partitioning unbalanced while
per-edge workloads are nearly uniform.  We keep that edge-parallel
strategy but apply it to where pure Python actually spends its time: the
per-edge ego-network component computation (on our synthetic stand-ins
the 4-clique enumeration itself is a small fraction of construction, so
parallelizing only it -- as a C++ implementation would -- cannot show the
Fig. 7 trend; see DESIGN.md §3).

Pipeline:

1. undirected edges are costed by their ego-network size
   ``|N(u) ∩ N(v)| + 1`` and scheduled LPT (longest processing time
   first: each edge goes to the currently least-loaded chunk) into one
   chunk per worker -- the load balancing §IV-E exists for,
2. a ``multiprocessing`` fork pool computes each chunk's per-edge
   component-size multisets (true parallelism; Python threads would
   serialize on the GIL); with kernels enabled the parent ships the
   flat CSR arrays to each worker exactly once via the pool
   initializer and chunks travel as packed ``array('l')`` id pairs,
3. the parent bulk-loads the ESDIndex from the merged multisets.

``threads=1`` runs inline with zero pool overhead so speedup ratios
against it are fair.  :func:`parallel_four_cliques` additionally exposes
the paper's literal clique-parallel enumeration as a library feature.
"""

from __future__ import annotations

import heapq
import multiprocessing as mp
import os
from array import array
from itertools import chain
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.build import index_from_sizes
from repro.core.index import ESDIndex
from repro.graph.components import components_of_subset
from repro.graph.graph import Edge, Graph, Vertex
from repro.graph.ordering import OrientedGraph
from repro.kernels.dispatch import kernels_enabled

# Worker-side state, inherited through fork (set before pool creation).
_WORKER_GRAPH: Graph = None  # type: ignore[assignment]
_WORKER_DAG: OrientedGraph = None  # type: ignore[assignment]
# Worker-side CSR snapshot, mapped (shared-memory route) or rebuilt
# (pickled-arrays fallback) once per worker in the pool initializer,
# never re-pickled per chunk.
_WORKER_CSR = None

#: How the most recent kernel-route pool run shipped its snapshot:
#: ``mode`` is ``"shm"`` or ``"pickle"``, ``initargs_bytes`` is the
#: pickled size of the pool initargs (the whole per-worker serialization
#: cost), ``segment_bytes`` the shared segment size (0 on fallback).
#: Tests assert the shm route ships names, not arrays.
LAST_SHIP_INFO: Dict[str, object] = {}


def _resolve_threads(threads: int) -> int:
    if threads < 0:
        raise ValueError(f"threads must be >= 0, got {threads}")
    if threads == 0:
        return os.cpu_count() or 1
    return threads


def _edge_costs(graph: Graph) -> Dict[Edge, int]:
    """Per-edge work estimate ``|N(u) ∩ N(v)| + 1``.

    The ego-network component computation is linear-ish in the common
    neighborhood, so its size is the right LPT weight; ``+ 1`` keeps
    empty-neighborhood edges from being free.  With kernels enabled all
    counts come from one bitset pass over the CSR snapshot.
    """
    if kernels_enabled() and graph.m:
        from repro.kernels.csr import snapshot_csr
        from repro.kernels.triangles import csr_triangle_count_per_edge

        counts = csr_triangle_count_per_edge(snapshot_csr(graph))
        return {edge: c + 1 for edge, c in counts.items()}
    return {
        (u, v): len(graph.common_neighbors(u, v)) + 1
        for u, v in graph.edges()
    }


def _cost_balanced_chunks(graph: Graph, parts: int) -> List[List[Edge]]:
    """LPT-schedule edges into ``parts`` chunks by ego-network cost.

    Longest processing time first: edges are sorted by descending
    ``|N(u) ∩ N(v)| + 1`` and each goes to the currently least-loaded
    chunk (a heap of ``(load, chunk)`` pairs).  This is the classic
    4/3-approximation to minimum makespan -- the edge-parallel load
    balancing of §IV-E.  An earlier version dealt the sorted edges
    round-robin, which on skewed graphs can pile every heavy edge of a
    stride onto one worker; see ``tests/core/test_parallel.py``.
    """
    costs = _edge_costs(graph)
    edges = sorted(costs, key=lambda e: (-costs[e], e))
    chunks: List[List[Edge]] = [[] for _ in range(parts)]
    heap: List[Tuple[int, int]] = [(0, i) for i in range(parts)]
    for edge in edges:
        load, i = heapq.heappop(heap)
        chunks[i].append(edge)
        heapq.heappush(heap, (load + costs[edge], i))
    return chunks


def _component_sizes_chunk(chunk: Sequence[Edge]) -> Dict[Edge, Tuple[int, ...]]:
    """Worker: component-size multiset of every edge in the chunk."""
    graph = _WORKER_GRAPH
    out: Dict[Edge, Tuple[int, ...]] = {}
    for u, v in chunk:
        common = graph.common_neighbors(u, v)
        if common:
            out[(u, v)] = tuple(
                len(c) for c in components_of_subset(graph, common)
            )
    return out


def _init_worker_csr(offsets, neighbors, dag_start, labels) -> None:
    """Pool initializer: rehydrate the shipped CSR arrays, once per worker."""
    global _WORKER_CSR
    from repro.kernels.csr import CSRGraph

    _WORKER_CSR = CSRGraph.from_arrays(offsets, neighbors, dag_start, labels)
    _WORKER_CSR.ensure_bits()


def _init_worker_shared(segment_name: str) -> None:
    """Pool initializer: map the parent's shared CSR segment read-only.

    Only the segment *name* crossed the process boundary; the flat
    arrays are memoryview casts into the mapping.  The worker never
    closes the segment itself -- the mapping dies with the (forked)
    worker process, and the parent owns the unlink.
    """
    global _WORKER_CSR
    from repro.kernels.shm import SharedCSRSegment

    _WORKER_CSR = SharedCSRSegment.attach(segment_name).csr()
    _WORKER_CSR.ensure_bits()


def _component_sizes_chunk_ids(chunk: array) -> Dict[Tuple[int, int], Tuple[int, ...]]:
    """Worker: flood-fill sizes for a packed ``array('l')`` of id pairs."""
    from repro.kernels.components import _flood_fill_sizes

    csr = _WORKER_CSR
    adj = csr.adj_bits
    out: Dict[Tuple[int, int], Tuple[int, ...]] = {}
    it = iter(chunk)
    for a, b in zip(it, it):
        common = adj[a] & adj[b]
        if common:
            out[(a, b)] = tuple(_flood_fill_sizes(adj, common))
    return out


def _parallel_component_sizes_kernel(
    graph: Graph, threads: int
) -> Dict[Edge, Tuple[int, ...]]:
    """Kernel route: ship flat CSR arrays once, fan id-pair chunks out.

    Each chunk is a packed ``array('l')`` of interned id pairs -- a few
    machine words per edge on the wire instead of a pickled label tuple
    -- and every worker rebuilds (and bit-packs) the snapshot exactly
    once in its initializer.
    """
    from repro.kernels.csr import snapshot_csr

    csr = snapshot_csr(graph)
    intern = csr.intern
    chunks = _cost_balanced_chunks(graph, threads)
    id_chunks = [
        array(
            "l",
            chain.from_iterable((intern(u), intern(v)) for u, v in chunk),
        )
        for chunk in chunks
    ]
    canon = csr.canonical_label_edge
    merged: Dict[Edge, Tuple[int, ...]] = {}
    segment = None
    initializer, initargs = _init_worker_csr, csr.ship()
    from repro.kernels import shm

    if shm.shm_available():
        try:
            segment = shm.SharedCSRSegment.create(csr)
            initializer, initargs = _init_worker_shared, (segment.name,)
        except Exception:
            # /dev/shm full or unusable: the pickled-arrays route still
            # produces identical results, just with per-worker copies.
            segment = None
    import pickle as _pickle

    LAST_SHIP_INFO.clear()
    LAST_SHIP_INFO.update(
        mode="shm" if segment is not None else "pickle",
        initargs_bytes=len(_pickle.dumps(initargs)),
        segment_bytes=segment.size if segment is not None else 0,
    )
    try:
        ctx = mp.get_context("fork")
        with ctx.Pool(
            processes=threads,
            initializer=initializer,
            initargs=initargs,
        ) as pool:
            for part in pool.map(_component_sizes_chunk_ids, id_chunks):
                for (a, b), sizes in part.items():
                    merged[canon(a, b)] = sizes
    finally:
        if segment is not None:
            segment.destroy()
    return merged


def parallel_component_sizes(
    graph: Graph, threads: int = 0
) -> Dict[Edge, Tuple[int, ...]]:
    """All per-edge ego-network component sizes, computed in parallel."""
    global _WORKER_GRAPH
    threads = _resolve_threads(threads)
    use_kernels = kernels_enabled() and graph.m
    if threads == 1 or graph.m < 4 * threads:
        if use_kernels:
            from repro.kernels.components import csr_all_ego_component_sizes
            from repro.kernels.csr import snapshot_csr

            return {
                edge: tuple(sizes)
                for edge, sizes in csr_all_ego_component_sizes(
                    snapshot_csr(graph)
                ).items()
                if sizes
            }
        _WORKER_GRAPH = graph
        try:
            return _component_sizes_chunk(list(graph.edges()))
        finally:
            _WORKER_GRAPH = None

    if use_kernels:
        return _parallel_component_sizes_kernel(graph, threads)

    _WORKER_GRAPH = graph
    try:
        ctx = mp.get_context("fork")
        chunks = _cost_balanced_chunks(graph, threads)
        merged: Dict[Edge, Tuple[int, ...]] = {}
        with ctx.Pool(processes=threads) as pool:
            for part in pool.map(_component_sizes_chunk, chunks):
                merged.update(part)
        return merged
    finally:
        _WORKER_GRAPH = None


def build_index_parallel(graph: Graph, threads: int = 0) -> ESDIndex:
    """PESDIndex+: edge-parallel construction (§IV-E).

    Produces an index identical to
    :func:`repro.core.build.build_index_fast`.  ``threads=0`` uses all
    cores; ``threads=1`` is the sequential baseline of Fig. 7's speedup
    ratio.
    """
    sizes = parallel_component_sizes(graph, threads=threads)
    return index_from_sizes(sizes)


def simulate_parallel_speedup(graph: Graph, threads: int) -> Dict[str, float]:
    """Measured-work simulation of the PESDIndex+ speedup (Fig. 7).

    On a multi-core host :func:`build_index_parallel` gives real wall-clock
    speedups; this container may expose a single core, making measured
    ratios meaningless (DESIGN.md §3 documents the substitution).  This
    routine times every worker chunk *sequentially* plus the serial index
    load, then reports the speedup ``threads`` perfectly-overlapped
    workers would achieve:

        speedup(t) = (serial + sum(chunks)) / (serial + max(chunk_i))

    Because chunk times are measured, not modeled, the skew the paper's
    edge-parallel partitioning is designed to avoid shows up faithfully.

    Both phases are chunk-timed: the component computation (step two of
    §IV-E) and the per-edge index insertion (the paper parallelizes lines
    17 and 23 of Algorithm 3 the same way, inserting into the shared
    ``H(c)`` structures concurrently).  Only the final shard merge is
    counted as serial.
    """
    import time

    global _WORKER_GRAPH
    threads = _resolve_threads(threads)
    _WORKER_GRAPH = graph
    try:
        chunks = _cost_balanced_chunks(graph, threads)
        chunk_times: List[float] = []
        shards: List[Dict[Edge, Tuple[int, ...]]] = []
        for chunk in chunks:
            start = time.perf_counter()
            sizes = _component_sizes_chunk(chunk)
            index_from_sizes(sizes)  # this chunk's share of the H build
            chunk_times.append(time.perf_counter() - start)
            shards.append(sizes)
    finally:
        _WORKER_GRAPH = None
    # Serial remainder: merging the shard outputs (cheap dict union).
    start = time.perf_counter()
    merged: Dict[Edge, Tuple[int, ...]] = {}
    for shard in shards:
        merged.update(shard)
    serial = time.perf_counter() - start
    total = serial + sum(chunk_times)
    overlapped = serial + max(chunk_times)
    return {
        "threads": float(threads),
        "serial_seconds": serial,
        "parallel_seconds": sum(chunk_times),
        "sequential_total": total,
        "overlapped_total": overlapped,
        "speedup": total / overlapped if overlapped > 0 else 1.0,
    }


def _enumerate_chunk(
    chunk: Sequence[Tuple[Vertex, Vertex]]
) -> List[Tuple[Vertex, Vertex, Vertex, Vertex]]:
    """Worker: list the 4-cliques rooted at each directed edge in chunk."""
    dag = _WORKER_DAG
    cliques: List[Tuple[Vertex, Vertex, Vertex, Vertex]] = []
    for u, v in chunk:
        common = dag.out_neighbors(u) & dag.out_neighbors(v)
        if len(common) < 2:
            continue
        for w1 in common:
            for w2 in dag.out_neighbors(w1):
                if w2 in common:
                    cliques.append((u, v, w1, w2))
    return cliques


def parallel_four_cliques(
    graph: Graph, threads: int = 0
) -> Iterable[Tuple[Vertex, Vertex, Vertex, Vertex]]:
    """Enumerate all 4-cliques with ``threads`` worker processes.

    The paper's literal directed-edge-parallel enumeration (§IV-E step
    two).  ``threads=0`` uses all cores; ``threads=1`` runs inline.

    Results are materialized eagerly and returned as an iterator.  An
    earlier version built the pool inside a generator; an abandoned
    iterator then suspended mid-``with``, leaking the worker processes
    and leaving ``_WORKER_DAG`` pinned until GC.  ``pool.map`` is eager
    anyway, so laziness bought nothing -- now the pool is torn down and
    the module state cleared before this function returns, no matter
    what the caller does with the iterator.
    """
    global _WORKER_DAG
    threads = _resolve_threads(threads)
    dag = OrientedGraph(graph)
    directed = dag.directed_edges()
    _WORKER_DAG = dag
    try:
        if threads == 1 or len(directed) < 2 * threads:
            return iter(_enumerate_chunk(directed))
        ctx = mp.get_context("fork")
        chunks: List[List[Tuple[Vertex, Vertex]]] = [[] for _ in range(threads)]
        for i, edge in enumerate(directed):
            chunks[i % threads].append(edge)
        cliques: List[Tuple[Vertex, Vertex, Vertex, Vertex]] = []
        with ctx.Pool(processes=threads) as pool:
            for part in pool.map(_enumerate_chunk, chunks):
                cliques.extend(part)
        return iter(cliques)
    finally:
        _WORKER_DAG = None
