"""Parallel ESDIndex construction -- PESDIndex+ (paper §IV-E).

The paper parallelizes Algorithm 3 *per directed edge* because the
out-degree skew makes vertex-parallel partitioning unbalanced while
per-edge workloads are nearly uniform.  We keep that edge-parallel
strategy but apply it to where pure Python actually spends its time: the
per-edge ego-network component computation (on our synthetic stand-ins
the 4-clique enumeration itself is a small fraction of construction, so
parallelizing only it -- as a C++ implementation would -- cannot show the
Fig. 7 trend; see DESIGN.md §3).

Pipeline:

1. undirected edges are sorted by estimated cost ``min{d(u), d(v)}`` and
   dealt round-robin into one chunk per worker (load balancing, the
   paper's stated reason for edge-parallelism),
2. a ``multiprocessing`` fork pool computes each chunk's per-edge
   component-size multisets (true parallelism; Python threads would
   serialize on the GIL),
3. the parent bulk-loads the ESDIndex from the merged multisets.

``threads=1`` runs inline with zero pool overhead so speedup ratios
against it are fair.  :func:`parallel_four_cliques` additionally exposes
the paper's literal clique-parallel enumeration as a library feature.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.build import index_from_sizes
from repro.core.index import ESDIndex
from repro.graph.components import components_of_subset
from repro.graph.graph import Edge, Graph, Vertex
from repro.graph.ordering import OrientedGraph

# Worker-side state, inherited through fork (set before pool creation).
_WORKER_GRAPH: Graph = None  # type: ignore[assignment]
_WORKER_DAG: OrientedGraph = None  # type: ignore[assignment]


def _resolve_threads(threads: int) -> int:
    if threads < 0:
        raise ValueError(f"threads must be >= 0, got {threads}")
    if threads == 0:
        return os.cpu_count() or 1
    return threads


def _cost_balanced_chunks(graph: Graph, parts: int) -> List[List[Edge]]:
    """Deal edges round-robin by descending ``min{d(u), d(v)}``.

    The heaviest ego-networks spread across workers first, the long tail
    of cheap edges evens out the remainder -- the edge-parallel load
    balancing of §IV-E.
    """
    edges = sorted(
        graph.edges(),
        key=lambda e: (-min(graph.degree(e[0]), graph.degree(e[1])), e),
    )
    chunks: List[List[Edge]] = [[] for _ in range(parts)]
    for i, edge in enumerate(edges):
        chunks[i % parts].append(edge)
    return chunks


def _component_sizes_chunk(chunk: Sequence[Edge]) -> Dict[Edge, Tuple[int, ...]]:
    """Worker: component-size multiset of every edge in the chunk."""
    graph = _WORKER_GRAPH
    out: Dict[Edge, Tuple[int, ...]] = {}
    for u, v in chunk:
        common = graph.common_neighbors(u, v)
        if common:
            out[(u, v)] = tuple(
                len(c) for c in components_of_subset(graph, common)
            )
    return out


def parallel_component_sizes(
    graph: Graph, threads: int = 0
) -> Dict[Edge, Tuple[int, ...]]:
    """All per-edge ego-network component sizes, computed in parallel."""
    global _WORKER_GRAPH
    threads = _resolve_threads(threads)
    if threads == 1 or graph.m < 4 * threads:
        _WORKER_GRAPH = graph
        try:
            return _component_sizes_chunk(list(graph.edges()))
        finally:
            _WORKER_GRAPH = None

    _WORKER_GRAPH = graph
    try:
        ctx = mp.get_context("fork")
        chunks = _cost_balanced_chunks(graph, threads)
        merged: Dict[Edge, Tuple[int, ...]] = {}
        with ctx.Pool(processes=threads) as pool:
            for part in pool.map(_component_sizes_chunk, chunks):
                merged.update(part)
        return merged
    finally:
        _WORKER_GRAPH = None


def build_index_parallel(graph: Graph, threads: int = 0) -> ESDIndex:
    """PESDIndex+: edge-parallel construction (§IV-E).

    Produces an index identical to
    :func:`repro.core.build.build_index_fast`.  ``threads=0`` uses all
    cores; ``threads=1`` is the sequential baseline of Fig. 7's speedup
    ratio.
    """
    sizes = parallel_component_sizes(graph, threads=threads)
    return index_from_sizes(sizes)


def simulate_parallel_speedup(graph: Graph, threads: int) -> Dict[str, float]:
    """Measured-work simulation of the PESDIndex+ speedup (Fig. 7).

    On a multi-core host :func:`build_index_parallel` gives real wall-clock
    speedups; this container may expose a single core, making measured
    ratios meaningless (DESIGN.md §3 documents the substitution).  This
    routine times every worker chunk *sequentially* plus the serial index
    load, then reports the speedup ``threads`` perfectly-overlapped
    workers would achieve:

        speedup(t) = (serial + sum(chunks)) / (serial + max(chunk_i))

    Because chunk times are measured, not modeled, the skew the paper's
    edge-parallel partitioning is designed to avoid shows up faithfully.

    Both phases are chunk-timed: the component computation (step two of
    §IV-E) and the per-edge index insertion (the paper parallelizes lines
    17 and 23 of Algorithm 3 the same way, inserting into the shared
    ``H(c)`` structures concurrently).  Only the final shard merge is
    counted as serial.
    """
    import time

    global _WORKER_GRAPH
    threads = _resolve_threads(threads)
    _WORKER_GRAPH = graph
    try:
        chunks = _cost_balanced_chunks(graph, threads)
        chunk_times: List[float] = []
        shards: List[Dict[Edge, Tuple[int, ...]]] = []
        for chunk in chunks:
            start = time.perf_counter()
            sizes = _component_sizes_chunk(chunk)
            index_from_sizes(sizes)  # this chunk's share of the H build
            chunk_times.append(time.perf_counter() - start)
            shards.append(sizes)
    finally:
        _WORKER_GRAPH = None
    # Serial remainder: merging the shard outputs (cheap dict union).
    start = time.perf_counter()
    merged: Dict[Edge, Tuple[int, ...]] = {}
    for shard in shards:
        merged.update(shard)
    serial = time.perf_counter() - start
    total = serial + sum(chunk_times)
    overlapped = serial + max(chunk_times)
    return {
        "threads": float(threads),
        "serial_seconds": serial,
        "parallel_seconds": sum(chunk_times),
        "sequential_total": total,
        "overlapped_total": overlapped,
        "speedup": total / overlapped if overlapped > 0 else 1.0,
    }


def _enumerate_chunk(
    chunk: Sequence[Tuple[Vertex, Vertex]]
) -> List[Tuple[Vertex, Vertex, Vertex, Vertex]]:
    """Worker: list the 4-cliques rooted at each directed edge in chunk."""
    dag = _WORKER_DAG
    cliques: List[Tuple[Vertex, Vertex, Vertex, Vertex]] = []
    for u, v in chunk:
        common = dag.out_neighbors(u) & dag.out_neighbors(v)
        if len(common) < 2:
            continue
        for w1 in common:
            for w2 in dag.out_neighbors(w1):
                if w2 in common:
                    cliques.append((u, v, w1, w2))
    return cliques


def parallel_four_cliques(
    graph: Graph, threads: int = 0
) -> Iterable[Tuple[Vertex, Vertex, Vertex, Vertex]]:
    """Enumerate all 4-cliques with ``threads`` worker processes.

    The paper's literal directed-edge-parallel enumeration (§IV-E step
    two).  ``threads=0`` uses all cores; ``threads=1`` runs inline.

    Results are materialized eagerly and returned as an iterator.  An
    earlier version built the pool inside a generator; an abandoned
    iterator then suspended mid-``with``, leaking the worker processes
    and leaving ``_WORKER_DAG`` pinned until GC.  ``pool.map`` is eager
    anyway, so laziness bought nothing -- now the pool is torn down and
    the module state cleared before this function returns, no matter
    what the caller does with the iterator.
    """
    global _WORKER_DAG
    threads = _resolve_threads(threads)
    dag = OrientedGraph(graph)
    directed = dag.directed_edges()
    _WORKER_DAG = dag
    try:
        if threads == 1 or len(directed) < 2 * threads:
            return iter(_enumerate_chunk(directed))
        ctx = mp.get_context("fork")
        chunks: List[List[Tuple[Vertex, Vertex]]] = [[] for _ in range(threads)]
        for i, edge in enumerate(directed):
            chunks[i % threads].append(edge)
        cliques: List[Tuple[Vertex, Vertex, Vertex, Vertex]] = []
        with ctx.Pool(processes=threads) as pool:
            for part in pool.map(_enumerate_chunk, chunks):
                cliques.extend(part)
        return iter(cliques)
    finally:
        _WORKER_DAG = None
