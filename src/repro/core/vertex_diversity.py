"""Vertex structural diversity (related-work extension).

The paper generalizes *vertex* structural diversity (Ugander et al.;
top-k search by Huang et al. [2] and Chang et al. [4]) to edges.  For
completeness -- and because the case studies contrast the two -- this
module implements the vertex version: ``score(v)`` is the number of
connected components of the subgraph induced by ``N(v)`` with size >= τ,
and the top-k search reuses the same dequeue-twice framework with the
degree upper bound ``⌊d(v) / τ⌋``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graph.components import components_of_subset
from repro.graph.graph import Graph, Vertex
from repro.structures.heap import LazyMaxHeap


def vertex_structural_diversity(graph: Graph, v: Vertex, tau: int = 1) -> int:
    """Number of components of the ego-network ``G_N(v)`` with size >= τ."""
    if tau < 1:
        raise ValueError(f"tau must be >= 1, got {tau}")
    components = components_of_subset(graph, graph.neighbors(v))
    return sum(1 for c in components if len(c) >= tau)


def all_vertex_structural_diversities(
    graph: Graph, tau: int = 1
) -> Dict[Vertex, int]:
    """``score(v)`` for every vertex (full scan)."""
    return {
        v: vertex_structural_diversity(graph, v, tau) for v in graph.vertices()
    }


def topk_vertex_online(
    graph: Graph, k: int, tau: int = 1
) -> List[Tuple[Vertex, int]]:
    """Top-k vertices by structural diversity, dequeue-twice style.

    Mirrors Algorithm 1 with vertices in place of edges and the degree
    bound ``⌊d(v) / τ⌋`` in place of the edge bounds.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if tau < 1:
        raise ValueError(f"tau must be >= 1, got {tau}")
    queue: LazyMaxHeap[Vertex] = LazyMaxHeap()
    for v in graph.vertices():
        queue.push(v, graph.degree(v) // tau)
    scored: Dict[Vertex, int] = {}
    results: List[Tuple[Vertex, int]] = []
    while len(results) < k and queue:
        v, _priority = queue.pop()
        if v in scored:
            results.append((v, scored[v]))
            continue
        score = vertex_structural_diversity(graph, v, tau)
        scored[v] = score
        queue.push(v, score)
    return results
