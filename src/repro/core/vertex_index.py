"""Index for top-k *vertex* structural diversity (extension).

The paper notes it is "the first work that studies indexing technique to
solve the top-k structural diversity search problem" -- for edges.  The
same machinery transfers verbatim to the original vertex formulation
(Ugander et al.; online algorithms by Huang et al. and Chang et al.),
because the vertex analogue of Observation 1 holds:

    ``(w1, w2)`` is an edge of the vertex ego-network ``G_N(v)``
    iff ``{v, w1, w2}`` is a *triangle* of ``G``.

So where the edge index enumerates 4-cliques and performs six unions,
the vertex index enumerates triangles once each (Ortmann-Brandes
orientation) and performs three unions -- one per triangle vertex.
Everything else (the ``H(c)`` size-class treaps, query, back-fill) is
shared with :class:`~repro.core.index.ESDIndex`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cliques.triangles import iter_triangles
from repro.core.index import ESDIndex
from repro.graph.graph import Graph, Vertex


class VertexESDIndex(ESDIndex):
    """Top-k vertex structural diversity index.

    Keys are vertices instead of edges; build with
    :func:`build_vertex_index`, query with the inherited :meth:`topk` /
    :meth:`query`.
    """

    @staticmethod
    def _canon(item):
        return item

    @property
    def vertex_count(self) -> int:
        """Number of vertices with at least one neighbor in the index."""
        return self.edge_count  # inherited counter; keys are vertices here

    def set_vertex(self, v: Vertex, sizes) -> None:
        """Insert/update one vertex's neighborhood component multiset."""
        self.set_edge(v, sizes)

    def remove_vertex(self, v: Vertex) -> None:
        """Drop a vertex from the index (no-op if untracked)."""
        self.remove_edge(v)

    def check_invariants(self, graph: Optional[Graph] = None) -> None:
        """Validate internal consistency and, given ``graph``, ground truth."""
        from repro.graph.components import components_of_subset

        super().check_invariants(None)
        if graph is None:
            return
        tracked = set(self._sizes)
        for v in graph.vertices():
            sizes = sorted(
                len(c) for c in components_of_subset(graph, graph.neighbors(v))
            )
            if sizes:
                assert self.component_sizes(v) == sizes, f"mismatch at {v!r}"
                tracked.discard(v)
            else:
                assert v not in self._sizes, f"phantom vertex {v!r}"
        assert not tracked, f"stale vertices in index: {tracked}"

    def component_sizes(self, v) -> List[int]:
        """Stored component-size multiset of vertex ``v``."""
        hist = self._sizes.get(v)
        if not hist:
            return []
        return sorted(hist.elements())

    def score(self, v, tau: int) -> int:
        """Vertex structural diversity of ``v`` at threshold ``tau``."""
        if tau < 1:
            raise ValueError(f"tau must be >= 1, got {tau}")
        hist = self._sizes.get(v)
        if not hist:
            return 0
        return sum(count for size, count in hist.items() if size >= tau)


def vertex_components_fast(graph: Graph) -> Dict[Vertex, Tuple[dict, dict]]:
    """Per-vertex neighborhood components via single-pass triangle listing.

    Returns raw ``(parent, size)`` union-find pairs, one per vertex with a
    nonempty neighborhood.
    """
    raw: Dict[Vertex, Tuple[dict, dict]] = {}
    for v in graph.vertices():
        nbrs = graph.neighbors(v)
        raw[v] = ({w: w for w in nbrs}, {w: 1 for w in nbrs})

    from repro.core.build import _union_raw  # shared hot-loop helper

    for a, b, c in iter_triangles(graph):
        _union_raw(raw[a], b, c)
        _union_raw(raw[b], a, c)
        _union_raw(raw[c], a, b)
    return raw


def build_vertex_index(graph: Graph) -> VertexESDIndex:
    """Build a :class:`VertexESDIndex` via triangle enumeration."""
    sizes = {
        v: list(size.values())
        for v, (_parent, size) in vertex_components_fast(graph).items()
        if size
    }
    return VertexESDIndex.bulk_load(sizes)
