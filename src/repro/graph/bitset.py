"""Bitset-packed adjacency: a fast path for neighborhood algebra.

CPython evaluates bitwise AND/OR on big integers in C, so packing each
adjacency list into one int turns the library's two hottest primitives --
common-neighborhood intersection and ego-network BFS -- into a handful of
machine-speed word operations.  :class:`BitsetAdjacency` is an immutable
snapshot view of a :class:`~repro.graph.graph.Graph`;
:func:`repro.core.build.build_index_bitset` uses it for the fastest
pure-Python index construction in this repository (ablated in
``benchmarks/test_ablation.py``).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graph.graph import Graph, Vertex


class BitsetAdjacency:
    """Immutable bitset view of an undirected graph.

    Vertices are mapped to bit positions ``0..n-1`` (sorted original
    order); the adjacency of vertex ``i`` is one Python int with bit ``j``
    set iff ``(i, j)`` is an edge.  The view is a snapshot: later
    mutations of the source graph are not reflected.
    """

    __slots__ = ("_vertices", "_ids", "_adj")

    def __init__(self, graph: Graph) -> None:
        self._vertices: List[Vertex] = sorted(graph.vertices())
        self._ids: Dict[Vertex, int] = {
            u: i for i, u in enumerate(self._vertices)
        }
        adj = [0] * len(self._vertices)
        for u, v in graph.edges():
            iu, iv = self._ids[u], self._ids[v]
            adj[iu] |= 1 << iv
            adj[iv] |= 1 << iu
        self._adj = adj

    @property
    def n(self) -> int:
        """Number of vertices in the snapshot."""
        return len(self._vertices)

    def index_of(self, u: Vertex) -> int:
        """Bit position of vertex ``u`` (KeyError if unknown)."""
        return self._ids[u]

    def vertex_at(self, index: int) -> Vertex:
        """Vertex at bit position ``index``."""
        return self._vertices[index]

    def adjacency_bits(self, u: Vertex) -> int:
        """The packed neighborhood of ``u``."""
        return self._adj[self._ids[u]]

    def common_neighbor_count(self, u: Vertex, v: Vertex) -> int:
        """``|N(u) ∩ N(v)|`` via one AND + popcount."""
        return (self._adj[self._ids[u]] & self._adj[self._ids[v]]).bit_count()

    def common_neighbors(self, u: Vertex, v: Vertex) -> List[Vertex]:
        """``N(u) ∩ N(v)`` as original vertex labels."""
        bits = self._adj[self._ids[u]] & self._adj[self._ids[v]]
        out = []
        while bits:
            low = bits & -bits
            out.append(self._vertices[low.bit_length() - 1])
            bits ^= low
        return out

    def ego_component_sizes(self, u: Vertex, v: Vertex) -> List[int]:
        """Component sizes of the ego-network ``G_N(uv)`` (unordered).

        Bitset flood fill: the frontier expansion is a word-parallel OR
        over member adjacencies, so each BFS layer costs O(n / wordsize)
        per member instead of per-edge Python-set work.
        """
        adj = self._adj
        members = adj[self._ids[u]] & adj[self._ids[v]]
        sizes: List[int] = []
        while members:
            seed = members & -members
            component = seed
            frontier = seed
            while frontier:
                reach = 0
                bits = frontier
                while bits:
                    low = bits & -bits
                    reach |= adj[low.bit_length() - 1]
                    bits ^= low
                frontier = reach & members & ~component
                component |= frontier
            sizes.append(component.bit_count())
            members &= ~component
        return sizes

    def all_ego_component_sizes(self, graph: Graph) -> Dict[Tuple, List[int]]:
        """Component-size multiset for every edge of ``graph``.

        ``graph`` must be the snapshot's source (or an identical copy).
        """
        return {
            (u, v): self.ego_component_sizes(u, v) for u, v in graph.edges()
        }
