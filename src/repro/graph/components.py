"""Connected components of graphs and induced subgraphs (BFS).

The straightforward structural-diversity computation (Definition 2) runs a
BFS over an edge's ego-network; these helpers implement that traversal for
arbitrary vertex subsets without materializing subgraph objects.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, List, Set

from repro.graph.graph import Graph, Vertex


def connected_components(graph: Graph) -> List[Set[Vertex]]:
    """All connected components of ``graph`` as vertex sets."""
    return components_of_subset(graph, graph.vertices())


def components_of_subset(
    graph: Graph, subset: Iterable[Vertex]
) -> List[Set[Vertex]]:
    """Connected components of the subgraph of ``graph`` induced by ``subset``.

    Only edges with both endpoints in ``subset`` are traversed.  Runs in
    ``O(|subset| + edges-inside)`` time; membership tests use a set built
    from ``subset``.
    """
    members = set(subset)
    seen: Set[Vertex] = set()
    components: List[Set[Vertex]] = []
    for start in members:
        if start in seen:
            continue
        component: Set[Vertex] = {start}
        seen.add(start)
        queue = deque([start])
        while queue:
            x = queue.popleft()
            for y in graph.neighbors(x):
                if y in members and y not in seen:
                    seen.add(y)
                    component.add(y)
                    queue.append(y)
        components.append(component)
    return components


def component_sizes_of_subset(graph: Graph, subset: Iterable[Vertex]) -> List[int]:
    """Sizes of the components of the induced subgraph (unordered)."""
    return [len(c) for c in components_of_subset(graph, subset)]


def count_components_at_least(
    graph: Graph, subset: Iterable[Vertex], tau: int
) -> int:
    """Number of induced components with size >= ``tau`` (the BFS procedure
    of Algorithm 1, lines 16-21)."""
    if tau < 1:
        raise ValueError(f"tau must be >= 1, got {tau}")
    return sum(1 for c in components_of_subset(graph, subset) if len(c) >= tau)


def is_connected(graph: Graph) -> bool:
    """True if the graph is connected (an empty graph counts as connected)."""
    if graph.n == 0:
        return True
    return len(connected_components(graph)) == 1


def largest_component(graph: Graph) -> Set[Vertex]:
    """Vertex set of the largest connected component (empty set if empty)."""
    comps = connected_components(graph)
    return max(comps, key=len) if comps else set()
