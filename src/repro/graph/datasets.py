"""Synthetic stand-ins for the paper's five SNAP datasets (Table I).

The paper evaluates on Youtube, WikiTalk, DBLP, Pokec and LiveJournal
(3M-35M edges).  Offline and in pure Python those sizes are out of reach
(see DESIGN.md §3), so each dataset gets a deterministic synthetic
stand-in ~1000x smaller whose *character* matches the original:

* ``youtube``     -- power-law social graph, low clustering.
* ``wikitalk``    -- extremely skewed communication graph (star-heavy,
  huge d_max relative to size, tiny degeneracy-to-d_max ratio).
* ``dblp``        -- collaboration graph made of paper-team cliques; the
  highest degeneracy relative to average degree, like the original.
* ``pokec``       -- denser friendship graph (preferential attachment).
* ``livejournal`` -- the largest: community blocks + power-law overlay.

Relative sizes preserve the paper's ordering
(youtube < wikitalk < dblp < pokec < livejournal by edge count).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.graph.generators import (
    barabasi_albert,
    chung_lu_power_law,
    collaboration_network,
    gnm_random,
    planted_partition,
    word_association_network,
)
from repro.graph.graph import Graph

#: Dataset order as in Table I.
DATASET_NAMES: List[str] = ["youtube", "wikitalk", "dblp", "pokec", "livejournal"]


def youtube(scale: float = 1.0, seed: int = 11) -> Graph:
    """Power-law, low-clustering social graph (Youtube stand-in)."""
    n = max(int(1500 * scale), 50)
    return chung_lu_power_law(n, exponent=2.2, average_degree=5.0, seed=seed)


def wikitalk(scale: float = 1.0, seed: int = 13) -> Graph:
    """Star-heavy communication graph (WikiTalk stand-in).

    A few hundred "admin" hubs receive most edges, yielding a very high
    d_max but low degeneracy -- the signature of the original WikiTalk.
    """
    n = max(int(2600 * scale), 60)
    graph = chung_lu_power_law(n, exponent=1.9, average_degree=4.0, seed=seed)
    return graph


def dblp(scale: float = 1.0, seed: int = 17) -> Graph:
    """Collaboration graph of paper-team cliques (DBLP stand-in)."""
    communities = max(int(44 * scale), 4)
    return collaboration_network(
        communities=communities,
        community_size=20,
        papers_per_community=32,
        team_size=4,
        bridge_pairs=max(int(8 * scale), 2),
        contexts_per_bridge=5,
        context_size=3,
        seed=seed,
    )


def pokec(scale: float = 1.0, seed: int = 19) -> Graph:
    """Denser friendship graph (Pokec stand-in)."""
    n = max(int(1800 * scale), 30)
    return barabasi_albert(n, attach=7, seed=seed)


def livejournal(scale: float = 1.0, seed: int = 23) -> Graph:
    """Largest stand-in: community blocks plus a power-law overlay."""
    blocks = max(int(48 * scale), 3)
    base = planted_partition(
        communities=blocks, community_size=40, p_in=0.22, p_out=0.0008, seed=seed
    )
    overlay = chung_lu_power_law(
        base.n, exponent=2.4, average_degree=6.0, seed=seed + 1
    )
    merged = base.copy()
    for u, v in overlay.edges():
        merged.add_edge(u, v)
    return merged


#: name -> builder, in Table I order.
DATASETS: Dict[str, Callable[..., Graph]] = {
    "youtube": youtube,
    "wikitalk": wikitalk,
    "dblp": dblp,
    "pokec": pokec,
    "livejournal": livejournal,
}


def load_dataset(name: str, scale: float = 1.0) -> Graph:
    """Build the named dataset stand-in (see :data:`DATASET_NAMES`)."""
    try:
        builder = DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; choose from {DATASET_NAMES}"
        ) from None
    return builder(scale=scale)


def db_subgraph(seed: int = 29) -> Graph:
    """The Exp-7 ``DB`` case-study graph: DBLP stand-in with pronounced
    bridge-author pairs (τ=2 top-k edges connect many communities)."""
    return collaboration_network(
        communities=16,
        community_size=18,
        papers_per_community=22,
        team_size=4,
        bridge_pairs=5,
        contexts_per_bridge=6,
        context_size=2,
        dense_pairs=3,
        dense_degree=16,
        seed=seed,
    )


def word_association(seed: int = 31) -> Graph:
    """The Exp-8 word-association case-study graph (string vertices)."""
    return word_association_network(seed=seed)


def tiny_random(seed: int = 37) -> Graph:
    """A small G(n, m) graph for quick tests and examples."""
    return gnm_random(60, 180, seed=seed)


def paper_example_graph() -> Graph:
    """The running example graph of the paper (Fig. 1(a)).

    Reconstructed from the paper's worked examples; every number in
    Examples 1-7 and the Fig. 2 index tables checks out against this
    graph (see tests/core/test_paper_examples.py).  Vertices are the
    paper's letters: the left block ``a..i``, the bridge pair ``h, i`` to
    ``j, k``, the 6-clique ``{j, k, u, v, p, q}`` and the extra vertex
    ``w`` adjacent to ``u, p, q``.
    """
    left = [
        ("a", "b"), ("a", "c"), ("b", "c"), ("b", "d"), ("b", "e"),
        ("c", "e"), ("c", "g"), ("d", "e"),
        ("d", "f"), ("d", "g"), ("e", "f"), ("e", "g"), ("f", "g"),
        ("f", "h"), ("f", "i"), ("g", "h"), ("g", "i"), ("h", "i"),
    ]
    middle = [("h", "j"), ("h", "k"), ("i", "j"), ("i", "k")]
    clique = ["j", "k", "u", "v", "p", "q"]
    right = [
        (clique[i], clique[j])
        for i in range(len(clique))
        for j in range(i + 1, len(clique))
    ]
    extra = [("u", "w"), ("p", "w"), ("q", "w")]
    return Graph(left + middle + right + extra)
