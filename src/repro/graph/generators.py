"""Random graph generators (from scratch, deterministic per seed).

These supply the synthetic stand-ins for the paper's datasets (the SNAP
downloads are unavailable offline, and pure Python caps tractable sizes --
see DESIGN.md §3).  Beyond the classic models, two purpose-built
generators plant the structures the paper's case studies rely on:

* :func:`collaboration_network` -- a DBLP-like co-authorship graph with
  community cliques plus "bridge" author pairs that co-author with several
  disjoint teams (high edge structural diversity by construction).
* :func:`word_association_network` -- a USF-style word association graph
  where polysemous hub word pairs link several small semantic-context
  clusters (the "bank"/"money" structure of Fig. 13).
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence, Tuple

from repro.graph.graph import Graph


def _require_positive(name: str, value: int) -> None:
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")


def erdos_renyi(n: int, p: float, seed: int = 0) -> Graph:
    """G(n, p): each of the C(n,2) edges appears independently with prob p.

    Uses geometric skipping so the cost is O(n + m), not O(n^2).
    """
    _require_positive("n", n)
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng = random.Random(seed)
    graph = Graph()
    for u in range(n):
        graph.add_vertex(u)
    if p == 0.0:
        return graph
    if p == 1.0:
        for u in range(n):
            for v in range(u + 1, n):
                graph.add_edge(u, v)
        return graph
    log_q = math.log(1.0 - p)
    v, w = 1, -1
    while v < n:
        w += 1 + int(math.log(1.0 - rng.random()) / log_q)
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            graph.add_edge(v, w)
    return graph


def gnm_random(n: int, m: int, seed: int = 0) -> Graph:
    """G(n, m): exactly m distinct edges drawn uniformly."""
    _require_positive("n", n)
    max_edges = n * (n - 1) // 2
    if not 0 <= m <= max_edges:
        raise ValueError(f"m must be in [0, {max_edges}], got {m}")
    rng = random.Random(seed)
    graph = Graph()
    for u in range(n):
        graph.add_vertex(u)
    seen = set()
    while len(seen) < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        edge = (u, v) if u < v else (v, u)
        if edge not in seen:
            seen.add(edge)
            graph.add_edge(*edge)
    return graph


def barabasi_albert(n: int, attach: int, seed: int = 0) -> Graph:
    """Preferential attachment: each new vertex attaches to ``attach``
    existing vertices chosen proportionally to degree."""
    _require_positive("n", n)
    _require_positive("attach", attach)
    if n <= attach:
        raise ValueError(f"n must exceed attach ({attach}), got {n}")
    rng = random.Random(seed)
    graph = Graph()
    # Seed clique of `attach + 1` vertices keeps early degrees nonzero.
    hubs = list(range(attach + 1))
    for u in hubs:
        for v in hubs[u + 1:]:
            graph.add_edge(u, v)
    repeated: List[int] = [u for edge in graph.edges() for u in edge]
    for u in range(attach + 1, n):
        targets = set()
        while len(targets) < attach:
            targets.add(rng.choice(repeated))
        for v in targets:
            graph.add_edge(u, v)
            repeated.append(u)
            repeated.append(v)
    return graph


def chung_lu_power_law(
    n: int, exponent: float = 2.5, average_degree: float = 6.0, seed: int = 0
) -> Graph:
    """Chung-Lu model with power-law expected degrees.

    Expected degree of vertex i is proportional to ``(i + 1)^(-1/(exp-1))``
    scaled to the requested average degree; edges appear independently with
    probability ``min(1, w_u w_v / W)``.  Sampled edge-by-edge per vertex
    with weighted partner choice, which is O(m) in expectation and matches
    the heavy-tail + low-clustering character of SNAP social graphs.
    """
    _require_positive("n", n)
    if exponent <= 1.0:
        raise ValueError(f"exponent must exceed 1, got {exponent}")
    rng = random.Random(seed)
    gamma = 1.0 / (exponent - 1.0)
    weights = [(i + 1.0) ** (-gamma) for i in range(n)]
    scale = average_degree * n / sum(weights)
    weights = [w * scale for w in weights]
    total = sum(weights)

    # cumulative weights for O(log n) weighted sampling
    cumulative: List[float] = []
    acc = 0.0
    for w in weights:
        acc += w
        cumulative.append(acc)

    def sample_vertex() -> int:
        x = rng.random() * total
        lo, hi = 0, n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < x:
                lo = mid + 1
            else:
                hi = mid
        return lo

    graph = Graph()
    for u in range(n):
        graph.add_vertex(u)
    target_edges = int(average_degree * n / 2)
    attempts = 0
    made = 0
    # Rejection-free pairing: draw endpoints proportional to weight.
    while made < target_edges and attempts < 20 * target_edges:
        attempts += 1
        u, v = sample_vertex(), sample_vertex()
        if u != v and graph.add_edge(u, v):
            made += 1
    return graph


def watts_strogatz(n: int, k: int, beta: float, seed: int = 0) -> Graph:
    """Small-world ring lattice with rewiring probability ``beta``."""
    _require_positive("n", n)
    if k % 2 or k <= 0 or k >= n:
        raise ValueError(f"k must be even and in (0, n), got {k}")
    if not 0.0 <= beta <= 1.0:
        raise ValueError(f"beta must be in [0, 1], got {beta}")
    rng = random.Random(seed)
    graph = Graph()
    for u in range(n):
        graph.add_vertex(u)
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            graph.add_edge(u, (u + offset) % n)
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            v = (u + offset) % n
            if rng.random() < beta and graph.has_edge(u, v):
                candidates = [w for w in range(n) if w != u and not graph.has_edge(u, w)]
                if candidates:
                    graph.remove_edge(u, v)
                    graph.add_edge(u, rng.choice(candidates))
    return graph


def planted_partition(
    communities: int,
    community_size: int,
    p_in: float,
    p_out: float,
    seed: int = 0,
) -> Graph:
    """Planted-partition model: dense blocks, sparse cross-block edges."""
    _require_positive("communities", communities)
    _require_positive("community_size", community_size)
    for name, p in (("p_in", p_in), ("p_out", p_out)):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {p}")
    rng = random.Random(seed)
    n = communities * community_size
    graph = Graph()
    for u in range(n):
        graph.add_vertex(u)
    for u in range(n):
        for v in range(u + 1, n):
            same = u // community_size == v // community_size
            if rng.random() < (p_in if same else p_out):
                graph.add_edge(u, v)
    return graph


def collaboration_network(
    communities: int = 24,
    community_size: int = 22,
    papers_per_community: int = 30,
    team_size: int = 4,
    bridge_pairs: int = 6,
    contexts_per_bridge: int = 5,
    context_size: int = 3,
    dense_pairs: int = 0,
    dense_degree: int = 0,
    prolific_weight: int = 0,
    seed: int = 0,
) -> Graph:
    """DBLP-like co-authorship graph with planted bridge-author pairs.

    Regular researchers live in research communities; each paper is a
    small team clique inside one community.  On top of that,
    ``bridge_pairs`` pairs of prolific co-authors each collaborate with
    ``contexts_per_bridge`` *disjoint* teams drawn from different
    communities -- so the bridge edge's ego-network has (at least) that
    many connected components.  This is the structure Exp-7 says ESD finds
    and CN/BT do not.

    ``dense_pairs`` additionally plants pairs of prolific *single-
    community* co-authors sharing ``dense_degree`` common neighbors that
    form one connected blob -- the kind of edge the CN baseline ranks
    first in the real DBLP (many common neighbors, low diversity).

    ``prolific_weight`` skews team sampling toward each community's first
    two members, producing the high-degree "prolific author" hubs that
    give real co-authorship graphs their large degeneracy (the weight is
    how many extra tickets each prolific member holds in the draw).
    """
    rng = random.Random(seed)
    graph = Graph()
    n_regular = communities * community_size

    def community_members(c: int) -> range:
        return range(c * community_size, (c + 1) * community_size)

    # Papers: team cliques within communities, optionally hub-skewed.
    for c in range(communities):
        members = list(community_members(c))
        pool = list(members)
        for prolific in members[:2]:
            pool += [prolific] * prolific_weight
        for _ in range(papers_per_community):
            team: set = set()
            while len(team) < min(team_size, len(members)):
                team.add(rng.choice(pool))
            team_list = sorted(team)
            for i, u in enumerate(team_list):
                for v in team_list[i + 1:]:
                    graph.add_edge(u, v)

    # Bridge author pairs with multi-community contexts.
    next_id = n_regular
    for b in range(bridge_pairs):
        u, v = next_id, next_id + 1
        next_id += 2
        graph.add_edge(u, v)
        used_communities = rng.sample(range(communities), k=min(contexts_per_bridge, communities))
        for c in used_communities:
            context = rng.sample(list(community_members(c)), k=context_size)
            for w in context:
                graph.add_edge(u, w)
                graph.add_edge(v, w)
            for i, w1 in enumerate(context):
                for w2 in context[i + 1:]:
                    graph.add_edge(w1, w2)

    # Dense single-community pairs: CN bait with one big ego component.
    for d in range(dense_pairs):
        u, v = next_id, next_id + 1
        next_id += 2
        graph.add_edge(u, v)
        members = list(community_members(d % communities))
        blob = rng.sample(members, k=min(dense_degree, len(members)))
        for w in blob:
            graph.add_edge(u, w)
            graph.add_edge(v, w)
        # Chain the blob so it is guaranteed to be a single component.
        for w1, w2 in zip(blob, blob[1:]):
            graph.add_edge(w1, w2)
    return graph


#: (pair, contexts) entries used by word_association_network.  Each context
#: is a small cluster of words that are all associated with both hub words
#: and with each other, mirroring Fig. 13's hand-labeled components.
_WORD_CONTEXTS: Sequence[Tuple[Tuple[str, str], Sequence[Sequence[str]]]] = (
    (
        ("bank", "money"),
        (
            ("account", "deposit", "save", "teller", "cash", "check"),
            ("loan", "mortgage", "federal"),
            ("river", "shore"),
            ("rob", "steal"),
            ("vault", "safe"),
            ("rich", "wealth"),
        ),
    ),
    (
        ("wood", "house"),
        (
            ("build", "carpenter", "hammer", "nail"),
            ("forest", "tree", "log"),
            ("fire", "burn"),
            ("cabin", "lodge"),
            ("floor", "panel"),
        ),
    ),
    (
        ("light", "sun"),
        (
            ("bright", "shine", "ray"),
            ("lamp", "bulb"),
            ("day", "morning"),
            ("beach", "tan"),
        ),
    ),
    (
        ("cold", "ice"),
        (
            ("winter", "snow", "frost"),
            ("drink", "cube"),
            ("hockey", "rink"),
        ),
    ),
    (
        ("play", "game"),
        (
            ("ball", "sport", "team"),
            ("card", "deck"),
            ("child", "toy"),
        ),
    ),
)


def word_association_network(
    extra_words: int = 400,
    extra_edges: int = 1200,
    seed: int = 0,
) -> Graph:
    """USF-style word association graph with planted polysemous hub pairs.

    The hand-crafted hub pairs above (e.g. ``("bank", "money")`` with six
    semantic contexts) guarantee Fig. 13's qualitative result: the top
    edges by structural diversity at τ=2 are the polysemous pairs whose
    ego-networks split into several context components.  Around them, a
    random background of ``extra_words`` generic words keeps the graph
    realistically noisy.
    """
    rng = random.Random(seed)
    graph = Graph()
    for (a, b), contexts in _WORD_CONTEXTS:
        graph.add_edge(a, b)
        for context in contexts:
            for w in context:
                graph.add_edge(a, w)
                graph.add_edge(b, w)
            for i, w1 in enumerate(context):
                for w2 in context[i + 1:]:
                    graph.add_edge(w1, w2)

    background = [f"word{i:04d}" for i in range(extra_words)]
    for w in background:
        graph.add_vertex(w)
    vocabulary = sorted(graph.vertices())
    made = 0
    attempts = 0
    while made < extra_edges and attempts < 20 * extra_edges:
        attempts += 1
        u = rng.choice(background)
        v = rng.choice(vocabulary)
        if u != v and graph.add_edge(u, v):
            made += 1
    return graph


def planted_diversity_graph(
    hub_pairs: int = 5,
    components_per_pair: int = 4,
    component_size: int = 3,
    noise_edges: int = 200,
    noise_vertices: int = 120,
    seed: int = 0,
) -> Graph:
    """Integer-labeled graph with known top-k edge structural diversities.

    Pair ``i`` (edges between vertices ``2i`` and ``2i+1``) gets
    ``components_per_pair - i`` planted components of ``component_size``
    vertices each (floored at 1), so the exact top-k ranking is known by
    construction -- handy for tests.
    """
    rng = random.Random(seed)
    graph = Graph()
    next_id = 2 * hub_pairs
    for i in range(hub_pairs):
        u, v = 2 * i, 2 * i + 1
        graph.add_edge(u, v)
        for _ in range(max(components_per_pair - i, 1)):
            members = list(range(next_id, next_id + component_size))
            next_id += component_size
            for w in members:
                graph.add_edge(u, w)
                graph.add_edge(v, w)
            for a_idx, w1 in enumerate(members):
                for w2 in members[a_idx + 1:]:
                    graph.add_edge(w1, w2)
    base = next_id
    for w in range(base, base + noise_vertices):
        graph.add_vertex(w)
    # Noise stays strictly among the noise vertices: edges touching hub or
    # component vertices could merge planted components and break the
    # known-answer property.
    noise = list(range(base, base + noise_vertices))
    made = 0
    attempts = 0
    while noise_vertices > 1 and made < noise_edges and attempts < 20 * noise_edges:
        attempts += 1
        u, v = rng.choice(noise), rng.choice(noise)
        if u != v and graph.add_edge(u, v):
            made += 1
    return graph
