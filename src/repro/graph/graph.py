"""Undirected, unweighted graph store used throughout the library.

The paper's algorithms need exactly the primitives this class provides:
O(1) expected edge tests, neighbor sets for common-neighborhood
intersections, degrees for the degree ordering, and cheap edge
insertion/deletion for the dynamic-maintenance algorithms.

Vertices may be any hashable, mutually orderable values (ints, strings).
Edges are stored undirected; :func:`canonical_edge` fixes the canonical
``(small, large)`` representation used as a dictionary key everywhere an
edge identifies something (upper bounds, scores, the per-edge disjoint-set
map ``M``, ESDIndex entries).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Set, Tuple

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]

#: Bounded length of the per-graph mutation changelog.  Enough to cover
#: a burst of maintenance traffic between two kernel snapshots; anything
#: older falls off the front and forces a full snapshot rebuild.
CHANGELOG_LIMIT = 512


def canonical_edge(u: Vertex, v: Vertex) -> Edge:
    """Return the canonical undirected representation of edge ``(u, v)``."""
    if u == v:
        raise ValueError(f"self-loop not allowed: ({u!r}, {v!r})")
    return (u, v) if u < v else (v, u)


class Graph:
    """A simple undirected graph backed by adjacency sets.

    Self-loops are rejected; parallel edges collapse.  All edge-returning
    methods yield canonical ``(small, large)`` tuples.
    """

    __slots__ = ("_adj", "_m", "_revision", "_log", "_log_base", "__weakref__")

    def __init__(self, edges: Iterable[Tuple[Vertex, Vertex]] = ()) -> None:
        self._adj: Dict[Vertex, Set[Vertex]] = {}
        self._m = 0
        self._revision = 0
        # Mutation changelog: ``_log[i]`` is the structural change that
        # moved the revision from ``_log_base + i`` to ``_log_base+i+1``.
        self._log: List[Tuple] = []
        self._log_base = 0
        for u, v in edges:
            self.add_edge(u, v)

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[Vertex, Vertex]]) -> "Graph":
        """Build a graph from an iterable of vertex pairs."""
        return cls(edges)

    # -- size ---------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self._adj)

    @property
    def m(self) -> int:
        """Number of edges."""
        return self._m

    @property
    def revision(self) -> int:
        """Monotonic mutation counter, bumped by every structural change.

        Derived read-only snapshots (e.g. the CSR kernel view in
        :mod:`repro.kernels.csr`) tag themselves with the revision they
        were built from and rebuild when it moves, so they can be cached
        per graph without going stale.
        """
        return self._revision

    def __len__(self) -> int:
        return len(self._adj)

    def __contains__(self, u: Vertex) -> bool:
        return u in self._adj

    def __repr__(self) -> str:
        return f"Graph(n={self.n}, m={self.m})"

    # -- mutation -------------------------------------------------------------

    def _record(self, entry: Tuple) -> None:
        """Log one changelog entry for the revision bump just made."""
        log = self._log
        log.append(entry)
        if len(log) > CHANGELOG_LIMIT:
            drop = len(log) - CHANGELOG_LIMIT
            del log[:drop]
            self._log_base += drop

    def changes_since(self, revision: int) -> "List[Tuple] | None":
        """The changelog entries applied after ``revision``, oldest first.

        Returns ``None`` when the bounded log no longer covers that
        revision (too many mutations since), in which case derived
        snapshots must rebuild from scratch.  Entries are tuples tagged
        ``("+e", u, v)``, ``("-e", u, v)``, ``("+v", u)`` or
        ``("-v", u, neighbors)`` -- the latter carries the neighbor set
        removed alongside the vertex, since ``remove_vertex`` deletes
        many edges under a single revision bump.
        """
        if revision == self._revision:
            return []
        if revision < self._log_base or revision > self._revision:
            return None
        return self._log[revision - self._log_base :]

    def add_vertex(self, u: Vertex) -> None:
        """Add an isolated vertex (no-op if present)."""
        if u not in self._adj:
            self._adj[u] = set()
            self._revision += 1
            self._record(("+v", u))

    def add_edge(self, u: Vertex, v: Vertex) -> bool:
        """Add undirected edge ``(u, v)``; return True if it was new."""
        if u == v:
            raise ValueError(f"self-loop not allowed: ({u!r}, {v!r})")
        self.add_vertex(u)
        self.add_vertex(v)
        if v in self._adj[u]:
            return False
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._m += 1
        self._revision += 1
        self._record(("+e", u, v))
        return True

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove edge ``(u, v)``; raises KeyError if absent."""
        try:
            self._adj[u].remove(v)
            self._adj[v].remove(u)
        except KeyError:
            raise KeyError(f"edge not in graph: ({u!r}, {v!r})") from None
        self._m -= 1
        self._revision += 1
        self._record(("-e", u, v))

    def remove_vertex(self, u: Vertex) -> None:
        """Remove ``u`` and all incident edges; raises KeyError if absent."""
        neighbors = self._adj.pop(u)  # KeyError propagates deliberately
        for v in neighbors:
            self._adj[v].remove(u)
        self._m -= len(neighbors)
        self._revision += 1
        self._record(("-v", u, tuple(neighbors)))

    # -- queries ---------------------------------------------------------------

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """True if the undirected edge ``(u, v)`` exists."""
        nbrs = self._adj.get(u)
        return nbrs is not None and v in nbrs

    def neighbors(self, u: Vertex) -> Set[Vertex]:
        """The neighbor set ``N(u)``.  Do not mutate the returned set."""
        return self._adj[u]

    def degree(self, u: Vertex) -> int:
        """``d(u) = |N(u)|``."""
        return len(self._adj[u])

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges in canonical form (each exactly once)."""
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if u < v:
                    yield (u, v)

    def edge_list(self) -> List[Edge]:
        """All edges as a list of canonical tuples."""
        return list(self.edges())

    def common_neighbors(self, u: Vertex, v: Vertex) -> Set[Vertex]:
        """``N(uv) = N(u) ∩ N(v)`` -- the edge's common neighborhood.

        Always intersects the smaller set into the larger, so the cost is
        ``O(min{d(u), d(v)})`` as assumed in the paper's analysis.
        """
        a, b = self._adj[u], self._adj[v]
        if len(a) > len(b):
            a, b = b, a
        return {w for w in a if w in b}

    def max_degree(self) -> int:
        """``d_max`` -- the maximum vertex degree (0 for an empty graph)."""
        return max((len(nbrs) for nbrs in self._adj.values()), default=0)

    def degree_sequence(self) -> List[int]:
        """All degrees, descending."""
        return sorted((len(nbrs) for nbrs in self._adj.values()), reverse=True)

    # -- derived graphs -----------------------------------------------------

    def copy(self) -> "Graph":
        """Deep copy (independent adjacency sets)."""
        clone = Graph()
        clone._adj = {u: set(nbrs) for u, nbrs in self._adj.items()}
        clone._m = self._m
        return clone

    def induced_subgraph(self, vertices: Iterable[Vertex]) -> "Graph":
        """The subgraph induced by ``vertices`` (isolated vertices kept)."""
        keep = set(vertices)
        sub = Graph()
        for u in keep:
            if u in self._adj:
                sub.add_vertex(u)
        for u in keep:
            nbrs = self._adj.get(u)
            if nbrs is None:
                continue
            for v in nbrs:
                if v in keep and u < v:
                    sub.add_edge(u, v)
        return sub

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("Graph is mutable and unhashable")
