"""Graph serialization: SNAP-style edge lists.

The paper's datasets ship as whitespace-separated edge lists with ``#``
comment headers (the SNAP format).  We read and write that format, with
optional integer relabeling to a dense ``0..n-1`` id space.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Dict, TextIO, Union

from repro.graph.graph import Graph, Vertex

PathLike = Union[str, Path]


class EdgeListFormatError(ValueError):
    """Raised when an edge-list line cannot be parsed."""


def read_edge_list(
    source: Union[PathLike, TextIO],
    *,
    comment: str = "#",
    as_int: bool = True,
) -> Graph:
    """Read an undirected graph from a whitespace edge list.

    Blank lines and lines starting with ``comment`` are skipped; self-loops
    are dropped (SNAP social graphs contain none, but user files might);
    duplicate and reversed edges collapse.  With ``as_int`` vertex tokens
    are parsed as integers, otherwise kept as strings.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return read_edge_list(handle, comment=comment, as_int=as_int)

    graph = Graph()
    for lineno, line in enumerate(source, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith(comment):
            continue
        parts = stripped.split()
        if len(parts) < 2:
            raise EdgeListFormatError(
                f"line {lineno}: expected two vertex tokens, got {stripped!r}"
            )
        a, b = parts[0], parts[1]
        if as_int:
            try:
                u: Vertex = int(a)
                v: Vertex = int(b)
            except ValueError as exc:
                raise EdgeListFormatError(
                    f"line {lineno}: non-integer vertex in {stripped!r}"
                ) from exc
        else:
            u, v = a, b
        if u == v:
            continue
        graph.add_edge(u, v)
    return graph


def write_edge_list(
    graph: Graph, target: Union[PathLike, TextIO], *, header: str = ""
) -> None:
    """Write ``graph`` as a sorted whitespace edge list (one edge per line)."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            write_edge_list(graph, handle, header=header)
        return
    if header:
        for line in header.splitlines():
            target.write(f"# {line}\n")
    target.write(f"# n={graph.n} m={graph.m}\n")
    for u, v in sorted(graph.edges()):
        target.write(f"{u}\t{v}\n")


def parse_edge_list(text: str, **kwargs) -> Graph:
    """Read a graph from an in-memory edge-list string."""
    return read_edge_list(io.StringIO(text), **kwargs)


def read_adjacency_list(
    source: Union[PathLike, TextIO], *, comment: str = "#", as_int: bool = True
) -> Graph:
    """Read a graph from adjacency-list format: ``u v1 v2 v3 ...``.

    Each line names a vertex followed by its neighbors; edges may appear
    from either endpoint (duplicates collapse).  Lines with a single
    token declare an isolated vertex.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return read_adjacency_list(handle, comment=comment, as_int=as_int)
    graph = Graph()
    for lineno, line in enumerate(source, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith(comment):
            continue
        tokens = stripped.split()
        if as_int:
            try:
                parsed = [int(t) for t in tokens]
            except ValueError as exc:
                raise EdgeListFormatError(
                    f"line {lineno}: non-integer vertex in {stripped!r}"
                ) from exc
        else:
            parsed = tokens
        u = parsed[0]
        graph.add_vertex(u)
        for v in parsed[1:]:
            if v != u:
                graph.add_edge(u, v)
    return graph


def write_adjacency_list(graph: Graph, target: Union[PathLike, TextIO]) -> None:
    """Write a graph in adjacency-list format (every vertex one line)."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            write_adjacency_list(graph, handle)
        return
    for u in sorted(graph.vertices()):
        nbrs = " ".join(str(v) for v in sorted(graph.neighbors(u)))
        target.write(f"{u} {nbrs}".rstrip() + "\n")


def read_metis(source: Union[PathLike, TextIO]) -> Graph:
    """Read a graph in METIS format (1-indexed adjacency lists).

    The header line is ``n m``; line ``i`` (1-based) lists the neighbors
    of vertex ``i``.  Vertices are relabeled to 0-based integers.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return read_metis(handle)
    lines = [
        line.strip()
        for line in source
        if line.strip() and not line.lstrip().startswith("%")
    ]
    if not lines:
        raise EdgeListFormatError("empty METIS file")
    header = lines[0].split()
    if len(header) < 2:
        raise EdgeListFormatError(f"bad METIS header: {lines[0]!r}")
    n, m = int(header[0]), int(header[1])
    if len(lines) - 1 != n:
        raise EdgeListFormatError(
            f"METIS header declares {n} vertices but file has {len(lines) - 1}"
        )
    graph = Graph()
    for u in range(n):
        graph.add_vertex(u)
    for u, line in enumerate(lines[1:]):
        for token in line.split():
            v = int(token) - 1
            if not 0 <= v < n:
                raise EdgeListFormatError(
                    f"vertex {token} out of range 1..{n}"
                )
            if v != u:
                graph.add_edge(u, v)
    if graph.m != m:
        raise EdgeListFormatError(
            f"METIS header declares {m} edges but file encodes {graph.m}"
        )
    return graph


def write_metis(graph: Graph, target: Union[PathLike, TextIO]) -> None:
    """Write a graph in METIS format (relabels vertices to 1..n)."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            write_metis(graph, handle)
        return
    relabeled, mapping = relabel_to_integers(graph)
    target.write(f"{relabeled.n} {relabeled.m}\n")
    for u in range(relabeled.n):
        nbrs = " ".join(str(v + 1) for v in sorted(relabeled.neighbors(u)))
        target.write(nbrs + "\n")


def relabel_to_integers(graph: Graph) -> tuple:
    """Relabel vertices to dense ``0..n-1`` ints (sorted original order).

    Returns ``(new_graph, mapping)`` where ``mapping[old] = new``.
    """
    mapping: Dict[Vertex, int] = {
        u: i for i, u in enumerate(sorted(graph.vertices()))
    }
    relabeled = Graph()
    for u in graph.vertices():
        relabeled.add_vertex(mapping[u])
    for u, v in graph.edges():
        relabeled.add_edge(mapping[u], mapping[v])
    return relabeled, mapping
