"""Vertex orderings and DAG orientation (paper §II).

The paper's degree ordering ``≺`` is a total order: ``u ≺ v`` iff
``d(u) < d(v)``, ties broken by vertex id.  Orienting each edge from its
low-rank to its high-rank endpoint yields a DAG whose out-degrees are
bounded by ``O(α)`` on average, which is what makes the 4-clique
enumeration of Algorithm 3 fast.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Set, Tuple

from repro.graph.graph import Edge, Graph, Vertex


def vertex_sort_key(u: Vertex) -> Tuple[str, Vertex]:
    """A total-order key over vertex labels of *mixed* types.

    Python refuses ``1 < "a"``, so any ranking that tie-breaks on raw
    vertex labels blows up the moment a graph holds both ``int`` and
    ``str`` vertices (two disjoint components with differently-typed
    labels are perfectly legal).  Tagging each label with its type name
    groups same-typed labels together (where ``<`` is defined) and
    orders across types lexically by type name -- deterministic, and
    consistent with plain label order on homogeneous graphs.
    """
    return (type(u).__name__, u)


def edge_sort_key(edge: Edge) -> Tuple[Tuple[str, Vertex], Tuple[str, Vertex]]:
    """Type-tagged total-order key for canonical edges (see
    :func:`vertex_sort_key`); the tie-break used by every ranked-edge
    listing that must survive mixed-type vertex labels."""
    u, v = edge
    return (vertex_sort_key(u), vertex_sort_key(v))


def degree_order_key(graph: Graph) -> Callable[[Vertex], Tuple[int, Vertex]]:
    """Return a key function realizing the paper's total order ``≺``.

    ``key(u) < key(v)`` iff ``u ≺ v``.
    """
    def key(u: Vertex) -> Tuple[int, Vertex]:
        return (graph.degree(u), u)

    return key


def precedes(graph: Graph, u: Vertex, v: Vertex) -> bool:
    """``u ≺ v`` under the degree ordering (degree, then id)."""
    return (graph.degree(u), u) < (graph.degree(v), v)


class OrientedGraph:
    """DAG orientation ``G→`` of an undirected graph.

    Each undirected edge ``(u, v)`` with ``u ≺ v`` becomes the directed
    edge ``u -> v``.  Out-neighbor sets ``N+`` support the set
    intersections at the heart of oriented triangle/4-clique listing.

    Two total orders are supported: the paper's ``"degree"`` ordering
    (§II, degree then id) and the ``"degeneracy"`` (smallest-degree-last)
    ordering used by kClist (Danisch et al.), which bounds out-degrees by
    the degeneracy δ instead of merely on average.

    The orientation is a *snapshot*: it does not track later mutations of
    the source graph.  The dynamic-maintenance algorithms re-derive local
    orientations on the fly instead (see :mod:`repro.core.maintenance`).
    """

    __slots__ = ("_out", "_rank")

    def __init__(self, graph: Graph, order: str = "degree") -> None:
        if order == "degree":
            key = degree_order_key(graph)
            self._rank: Dict[Vertex, Tuple] = {
                u: key(u) for u in graph.vertices()
            }
        elif order == "degeneracy":
            removal_order, _delta = degeneracy_ordering(graph)
            self._rank = {u: (i,) for i, u in enumerate(removal_order)}
        else:
            raise ValueError(
                f"order must be 'degree' or 'degeneracy', got {order!r}"
            )
        self._out: Dict[Vertex, Set[Vertex]] = {u: set() for u in graph.vertices()}
        for u, v in graph.edges():
            if self._rank[u] < self._rank[v]:
                self._out[u].add(v)
            else:
                self._out[v].add(u)

    @property
    def n(self) -> int:
        return len(self._out)

    def out_neighbors(self, u: Vertex) -> Set[Vertex]:
        """``N+(u)`` -- out-neighbors of ``u`` in the DAG."""
        return self._out[u]

    def out_degree(self, u: Vertex) -> int:
        """``d+(u)``."""
        return len(self._out[u])

    def max_out_degree(self) -> int:
        return max((len(s) for s in self._out.values()), default=0)

    def vertices(self) -> List[Vertex]:
        return list(self._out)

    def directed_edges(self) -> List[Tuple[Vertex, Vertex]]:
        """All directed edges ``u -> v`` (u ≺ v)."""
        return [(u, v) for u, outs in self._out.items() for v in outs]

    def precedes(self, u: Vertex, v: Vertex) -> bool:
        """``u ≺ v`` using the snapshotted ranks."""
        return self._rank[u] < self._rank[v]


def degeneracy_ordering(graph: Graph) -> Tuple[List[Vertex], int]:
    """Smallest-degree-last ordering and the degeneracy ``δ``.

    Repeatedly removes a minimum-degree vertex (bucket queue, O(n + m)).
    Returns ``(order, degeneracy)`` where ``order`` lists vertices in
    removal order and ``degeneracy`` is the largest degree seen at removal
    time.  The degeneracy sandwiches the arboricity:
    ``⌈δ/2⌉ <= α <= δ`` (Eppstein et al.).
    """
    degrees: Dict[Vertex, int] = {u: graph.degree(u) for u in graph.vertices()}
    max_deg = max(degrees.values(), default=0)
    buckets: List[Set[Vertex]] = [set() for _ in range(max_deg + 1)]
    for u, d in degrees.items():
        buckets[d].add(u)

    order: List[Vertex] = []
    removed: Set[Vertex] = set()
    degeneracy = 0
    cursor = 0
    for _ in range(graph.n):
        while cursor <= max_deg and not buckets[cursor]:
            cursor += 1
        u = buckets[cursor].pop()
        degeneracy = max(degeneracy, cursor)
        order.append(u)
        removed.add(u)
        for v in graph.neighbors(u):
            if v in removed:
                continue
            d = degrees[v]
            buckets[d].discard(v)
            degrees[v] = d - 1
            buckets[d - 1].add(v)
        # Removing u may have created lower-degree vertices.
        cursor = max(cursor - 1, 0)
    return order, degeneracy
