"""Graph statistics: the Table I columns and friends.

``n``, ``m``, ``d_max`` and the degeneracy ``δ`` are exactly the columns
of the paper's Table I; arboricity bounds and clustering support the
complexity discussion (α ≈ δ in practice, Lin et al.).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.components import connected_components
from repro.graph.graph import Graph
from repro.graph.ordering import degeneracy_ordering


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of an undirected graph (Table I row)."""

    n: int
    m: int
    d_max: int
    degeneracy: int
    arboricity_lower: int
    arboricity_upper: int
    average_degree: float
    components: int

    def as_row(self) -> tuple:
        return (self.n, self.m, self.d_max, self.degeneracy)


def graph_stats(graph: Graph) -> GraphStats:
    """Compute the Table I statistics for ``graph``."""
    if graph.n == 0:
        return GraphStats(0, 0, 0, 0, 0, 0, 0.0, 0)
    _, degeneracy = degeneracy_ordering(graph)
    # Eppstein et al.: ceil(δ/2) <= α <= δ; also α >= ceil(m / (n - 1)).
    lower = max((degeneracy + 1) // 2, -(-graph.m // max(graph.n - 1, 1)))
    return GraphStats(
        n=graph.n,
        m=graph.m,
        d_max=graph.max_degree(),
        degeneracy=degeneracy,
        arboricity_lower=lower,
        arboricity_upper=max(degeneracy, 1 if graph.m else 0),
        average_degree=2.0 * graph.m / graph.n,
        components=len(connected_components(graph)),
    )


def global_clustering_coefficient(graph: Graph) -> float:
    """Transitivity: 3 * triangles / open-or-closed wedges."""
    from repro.cliques.triangles import count_triangles  # local import: avoid cycle

    wedges = sum(
        d * (d - 1) // 2 for d in (graph.degree(u) for u in graph.vertices())
    )
    if wedges == 0:
        return 0.0
    return 3.0 * count_triangles(graph) / wedges
