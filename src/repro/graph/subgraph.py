"""Subgraph extraction and random sampling (Exp-5 scalability workloads).

The paper's scalability experiments build four subgraphs per dataset by
"randomly picking 20%-80% of the edges (vertices)".  These helpers
reproduce both samplers deterministically from a seed.
"""

from __future__ import annotations

import random
from typing import List

from repro.graph.graph import Graph, Vertex


def random_edge_subgraph(graph: Graph, fraction: float, seed: int = 0) -> Graph:
    """Subgraph keeping a uniformly random ``fraction`` of the edges.

    Vertices incident to no surviving edge are dropped (as in the paper's
    edge-sampled scalability subgraphs, where m is the controlled size).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    rng = random.Random(seed)
    edges = sorted(graph.edges())
    keep = rng.sample(range(len(edges)), k=round(fraction * len(edges)))
    return Graph(edges[i] for i in keep)


def random_vertex_subgraph(graph: Graph, fraction: float, seed: int = 0) -> Graph:
    """Subgraph induced by a uniformly random ``fraction`` of the vertices."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    rng = random.Random(seed)
    vertices = sorted(graph.vertices())
    keep = rng.sample(vertices, k=round(fraction * len(vertices)))
    return graph.induced_subgraph(keep)


def ego_network_vertices(graph: Graph, u: Vertex, v: Vertex) -> set:
    """``N(uv)`` -- the vertex set of edge (u, v)'s ego-network (Def. 1)."""
    return graph.common_neighbors(u, v)


def ego_network(graph: Graph, u: Vertex, v: Vertex) -> Graph:
    """The edge ego-network ``G_N(uv)`` as a materialized Graph (Def. 1)."""
    return graph.induced_subgraph(graph.common_neighbors(u, v))


def closed_ego_network(graph: Graph, u: Vertex, v: Vertex) -> Graph:
    """``Ĝ_N(uv)`` -- subgraph induced by ``N(uv) ∪ {u, v}`` (§V).

    This is the locality region of the dynamic maintenance algorithms:
    after inserting (u, v) only edges inside this subgraph change score.
    """
    members = set(graph.common_neighbors(u, v))
    members.add(u)
    members.add(v)
    return graph.induced_subgraph(members)


def scalability_fractions() -> List[float]:
    """The sample fractions used by Fig. 9/10 (20%..100%)."""
    return [0.2, 0.4, 0.6, 0.8, 1.0]
