"""repro.kernels -- interned CSR compute kernels for the hot paths.

The dict-of-set :class:`~repro.graph.graph.Graph` stays the mutable
source of truth; this package provides the frozen, integer-id fast path
the compute-heavy algorithms actually run on:

* :mod:`~repro.kernels.intern` -- :class:`VertexInterner`, the
  label ↔ dense-id bijection;
* :mod:`~repro.kernels.csr` -- :class:`CSRGraph`, flat ``array('l')``
  offset/neighbor buffers with slices sorted by degree rank, plus a
  lazy bitset layer for high-degree work;
* :mod:`~repro.kernels.intersect` -- merge / gallop / bitset
  intersection kernels with per-strategy counters;
* :mod:`~repro.kernels.triangles` -- CSR-native triangle and 4-clique
  enumeration;
* :mod:`~repro.kernels.components` -- common-neighborhood component
  labeling (flood fill) and the fused 4-clique union-find builder;
* :mod:`~repro.kernels.dispatch` -- the ``ESD_KERNELS`` switch the
  wired-up call sites consult (``csr`` by default, ``set`` restores
  the original paths bit-identically);
* :mod:`~repro.kernels.counters` -- :data:`KERNEL_COUNTERS`, surfaced
  through :class:`repro.obs.registry.UnifiedRegistry` and
  ``esd profile``.

See docs/PERFORMANCE.md for the full tour and the benchmark workflow.
"""

from repro.kernels.betweenness import csr_ego_betweenness
from repro.kernels.components import (
    csr_all_ego_component_sizes,
    csr_ego_component_sizes_ids,
    csr_raw_components,
)
from repro.kernels.counters import KERNEL_COUNTERS, KernelCounters
from repro.kernels.csr import BITSET_DEGREE_FALLBACK, CSRGraph
from repro.kernels.dispatch import (
    KERNEL_MODES,
    kernel_mode,
    kernels_enabled,
    set_kernel_mode,
    use_kernels,
)
from repro.kernels.intern import VertexInterner
from repro.kernels.intersect import (
    GALLOP_RATIO,
    decode_bits,
    gallop_sorted,
    intersect_count,
    intersect_ids,
    merge_sorted,
)
from repro.kernels.truss import csr_truss_numbers
from repro.kernels.triangles import (
    csr_count_triangles,
    csr_iter_four_cliques,
    csr_iter_triangles,
    csr_triangle_count_per_edge,
)

__all__ = [
    "BITSET_DEGREE_FALLBACK",
    "CSRGraph",
    "GALLOP_RATIO",
    "KERNEL_COUNTERS",
    "KERNEL_MODES",
    "KernelCounters",
    "VertexInterner",
    "csr_all_ego_component_sizes",
    "csr_count_triangles",
    "csr_ego_betweenness",
    "csr_ego_component_sizes_ids",
    "csr_iter_four_cliques",
    "csr_iter_triangles",
    "csr_raw_components",
    "csr_triangle_count_per_edge",
    "csr_truss_numbers",
    "decode_bits",
    "gallop_sorted",
    "intersect_count",
    "intersect_ids",
    "kernel_mode",
    "kernels_enabled",
    "merge_sorted",
    "set_kernel_mode",
    "use_kernels",
]
