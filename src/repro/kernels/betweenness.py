"""CSR-native ego-betweenness of every edge.

Ego-betweenness restricts betweenness accounting to the edge's own
2-hop neighborhood: for edge ``(u, v)`` it sums, over vertex pairs at
distance <= 2 whose shortest paths can use the edge, the fraction of
shortest paths that do.  Concretely::

    ego_bt(u, v) = 1                                  # the pair (u, v)
                 + sum_{a in N(u) \\ N[v]} 1 / |N(a) ∩ N(v)|
                 + sum_{b in N(v) \\ N[u]} 1 / |N(u) ∩ N(b)|

Each term is the fraction of length-2 shortest ``a``--``v`` (resp.
``u``--``b``) paths routed through the edge; ``u`` (resp. ``v``) is
always a witness, so no term divides by zero.  The computation is pure
neighborhood intersection work -- exactly the regime the packed bitset
rows are built for -- and costs ``O(sum_e d(u) + d(v))`` ANDs overall,
versus the ``O(n m)`` of a global Brandes pass.

Both this kernel and the set path in
:mod:`repro.analytics.betweenness` reduce the terms with
:func:`math.fsum`, which is correctly rounded and therefore independent
of summation order: the two modes return bit-identical floats.
"""

from __future__ import annotations

from math import fsum
from typing import Dict, List, Tuple

from repro.kernels.counters import KERNEL_COUNTERS
from repro.kernels.csr import CSRGraph

__all__ = ["csr_ego_betweenness"]


def csr_ego_betweenness(csr: CSRGraph) -> Dict[Tuple, float]:
    """Ego-betweenness of every edge, keyed by canonical *label* edge."""
    if csr.m == 0:
        return {}
    csr.ensure_bits()
    adj: List[int] = csr.adj_bits
    canon = csr.canonical_label_edge
    intersections = 0
    out: Dict[Tuple, float] = {}
    for u, v in csr.directed_edge_ids():
        bu, bv = adj[u], adj[v]
        terms = [1.0]
        # a in N(u) \ N[v]: length-2 pairs (a, v) whose paths may use (u, v).
        side = bu & ~bv & ~(1 << v)
        while side:
            low = side & -side
            side ^= low
            a = low.bit_length() - 1
            terms.append(1.0 / (adj[a] & bv).bit_count())
            intersections += 1
        # b in N(v) \ N[u]: the symmetric side through u.
        side = bv & ~bu & ~(1 << u)
        while side:
            low = side & -side
            side ^= low
            b = low.bit_length() - 1
            terms.append(1.0 / (adj[b] & bu).bit_count())
            intersections += 1
        out[canon(u, v)] = fsum(terms)
    KERNEL_COUNTERS.bitset_intersections += intersections
    return out
