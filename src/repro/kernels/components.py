"""Common-neighborhood component labeling on the CSR snapshot.

Two kernels, covering the two index-construction strategies:

* :func:`csr_ego_component_sizes_ids` / :func:`csr_all_ego_component_sizes`
  -- the per-edge BFS of Algorithm 2, replaced by a bitset flood fill:
  the frontier expansion is one word-parallel OR over member adjacency
  rows per step (the :mod:`repro.graph.bitset` technique, now living on
  the shared interned snapshot).
* :func:`csr_raw_components` -- Algorithm 3's single-pass 4-clique
  enumeration fused with the six per-clique Union operations, on dense
  ids: edge states are list-indexed by an edge id, pair lookups hash a
  single packed int ``u * n + v`` instead of a label tuple, and the
  union-find runs on small int-keyed dicts.

Because ids are degree-rank ordered, every 4-clique ``{u, v, w1, w2}``
comes out with ``u < v < w1 < w2`` in plain int order, so the six
canonical edge keys need no comparisons at all.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.kernels.counters import KERNEL_COUNTERS
from repro.kernels.csr import CSRGraph

__all__ = [
    "csr_ego_component_sizes_ids",
    "csr_all_ego_component_sizes",
    "csr_raw_components",
]


def _flood_fill_sizes(adj_bits: List[int], members: int) -> List[int]:
    """Component sizes of the subgraph induced on the ``members`` bitset."""
    sizes: List[int] = []
    while members:
        seed = members & -members
        component = seed
        frontier = seed
        while frontier:
            reach = 0
            bits = frontier
            while bits:
                low = bits & -bits
                reach |= adj_bits[low.bit_length() - 1]
                bits ^= low
            frontier = reach & members & ~component
            component |= frontier
        sizes.append(component.bit_count())
        members &= ~component
    return sizes


def csr_ego_component_sizes_ids(csr: CSRGraph, a: int, b: int) -> List[int]:
    """Component sizes of ``G_N(ab)`` for interned ids (unordered)."""
    adj_bits = csr.adj_bits
    KERNEL_COUNTERS.component_kernels += 1
    KERNEL_COUNTERS.bitset_intersections += 1
    return _flood_fill_sizes(adj_bits, adj_bits[a] & adj_bits[b])


def csr_all_ego_component_sizes(csr: CSRGraph) -> Dict[Tuple, List[int]]:
    """Component-size multiset for every edge, keyed by canonical label edge.

    Matches :func:`repro.core.diversity.all_ego_component_sizes`: every
    edge appears, including those with an empty common neighborhood.
    """
    adj_bits = csr.adj_bits
    canon = csr.canonical_label_edge
    out: Dict[Tuple, List[int]] = {}
    KERNEL_COUNTERS.component_kernels += 1
    offsets, neighbors, dag_start = csr.offsets, csr.neighbors, csr.dag_start
    pairs = 0
    for u in range(csr.n):
        lo, hi = dag_start[u], offsets[u + 1]
        if lo >= hi:
            continue
        bits_u = adj_bits[u]
        pairs += hi - lo
        for idx in range(lo, hi):
            v = neighbors[idx]
            out[canon(u, v)] = _flood_fill_sizes(adj_bits, bits_u & adj_bits[v])
    KERNEL_COUNTERS.bitset_intersections += pairs
    return out


def _union(parent: Dict[int, int], size: Dict[int, int], a: int, b: int) -> None:
    """Union with path halving + by size on raw int-keyed dicts."""
    ra = a
    while parent[ra] != ra:
        parent[ra] = parent[parent[ra]]
        ra = parent[ra]
    rb = b
    while parent[rb] != rb:
        parent[rb] = parent[parent[rb]]
        rb = parent[rb]
    if ra == rb:
        return
    if size[ra] < size[rb]:
        ra, rb = rb, ra
    parent[rb] = ra
    size[ra] += size.pop(rb)


def csr_raw_components(
    csr: CSRGraph,
) -> Tuple[List[Tuple[int, int]], List[Dict[int, int]], List[Dict[int, int]]]:
    """Algorithm 3's per-edge ``M`` structures, entirely in id space.

    Returns ``(edge_pairs, parents, sizes)`` where edge id ``e`` is the
    position of the directed CSR edge ``edge_pairs[e] = (u, v)``
    (``u < v``), ``parents[e]``/``sizes[e]`` are the union-find state
    over that edge's common neighborhood, seeded from a bitset AND and
    merged by the fused 4-clique enumeration.
    """
    n = csr.n
    csr.ensure_bits()
    adj_bits, out_bits = csr.adj_bits, csr.out_bits
    offsets, neighbors, dag_start = csr.offsets, csr.neighbors, csr.dag_start
    KERNEL_COUNTERS.four_clique_kernels += 1
    KERNEL_COUNTERS.component_kernels += 1

    # Lines 1-4: seed every edge's M with its common neighbors as
    # singletons.  Edge ids follow directed CSR row order, so the
    # enumeration pass below can walk them with a plain counter.
    edge_pairs: List[Tuple[int, int]] = []
    parents: List[Dict[int, int]] = []
    sizes: List[Dict[int, int]] = []
    eid_of: Dict[int, int] = {}  # packed key u * n + v  ->  edge id
    pairs = 0
    for u in range(n):
        lo, hi = dag_start[u], offsets[u + 1]
        if lo >= hi:
            continue
        bits_u = adj_bits[u]
        base = u * n
        pairs += hi - lo
        for idx in range(lo, hi):
            v = neighbors[idx]
            eid_of[base + v] = len(edge_pairs)
            edge_pairs.append((u, v))
            common = bits_u & adj_bits[v]
            parent: Dict[int, int] = {}
            size: Dict[int, int] = {}
            while common:
                low = common & -common
                w = low.bit_length() - 1
                common ^= low
                parent[w] = w
                size[w] = 1
            parents.append(parent)
            sizes.append(size)
    KERNEL_COUNTERS.bitset_intersections += pairs

    # Lines 6-15: one pass over all 4-cliques, six unions each.
    union = _union
    eid = 0
    pairs = 0
    for u in range(n):
        lo, hi = dag_start[u], offsets[u + 1]
        if lo >= hi:
            continue
        bu = out_bits[u]
        u_base = u * n
        for idx in range(lo, hi):
            v = neighbors[idx]
            uv_eid = eid
            eid += 1
            common = bu & out_bits[v]
            pairs += 1
            if common.bit_count() < 2:
                continue
            v_base = v * n
            uv_parent, uv_size = parents[uv_eid], sizes[uv_eid]
            w1_bits = common
            while w1_bits:
                low = w1_bits & -w1_bits
                w1 = low.bit_length() - 1
                w1_bits ^= low
                inner = common & out_bits[w1]
                if not inner:
                    continue
                w1_base = w1 * n
                uw1 = eid_of[u_base + w1]
                vw1 = eid_of[v_base + w1]
                uw1_parent, uw1_size = parents[uw1], sizes[uw1]
                vw1_parent, vw1_size = parents[vw1], sizes[vw1]
                while inner:
                    low2 = inner & -inner
                    w2 = low2.bit_length() - 1
                    inner ^= low2
                    # 4-clique {u, v, w1, w2}: the six Union operations
                    # of Observation 1, all keys pre-ordered by rank.
                    union(uv_parent, uv_size, w1, w2)
                    union(uw1_parent, uw1_size, v, w2)
                    union(vw1_parent, vw1_size, u, w2)
                    e = eid_of[u_base + w2]
                    union(parents[e], sizes[e], v, w1)
                    e = eid_of[v_base + w2]
                    union(parents[e], sizes[e], u, w1)
                    e = eid_of[w1_base + w2]
                    union(parents[e], sizes[e], u, v)
    KERNEL_COUNTERS.bitset_intersections += pairs
    return edge_pairs, parents, sizes
