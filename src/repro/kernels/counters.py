"""Kernel instrumentation counters.

One process-wide :class:`KernelCounters` instance records how often each
intersection strategy fired, how much galloping work was done, and how
many times the bitset fallback was engaged.  The counters feed the
``kernels`` stanza of :class:`repro.obs.registry.UnifiedRegistry`
snapshots (``esd serve`` metrics op, ``esd profile``).

Increments happen on hot paths, so kernels batch them (one ``+=`` per
kernel call, not per element).  Plain attribute increments are not
atomic across threads; the counters are operational telemetry, not
accounting, and a lost increment under contention is acceptable --
the same trade the service metrics layer makes.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["KernelCounters", "KERNEL_COUNTERS"]


class KernelCounters:
    """Cumulative counters for the CSR kernel layer."""

    __slots__ = (
        "csr_builds",
        "csr_patches",
        "maintenance_kernels",
        "merge_intersections",
        "gallop_intersections",
        "bitset_intersections",
        "gallop_steps",
        "bitset_fallbacks",
        "triangle_kernels",
        "four_clique_kernels",
        "component_kernels",
        "truss_kernels",
        "truss_repeels",
        "truss_rebuilds",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter (tests and ``esd profile`` baselines)."""
        self.csr_builds = 0
        self.csr_patches = 0
        self.maintenance_kernels = 0
        self.merge_intersections = 0
        self.gallop_intersections = 0
        self.bitset_intersections = 0
        self.gallop_steps = 0
        self.bitset_fallbacks = 0
        self.triangle_kernels = 0
        self.four_clique_kernels = 0
        self.component_kernels = 0
        self.truss_kernels = 0
        self.truss_repeels = 0
        self.truss_rebuilds = 0

    def snapshot(self) -> Dict[str, int]:
        """JSON-ready view of all counters."""
        return {name: getattr(self, name) for name in self.__slots__}

    def delta_since(self, baseline: Dict[str, int]) -> Dict[str, int]:
        """Counter increments since a previous :meth:`snapshot`."""
        return {
            name: value - baseline.get(name, 0)
            for name, value in self.snapshot().items()
        }

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={getattr(self, name)}" for name in self.__slots__
        )
        return f"KernelCounters({inner})"


#: The process-wide instance every kernel increments.
KERNEL_COUNTERS = KernelCounters()
