"""``CSRGraph``: an interned, degree-rank-ordered CSR adjacency snapshot.

The dict-of-set :class:`~repro.graph.graph.Graph` is the right store for
mutation, but every hot loop in this repository -- triangle and 4-clique
enumeration, index construction, online BFS scoring -- only *reads* a
frozen adjacency.  ``CSRGraph`` is that frozen read path:

* vertices are interned to dense ids ``0..n-1`` **in degree-rank order**
  (degree, then label -- exactly the paper's total order ``≺``), so id
  comparison *is* the ordering and the oriented DAG needs no extra
  structure: the out-neighbors ``N+(u)`` are simply the tail of ``u``'s
  sorted adjacency slice;
* the adjacency lives in two flat ``array('l')`` buffers (``offsets`` of
  length ``n + 1`` and ``neighbors`` of length ``2m``), each slice
  sorted ascending -- the layout the sorted-intersection kernels in
  :mod:`repro.kernels.intersect` run on, and the payload the parallel
  builder ships to worker processes once, instead of a pickled ``Graph``
  per chunk;
* for high-degree work the snapshot lazily packs rows into big-int
  bitsets (the :mod:`repro.graph.bitset` idiom), giving word-parallel
  AND/OR for the intersection fallback and the ego-network flood fill.

The snapshot does not track later mutations of the source graph, same
as :class:`~repro.graph.ordering.OrientedGraph`.
"""

from __future__ import annotations

import weakref
from array import array
from bisect import bisect_right
from itertools import chain
from typing import Dict, Hashable, Iterable, List, Tuple

from repro.graph.graph import Graph
from repro.graph.ordering import vertex_sort_key
from repro.kernels.counters import KERNEL_COUNTERS
from repro.kernels.intern import VertexInterner

__all__ = ["CSRGraph", "snapshot_csr"]

#: Vertex degree at or above which an intersection kernel may build the
#: bitset layer on demand (the "very high-degree" fallback).
BITSET_DEGREE_FALLBACK = 256

#: Largest changelog (``Graph.changes_since``) the snapshot cache will
#: absorb by patching the previous CSR instead of rebuilding it.  Beyond
#: this the dirty set approaches the whole graph and a counting-sort
#: rebuild is cheaper than bookkeeping.
PATCH_OPS_LIMIT = 128


class CSRGraph:
    """Immutable CSR view of an undirected graph, interned by degree rank."""

    __slots__ = (
        "n",
        "m",
        "offsets",
        "neighbors",
        "dag_start",
        "interner",
        "_adj_bits",
        "_out_bits",
    )

    def __init__(
        self,
        offsets: array,
        neighbors: array,
        dag_start: array,
        interner: VertexInterner,
    ) -> None:
        self.n = len(interner)
        self.m = len(neighbors) // 2
        self.offsets = offsets
        self.neighbors = neighbors
        self.dag_start = dag_start
        self.interner = interner
        self._adj_bits: List[int] = []
        self._out_bits: List[int] = []

    # -- construction -------------------------------------------------------

    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRGraph":
        """Snapshot ``graph`` into CSR form (O(n log n + m)).

        Rows come out sorted without a per-row sort: vertices are
        visited in ascending id order and appended to each *neighbor's*
        row, a counting-sort pass over the directed edges.

        Label ties break on the type-tagged :func:`vertex_sort_key`, so
        a graph mixing ``int`` and ``str`` components (legal: only each
        *edge* must be homogeneous) still interns deterministically.
        Same relative order as the raw label for homogeneous graphs.
        """
        order = sorted(
            graph.vertices(),
            key=lambda u: (graph.degree(u), vertex_sort_key(u)),
        )
        interner = VertexInterner(order)
        ids = interner.ids
        n = len(order)
        rows: List[List[int]] = [[] for _ in range(n)]
        for u, label in enumerate(order):
            for w_id in map(ids.__getitem__, graph.neighbors(label)):
                rows[w_id].append(u)
        offsets = array("l", [0] * (n + 1))
        dag_start = array("l", [0] * n)
        total = 0
        for i, row in enumerate(rows):
            dag_start[i] = total + bisect_right(row, i)
            total += len(row)
            offsets[i + 1] = total
        neighbors = array("l", chain.from_iterable(rows)) if n else array("l")
        KERNEL_COUNTERS.csr_builds += 1
        return cls(offsets, neighbors, dag_start, interner)

    @classmethod
    def from_graph_patched(
        cls, graph: Graph, old: "CSRGraph", changes: List[Tuple]
    ) -> "CSRGraph":
        """Snapshot ``graph`` by patching ``old`` with a small changelog.

        The degree-rank id order must still be recomputed (any edge
        mutation shifts two degrees, and with them the permutation), but
        most *rows* survive: a row's content -- the sorted ids of its
        neighbors -- changes only if the vertex's neighborhood changed
        or one of its neighbors was assigned a new id.  Clean rows are
        copied out of ``old`` as C-level array slices; only dirty rows
        are rebuilt from the graph.  Cost is ``O(n)`` plus the dirty
        rows, versus ``O(n log n + m)`` for :meth:`from_graph`.
        """
        dirty = set()
        for entry in changes:
            tag = entry[0]
            if tag == "+e" or tag == "-e":
                dirty.add(entry[1])
                dirty.add(entry[2])
            elif tag == "+v":
                dirty.add(entry[1])
            else:  # "-v": the vertex is gone, its neighbors lost a row entry
                dirty.update(entry[2])
        order = sorted(
            graph.vertices(),
            key=lambda u: (graph.degree(u), vertex_sort_key(u)),
        )
        interner = VertexInterner(order)
        ids = interner.ids
        old_ids = old.interner.ids
        # A clean row additionally requires every neighbor to keep its
        # old id: collect moved/new labels, then spread to neighbors.
        moved = [
            label for label, i in ids.items() if old_ids.get(label) != i
        ]
        rebuild = {label for label in dirty if label in ids}
        for label in moved:
            rebuild.add(label)
            rebuild.update(graph.neighbors(label))
        n = len(order)
        offsets = array("l", [0] * (n + 1))
        dag_start = array("l", [0] * n)
        neighbors = array("l")
        old_offsets, old_neighbors = old.offsets, old.neighbors
        total = 0
        for uid, label in enumerate(order):
            if label in rebuild:
                row = sorted(map(ids.__getitem__, graph.neighbors(label)))
            else:
                o = old_ids[label]
                row = old_neighbors[old_offsets[o] : old_offsets[o + 1]]
            dag_start[uid] = total + bisect_right(row, uid)
            total += len(row)
            offsets[uid + 1] = total
            neighbors.extend(row)
        KERNEL_COUNTERS.csr_patches += 1
        return cls(offsets, neighbors, dag_start, interner)

    @classmethod
    def from_edgelist(
        cls, vertices: Iterable[Hashable], edges: Iterable[Tuple]
    ) -> "CSRGraph":
        """Build straight from a vertex/edge listing, skipping ``Graph``.

        The persistence fast path: a decoded snapshot state already *is*
        a vertex list plus canonical edge list, so the CSR a restoring
        node needs (to publish as a shared segment, or to seed the
        maintenance kernel) can be interned without first materializing
        dict-of-set adjacency.  Uses the same ``(degree, label)``
        ordering as :meth:`from_graph`, so the result is identical to
        ``from_graph`` on the equivalent graph.
        """
        degree: Dict[Hashable, int] = {v: 0 for v in vertices}
        pairs = []
        for u, v in edges:
            degree[u] += 1
            degree[v] += 1
            pairs.append((u, v))
        order = sorted(
            degree, key=lambda u: (degree[u], vertex_sort_key(u))
        )
        interner = VertexInterner(order)
        ids = interner.ids
        n = len(order)
        rows: List[List[int]] = [[] for _ in range(n)]
        for u, v in pairs:
            iu, iv = ids[u], ids[v]
            rows[iu].append(iv)
            rows[iv].append(iu)
        offsets = array("l", [0] * (n + 1))
        dag_start = array("l", [0] * n)
        total = 0
        for i, row in enumerate(rows):
            row.sort()
            dag_start[i] = total + bisect_right(row, i)
            total += len(row)
            offsets[i + 1] = total
        neighbors = array("l", chain.from_iterable(rows)) if n else array("l")
        KERNEL_COUNTERS.csr_builds += 1
        return cls(offsets, neighbors, dag_start, interner)

    @classmethod
    def from_arrays(
        cls,
        offsets: array,
        neighbors: array,
        dag_start: array,
        labels: List[Hashable],
    ) -> "CSRGraph":
        """Rehydrate from shipped flat arrays (parallel worker side)."""
        return cls(offsets, neighbors, dag_start, VertexInterner(labels))

    def ship(self) -> Tuple[array, array, array, List[Hashable]]:
        """The flat payload :meth:`from_arrays` rebuilds from."""
        return (self.offsets, self.neighbors, self.dag_start, self.interner.labels)

    # -- id plumbing --------------------------------------------------------

    def intern(self, label: Hashable) -> int:
        """Dense id of a vertex label."""
        return self.interner.intern(label)

    def label(self, vid: int) -> Hashable:
        """Vertex label of a dense id."""
        return self.interner.label(vid)

    def canonical_label_edge(self, a: int, b: int) -> Tuple:
        """The canonical ``(small, large)`` *label* edge for ids ``a, b``.

        Id order is degree-rank order, not label order, so the labels are
        re-compared here.
        """
        la, lb = self.interner.label(a), self.interner.label(b)
        return (la, lb) if la < lb else (lb, la)

    # -- adjacency ----------------------------------------------------------

    def degree(self, u: int) -> int:
        """``d(u)`` for an interned id."""
        return self.offsets[u + 1] - self.offsets[u]

    def row_bounds(self, u: int) -> Tuple[int, int]:
        """``[lo, hi)`` bounds of ``u``'s slice in ``neighbors``."""
        return self.offsets[u], self.offsets[u + 1]

    def out_bounds(self, u: int) -> Tuple[int, int]:
        """``[lo, hi)`` bounds of the out-neighbor tail ``N+(u)``."""
        return self.dag_start[u], self.offsets[u + 1]

    def neighbor_ids(self, u: int) -> array:
        """``N(u)`` as a sorted id array (a copy; mutate freely)."""
        return self.neighbors[self.offsets[u] : self.offsets[u + 1]]

    def out_neighbor_ids(self, u: int) -> array:
        """``N+(u)``: neighbors ranked after ``u`` (sorted id array copy)."""
        return self.neighbors[self.dag_start[u] : self.offsets[u + 1]]

    def directed_edge_ids(self) -> List[Tuple[int, int]]:
        """All DAG edges ``(u, v)`` with ``u < v`` in id (rank) order."""
        neighbors = self.neighbors
        out = []
        for u in range(self.n):
            for idx in range(self.dag_start[u], self.offsets[u + 1]):
                out.append((u, neighbors[idx]))
        return out

    def max_degree(self) -> int:
        """``d_max`` of the snapshot."""
        offsets = self.offsets
        return max(
            (offsets[u + 1] - offsets[u] for u in range(self.n)), default=0
        )

    # -- bitset layer --------------------------------------------------------

    @property
    def bits_built(self) -> bool:
        """Whether the lazy bitset layer has been materialized."""
        return bool(self._adj_bits) or self.n == 0

    def ensure_bits(self, *, fallback: bool = False) -> None:
        """Materialize the per-vertex adjacency/out-neighbor bitsets.

        ``fallback=True`` marks the build as triggered by the
        high-degree fallback (counted separately); kernels that always
        want word-parallel rows call it unconditionally.
        """
        if self._adj_bits or self.n == 0:
            return
        if fallback:
            KERNEL_COUNTERS.bitset_fallbacks += 1
        n = self.n
        adj = [0] * n
        offsets, neighbors = self.offsets, self.neighbors
        # Pack each row into a little-endian byte buffer and convert
        # once: per-neighbor work is a couple of small-int ops instead
        # of a big-int shift/OR pair that reallocates the whole row.
        nbytes = (n + 7) >> 3
        from_bytes = int.from_bytes
        for u in range(n):
            buf = bytearray(nbytes)
            for v in neighbors[offsets[u] : offsets[u + 1]]:
                buf[v >> 3] |= 1 << (v & 7)
            adj[u] = from_bytes(buf, "little")
        # N+(u) = neighbors ranked after u = the high bits above u.
        self._adj_bits = adj
        self._out_bits = [(adj[u] >> (u + 1)) << (u + 1) for u in range(n)]

    @property
    def adj_bits(self) -> List[int]:
        """Per-vertex adjacency bitsets (built on first access)."""
        self.ensure_bits()
        return self._adj_bits

    @property
    def out_bits(self) -> List[int]:
        """Per-vertex out-neighbor (``N+``) bitsets."""
        self.ensure_bits()
        return self._out_bits

    def __repr__(self) -> str:
        return f"CSRGraph(n={self.n}, m={self.m}, bits={self.bits_built})"


# -- snapshot cache ----------------------------------------------------------
#
# "Built once from Graph": repeated kernel entry points (a top-k query
# followed by a triangle count, every call of a benchmark loop) reuse
# one CSR snapshot per graph as long as the graph has not mutated.  The
# cache is keyed by object identity with a weakref guard -- Graph is
# deliberately unhashable -- and validated against Graph.revision, so a
# mutation (or an id-reused new graph) can never serve a stale view.

_SNAPSHOT_CACHE: Dict[int, Tuple["weakref.ref", int, CSRGraph]] = {}


def snapshot_csr(graph: Graph) -> CSRGraph:
    """The cached CSR snapshot of ``graph`` at its current revision.

    When the graph advanced by a small revision delta since the cached
    snapshot, the new snapshot is produced by patching the old one
    (:meth:`CSRGraph.from_graph_patched`) instead of a full rebuild --
    the delta-CSR fast path the maintenance loop leans on.
    """
    key = id(graph)
    cached = _SNAPSHOT_CACHE.get(key)
    stale = None
    if cached is not None:
        ref, revision, csr = cached
        if ref() is graph:
            if revision == graph.revision:
                return csr
            stale = (revision, csr)
    csr = None
    if stale is not None:
        changes = graph.changes_since(stale[0])
        if changes is not None and len(changes) <= PATCH_OPS_LIMIT:
            csr = CSRGraph.from_graph_patched(graph, stale[1], changes)
    if csr is None:
        csr = CSRGraph.from_graph(graph)

    def _evict(_ref, _key=key):
        _SNAPSHOT_CACHE.pop(_key, None)

    _SNAPSHOT_CACHE[key] = (weakref.ref(graph, _evict), graph.revision, csr)
    return csr
