"""Delta layer: a mutable id-space adjacency mirror for Algorithms 4/5.

:class:`~repro.kernels.csr.CSRGraph` is deliberately immutable -- its
degree-rank id order (the paper's ``≺``) shifts under *any* edge
mutation, so it can only be rebuilt or patched wholesale.  The dynamic
maintenance path (paper §V) does not need ``≺`` at all: Algorithms 4
and 5 only intersect neighborhoods and re-partition common-neighbor
sets.  :class:`MaintenanceKernel` therefore keeps a second, mutable
id-space view with **stable arrival-order ids**: interning survives
mutations, single edge updates are two big-int bit flips, and the hot
loops -- common neighborhood, ego-edge enumeration, affected-edge
collection, component re-partition -- run word-parallel on adjacency
bitsets instead of walking python sets.

The split of labor matters: the paper's union-find surgery is already
near-optimal per update, so the kernel accelerates the *enumeration*
around it -- common neighborhood as one AND, ego edges as one bit scan
(the set path walks neighbor sets twice, once for the unions and once
for the affected-edge set), and the new edge's initial partition as a
single flood fill over ``G_N(uv)`` (licensed by the invariant that
``M_e`` *is* the component partition of the ego-network).  Wholesale
flood-recomputing every affected edge's partition was measured and
rejected: surgical union-find beats it as soon as ego-networks get
dense.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Tuple

from repro.graph.graph import Graph
from repro.kernels.counters import KERNEL_COUNTERS
from repro.kernels.csr import CSRGraph

__all__ = ["MaintenanceKernel"]


class MaintenanceKernel:
    """Mutable bitset adjacency mirror keyed by ``Graph.revision``.

    Ids are dense ints in *arrival order* (not degree rank); removed
    vertices leave dead slots behind and :meth:`bloated` tells the owner
    when a rebuild is worth it.  ``revision`` tracks the graph revision
    the mirror last reflected; owners must keep it synchronized through
    the ``note_*`` methods and rebuild on mismatch.
    """

    __slots__ = ("labels", "ids", "adj", "revision", "_dead")

    def __init__(
        self,
        labels: List[Hashable],
        ids: Dict[Hashable, int],
        adj: List[int],
        revision: int,
    ) -> None:
        self.labels = labels
        self.ids = ids
        self.adj = adj
        self.revision = revision
        self._dead = 0

    # -- construction -------------------------------------------------------

    @classmethod
    def from_graph(cls, graph: Graph) -> "MaintenanceKernel":
        """Build the mirror straight from a :class:`Graph`."""
        labels = list(graph.vertices())
        ids = {label: i for i, label in enumerate(labels)}
        n = len(labels)
        adj = [0] * n
        nbytes = (n + 7) >> 3
        from_bytes = int.from_bytes
        for u, label in enumerate(labels):
            buf = bytearray(nbytes)
            for w in map(ids.__getitem__, graph.neighbors(label)):
                buf[w >> 3] |= 1 << (w & 7)
            adj[u] = from_bytes(buf, "little")
        KERNEL_COUNTERS.maintenance_kernels += 1
        return cls(labels, ids, adj, graph.revision)

    @classmethod
    def from_csr(cls, csr: CSRGraph, revision: int) -> "MaintenanceKernel":
        """Adopt an existing CSR snapshot's interning and bitsets.

        The snapshot must reflect the graph at ``revision``.  Reuses the
        snapshot's (possibly already-built) bitset layer, so seeding the
        mirror right after an index build is nearly free.
        """
        kernel = cls(
            list(csr.interner.labels),
            dict(csr.interner.ids),
            list(csr.adj_bits),
            revision,
        )
        KERNEL_COUNTERS.maintenance_kernels += 1
        return kernel

    # -- id plumbing --------------------------------------------------------

    def intern(self, label: Hashable) -> int:
        """Dense id of ``label``, allocating a fresh slot if unknown."""
        i = self.ids.get(label)
        if i is None:
            i = len(self.labels)
            self.labels.append(label)
            self.adj.append(0)
            self.ids[label] = i
        return i

    def prepare(self, labels) -> None:
        """Bulk-intern ``labels`` (amortizes re-interning over a batch)."""
        for label in labels:
            self.intern(label)

    def label_edge(self, a: int, b: int) -> Tuple:
        """Canonical ``(small, large)`` *label* edge for ids ``a, b``."""
        la, lb = self.labels[a], self.labels[b]
        return (la, lb) if la < lb else (lb, la)

    def bloated(self) -> bool:
        """True when dead slots from removed vertices dominate the mirror."""
        return self._dead > 32 and 2 * self._dead > len(self.labels)

    # -- mutation notes (keep ``revision`` synchronized) --------------------

    def note_insert(self, u: Hashable, v: Hashable, revision: int) -> Tuple[int, int]:
        """Mirror ``add_edge(u, v)``; returns the endpoint ids."""
        iu, iv = self.intern(u), self.intern(v)
        adj = self.adj
        adj[iu] |= 1 << iv
        adj[iv] |= 1 << iu
        self.revision = revision
        return iu, iv

    def note_delete(self, u: Hashable, v: Hashable, revision: int) -> Tuple[int, int]:
        """Mirror ``remove_edge(u, v)``; returns the endpoint ids.

        Unknown labels raise ``KeyError`` loudly -- a fresh mirror always
        knows every graph vertex, so a miss means the owner let the
        mirror go stale.
        """
        iu, iv = self.ids[u], self.ids[v]
        adj = self.adj
        adj[iu] &= ~(1 << iv)
        adj[iv] &= ~(1 << iu)
        self.revision = revision
        return iu, iv

    def note_add_vertex(self, label: Hashable, revision: int) -> None:
        """Mirror ``add_vertex(label)``."""
        self.intern(label)
        self.revision = revision

    def note_remove_vertex(self, label: Hashable, revision: int) -> None:
        """Mirror ``remove_vertex(label)``; the slot becomes dead."""
        iu = self.ids.pop(label, None)
        if iu is not None:
            adj = self.adj
            mask = adj[iu]
            while mask:
                low = mask & -mask
                adj[low.bit_length() - 1] &= ~(1 << iu)
                mask ^= low
            adj[iu] = 0
            self._dead += 1
        self.revision = revision

    # -- query kernels ------------------------------------------------------

    @staticmethod
    def iter_bits(mask: int) -> Iterator[int]:
        """Set-bit positions of ``mask``, ascending."""
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low

    def common_mask(self, iu: int, iv: int) -> int:
        """``N(u) ∩ N(v)`` as a bitmask.

        For an existing or just-removed edge ``(u, v)`` the result is
        the same whether the ``u <-> v`` bits themselves are currently
        set: neither endpoint can be its own common neighbor.
        """
        return self.adj[iu] & self.adj[iv]

    def common_ids(self, mask: int) -> List[int]:
        """Set-bit positions of a common-neighborhood mask, ascending."""
        out: List[int] = []
        while mask:
            low = mask & -mask
            out.append(low.bit_length() - 1)
            mask ^= low
        return out

    def ego_pairs(self, common: int) -> List[Tuple[int, int]]:
        """Id pairs of the ego-network edges inside ``common``, each once.

        The bit-scan replacement for the set path's nested
        neighbor-set walk: for each member ``w`` the partners are read
        off ``adj[w] & common`` masked to ids strictly above ``w``, so
        every unordered pair surfaces exactly once without hashing.
        """
        adj = self.adj
        out: List[Tuple[int, int]] = []
        bits = common
        while bits:
            low = bits & -bits
            w = low.bit_length() - 1
            bits ^= low
            higher = (adj[w] & common) >> (w + 1)
            base = w + 1
            while higher:
                l2 = higher & -higher
                out.append((w, l2.bit_length() - 1 + base))
                higher ^= l2
        return out

    def flood_groups(self, members: int) -> List[int]:
        """Connected components of ``members`` under the live adjacency.

        Word-parallel flood fill: each expansion ORs whole adjacency
        rows, masked back to ``members``.  Returns one bitmask per
        component (the *groups*, not just their sizes -- the maintenance
        path installs them into ``M`` via ``replace_partition``).
        """
        adj = self.adj
        groups: List[int] = []
        remaining = members
        while remaining:
            seed = remaining & -remaining
            component = seed
            frontier = seed
            while frontier:
                grow = 0
                bits = frontier
                while bits:
                    low = bits & -bits
                    grow |= adj[low.bit_length() - 1]
                    bits ^= low
                frontier = grow & remaining & ~component
                component |= frontier
            groups.append(component)
            remaining &= ~component
        return groups

    def labels_of_mask(self, mask: int) -> List[Hashable]:
        """Resolve a bitmask back to vertex labels (id order)."""
        labels = self.labels
        out = []
        while mask:
            low = mask & -mask
            out.append(labels[low.bit_length() - 1])
            mask ^= low
        return out

    def __repr__(self) -> str:
        return (
            f"MaintenanceKernel(n={len(self.ids)}, dead={self._dead}, "
            f"revision={self.revision})"
        )
