"""Kernel-mode dispatch: choose the CSR kernels or the set-based paths.

Every hot-path entry point (index builders, ``topk_online``, triangle
and 4-clique enumeration, the parallel builder) consults
:func:`kernels_enabled` and falls back to the original dict-of-set
implementation when the kernels are switched off.  Both paths produce
bit-identical results -- the switch exists so the perf-regression
harness (``esd bench regress``) can time them against each other and so
a suspected kernel bug can be ruled out in production with one
environment variable.

Selection, highest priority first:

1. a :func:`set_kernel_mode` override (also the ``--kernels`` CLI flag
   and the :func:`use_kernels` context manager),
2. the ``ESD_KERNELS`` environment variable (``csr`` or ``set``;
   ``off``/``0``/``false``/``none`` are aliases of ``set``),
3. the default, ``csr``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = [
    "KERNEL_MODES",
    "kernel_mode",
    "kernels_enabled",
    "set_kernel_mode",
    "use_kernels",
]

#: The two recognized modes: CSR integer kernels vs. dict-of-set paths.
KERNEL_MODES = ("csr", "set")

#: Environment values treated as "disable the CSR kernels".
_OFF_ALIASES = frozenset({"set", "off", "0", "false", "none", "no"})

_override: Optional[str] = None


def _normalize(mode: str) -> str:
    cleaned = mode.strip().lower()
    if cleaned in _OFF_ALIASES:
        return "set"
    if cleaned == "csr":
        return "csr"
    raise ValueError(
        f"unknown kernel mode {mode!r}; choose from {list(KERNEL_MODES)}"
    )


def kernel_mode() -> str:
    """The active mode: ``"csr"`` or ``"set"``."""
    if _override is not None:
        return _override
    env = os.environ.get("ESD_KERNELS")
    if env is None or not env.strip():
        return "csr"
    try:
        return _normalize(env)
    except ValueError:
        # A typo in an env var must not crash the service at import
        # time; unknown values mean "default", i.e. kernels on.
        return "csr"


def kernels_enabled() -> bool:
    """True when the CSR kernels should serve the hot paths."""
    return kernel_mode() == "csr"


def set_kernel_mode(mode: Optional[str]) -> None:
    """Force a mode for this process (``None`` clears the override).

    Overrides beat ``ESD_KERNELS``; the CLI's ``--kernels`` flag and the
    benchmark harness use this.
    """
    global _override
    _override = None if mode is None else _normalize(mode)


@contextmanager
def use_kernels(mode: str) -> Iterator[None]:
    """Temporarily force a kernel mode (tests and the regress harness)."""
    global _override
    previous = _override
    _override = _normalize(mode)
    try:
        yield
    finally:
        _override = previous
