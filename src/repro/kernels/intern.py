"""Vertex interning: arbitrary hashable labels ↔ dense integer ids.

Every CSR kernel works on ids ``0..n-1``; the interner is the single
boundary where labels (ints, strings, anything hashable and mutually
orderable) are exchanged for dense ints and back.  Interning pays for
itself twice: array indexing replaces dict hashing inside the kernels,
and pairs of ids pack into one machine int (``u * n + v``) for the
edge-id table of the 4-clique builder.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Sequence

__all__ = ["VertexInterner"]


class VertexInterner:
    """A frozen bijection between vertex labels and ids ``0..n-1``.

    Ids follow the order of the ``labels`` sequence given at
    construction; :class:`~repro.kernels.csr.CSRGraph` passes labels in
    degree-rank order so that id comparison realizes the paper's total
    order ``≺`` for free.
    """

    __slots__ = ("_labels", "_ids")

    def __init__(self, labels: Sequence[Hashable]) -> None:
        self._labels: List[Hashable] = list(labels)
        self._ids: Dict[Hashable, int] = {
            label: i for i, label in enumerate(self._labels)
        }
        if len(self._ids) != len(self._labels):
            raise ValueError("duplicate labels cannot be interned")

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: Hashable) -> bool:
        return label in self._ids

    def intern(self, label: Hashable) -> int:
        """The id of ``label`` (KeyError for unknown labels)."""
        return self._ids[label]

    def label(self, vid: int) -> Hashable:
        """The label of ``vid`` (IndexError for out-of-range ids)."""
        return self._labels[vid]

    def intern_many(self, labels: Iterable[Hashable]) -> List[int]:
        """Intern a batch of labels."""
        ids = self._ids
        return [ids[label] for label in labels]

    def labels_of(self, vids: Iterable[int]) -> List[Hashable]:
        """Resolve a batch of ids back to labels."""
        labels = self._labels
        return [labels[vid] for vid in vids]

    @property
    def labels(self) -> List[Hashable]:
        """All labels in id order.  Do not mutate."""
        return self._labels

    @property
    def ids(self) -> Dict[Hashable, int]:
        """The label -> id mapping.  Do not mutate."""
        return self._ids
