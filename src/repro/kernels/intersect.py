"""Sorted-adjacency intersection kernels: merge, gallop, bitset.

The common-neighborhood intersection ``N(u) ∩ N(v)`` is the primitive
every algorithm in this repository bottoms out in (the paper's §V gets
its wins from exactly this operation).  Three strategies cover the size
regimes, chosen per call:

* **linear merge** -- two-pointer walk, ``O(d(u) + d(v))``; best when
  the slices are of similar size and the bitset layer is cold.
* **galloping / binary search** -- iterate the smaller slice, locate
  each element in the larger one with ``bisect`` over a shrinking
  window, ``O(d_small log d_large)``; fires when one slice is at least
  :data:`GALLOP_RATIO` times the other.
* **bitset** -- word-parallel big-int AND over the packed rows
  (:mod:`repro.graph.bitset` idiom); used whenever the
  :class:`~repro.kernels.csr.CSRGraph` bitset layer is already built,
  and built on demand as a fallback when both slices are very large
  (``>=`` :data:`~repro.kernels.csr.BITSET_DEGREE_FALLBACK`).

Every call records which strategy fired in
:data:`~repro.kernels.counters.KERNEL_COUNTERS` so ``esd profile`` and
the service metrics op can show the live mix.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Sequence

from repro.kernels.counters import KERNEL_COUNTERS
from repro.kernels.csr import BITSET_DEGREE_FALLBACK, CSRGraph

__all__ = [
    "GALLOP_RATIO",
    "intersect_ids",
    "intersect_count",
    "merge_sorted",
    "gallop_sorted",
    "decode_bits",
]

#: Size ratio beyond which galloping beats the linear merge.
GALLOP_RATIO = 8


def merge_sorted(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Two-pointer intersection of two ascending sequences."""
    out: List[int] = []
    i, j = 0, 0
    la, lb = len(a), len(b)
    append = out.append
    while i < la and j < lb:
        x, y = a[i], b[j]
        if x == y:
            append(x)
            i += 1
            j += 1
        elif x < y:
            i += 1
        else:
            j += 1
    return out


def gallop_sorted(small: Sequence[int], big: Sequence[int]) -> List[int]:
    """Intersection by binary-searching each small element into ``big``.

    The search window's low end advances monotonically (both inputs are
    sorted), so total work is ``O(|small| log |big|)``.
    """
    out: List[int] = []
    lo, hi = 0, len(big)
    steps = 0
    append = out.append
    for x in small:
        lo = bisect_left(big, x, lo, hi)
        steps += 1
        if lo == hi:
            break
        if big[lo] == x:
            append(x)
            lo += 1
    KERNEL_COUNTERS.gallop_steps += steps
    return out


def decode_bits(bits: int) -> List[int]:
    """Set bit positions of ``bits``, ascending."""
    out: List[int] = []
    append = out.append
    while bits:
        low = bits & -bits
        append(low.bit_length() - 1)
        bits ^= low
    return out


def _pick_strategy(csr: CSRGraph, da: int, db: int) -> str:
    """Choose merge / gallop / bitset for slice sizes ``da <= db``."""
    if csr.bits_built:
        return "bitset"
    if da >= BITSET_DEGREE_FALLBACK and db >= BITSET_DEGREE_FALLBACK:
        # Very high-degree pair: pay the one-time packing, then every
        # later intersection on this snapshot is word-parallel.
        csr.ensure_bits(fallback=True)
        return "bitset"
    if da * GALLOP_RATIO <= db:
        return "gallop"
    return "merge"


def intersect_ids(csr: CSRGraph, u: int, v: int) -> List[int]:
    """``N(u) ∩ N(v)`` as an ascending id list, strategy-dispatched."""
    da, db = csr.degree(u), csr.degree(v)
    if da > db:
        u, v, da, db = v, u, db, da
    if da == 0:
        return []
    strategy = _pick_strategy(csr, da, db)
    if strategy == "bitset":
        KERNEL_COUNTERS.bitset_intersections += 1
        return decode_bits(csr.adj_bits[u] & csr.adj_bits[v])
    small = csr.neighbor_ids(u)
    big = csr.neighbor_ids(v)
    if strategy == "gallop":
        KERNEL_COUNTERS.gallop_intersections += 1
        return gallop_sorted(small, big)
    KERNEL_COUNTERS.merge_intersections += 1
    return merge_sorted(small, big)


def intersect_count(csr: CSRGraph, u: int, v: int) -> int:
    """``|N(u) ∩ N(v)|`` without materializing the intersection."""
    da, db = csr.degree(u), csr.degree(v)
    if da > db:
        u, v, da, db = v, u, db, da
    if da == 0:
        return 0
    strategy = _pick_strategy(csr, da, db)
    if strategy == "bitset":
        KERNEL_COUNTERS.bitset_intersections += 1
        return (csr.adj_bits[u] & csr.adj_bits[v]).bit_count()
    if strategy == "gallop":
        KERNEL_COUNTERS.gallop_intersections += 1
        return len(gallop_sorted(csr.neighbor_ids(u), csr.neighbor_ids(v)))
    KERNEL_COUNTERS.merge_intersections += 1
    return len(merge_sorted(csr.neighbor_ids(u), csr.neighbor_ids(v)))
