"""Named shared-memory CSR segments: ship a snapshot across processes once.

The parallel builder used to pickle the flat CSR arrays into every pool
worker through the initializer -- O(m) bytes serialized *per worker*.
A :class:`SharedCSRSegment` instead publishes the snapshot one time as
a named ``multiprocessing.shared_memory`` segment; workers (and cluster
replicas on the same host) map it read-only and reconstruct a
:class:`~repro.kernels.csr.CSRGraph` whose offset/neighbor/dag arrays
are zero-copy ``memoryview`` casts straight into the mapping.  Only the
segment *name* crosses the process boundary.

Layout (little-endian, 64-bit words)::

    header   magic(8) ready(8) item_size(8) n(8) half_edges(8) labels(8)
    body     offsets[(n+1)]  dag_start[n]  neighbors[2m]  labels-pickle

``ready`` is written last by the creator, so a concurrent attacher that
wins the name race but loses the fill race can poll it instead of
reading a half-written body (:meth:`SharedCSRSegment.attach` does the
polling; :func:`create_or_attach` packages the whole race).

Lifecycle rules this module enforces:

* every live handle is tracked in a process-local registry that feeds
  the ``shm`` metrics source (:func:`shm_metrics`: live segment count,
  mapped bytes, attach/detach counters);
* an ``atexit`` hook destroys segments *created by this process* and
  detaches the rest.  The creator check compares PIDs, so a forked
  worker that inherited the handle can never unlink its parent's
  segment;
* ``resource_tracker`` is kept out of the loop entirely (see
  :func:`_tracking_disabled`): this module's hooks are the single
  cleanup authority, so the tracker can neither double-unlink nor spam
  leak warnings at interpreter shutdown;
* segment names embed the creator PID (``esd-<pid>-<purpose>-<seq>``),
  so :func:`sweep_stale_segments` can reap segments whose creator died
  without cleanup (kill -9) by testing the PID -- the supervisor and
  the CI leak gate both call it.
"""

from __future__ import annotations

import atexit
import os
import pickle
import struct
import time
from array import array
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Tuple

from repro.kernels.csr import CSRGraph
from repro.kernels.intern import VertexInterner

__all__ = [
    "SHM_COUNTERS",
    "SharedCSRSegment",
    "ShmCounters",
    "create_or_attach",
    "live_segments",
    "shm_available",
    "shm_metrics",
    "sweep_stale_segments",
    "unlink_namespace",
]

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None  # type: ignore[assignment]
    resource_tracker = None  # type: ignore[assignment]

_MAGIC = b"ESDCSR1\0"
_HEADER = struct.Struct("<8s5Q")  # magic, ready, item_size, n, 2m, labels
_READY_OFFSET = 8  # byte offset of the ready word inside the header
_ITEM = array("l").itemsize

#: Prefix every segment name carries (``sweep_stale_segments`` keys on it).
NAME_PREFIX = "esd-"

_sequence = 0


def shm_available() -> bool:
    """True when the platform supports named shared memory."""
    return shared_memory is not None


def _next_name(purpose: str) -> str:
    global _sequence
    _sequence += 1
    return f"{NAME_PREFIX}{os.getpid()}-{purpose}-{_sequence}"


@contextmanager
def _tracking_disabled():
    """Keep ``resource_tracker`` entirely out of segment lifecycles.

    The stdlib registers every ``SharedMemory`` -- attached or created --
    with the tracker (3.13's ``track=False`` is not available here).
    That is wrong for this module twice over: the tracker's cache is a
    *set*, so N attachers unregistering one shared name underflow it
    into shutdown KeyErrors, and a hard-killed creator makes the tracker
    print "leaked shared_memory" warnings while racing our own sweep.
    This module's atexit hook plus :func:`sweep_stale_segments` are the
    single cleanup authority, so registration is suppressed at the
    source.  The patch is process-local and held only across the
    ``SharedMemory`` constructor.
    """
    if resource_tracker is None:  # pragma: no cover
        yield
        return
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        yield
    finally:
        resource_tracker.register = original


def _unlink_quiet(shm) -> None:
    """Remove the segment name without telling the resource tracker.

    Raises ``FileNotFoundError`` if already unlinked (callers decide
    whether that matters).
    """
    try:
        from multiprocessing.shared_memory import _posixshmem
    except ImportError:  # pragma: no cover - non-POSIX: unlink is a no-op
        shm.unlink()
        return
    _posixshmem.shm_unlink(shm._name)


class ShmCounters:
    """Cumulative lifecycle counters for the shared-memory layer."""

    __slots__ = (
        "segments_created",
        "segments_attached",
        "segments_detached",
        "segments_unlinked",
        "attach_timeouts",
        "stale_swept",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter (tests, ``esd profile`` baselines)."""
        self.segments_created = 0
        self.segments_attached = 0
        self.segments_detached = 0
        self.segments_unlinked = 0
        self.attach_timeouts = 0
        self.stale_swept = 0

    def snapshot(self) -> Dict[str, int]:
        """JSON-ready view of all counters."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={getattr(self, name)}" for name in self.__slots__
        )
        return f"ShmCounters({inner})"


#: The process-wide instance; feeds the ``shm`` metrics source.
SHM_COUNTERS = ShmCounters()

#: Live handles of this process, keyed by handle identity (one segment
#: can legitimately have several handles, e.g. a test that attaches its
#: own creation).
_LIVE: Dict[int, "SharedCSRSegment"] = {}


def live_segments() -> List["SharedCSRSegment"]:
    """Handles this process currently holds (creator or attacher)."""
    return list(_LIVE.values())


def shm_metrics() -> Dict[str, int]:
    """Metrics source: lifecycle counters plus live-mapping gauges."""
    out = SHM_COUNTERS.snapshot()
    segments = list(_LIVE.values())
    out["live_segments"] = len(segments)
    out["mapped_bytes"] = sum(seg.size for seg in segments)
    return out


class SharedCSRSegment:
    """One named shared-memory segment holding a serialized CSR snapshot."""

    __slots__ = ("name", "size", "creator", "creator_pid", "_shm", "_views")

    def __init__(self, shm, *, creator: bool) -> None:
        self.name = shm.name
        self.size = shm.size
        self.creator = creator
        self.creator_pid = os.getpid() if creator else -1
        self._shm = shm
        self._views: List[memoryview] = []
        _LIVE[id(self)] = self

    # -- creation / attachment ---------------------------------------------

    @classmethod
    def create(
        cls, csr: CSRGraph, name: Optional[str] = None
    ) -> "SharedCSRSegment":
        """Publish ``csr`` under ``name`` (generated when omitted).

        Raises ``FileExistsError`` if the name is taken -- callers that
        race (cluster replicas installing the same snapshot version) go
        through :func:`create_or_attach` instead.
        """
        if shared_memory is None:  # pragma: no cover
            raise RuntimeError("shared memory not available on this platform")
        offsets, neighbors, dag_start, labels = csr.ship()
        blob = pickle.dumps(labels, protocol=pickle.HIGHEST_PROTOCOL)
        n = len(labels)
        body = (len(offsets) + len(dag_start) + len(neighbors)) * _ITEM
        total = _HEADER.size + body + len(blob)
        with _tracking_disabled():
            shm = shared_memory.SharedMemory(
                name=name or _next_name("csr"), create=True, size=max(total, 1)
            )
        buf = shm.buf
        _HEADER.pack_into(
            buf, 0, _MAGIC, 0, _ITEM, n, len(neighbors), len(blob)
        )
        pos = _HEADER.size
        for arr in (offsets, dag_start, neighbors):
            nbytes = len(arr) * _ITEM
            buf[pos : pos + nbytes] = arr.tobytes()
            pos += nbytes
        buf[pos : pos + len(blob)] = blob
        # Publish: the ready word flips only after the body is complete.
        struct.pack_into("<Q", buf, _READY_OFFSET, 1)
        SHM_COUNTERS.segments_created += 1
        return cls(shm, creator=True)

    @classmethod
    def attach(cls, name: str, timeout: float = 10.0) -> "SharedCSRSegment":
        """Map an existing segment, waiting up to ``timeout`` for ready.

        Raises ``FileNotFoundError`` if no segment has the name and
        ``TimeoutError`` if the creator never finished publishing.
        """
        if shared_memory is None:  # pragma: no cover
            raise RuntimeError("shared memory not available on this platform")
        with _tracking_disabled():
            shm = shared_memory.SharedMemory(name=name)
        deadline = time.monotonic() + timeout
        while struct.unpack_from("<Q", shm.buf, _READY_OFFSET)[0] != 1:
            if time.monotonic() >= deadline:
                shm.close()
                SHM_COUNTERS.attach_timeouts += 1
                raise TimeoutError(
                    f"shared segment {name!r} never became ready"
                )
            time.sleep(0.001)
        SHM_COUNTERS.segments_attached += 1
        return cls(shm, creator=False)

    # -- payload ------------------------------------------------------------

    def csr(self) -> CSRGraph:
        """Reconstruct the snapshot; array fields are zero-copy views.

        The returned graph's ``offsets``/``neighbors``/``dag_start`` are
        ``memoryview`` casts into the mapping (labels are unpickled, the
        one unavoidable copy).  :meth:`detach`/:meth:`destroy` release
        the views, after which using the graph raises ``ValueError`` --
        use-after-unmap fails loudly instead of reading freed memory.
        """
        buf = self._shm.buf
        magic, ready, item, n, half, labels_len = _HEADER.unpack_from(buf, 0)
        if magic != _MAGIC:
            raise ValueError(f"segment {self.name!r} is not an ESD CSR")
        if ready != 1:
            raise ValueError(f"segment {self.name!r} is not ready")
        if item != _ITEM:
            raise ValueError(
                f"segment {self.name!r} written with item size {item}, "
                f"this interpreter uses {_ITEM}"
            )
        pos = _HEADER.size
        views = []
        parts = []
        for count in ((n + 1), n, half):
            nbytes = count * _ITEM
            view = buf[pos : pos + nbytes].cast("l")
            views.append(view)
            parts.append(view)
            pos += nbytes
        labels = pickle.loads(bytes(buf[pos : pos + labels_len]))
        self._views.extend(views)
        offsets, dag_start, neighbors = parts
        return CSRGraph(offsets, neighbors, dag_start, VertexInterner(labels))

    # -- teardown ------------------------------------------------------------

    def _release_views(self) -> None:
        for view in self._views:
            try:
                view.release()
            except Exception:
                pass
        self._views.clear()

    def detach(self) -> None:
        """Unmap without unlinking (the segment survives for others)."""
        if _LIVE.pop(id(self), None) is None:
            return
        self._release_views()
        try:
            self._shm.close()
        except BufferError:
            # A caller still holds a view we did not mint; the mapping
            # dies with the process, and the name is already forgotten.
            pass
        SHM_COUNTERS.segments_detached += 1

    def destroy(self) -> None:
        """Unmap *and* remove the name (creator-side teardown)."""
        known = _LIVE.pop(id(self), None) is not None
        self._release_views()
        try:
            self._shm.close()
        except BufferError:
            pass
        try:
            _unlink_quiet(self._shm)
        except FileNotFoundError:
            pass
        else:
            SHM_COUNTERS.segments_unlinked += 1
        if known:
            SHM_COUNTERS.segments_detached += 1

    def __enter__(self) -> "SharedCSRSegment":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.creator and self.creator_pid == os.getpid():
            self.destroy()
        else:
            self.detach()

    def __repr__(self) -> str:
        role = "creator" if self.creator else "attached"
        return f"SharedCSRSegment({self.name!r}, {role}, {self.size}B)"


def create_or_attach(
    name: str, build: Callable[[], CSRGraph], timeout: float = 10.0
) -> Tuple[SharedCSRSegment, bool]:
    """Attach ``name`` if it exists, else create it from ``build()``.

    Returns ``(segment, created)``.  Safe against the two races replicas
    hit installing the same snapshot version: losing the existence check
    (``FileExistsError`` on create -> attach instead) and attaching
    before the winner finished writing (ready-flag wait in attach).
    """
    try:
        return SharedCSRSegment.attach(name, timeout=timeout), False
    except FileNotFoundError:
        pass
    try:
        return SharedCSRSegment.create(build(), name=name), True
    except FileExistsError:
        return SharedCSRSegment.attach(name, timeout=timeout), False


def sweep_stale_segments(prefix: str = NAME_PREFIX) -> List[str]:
    """Unlink segments whose embedded creator PID is no longer alive.

    Covers the one gap the ``atexit`` hook cannot: a creator killed with
    ``kill -9`` never runs cleanup, leaving ``/dev/shm`` entries behind.
    Segments of live processes (including this one) are left alone.
    Returns the names removed.
    """
    if shared_memory is None or not os.path.isdir("/dev/shm"):
        return []
    removed: List[str] = []
    for entry in os.listdir("/dev/shm"):
        if not entry.startswith(prefix):
            continue
        parts = entry[len(prefix) :].split("-")
        try:
            pid = int(parts[0])
        except (ValueError, IndexError):
            continue
        if pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            with _tracking_disabled():
                shm = shared_memory.SharedMemory(name=entry)
        except FileNotFoundError:
            continue
        shm.close()
        try:
            _unlink_quiet(shm)
        except FileNotFoundError:
            continue
        removed.append(entry)
        SHM_COUNTERS.stale_swept += 1
    return removed


def unlink_namespace(namespace: str) -> List[str]:
    """Unlink every segment whose name starts with ``namespace``.

    The supervisor's shutdown hammer: after reaping its children it
    removes the whole snapshot namespace it handed them, alive PIDs or
    not, so a cluster teardown leaves ``/dev/shm`` exactly as it found
    it even when a child skipped its own atexit cleanup.
    """
    if shared_memory is None or not os.path.isdir("/dev/shm"):
        return []
    removed: List[str] = []
    for entry in os.listdir("/dev/shm"):
        if not entry.startswith(namespace):
            continue
        try:
            with _tracking_disabled():
                shm = shared_memory.SharedMemory(name=entry)
        except FileNotFoundError:
            continue
        shm.close()
        try:
            _unlink_quiet(shm)
        except FileNotFoundError:
            continue
        removed.append(entry)
        SHM_COUNTERS.segments_unlinked += 1
    return removed


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def _cleanup_at_exit() -> None:
    """Destroy what this process created; detach what it borrowed.

    The PID guard matters for forked pool workers: they inherit the
    parent's handles (flagged ``creator=True``) but must never unlink a
    segment the parent is still serving from.
    """
    pid = os.getpid()
    for segment in list(_LIVE.values()):
        try:
            if segment.creator and segment.creator_pid == pid:
                segment.destroy()
            else:
                segment.detach()
        except Exception:
            pass


atexit.register(_cleanup_at_exit)
