"""CSR-native triangle and 4-clique enumeration.

The oriented-DAG walks of :mod:`repro.cliques.triangles` and
:mod:`repro.cliques.kclique`, restated on the interned CSR snapshot:
because :class:`~repro.kernels.csr.CSRGraph` interns vertices in
degree-rank order, ``N+(u)`` is just the sorted tail of ``u``'s slice
and id comparison *is* the paper's ordering ``≺`` -- no rank lookups,
no ``precedes`` calls.  Intersections run on the packed out-neighbor
bitsets (word-parallel AND + popcount), the regime where CPython's
big-int core beats per-element set work by a wide margin.

All enumeration functions yield **labels** (via the snapshot's
interner), canonically ordered exactly like their set-based
counterparts, so callers can switch paths without observable change.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.kernels.counters import KERNEL_COUNTERS
from repro.kernels.csr import CSRGraph

__all__ = [
    "csr_count_triangles",
    "csr_iter_triangles",
    "csr_triangle_count_per_edge",
    "csr_iter_four_cliques",
]


def csr_count_triangles(csr: CSRGraph) -> int:
    """Total triangles: ``sum |N+(u) ∩ N+(v)|`` over DAG edges.

    The inner reduction is a ``map`` chain (index, AND, popcount) that
    runs entirely in C -- the per-directed-edge Python overhead of the
    set-based walk is the cost being deleted here.
    """
    csr.ensure_bits()
    out_bits = csr.out_bits
    offsets, neighbors, dag_start = csr.offsets, csr.neighbors, csr.dag_start
    getb = out_bits.__getitem__
    total = 0
    pairs = 0
    for u in range(csr.n):
        lo, hi = dag_start[u], offsets[u + 1]
        if lo >= hi:
            continue
        bu = out_bits[u]
        pairs += hi - lo
        total += sum(
            map(int.bit_count, map(bu.__and__, map(getb, neighbors[lo:hi])))
        )
    KERNEL_COUNTERS.triangle_kernels += 1
    KERNEL_COUNTERS.bitset_intersections += pairs
    return total


def csr_iter_triangles(csr: CSRGraph) -> Iterator[Tuple]:
    """Yield each triangle once as labels ``(u, v, w)`` with ``u ≺ v ≺ w``."""
    csr.ensure_bits()
    out_bits = csr.out_bits
    offsets, neighbors, dag_start = csr.offsets, csr.neighbors, csr.dag_start
    labels = csr.interner.labels
    KERNEL_COUNTERS.triangle_kernels += 1
    pairs = 0
    for u in range(csr.n):
        lo, hi = dag_start[u], offsets[u + 1]
        if lo >= hi:
            continue
        bu = out_bits[u]
        lab_u = labels[u]
        pairs += hi - lo
        for idx in range(lo, hi):
            v = neighbors[idx]
            bits = bu & out_bits[v]
            if not bits:
                continue
            lab_v = labels[v]
            while bits:
                low = bits & -bits
                yield (lab_u, lab_v, labels[low.bit_length() - 1])
                bits ^= low
    KERNEL_COUNTERS.bitset_intersections += pairs


def csr_triangle_count_per_edge(csr: CSRGraph) -> Dict[Tuple, int]:
    """Canonical label edge -> number of triangles through it.

    Seeds every edge (including triangle-free ones) with 0, then adds
    each triangle to its three edges -- same contract as
    :func:`repro.cliques.triangles.triangle_count_per_edge`.
    """
    counts: Dict[Tuple, int] = {}
    canon = csr.canonical_label_edge
    for a, b in csr.directed_edge_ids():
        counts[canon(a, b)] = 0
    csr.ensure_bits()
    out_bits = csr.out_bits
    offsets, neighbors, dag_start = csr.offsets, csr.neighbors, csr.dag_start
    KERNEL_COUNTERS.triangle_kernels += 1
    for u in range(csr.n):
        lo, hi = dag_start[u], offsets[u + 1]
        if lo >= hi:
            continue
        bu = out_bits[u]
        for idx in range(lo, hi):
            v = neighbors[idx]
            bits = bu & out_bits[v]
            KERNEL_COUNTERS.bitset_intersections += 1
            while bits:
                low = bits & -bits
                w = low.bit_length() - 1
                bits ^= low
                counts[canon(u, v)] += 1
                counts[canon(u, w)] += 1
                counts[canon(v, w)] += 1
    return counts


def csr_iter_four_cliques(csr: CSRGraph) -> Iterator[Tuple]:
    """Yield each 4-clique once as labels ``(u, v, w1, w2)``.

    ``u ≺ v`` are the two lowest-ranked members and ``w1 ≺ w2`` -- the
    exact emission contract of
    :func:`repro.cliques.kclique.iter_four_cliques` under the degree
    ordering.
    """
    csr.ensure_bits()
    out_bits = csr.out_bits
    offsets, neighbors, dag_start = csr.offsets, csr.neighbors, csr.dag_start
    labels = csr.interner.labels
    KERNEL_COUNTERS.four_clique_kernels += 1
    for u in range(csr.n):
        lo, hi = dag_start[u], offsets[u + 1]
        if lo >= hi:
            continue
        bu = out_bits[u]
        lab_u = labels[u]
        for idx in range(lo, hi):
            v = neighbors[idx]
            common = bu & out_bits[v]
            KERNEL_COUNTERS.bitset_intersections += 1
            if common.bit_count() < 2:
                continue
            lab_v = labels[v]
            w1_bits = common
            while w1_bits:
                low = w1_bits & -w1_bits
                w1 = low.bit_length() - 1
                w1_bits ^= low
                inner = common & out_bits[w1]
                if not inner:
                    continue
                lab_w1 = labels[w1]
                while inner:
                    low2 = inner & -inner
                    yield (lab_u, lab_v, lab_w1, labels[low2.bit_length() - 1])
                    inner ^= low2
