"""CSR-native k-truss decomposition (bucket peel in id space).

The set-based peel in :mod:`repro.analytics.truss` clones the graph and
runs ``common_neighbors`` per removal -- per-edge Python set work on a
structure that shrinks as it peels.  This kernel restates the same
bucket peel on the interned CSR snapshot: supports are seeded with
word-parallel bitset ANDs over the packed out-neighbor rows (the
:func:`~repro.kernels.triangles.csr_triangle_count_per_edge` regime),
and the peel mutates a *copy* of the adjacency bitsets, so triangle
enumeration around the peeled edge stays a single AND + bit-scan.

Truss numbers are a property of the graph, not of the peel order: every
minimum-support peel sequence yields the same per-edge values.  The two
paths therefore agree edge-for-edge (the differential tests assert dict
equality), even though their internal pop orders differ.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.kernels.counters import KERNEL_COUNTERS
from repro.kernels.csr import CSRGraph

__all__ = ["csr_truss_numbers"]


def csr_truss_numbers(csr: CSRGraph) -> Dict[Tuple, int]:
    """Truss number of every edge, keyed by canonical *label* edge.

    Same contract as :func:`repro.analytics.truss.truss_numbers`: edges
    in no triangle get truss 2, and ``truss(e) = k`` means ``e`` survives
    in the k-truss but not the (k+1)-truss.
    """
    KERNEL_COUNTERS.truss_kernels += 1
    if csr.m == 0:
        return {}
    csr.ensure_bits()
    n = csr.n
    # Mutable peel state: a copy of the adjacency bitsets (the snapshot's
    # own rows must stay frozen -- it is shared via the snapshot cache).
    adj: List[int] = list(csr.adj_bits)

    edges: List[Tuple[int, int]] = csr.directed_edge_ids()
    edge_index: Dict[int, int] = {}
    support: List[int] = []
    for eid, (u, v) in enumerate(edges):
        edge_index[u * n + v] = eid
        support.append((adj[u] & adj[v]).bit_count())
    KERNEL_COUNTERS.bitset_intersections += len(edges)

    max_support = max(support)
    buckets: List[Set[int]] = [set() for _ in range(max_support + 1)]
    for eid, s in enumerate(support):
        buckets[s].add(eid)

    truss_of: List[int] = [0] * len(edges)
    k = 2
    cursor = 0
    remaining = len(edges)
    while remaining:
        while cursor <= max_support and not buckets[cursor]:
            cursor += 1
        if cursor > max_support:
            break
        k = max(k, cursor + 2)
        eid = buckets[cursor].pop()
        u, v = edges[eid]
        truss_of[eid] = k
        # Peeling (u, v) lowers the support of both partner edges of
        # every triangle it still closes.
        common = adj[u] & adj[v]
        while common:
            low = common & -common
            w = low.bit_length() - 1
            common ^= low
            for a, b in ((u, w), (v, w)):
                if a > b:
                    a, b = b, a
                other = edge_index[a * n + b]
                s = support[other]
                if s > cursor:
                    buckets[s].discard(other)
                    support[other] = s - 1
                    buckets[s - 1].add(other)
        adj[u] ^= 1 << v
        adj[v] ^= 1 << u
        remaining -= 1
        cursor = max(cursor - 1, 0)

    canon = csr.canonical_label_edge
    return {
        canon(u, v): truss_of[eid] for eid, (u, v) in enumerate(edges)
    }
