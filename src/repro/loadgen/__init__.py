"""repro.loadgen -- open-loop load harness with SLO gates (docs/BENCHMARKS.md).

``esd bench service`` is a *closed-loop* test: 64 clients issue a
request, wait for the reply, issue the next.  A client stuck behind a
slow reply stops offering load, so the measured tail is the tail of the
traffic the server *let happen* -- the coordinated-omission trap.  This
package is the open-loop complement:

* :mod:`repro.loadgen.clock` -- the injectable ``now()``/``sleep()``
  seam every timed component runs on, so schedules and latency
  accounting are testable with zero wall-clock sleeps;
* :mod:`repro.loadgen.schedule` -- arrival processes (Poisson,
  constant-rate, burst and ramp stages) pre-computed into absolute send
  deadlines;
* :mod:`repro.loadgen.scenario` -- declarative read/write mix profiles
  over the ``esd serve`` JSON line protocol;
* :mod:`repro.loadgen.driver` -- a worker pool that executes a plan
  against a live server, charging lateness to the *deadline*, not the
  send;
* :mod:`repro.loadgen.analysis` -- reservoir percentiles, SLO
  predicates, and the find-the-knee capacity bisection;
* :mod:`repro.loadgen.report` -- ``BENCH_PR8.json`` emission, schema
  validation, and Prometheus scrape folding.

CLI: ``esd load run | sweep | report``.
"""

from repro.loadgen.analysis import Slo, capacity_sweep, summarize
from repro.loadgen.clock import SYSTEM_CLOCK, Clock, SystemClock
from repro.loadgen.driver import LoadDriver, OpRecord, RunResult
from repro.loadgen.scenario import PROFILES, Profile, ScenarioPlan, build_plan
from repro.loadgen.schedule import Stage, arrival_times, burst, constant, poisson, ramp

__all__ = [
    "Clock",
    "SystemClock",
    "SYSTEM_CLOCK",
    "Stage",
    "arrival_times",
    "constant",
    "poisson",
    "burst",
    "ramp",
    "Profile",
    "PROFILES",
    "ScenarioPlan",
    "build_plan",
    "LoadDriver",
    "OpRecord",
    "RunResult",
    "Slo",
    "summarize",
    "capacity_sweep",
]
