"""Analysis layer: percentiles, SLO predicates, find-the-knee bisection.

Percentiles reuse :func:`repro.service.metrics.percentile` -- the
ceil-based nearest-rank estimator whose "never under-report the tail"
invariant was established in PR 4 -- applied to the driver's uniform
latency reservoir.  Counts (errors, goodput) are exact; only the latency
*distribution* is sampled.

The capacity sweep answers one question: what is the highest offered
rate at which the deployment still meets its SLO?  It probes the ends of
a rate bracket, then bisects; each probe is a full open-loop run, so the
p99 it gates on already includes coordinated-omission queueing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.loadgen.driver import OpRecord, RunResult
from repro.service.metrics import percentile

#: The report's percentile grid.
FRACTIONS = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99), ("p999", 0.999))


def _ms(seconds: float) -> float:
    return round(seconds * 1000.0, 3)


def _distribution(samples: Sequence[float]) -> Dict[str, float]:
    return {name: _ms(percentile(samples, f)) for name, f in FRACTIONS}


@dataclass(frozen=True)
class Slo:
    """A latency/error objective a load level either meets or does not."""

    p99_ms: float
    max_error_rate: float = 0.0  #: errors / completed (overloads count)

    def met(self, summary: Dict) -> bool:
        return (
            summary["latency_ms"]["p99"] <= self.p99_ms
            and summary["error_rate"] <= self.max_error_rate
        )

    def as_dict(self) -> Dict:
        return {"p99_ms": self.p99_ms, "max_error_rate": self.max_error_rate}


def summarize(
    result: RunResult,
    offered_rate: float,
    duration: float,
) -> Dict:
    """One run folded into the report's per-load-level record.

    ``latency_ms`` is the open-loop (deadline-anchored) distribution;
    ``service_ms`` is the closed-loop (send-anchored) one.  The gap
    between them *is* the coordinated omission a closed-loop harness
    hides.
    """
    latencies = [r.latency for r in result.records]
    services = [r.service_time for r in result.records]
    completed = result.completed
    duration = duration if duration > 0 else result.wall_seconds
    summary = {
        "offered_rate_rps": round(offered_rate, 3),
        "duration_s": round(duration, 3),
        "scheduled": result.scheduled,
        "completed": completed,
        "ok": result.ok,
        "errors": dict(sorted(result.errors.items())),
        "error_rate": round(
            (result.error_total / completed) if completed else 0.0, 6
        ),
        "goodput_rps": round(result.ok / duration if duration else 0.0, 3),
        "reads": result.reads,
        "writes": result.writes,
        "latency_ms": _distribution(latencies),
        "service_ms": _distribution(services),
        "max_latency_ms": _ms(result.max_latency),
        "max_lateness_ms": _ms(result.max_lateness),
        "mean_latency_ms": _ms(
            result.latency_sum / completed if completed else 0.0
        ),
        "latency_samples": len(result.records),
    }
    by_metric: Dict[str, List[float]] = {}
    for record in result.records:
        if record.metric is not None:
            by_metric.setdefault(record.metric, []).append(record.latency)
    if len(by_metric) > 1:
        # Cross-metric mixes: per-metric open-loop percentiles, so one
        # slow scorer cannot hide inside the folded series.  Single-
        # metric runs keep the legacy payload shape.
        summary["per_metric_latency_ms"] = {
            metric: dict(
                _distribution(samples), samples=len(samples)
            )
            for metric, samples in sorted(by_metric.items())
        }
    return summary


#: A probe: given an offered rate, run a trial and return its summary.
RateProbe = Callable[[float], Dict]


def capacity_sweep(
    probe: RateProbe,
    lo: float,
    hi: float,
    slo: Slo,
    iterations: int = 6,
) -> Dict:
    """Bisect for the knee: the highest rate in ``[lo, hi]`` meeting ``slo``.

    Every probe's summary lands in ``points`` (sorted by rate, each with
    its ``slo_met`` verdict), so the emitted report carries the whole
    percentile-vs-offered-load curve, not just the answer.  ``knee_rate``
    is ``None`` when even ``lo`` violates the SLO, and ``hi`` when the
    bracket never saturates (the caller should widen it).
    """
    if not (0 < lo < hi):
        raise ValueError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
    if iterations < 0:
        raise ValueError(f"iterations must be >= 0, got {iterations}")
    points: List[Dict] = []

    def run(rate: float) -> Dict:
        summary = probe(rate)
        summary["slo_met"] = slo.met(summary)
        points.append(summary)
        return summary

    knee: Optional[float]
    saturated = True
    if not run(lo)["slo_met"]:
        knee = None
        saturated = False  # never found a passing rate, nothing bracketed
    elif run(hi)["slo_met"]:
        knee = hi
        saturated = False  # bracket too narrow: the knee is above hi
    else:
        good, bad = lo, hi
        for _ in range(iterations):
            mid = (good + bad) / 2.0
            if run(mid)["slo_met"]:
                good = mid
            else:
                bad = mid
        knee = good
    points.sort(key=lambda p: p["offered_rate_rps"])
    return {
        "slo": slo.as_dict(),
        "bracket_rps": [lo, hi],
        "iterations": iterations,
        "points": points,
        "knee_rate_rps": round(knee, 3) if knee is not None else None,
        "saturated": saturated,
    }


def coordinated_omission_gap(records: Sequence[OpRecord]) -> Dict[str, float]:
    """How much tail the closed-loop view hides, for one record set.

    Returns open-loop and send-anchored p99 side by side; the ratio is
    the honest-to-optimistic multiplier a closed-loop harness would have
    reported away.
    """
    open_p99 = percentile([r.latency for r in records], 0.99)
    closed_p99 = percentile([r.service_time for r in records], 0.99)
    return {
        "open_loop_p99_ms": _ms(open_p99),
        "closed_loop_p99_ms": _ms(closed_p99),
        "hidden_factor": round(
            open_p99 / closed_p99 if closed_p99 > 0 else float("inf"), 3
        ),
    }
