"""The clock seam: every timed loadgen component takes a ``Clock``.

Wall-clock time is the hardest dependency to test against: schedules,
lateness accounting, and knee bisection are all *about* time, yet a test
that actually sleeps is slow and flaky.  The seam is two methods --
``now()`` (monotonic seconds) and ``sleep(seconds)`` -- defaulted to the
real clock.  Tests inject a ``FakeClock`` (see ``tests/loadgen/fakes``)
whose ``sleep`` advances ``now`` instantly, so a simulated 10-minute run
finishes in milliseconds and every timestamp is exact.
"""

from __future__ import annotations

import time


class Clock:
    """Monotonic time source + sleeper.  Subclass to fake time in tests."""

    def now(self) -> float:
        """Seconds on a monotonic clock (comparable only to itself)."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Block for ``seconds`` (no-op when non-positive)."""
        raise NotImplementedError


class SystemClock(Clock):
    """The real thing: ``time.monotonic`` + ``time.sleep``."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


#: Shared default instance (stateless, so one is enough).
SYSTEM_CLOCK = SystemClock()
