"""The load driver: execute a :class:`ScenarioPlan` against a live server.

Coordinated-omission correctness is the whole point of this module, and
it falls out of one accounting decision: an operation's latency is
measured from its **schedule deadline**, not from the moment a worker
finally got around to sending it.  When the server stalls, workers back
up, sends happen late, and that queueing delay lands *in the recorded
latency* -- exactly what a real user behind the stall would experience.
The send timestamp is kept too (``service_time``), so reports can show
both the honest open-loop number and the optimistic closed-loop one
side by side.

Transports are anything with ``request(op, **fields)`` raising
``ServiceError`` for structured errors -- a real
:class:`~repro.service.client.ServiceClient`, or a scripted fake in
tests.  All timing flows through the injected :class:`Clock`, so driver
behaviour (including multi-second stalls) is testable in microseconds.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.loadgen.clock import SYSTEM_CLOCK, Clock
from repro.loadgen.scenario import ScenarioPlan, ScheduledOp
from repro.service.client import ServiceError

#: Latency samples retained per run (uniform reservoir; counts are exact).
RESERVOIR_CAPACITY = 8192

#: A factory returning a fresh transport (one per worker connection).
TransportFactory = Callable[[], Any]


@dataclass(frozen=True)
class OpRecord:
    """Timestamps of one executed operation (clock-domain seconds)."""

    deadline: float  #: when the schedule said to send
    sent: float  #: when a worker actually sent
    done: float  #: when the reply (or error) arrived
    op: str
    kind: str
    error: Optional[str] = None  #: protocol error code, "transport", or None
    metric: Optional[str] = None  #: topk reads: the metric queried; else None

    @property
    def latency(self) -> float:
        """Open-loop latency: completion minus *deadline* (CO-correct)."""
        return self.done - self.deadline

    @property
    def service_time(self) -> float:
        """Closed-loop view: completion minus actual send."""
        return self.done - self.sent

    @property
    def lateness(self) -> float:
        """Queueing delay the schedule absorbed before the send."""
        return self.sent - self.deadline


class Reservoir:
    """Fixed-size uniform sample (Algorithm R), deterministic by seed."""

    def __init__(self, capacity: int = RESERVOIR_CAPACITY, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._rng = random.Random(seed)
        self._items: List[Any] = []
        self.offered = 0

    def offer(self, item: Any) -> None:
        self.offered += 1
        if len(self._items) < self.capacity:
            self._items.append(item)
            return
        slot = self._rng.randrange(self.offered)
        if slot < self.capacity:
            self._items[slot] = item

    def items(self) -> List[Any]:
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)


@dataclass
class RunResult:
    """Everything a run measured.  Counters are exact; records sampled."""

    scheduled: int = 0
    completed: int = 0
    ok: int = 0
    errors: Dict[str, int] = field(default_factory=dict)
    wall_seconds: float = 0.0
    records: List[OpRecord] = field(default_factory=list)
    sampled_from: int = 0  #: completions the reservoir saw (== completed)
    max_latency: float = 0.0  #: exact, not subject to sampling
    max_lateness: float = 0.0
    latency_sum: float = 0.0
    reads: int = 0
    writes: int = 0

    @property
    def error_total(self) -> int:
        return sum(self.errors.values())


class LoadDriver:
    """A pool of workers draining one schedule against one server."""

    def __init__(
        self,
        transport_factory: TransportFactory,
        workers: int = 4,
        clock: Clock = SYSTEM_CLOCK,
        reservoir_capacity: int = RESERVOIR_CAPACITY,
        seed: int = 0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._factory = transport_factory
        self._workers = workers
        self._clock = clock
        self._reservoir_capacity = reservoir_capacity
        self._seed = seed

    # -- op execution ---------------------------------------------------------

    @staticmethod
    def _execute(transport: Any, op: ScheduledOp) -> None:
        """Issue one scheduled op; raises on structured/transport errors."""
        if op.op == "watch_cycle":
            # One logical operation, three requests: subscribe, drain,
            # unsubscribe.  The whole cycle is the measured latency.
            watch = transport.request("watch", **op.fields)
            transport.request("changes", watch_id=watch["watch_id"])
            transport.request("unwatch", watch_id=watch["watch_id"])
        else:
            transport.request(op.op, **op.fields)

    def _setup(self, plan: ScenarioPlan) -> None:
        """Insert the delete pool, closed-loop and unrecorded."""
        if not plan.setup_edges:
            return
        transport = self._factory()
        try:
            for u, v in plan.setup_edges:
                transport.request("update", action="insert", u=u, v=v)
        finally:
            _close_quietly(transport)

    # -- the run --------------------------------------------------------------

    def run(self, plan: ScenarioPlan) -> RunResult:
        """Execute the plan; returns once every scheduled op completed."""
        self._setup(plan)
        result = RunResult(scheduled=len(plan.ops))
        reservoir = Reservoir(self._reservoir_capacity, seed=self._seed)
        lock = threading.Lock()
        cursor = [0]
        start = self._clock.now()

        def worker_loop() -> None:
            transport: Any = None
            try:
                while True:
                    with lock:
                        index = cursor[0]
                        cursor[0] += 1
                    if index >= len(plan.ops):
                        return
                    op = plan.ops[index]
                    # Open loop: wait for the *absolute* deadline.  A
                    # worker that is already past it sends immediately
                    # and the lateness is charged as latency.
                    delay = (start + op.deadline) - self._clock.now()
                    if delay > 0:
                        self._clock.sleep(delay)
                    if transport is None:
                        try:
                            transport = self._factory()
                        except OSError:
                            self._record(
                                result, reservoir, lock, op,
                                start + op.deadline, "transport",
                            )
                            continue
                    sent = self._clock.now()
                    error: Optional[str] = None
                    try:
                        self._execute(transport, op)
                    except ServiceError as exc:
                        error = exc.code
                    except (OSError, ConnectionError):
                        error = "transport"
                        _close_quietly(transport)
                        transport = None
                    done = self._clock.now()
                    record = OpRecord(
                        deadline=start + op.deadline,
                        sent=sent,
                        done=done,
                        op=op.op,
                        kind=op.kind,
                        error=error,
                        metric=_op_metric(op),
                    )
                    with lock:
                        _fold(result, reservoir, record)
            finally:
                _close_quietly(transport)

        if self._workers == 1:
            # Inline: exact determinism under a FakeClock (no scheduler
            # interleaving), which the unit tests rely on.
            worker_loop()
        else:
            threads = [
                threading.Thread(target=worker_loop, daemon=True)
                for _ in range(self._workers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        result.wall_seconds = self._clock.now() - start
        result.records = reservoir.items()
        result.sampled_from = reservoir.offered
        return result

    def _record(
        self,
        result: RunResult,
        reservoir: Reservoir,
        lock: threading.Lock,
        op: ScheduledOp,
        deadline: float,
        error: str,
    ) -> None:
        """Record an op that never made it onto a transport."""
        now = self._clock.now()
        record = OpRecord(
            deadline=deadline, sent=now, done=now,
            op=op.op, kind=op.kind, error=error, metric=_op_metric(op),
        )
        with lock:
            _fold(result, reservoir, record)


def _op_metric(op: "ScheduledOp") -> Optional[str]:
    """The metric a topk read queries (``esd`` when unstamped); else None.

    Gives per-metric latency attribution in ``cross_metric`` runs; ops
    that carry no metric (writes, watch traffic) stay unattributed.
    """
    if op.op != "topk":
        return None
    return op.fields.get("metric", "esd")


def _fold(result: RunResult, reservoir: Reservoir, record: OpRecord) -> None:
    result.completed += 1
    if record.error is None:
        result.ok += 1
    else:
        result.errors[record.error] = result.errors.get(record.error, 0) + 1
    if record.kind == "read":
        result.reads += 1
    else:
        result.writes += 1
    result.max_latency = max(result.max_latency, record.latency)
    result.max_lateness = max(result.max_lateness, record.lateness)
    result.latency_sum += record.latency
    reservoir.offer(record)


def _close_quietly(transport: Any) -> None:
    close = getattr(transport, "close", None)
    if close is None:
        return
    try:
        close()
    except OSError:
        pass


def measure_baseline(
    transport_factory: TransportFactory,
    duration: float = 1.0,
    clock: Clock = SYSTEM_CLOCK,
    k: int = 10,
    tau: int = 2,
) -> float:
    """Closed-loop single-connection ``topk`` rate (ops/second).

    This is the machine-dependent yardstick the sweep normalizes by:
    ``knee_rate / baseline_rate`` compares what the *server* sustains
    under open-loop load against what *one* synchronous caller extracts
    from the same deployment on the same hardware, so the ratio is
    gateable across machines.
    """
    transport = transport_factory()
    try:
        start = clock.now()
        count = 0
        while clock.now() - start < duration:
            transport.request("topk", k=k, tau=tau)
            count += 1
        elapsed = clock.now() - start
        return count / elapsed if elapsed > 0 else 0.0
    finally:
        _close_quietly(transport)
