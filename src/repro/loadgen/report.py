"""Capacity reports: BENCH_PR8.json emission, validation, rendering.

The sweep's output is a *gateable artifact*: CI re-runs a tiny sweep and
(a) validates the emitted JSON against :func:`validate_payload`, (b)
gates on zero protocol errors, exactly like the PR-5/PR-7 BENCH chain
gates on speedup ratios.  Raw rates are machine-dependent, so the
machine-independent number the report leads with is
``knee_vs_baseline`` -- the open-loop knee rate divided by the
closed-loop single-connection rate measured against the *same* server
moments earlier.

Prometheus folding: the driver scrapes ``GET /metrics`` before and
after the run and the per-endpoint request/error deltas land in the
report, tying client-observed latency to server-side counters in one
document.
"""

from __future__ import annotations

import json
import platform
import socket
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.bench.harness import ExperimentTable
from repro.obs.promtext import parse_prometheus, samples_by_name

#: Repository root -- BENCH_*.json records live next to README.md.
REPO_ROOT = Path(__file__).resolve().parents[3]

#: Tag of the record this revision of the harness emits.
BENCH_TAG = "PR8"

#: Payload schema version (validate_payload checks it).
SCHEMA_VERSION = 1

#: Keys every sweep point must carry (schema floor, not ceiling).
_POINT_KEYS = (
    "offered_rate_rps",
    "goodput_rps",
    "error_rate",
    "latency_ms",
    "slo_met",
)
_LATENCY_KEYS = ("p50", "p95", "p99")


def build_payload(
    scenario: str,
    sweep: Dict,
    baseline_rate_rps: float,
    seed: int,
    workers: int,
    trial_duration_s: float,
    prometheus: Optional[Dict] = None,
) -> Dict:
    """Assemble the BENCH document from a sweep result."""
    knee = sweep.get("knee_rate_rps")
    payload: Dict[str, Any] = {
        "bench": BENCH_TAG,
        "schema": SCHEMA_VERSION,
        "kind": "loadgen",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "scenario": scenario,
        "seed": seed,
        "workers": workers,
        "trial_duration_s": trial_duration_s,
        "baseline_rate_rps": round(baseline_rate_rps, 3),
        "sweep": sweep,
        "knee_rate_rps": knee,
        "knee_vs_baseline": (
            round(knee / baseline_rate_rps, 4)
            if knee and baseline_rate_rps > 0
            else None
        ),
    }
    if prometheus is not None:
        payload["prometheus"] = prometheus
    return payload


def validate_payload(payload: Dict) -> List[str]:
    """Schema check; returns human-readable problems (empty = valid)."""
    problems: List[str] = []

    def need(key: str, kinds) -> Any:
        if key not in payload:
            problems.append(f"missing key: {key}")
            return None
        if kinds is not None and not isinstance(payload[key], kinds):
            problems.append(
                f"key {key!r} has type {type(payload[key]).__name__}"
            )
            return None
        return payload[key]

    if need("bench", str) is None:
        pass
    if payload.get("schema") != SCHEMA_VERSION:
        problems.append(
            f"schema must be {SCHEMA_VERSION}, got {payload.get('schema')!r}"
        )
    if payload.get("kind") != "loadgen":
        problems.append(f"kind must be 'loadgen', got {payload.get('kind')!r}")
    need("scenario", str)
    need("baseline_rate_rps", (int, float))
    sweep = need("sweep", dict)
    if sweep is not None:
        if not isinstance(sweep.get("slo"), dict) or "p99_ms" not in sweep.get(
            "slo", {}
        ):
            problems.append("sweep.slo must carry p99_ms")
        points = sweep.get("points")
        if not isinstance(points, list) or not points:
            problems.append("sweep.points must be a non-empty list")
        else:
            for i, point in enumerate(points):
                if not isinstance(point, dict):
                    problems.append(f"sweep.points[{i}] is not an object")
                    continue
                for key in _POINT_KEYS:
                    if key not in point:
                        problems.append(f"sweep.points[{i}] missing {key!r}")
                latency = point.get("latency_ms")
                if isinstance(latency, dict):
                    for key in _LATENCY_KEYS:
                        if key not in latency:
                            problems.append(
                                f"sweep.points[{i}].latency_ms missing {key!r}"
                            )
                else:
                    problems.append(
                        f"sweep.points[{i}].latency_ms is not an object"
                    )
    if "knee_rate_rps" not in payload:
        problems.append("missing key: knee_rate_rps")
    knee = payload.get("knee_rate_rps")
    if knee is not None and not isinstance(knee, (int, float)):
        problems.append("knee_rate_rps must be a number or null")
    if knee is not None and payload.get("knee_vs_baseline") is None:
        problems.append("knee_vs_baseline must be set when a knee was found")
    return problems


def save_payload(payload: Dict, output: Optional[Path] = None) -> Path:
    output = output or (REPO_ROOT / f"BENCH_{BENCH_TAG}.json")
    output.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return output


def load_payload(path: Path) -> Dict:
    return json.loads(Path(path).read_text(encoding="utf-8"))


# -- prometheus scrape folding ------------------------------------------------


def scrape_metrics(host: str, port: int, timeout: float = 10.0) -> str:
    """Fetch one ``GET /metrics`` scrape from a serve/cluster node."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(b"GET /metrics HTTP/1.0\r\n\r\n")
        data = b""
        while True:
            chunk = sock.recv(1 << 16)
            if not chunk:
                break
            data += chunk
    head, _, body = data.partition(b"\r\n\r\n")
    if not head.startswith(b"HTTP/1.0 200"):
        raise ConnectionError(f"metrics scrape failed: {head[:120]!r}")
    return body.decode("utf-8", errors="replace")


def fold_scrapes(before: str, after: str) -> Dict:
    """Per-endpoint server-side counter deltas across the run window."""
    b = samples_by_name(parse_prometheus(before))
    a = samples_by_name(parse_prometheus(after))
    folded: Dict[str, Dict[str, float]] = {}
    for family in ("esd_endpoint_requests", "esd_endpoint_errors"):
        deltas: Dict[str, float] = {}
        for labels, value in a.get(family, {}).items():
            delta = value - b.get(family, {}).get(labels, 0.0)
            if delta:
                table = dict(labels)
                label = table.get("endpoint", str(labels))
                # Dimensioned series (e.g. per-metric topk) fold under
                # their own key instead of clobbering the aggregate.
                extra = [
                    f"{key}={table[key]}"
                    for key in sorted(table)
                    if key != "endpoint"
                ]
                if extra:
                    label = "|".join([label, *extra])
                deltas[label] = delta
        if deltas:
            folded[family] = dict(sorted(deltas.items()))
    return folded


# -- presentation -------------------------------------------------------------


def render_tables(payload: Dict) -> List[ExperimentTable]:
    """The report as paper-style tables: the curve, then the verdict."""
    sweep = payload.get("sweep", {})
    slo = sweep.get("slo", {})
    curve = ExperimentTable(
        experiment="loadgen",
        title=(
            f"scenario={payload.get('scenario')} "
            f"slo: p99<={slo.get('p99_ms')}ms "
            f"err<={slo.get('max_error_rate')}"
        ),
        columns=[
            "offered r/s", "goodput r/s", "p50 ms", "p95 ms", "p99 ms",
            "err rate", "slo",
        ],
    )
    for point in sweep.get("points", []):
        latency = point.get("latency_ms", {})
        curve.add_row(
            f"{point.get('offered_rate_rps', 0):.1f}",
            f"{point.get('goodput_rps', 0):.1f}",
            f"{latency.get('p50', 0):.2f}",
            f"{latency.get('p95', 0):.2f}",
            f"{latency.get('p99', 0):.2f}",
            f"{point.get('error_rate', 0):.4f}",
            "pass" if point.get("slo_met") else "FAIL",
        )
    tables = [curve]
    # Cross-metric runs attribute latency per metric; render the split
    # for every sweep point that carries it (the whole reason a slow
    # scorer is visible in this report at all).
    per_metric_points = [
        point
        for point in sweep.get("points", [])
        if point.get("per_metric_latency_ms")
    ]
    if per_metric_points:
        split = ExperimentTable(
            experiment="loadgen",
            title="per-metric latency (open-loop)",
            columns=[
                "offered r/s", "metric", "p50 ms", "p95 ms", "p99 ms",
                "samples",
            ],
        )
        for point in per_metric_points:
            for metric, dist in sorted(
                point["per_metric_latency_ms"].items()
            ):
                split.add_row(
                    f"{point.get('offered_rate_rps', 0):.1f}",
                    metric,
                    f"{dist.get('p50', 0):.2f}",
                    f"{dist.get('p95', 0):.2f}",
                    f"{dist.get('p99', 0):.2f}",
                    dist.get("samples", 0),
                )
        tables.append(split)
    verdict = ExperimentTable(
        experiment="loadgen",
        title="capacity verdict",
        columns=["metric", "value"],
    )
    verdict.add_row("baseline closed-loop r/s", payload.get("baseline_rate_rps"))
    verdict.add_row("knee rate r/s", payload.get("knee_rate_rps"))
    verdict.add_row("knee / baseline", payload.get("knee_vs_baseline"))
    verdict.add_row("saturated bracket", sweep.get("saturated"))
    prom = payload.get("prometheus") or {}
    for family, deltas in prom.items():
        verdict.note(
            f"{family} deltas: "
            + ", ".join(f"{k}={v:g}" for k, v in deltas.items())
        )
    tables.append(verdict)
    return tables
