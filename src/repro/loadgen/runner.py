"""Orchestration glue between the CLI verbs and the loadgen layers.

``esd load run`` is one open-loop trial; ``esd load sweep`` wraps many
trials in the knee bisection and emits the BENCH record.  Both talk to
an already-running server (``esd serve`` or a cluster router) -- the
harness never owns the process under test, so it can point at anything
speaking the protocol.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.bench.workloads import LOADGEN_EDGE_BASE
from repro.loadgen.analysis import Slo, capacity_sweep, summarize
from repro.loadgen.clock import SYSTEM_CLOCK, Clock
from repro.loadgen.driver import LoadDriver, measure_baseline
from repro.loadgen.report import build_payload, fold_scrapes, scrape_metrics
from repro.loadgen.scenario import PROFILES, build_plan
from repro.loadgen.schedule import Stage, arrival_times
from repro.service.client import ServiceClient

#: Vertex-id stride between sweep trials, so every trial's mutation pool
#: is disjoint from every other's (inserts never collide, deletes never
#: touch another trial's edges).
TRIAL_EDGE_STRIDE = 10_000_000


def client_factory(
    host: str, port: int, timeout: float = 30.0
) -> Callable[[], ServiceClient]:
    return lambda: ServiceClient(host, port, timeout=timeout)


def run_scenario(
    host: str,
    port: int,
    scenario: str,
    rate: float,
    duration: float,
    workers: int = 8,
    seed: int = 0,
    process: str = "poisson",
    timeout: float = 30.0,
    edge_base: int = LOADGEN_EDGE_BASE,
    clock: Clock = SYSTEM_CLOCK,
) -> Dict:
    """One open-loop trial; returns the :func:`summarize` record."""
    profile = PROFILES[scenario]
    stages = [Stage(duration=duration, rate=rate, process=process)]
    deadlines = arrival_times(stages, seed=seed)
    plan = build_plan(deadlines, profile, seed=seed, edge_base=edge_base)
    driver = LoadDriver(
        client_factory(host, port, timeout),
        workers=workers,
        clock=clock,
        seed=seed,
    )
    result = driver.run(plan)
    return summarize(result, offered_rate=rate, duration=duration)


def _try_scrape(host: str, port: int) -> Optional[str]:
    try:
        return scrape_metrics(host, port)
    except (OSError, ConnectionError):
        return None


def run_with_scrapes(
    host: str, port: int, **kwargs
) -> Tuple[Dict, Optional[Dict]]:
    """:func:`run_scenario` bracketed by metrics scrapes (best-effort)."""
    before = _try_scrape(host, port)
    summary = run_scenario(host, port, **kwargs)
    after = _try_scrape(host, port)
    folded = (
        fold_scrapes(before, after)
        if before is not None and after is not None
        else None
    )
    return summary, folded


def run_sweep(
    host: str,
    port: int,
    scenario: str,
    slo: Slo,
    lo: float,
    hi: float,
    duration: float = 2.0,
    workers: int = 8,
    seed: int = 0,
    iterations: int = 5,
    baseline_duration: float = 1.0,
    timeout: float = 30.0,
    clock: Clock = SYSTEM_CLOCK,
) -> Dict:
    """The full capacity workflow: baseline, bisection, BENCH payload."""
    baseline_rate = measure_baseline(
        client_factory(host, port, timeout),
        duration=baseline_duration,
        clock=clock,
    )
    before = _try_scrape(host, port)
    trial = [0]

    def probe(rate: float) -> Dict:
        base = LOADGEN_EDGE_BASE + trial[0] * TRIAL_EDGE_STRIDE
        trial[0] += 1
        return run_scenario(
            host,
            port,
            scenario,
            rate=rate,
            duration=duration,
            workers=workers,
            seed=seed + trial[0],
            timeout=timeout,
            edge_base=base,
            clock=clock,
        )

    sweep = capacity_sweep(probe, lo, hi, slo, iterations=iterations)
    after = _try_scrape(host, port)
    prometheus = (
        fold_scrapes(before, after)
        if before is not None and after is not None
        else None
    )
    return build_payload(
        scenario=scenario,
        sweep=sweep,
        baseline_rate_rps=baseline_rate,
        seed=seed,
        workers=workers,
        trial_duration_s=duration,
        prometheus=prometheus,
    )
