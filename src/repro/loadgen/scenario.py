"""Scenario layer: declarative read/write mixes over the serve protocol.

A :class:`Profile` says *what* traffic looks like (write share, watch
share, query grid); :func:`build_plan` marries it to a schedule's
deadlines and produces a concrete, deterministic operation stream.

Mutations are minted through :func:`repro.bench.workloads.mutation_edges`
so they live in a vertex-id range disjoint from every stand-in dataset:

* **inserts** always create a brand-new edge (cannot conflict);
* **deletes** only ever target edges from a *setup pool* the driver
  inserts before the run starts (cannot dangle) -- under concurrent
  workers an in-run delete could otherwise race the insert it depends
  on and turn op reordering into spurious protocol errors.

Profiles (the ``--scenario`` choices):

========================  =======  ===========  ==========================
name                      writes   watch share  intent
========================  =======  ===========  ==========================
``read_heavy``            5%       --           dashboard / cache-friendly
``mixed``                 15%      --           the PR-1 service bench mix
``write_heavy``           50%      --           ingest-dominated
``watch_fanout``          10%      40% of reads standing-query subscribers
``cross_metric``          5%       --           reads spread over the metric
                                                family (esd/truss/
                                                betweenness/common_neighbors)
========================  =======  ===========  ==========================

Profiles carry a ``metric_mix`` -- weighted ``(metric, weight)`` choices
stamped onto topk reads.  The default is pure ``esd`` and draws nothing
from the RNG, so legacy profiles keep their exact historic plans.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.bench.workloads import (
    LOADGEN_EDGE_BASE,
    SERVICE_QUERY_GRID,
    SERVICE_WRITE_RATIO,
    mutation_edges,
)

Edge = Tuple[int, int]


@dataclass(frozen=True)
class ScheduledOp:
    """One planned request: due at ``deadline`` seconds from run start."""

    deadline: float
    op: str  #: "topk" | "update" | "watch_cycle"
    fields: Dict[str, Any]
    kind: str  #: "read" | "write"


@dataclass(frozen=True)
class Profile:
    """A traffic shape, independent of rate and duration."""

    name: str
    write_ratio: float  #: fraction of ops that mutate the graph
    watch_ratio: float = 0.0  #: fraction of *reads* that are watch cycles
    delete_ratio: float = 0.5  #: fraction of *writes* that are deletes
    query_grid: Sequence[Tuple[int, int]] = tuple(SERVICE_QUERY_GRID)
    #: weighted ``(metric, weight)`` choices for topk reads; the default
    #: keeps every legacy profile pure-esd (and byte-identical plans).
    metric_mix: Sequence[Tuple[str, float]] = (("esd", 1.0),)

    def __post_init__(self) -> None:
        for name in ("write_ratio", "watch_ratio", "delete_ratio"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if not self.query_grid:
            raise ValueError("query_grid must not be empty")
        if not self.metric_mix:
            raise ValueError("metric_mix must not be empty")
        for metric, weight in self.metric_mix:
            if not isinstance(metric, str) or not metric:
                raise ValueError(f"metric_mix names must be non-empty, got {metric!r}")
            if weight < 0:
                raise ValueError(
                    f"metric_mix weight for {metric!r} must be >= 0, got {weight}"
                )
        if sum(weight for _, weight in self.metric_mix) <= 0:
            raise ValueError("metric_mix weights must sum to > 0")


def _pick_metric(
    mix: Sequence[Tuple[str, float]], rng: random.Random
) -> str:
    total = sum(weight for _, weight in mix)
    roll = rng.random() * total
    for metric, weight in mix:
        roll -= weight
        if roll < 0:
            return metric
    return mix[-1][0]


PROFILES: Dict[str, Profile] = {
    "read_heavy": Profile("read_heavy", write_ratio=0.05),
    "mixed": Profile("mixed", write_ratio=SERVICE_WRITE_RATIO),
    "write_heavy": Profile("write_heavy", write_ratio=0.5),
    "watch_fanout": Profile(
        "watch_fanout", write_ratio=0.10, watch_ratio=0.40
    ),
    "cross_metric": Profile(
        "cross_metric",
        write_ratio=0.05,
        metric_mix=(
            ("esd", 0.70),
            ("truss", 0.15),
            ("betweenness", 0.10),
            ("common_neighbors", 0.05),
        ),
    ),
}


@dataclass
class ScenarioPlan:
    """A profile bound to concrete deadlines: what the driver executes.

    ``setup_edges`` must be inserted (closed-loop, unrecorded) before the
    scheduled stream starts -- they are the delete pool.
    """

    profile: Profile
    setup_edges: List[Edge]
    ops: List[ScheduledOp]
    seed: int = 0
    reads: int = field(default=0)
    writes: int = field(default=0)

    @property
    def duration(self) -> float:
        return self.ops[-1].deadline if self.ops else 0.0


def build_plan(
    deadlines: Sequence[float],
    profile: Profile,
    seed: int = 0,
    edge_base: int = LOADGEN_EDGE_BASE,
) -> ScenarioPlan:
    """Assign one operation to every deadline, deterministically.

    The same ``(deadlines, profile, seed, edge_base)`` quadruple always
    yields the same plan; distinct ``edge_base`` values (e.g. one per
    sweep trial) touch disjoint edge pools.
    """
    rng = random.Random(seed)
    # First pass: choose op shapes; edges are assigned afterwards so the
    # delete pool can be sized exactly.
    shapes: List[Tuple[float, str, str]] = []  # (deadline, op, kind)
    for deadline in sorted(deadlines):
        if rng.random() < profile.write_ratio:
            action = (
                "delete" if rng.random() < profile.delete_ratio else "insert"
            )
            shapes.append((deadline, action, "write"))
        elif profile.watch_ratio and rng.random() < profile.watch_ratio:
            shapes.append((deadline, "watch_cycle", "read"))
        else:
            shapes.append((deadline, "topk", "read"))

    n_deletes = sum(1 for _, op, _ in shapes if op == "delete")
    n_inserts = sum(1 for _, op, _ in shapes if op == "insert")
    edges = mutation_edges(n_deletes + n_inserts, base=edge_base)
    delete_pool, insert_pool = edges[:n_deletes], edges[n_deletes:]

    ops: List[ScheduledOp] = []
    reads = writes = 0
    di = ii = 0
    for deadline, op, kind in shapes:
        if op == "delete":
            u, v = delete_pool[di]
            di += 1
            ops.append(
                ScheduledOp(
                    deadline, "update",
                    {"action": "delete", "u": u, "v": v}, "write",
                )
            )
            writes += 1
        elif op == "insert":
            u, v = insert_pool[ii]
            ii += 1
            ops.append(
                ScheduledOp(
                    deadline, "update",
                    {"action": "insert", "u": u, "v": v}, "write",
                )
            )
            writes += 1
        elif op == "watch_cycle":
            k, tau = profile.query_grid[
                rng.randrange(len(profile.query_grid))
            ]
            ops.append(
                ScheduledOp(deadline, "watch_cycle", {"k": k, "tau": tau}, "read")
            )
            reads += 1
        else:
            k, tau = profile.query_grid[
                rng.randrange(len(profile.query_grid))
            ]
            fields: Dict[str, Any] = {"k": k, "tau": tau}
            if len(profile.metric_mix) > 1:
                # A single-entry mix draws nothing from the rng, so every
                # legacy (pure-esd) profile keeps its exact historic plan.
                fields["metric"] = _pick_metric(profile.metric_mix, rng)
            elif profile.metric_mix[0][0] != "esd":
                fields["metric"] = profile.metric_mix[0][0]
            ops.append(ScheduledOp(deadline, "topk", fields, "read"))
            reads += 1
    return ScenarioPlan(
        profile=profile,
        setup_edges=delete_pool,
        ops=ops,
        seed=seed,
        reads=reads,
        writes=writes,
    )
