"""Open-loop arrival schedules: absolute send deadlines, computed up front.

The defining property of an open-loop generator is that the arrival
process does not react to the system under test: request *i* is due at a
deadline fixed before the run starts, whether or not request *i-1* has
come back.  Pre-computing the whole schedule makes that explicit -- the
driver can only be late, and lateness is *recorded* (charged against the
deadline) instead of silently absorbed the way a closed-loop client
absorbs it by not offering the next request.

A schedule is a list of :class:`Stage` segments played back to back:

* ``constant(rate, duration)`` -- evenly spaced arrivals;
* ``poisson(rate, duration)`` -- exponential inter-arrivals (the
  memoryless process real independent users approximate);
* ``burst(rate, duration)`` -- alias of ``constant`` read as "spike";
* ``ramp(start_rate, end_rate, duration)`` -- linearly varying rate,
  for warm-up ramps and find-the-cliff sweeps.

Everything is deterministic given ``seed``; no clock is involved.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable, List, Sequence

#: Backstop on one schedule's size: a mistyped rate should fail loudly,
#: not allocate gigabytes of deadlines.
MAX_ARRIVALS = 1_000_000

_PROCESSES = ("poisson", "constant")


@dataclass(frozen=True)
class Stage:
    """One segment of a schedule: ``duration`` seconds of arrivals.

    ``rate`` is the offered rate (arrivals/second) at the start of the
    stage; ``end_rate`` (default: same as ``rate``) is the rate at the
    end, with linear interpolation between -- a flat stage is just a
    degenerate ramp.  ``process`` picks evenly spaced (``constant``) or
    memoryless (``poisson``) arrivals.
    """

    duration: float
    rate: float
    end_rate: float = -1.0  # sentinel: flat (dataclass can't default to rate)
    process: str = "poisson"

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"duration must be > 0, got {self.duration}")
        if self.rate < 0 or (self.end_rate != -1.0 and self.end_rate < 0):
            raise ValueError("rates must be >= 0")
        if self.process not in _PROCESSES:
            raise ValueError(
                f"process must be one of {_PROCESSES}, got {self.process!r}"
            )

    @property
    def final_rate(self) -> float:
        return self.rate if self.end_rate == -1.0 else self.end_rate

    @property
    def expected_arrivals(self) -> float:
        return (self.rate + self.final_rate) / 2.0 * self.duration


def constant(rate: float, duration: float) -> Stage:
    """Evenly spaced arrivals at ``rate``/s for ``duration`` seconds."""
    return Stage(duration=duration, rate=rate, process="constant")


def poisson(rate: float, duration: float) -> Stage:
    """Poisson arrivals at mean ``rate``/s for ``duration`` seconds."""
    return Stage(duration=duration, rate=rate, process="poisson")


def burst(rate: float, duration: float) -> Stage:
    """A short high-rate spike (evenly spaced, like a retry stampede)."""
    return Stage(duration=duration, rate=rate, process="constant")


def ramp(
    start_rate: float,
    end_rate: float,
    duration: float,
    process: str = "poisson",
) -> Stage:
    """Linearly vary the offered rate from ``start_rate`` to ``end_rate``."""
    return Stage(
        duration=duration, rate=start_rate, end_rate=end_rate, process=process
    )


def _constant_offsets(stage: Stage) -> List[float]:
    """Deterministic arrivals: invert the cumulative-rate integral.

    With rate r(t) = r0 + (r1 - r0) t/D the cumulative arrival count is
    N(t) = r0 t + (r1 - r0) t^2 / (2D); arrival *i* lands where
    N(t) = i.  Flat stages reduce to t = i / r0.
    """
    r0, r1, d = stage.rate, stage.final_rate, stage.duration
    total = int(stage.expected_arrivals + 1e-9)
    a = (r1 - r0) / (2.0 * d)
    offsets: List[float] = []
    for i in range(total):
        if abs(a) < 1e-12:
            t = i / r0 if r0 > 0 else d
        else:
            t = (-r0 + math.sqrt(r0 * r0 + 4.0 * a * i)) / (2.0 * a)
        if t < d:
            offsets.append(t)
    return offsets


def _poisson_offsets(stage: Stage, rng: random.Random) -> List[float]:
    """Poisson arrivals; ramps use thinning against the peak rate."""
    r_max = max(stage.rate, stage.final_rate)
    if r_max <= 0:
        return []
    r0, r1, d = stage.rate, stage.final_rate, stage.duration
    offsets: List[float] = []
    t = 0.0
    while True:
        t += rng.expovariate(r_max)
        if t >= d:
            return offsets
        rate_at_t = r0 + (r1 - r0) * (t / d)
        if rate_at_t >= r_max or rng.random() < rate_at_t / r_max:
            offsets.append(t)
        if len(offsets) > MAX_ARRIVALS:
            raise ValueError(
                f"schedule exceeds {MAX_ARRIVALS} arrivals; lower the rate"
            )


def arrival_times(stages: Iterable[Stage], seed: int = 0) -> List[float]:
    """Absolute send deadlines (seconds from run start) for ``stages``.

    Stages play back to back; deadlines are strictly sorted within the
    total duration.  Deterministic: the same ``(stages, seed)`` pair
    always produces the same schedule.
    """
    stage_list: Sequence[Stage] = list(stages)
    expected = sum(s.expected_arrivals for s in stage_list)
    if expected > MAX_ARRIVALS:
        raise ValueError(
            f"schedule of ~{expected:.0f} arrivals exceeds {MAX_ARRIVALS}; "
            "lower the rate or duration"
        )
    rng = random.Random(seed)
    deadlines: List[float] = []
    base = 0.0
    for stage in stage_list:
        if stage.process == "constant":
            offsets = _constant_offsets(stage)
        else:
            offsets = _poisson_offsets(stage, rng)
        deadlines.extend(base + off for off in offsets)
        base += stage.duration
    return deadlines


def total_duration(stages: Iterable[Stage]) -> float:
    """Wall-clock length of the schedule (sum of stage durations)."""
    return sum(stage.duration for stage in stages)
