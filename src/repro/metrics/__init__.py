"""``repro.metrics``: the pluggable diversity-query metric family.

One ``topk(metric=...)`` surface over every edge-ranking problem the
serving stack answers -- see :mod:`repro.metrics.scorers` for the
scorer contract and the built-in registrations (``esd``, ``truss``,
``betweenness`` (ego), ``betweenness_global`` (Brandes),
``common_neighbors``).
"""

from repro.metrics.scorers import (
    DEFAULT_METRIC,
    TRUSS_DELTA_OPS_LIMIT,
    BetweennessScorer,
    CommonNeighborsScorer,
    EgoBetweennessScorer,
    EsdScorer,
    MetricScorer,
    TrussScorer,
    get_metric,
    metric_names,
    rank_edges,
    register_metric,
    scorer_stats,
)

__all__ = [
    "DEFAULT_METRIC",
    "TRUSS_DELTA_OPS_LIMIT",
    "MetricScorer",
    "EsdScorer",
    "TrussScorer",
    "EgoBetweennessScorer",
    "BetweennessScorer",
    "CommonNeighborsScorer",
    "get_metric",
    "metric_names",
    "rank_edges",
    "register_metric",
    "scorer_stats",
]
