"""``repro.metrics``: the pluggable diversity-query metric family.

One ``topk(metric=...)`` surface over every edge-ranking problem the
serving stack answers -- see :mod:`repro.metrics.scorers` for the
scorer contract and the built-in registrations (``esd``, ``truss``,
``betweenness``, ``common_neighbors``).
"""

from repro.metrics.scorers import (
    DEFAULT_METRIC,
    BetweennessScorer,
    CommonNeighborsScorer,
    EsdScorer,
    MetricScorer,
    TrussScorer,
    get_metric,
    metric_names,
    rank_edges,
    register_metric,
)

__all__ = [
    "DEFAULT_METRIC",
    "MetricScorer",
    "EsdScorer",
    "TrussScorer",
    "BetweennessScorer",
    "CommonNeighborsScorer",
    "get_metric",
    "metric_names",
    "rank_edges",
    "register_metric",
]
