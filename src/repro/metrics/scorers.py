"""Pluggable edge-ranking metrics behind one ``topk(metric=...)`` surface.

The paper's experiments rank edges by component-count structural
diversity, but its case studies (Exp-7/8) and the related work map three
sibling problems onto machinery this repo already has: truss-based
structural diversity (Huang/Huang/Xu -- the k-truss peel in
:mod:`repro.analytics.truss`), top-k ego-betweenness (Zhang et al. --
the local variant in :mod:`repro.analytics.betweenness`, with global
Brandes kept as ``betweenness_global``), and the common-neighbor count
that upper-bounds the paper's score.  This module serves them all
through the same engine/cache/batcher: each metric is a
:class:`MetricScorer` registered by name, and every serving-layer
``topk``/``score`` call carries a ``metric`` field that selects one.

The scorer contract
-------------------

* ``score(graph, edge, tau=..., index=...)`` -- one edge's metric value;
* ``topk(graph, k, tau=..., index=...)`` -- the ranked top-k
  ``[(edge, value), ...]`` with a deterministic, mixed-label-safe
  tie-break;
* ``on_mutation(kind, edge, version)`` / ``on_batch(events, version)``
  -- incremental-maintenance hooks the engine calls after committed
  updates (``on_batch`` once per ``apply_batch``, with the edge list);
* ``warm(graph)`` -- precompute whatever ``topk`` would need; the
  engine's opt-in background warmer calls it after mutations so the
  next query hits a hot table.

``index``, when provided, is the serving layer's
:class:`~repro.core.maintenance.DynamicESDIndex`; the ``esd`` scorer
answers straight from it (bit-identical to the pre-registry serving
path), every other scorer computes from the graph.

Whole-graph score tables (truss numbers, ego-betweenness) are memoized
against ``graph.revision`` in a **single-flight** cache: concurrent
queries hitting a stale revision share one computation (the first
thread computes, the rest wait -- counted in ``memo_waits`` /
``memo_stampedes_avoided``) instead of each recomputing.  The truss
table is additionally maintained **incrementally**: the memo hands the
previous ``(revision, table)`` to the compute function, which re-peels
only the triangle-connected region around the mutated edges
(``truss_repeels``) and falls back to a full decomposition past a delta
threshold (``truss_rebuilds``) -- the same patch-vs-rebuild policy as
``snapshot_csr``.

Adding a metric is ~50 lines: subclass :class:`MetricScorer`, implement
``score``/``topk``, call :func:`register_metric` -- the protocol field,
cache keys, batcher keys, CLI choices, per-metric latency labels and
Prometheus export all follow from the registry.
"""

from __future__ import annotations

import heapq
import threading
import weakref
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analytics.betweenness import (
    all_edge_ego_betweenness,
    edge_betweenness,
    edge_ego_betweenness,
)
from repro.analytics.truss import truss_numbers
from repro.core.diversity import (
    all_edge_structural_diversities,
    edge_structural_diversity,
)
from repro.graph.graph import Edge, Graph, canonical_edge
from repro.graph.ordering import edge_sort_key
from repro.kernels.counters import KERNEL_COUNTERS
from repro.kernels.dispatch import kernels_enabled

__all__ = [
    "DEFAULT_METRIC",
    "TRUSS_DELTA_OPS_LIMIT",
    "MetricScorer",
    "EsdScorer",
    "TrussScorer",
    "EgoBetweennessScorer",
    "BetweennessScorer",
    "CommonNeighborsScorer",
    "register_metric",
    "get_metric",
    "metric_names",
    "scorer_stats",
]

#: The metric every surface defaults to: the paper's index-backed
#: component-count structural diversity.
DEFAULT_METRIC = "esd"

#: Largest changelog (in recorded graph ops) the truss scorer absorbs
#: incrementally before falling back to a full re-peel.  Mirrors
#: ``snapshot_csr``'s ``PATCH_OPS_LIMIT``: past this, walking the delta
#: costs more than it saves.
TRUSS_DELTA_OPS_LIMIT = 128


def rank_edges(
    scores: Dict[Edge, Any], k: int
) -> List[Tuple[Edge, Any]]:
    """Top-k of a whole-graph score table, highest first.

    Ties break on the type-tagged :func:`edge_sort_key`, never the raw
    edge tuple, so mixed ``int``/``str`` vertex labels rank
    deterministically instead of raising ``TypeError``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    # ``nsmallest(k, ...)`` is the documented equivalent of
    # ``sorted(...)[:k]`` (same order, same tie-breaks) at O(m log k)
    # instead of O(m log m) -- the serving layer asks for k of order 10
    # out of every scored edge, so the full sort was the whole cost of
    # a memo-hit topk.
    return heapq.nsmallest(
        k, scores.items(), key=lambda item: (-item[1], edge_sort_key(item[0]))
    )


class _RevisionMemo:
    """One whole-graph score table, valid for one ``(graph, revision)``,
    with single-flight computation.

    A single slot is enough: the serving layer queries one graph, and a
    different graph (or a newer revision) simply recomputes.  The table
    is treated as immutable by all readers.

    When several threads ask for the same stale ``(graph, revision)``,
    exactly one computes -- the rest wait on a condition variable and
    are served the leader's table (``stampedes_avoided``).  The compute
    callable receives ``(graph, prev)`` where ``prev`` is the superseded
    ``(revision, table)`` pair (or ``None``), which is what lets the
    truss scorer patch instead of rebuild.
    """

    __slots__ = (
        "_compute",
        "_cond",
        "_ref",
        "_revision",
        "_table",
        "_inflight",
        "computes",
        "hits",
        "waits",
        "stampedes_avoided",
    )

    def __init__(
        self,
        compute: Callable[
            [Graph, Optional[Tuple[int, Dict[Edge, Any]]]], Dict[Edge, Any]
        ],
    ) -> None:
        self._compute = compute
        self._cond = threading.Condition()
        self._ref: Optional[weakref.ref] = None
        self._revision = -1
        self._table: Optional[Dict[Edge, Any]] = None
        #: ``(id(graph), revision)`` a leader is currently computing for.
        self._inflight: Optional[Tuple[int, int]] = None
        self.computes = 0
        self.hits = 0
        self.waits = 0
        self.stampedes_avoided = 0

    def _valid_for(self, graph: Graph, revision: int) -> bool:
        return (
            self._ref is not None
            and self._ref() is graph
            and self._revision == revision
            and self._table is not None
        )

    def get(self, graph: Graph) -> Dict[Edge, Any]:
        # The revision is captured once; a mutation racing this read
        # surfaces as a fresh revision on the *next* get.
        revision = graph.revision
        with self._cond:
            while True:
                if self._valid_for(graph, revision):
                    self.hits += 1
                    return self._table
                key = (id(graph), revision)
                if self._inflight != key:
                    break
                # A leader is already computing this exact table.
                self.waits += 1
                self._cond.wait()
                if self._valid_for(graph, revision):
                    self.stampedes_avoided += 1
                    return self._table
                # Leader failed or was superseded: loop and re-decide.
            self._inflight = key
            prev = None
            if (
                self._ref is not None
                and self._ref() is graph
                and self._table is not None
            ):
                prev = (self._revision, self._table)
        try:
            self.computes += 1
            table = self._compute(graph, prev)
        except BaseException:
            with self._cond:
                self._inflight = None
                self._cond.notify_all()
            raise
        with self._cond:
            self._inflight = None
            self._ref = weakref.ref(graph)
            self._revision = revision
            self._table = table
            self._cond.notify_all()
        return table

    def invalidate(self) -> None:
        with self._cond:
            self._ref = None
            self._revision = -1
            self._table = None

    def stats(self) -> Dict[str, int]:
        """JSON-ready counters (fed to the ``scorer_memos`` registry source)."""
        return {
            "computes": self.computes,
            "hits": self.hits,
            "waits": self.waits,
            "stampedes_avoided": self.stampedes_avoided,
        }


class MetricScorer:
    """Base class / contract for one pluggable edge metric."""

    #: Registry name; what the ``metric`` protocol field selects.
    name: str = ""
    #: Whether ``tau`` changes this metric's values.  Metrics that
    #: ignore it still accept the parameter (one uniform call surface).
    uses_tau: bool = False

    def score(
        self, graph: Graph, edge: Edge, *, tau: int = 2, index=None
    ) -> Any:
        """The metric value of one edge (0 for an absent edge)."""
        raise NotImplementedError

    def topk(
        self, graph: Graph, k: int, *, tau: int = 2, index=None
    ) -> List[Tuple[Edge, Any]]:
        """Top-k edges, highest metric first, deterministic tie-break."""
        raise NotImplementedError

    def on_mutation(self, kind: str, edge: Edge, version: int) -> None:
        """Incremental-maintenance hook: one committed edge update.

        The default is a no-op; scorers that cache whole-graph tables
        override it to drop them eagerly (revision keying already makes
        stale reuse impossible -- this only reclaims the memory sooner).
        """

    def on_batch(
        self, events: Sequence[Tuple[str, Edge]], version: int
    ) -> None:
        """Batched maintenance hook: one committed ``apply_batch``.

        ``events`` is the ordered ``(kind, edge)`` list of the batch;
        ``version`` is the index version after the whole batch.  The
        default replays :meth:`on_mutation` per event, so scorers only
        override this when they can do better than per-edge handling.
        """
        for kind, edge in events:
            self.on_mutation(kind, edge, version)

    def warm(self, graph: Graph) -> None:
        """Precompute whatever :meth:`topk` needs for ``graph``'s current
        revision.  Default no-op; memoized scorers populate their table
        so the engine's background warmer absorbs the recompute off the
        query path."""

    def describe(self) -> Dict[str, Any]:
        """JSON-ready contract summary (shown by docs/CLI introspection)."""
        return {"name": self.name, "uses_tau": self.uses_tau}


class EsdScorer(MetricScorer):
    """The paper's metric: component-count edge structural diversity.

    With a serving ``index`` this answers straight from the maintained
    :class:`~repro.core.maintenance.DynamicESDIndex` -- the exact call
    the engine made before the registry existed, so ``metric=esd``
    results (values, tie order, dict order) are bit-identical to the
    pre-metric serving path.  Incremental maintenance is the index's own
    Algorithms 4/5; the hook here has nothing left to do.
    """

    name = "esd"
    uses_tau = True

    def score(self, graph, edge, *, tau=2, index=None):
        u, v = edge
        if index is not None:
            return index.index.score((u, v), tau)
        if not graph.has_edge(u, v):
            return 0
        return edge_structural_diversity(graph, u, v, tau)

    def topk(self, graph, k, *, tau=2, index=None):
        if index is not None:
            return index.topk(k, tau)
        return rank_edges(all_edge_structural_diversities(graph, tau), k)


class TrussScorer(MetricScorer):
    """Truss-number strength (Huang/Huang/Xu): the largest ``k`` such
    that the edge survives in the k-truss.  ``tau`` is accepted but does
    not parameterize the decomposition.

    The memoized table is maintained incrementally (kernels mode only):
    on a stale read, the scorer walks ``graph.changes_since(prev)`` and
    re-peels just the triangle-connected region around the mutated
    edges.  Exactness argument: a mutation can only change the truss
    number of edges reachable from the mutated edge through chains of
    *changed* edges sharing triangles, and any edge set closed under
    triangle adjacency is self-contained for peeling (all three edges of
    a triangle are mutually triangle-adjacent) -- so peeling the closure
    as its own subgraph reproduces the global truss numbers for every
    edge in it.  Seeding from all edges incident to the touched vertices
    over-approximates the changed set, which only adds work, never
    error.  Past :data:`TRUSS_DELTA_OPS_LIMIT` changelog entries or once
    the region covers more than half the graph, a full re-peel is
    cheaper (``truss_rebuilds``); the differential trace tests assert
    table equality with from-scratch recompute either way.
    """

    name = "truss"

    def __init__(self) -> None:
        self._memo = _RevisionMemo(self._compute)

    def _compute(self, graph, prev):
        if prev is not None and kernels_enabled():
            table = self._repeel(graph, prev)
            if table is not None:
                KERNEL_COUNTERS.truss_repeels += 1
                return table
        KERNEL_COUNTERS.truss_rebuilds += 1
        return truss_numbers(graph)

    def _repeel(self, graph, prev):
        """Patch ``prev``'s table against the changelog, or ``None`` to
        signal that a full rebuild is the better (or only) option."""
        prev_revision, prev_table = prev
        changes = graph.changes_since(prev_revision)
        if changes is None or len(changes) > TRUSS_DELTA_OPS_LIMIT:
            return None
        table = dict(prev_table)
        touched = set()
        for entry in changes:
            tag = entry[0]
            if tag in ("+e", "-e"):
                touched.add(entry[1])
                touched.add(entry[2])
                if tag == "-e":
                    table.pop(canonical_edge(entry[1], entry[2]), None)
            elif tag == "-v":
                u = entry[1]
                touched.add(u)
                for w in entry[2]:
                    touched.add(w)
                    table.pop(canonical_edge(u, w), None)
            # "+v": an isolated vertex closes no triangle.
        # Re-peel region: every live edge incident to a touched vertex,
        # closed under triangle adjacency.  Re-add surviving popped
        # edges' values via the region peel (they are all seeded).
        region = set()
        stack: List[Edge] = []
        for t in touched:
            if t not in graph:
                continue
            for w in graph.neighbors(t):
                edge = canonical_edge(t, w)
                if edge not in region:
                    region.add(edge)
                    stack.append(edge)
        limit = graph.m // 2
        if len(region) > limit:
            return None
        while stack:
            a, b = stack.pop()
            for w in graph.common_neighbors(a, b):
                for other in (canonical_edge(a, w), canonical_edge(b, w)):
                    if other not in region:
                        region.add(other)
                        stack.append(other)
            if len(region) > limit:
                return None
        if region:
            table.update(truss_numbers(Graph(region)))
        return table

    def score(self, graph, edge, *, tau=2, index=None):
        u, v = edge
        if not graph.has_edge(u, v):
            return 0
        return self._memo.get(graph).get(canonical_edge(u, v), 0)

    def topk(self, graph, k, *, tau=2, index=None):
        return rank_edges(self._memo.get(graph), k)

    def warm(self, graph):
        self._memo.get(graph)

    def on_mutation(self, kind, edge, version):
        """Deliberately keep the table: it is the base the next read
        patches against (revision keying already prevents stale serves)."""


class EgoBetweennessScorer(MetricScorer):
    """Ego-betweenness (Zhang et al.): betweenness restricted to the
    edge's 2-hop neighborhood.  The serving-path betweenness -- per-edge
    local intersection work instead of a global ``O(n m)`` Brandes pass;
    the global variant stays available as ``metric=betweenness_global``.
    """

    name = "betweenness"

    def __init__(self) -> None:
        self._memo = _RevisionMemo(
            lambda graph, prev: all_edge_ego_betweenness(graph)
        )

    def score(self, graph, edge, *, tau=2, index=None):
        # Local by construction: answered directly from the edge's
        # neighborhood, never by building the whole-graph table.
        u, v = edge
        if not graph.has_edge(u, v):
            return 0.0
        return edge_ego_betweenness(graph, u, v)

    def topk(self, graph, k, *, tau=2, index=None):
        return rank_edges(self._memo.get(graph), k)

    def warm(self, graph):
        self._memo.get(graph)

    def on_mutation(self, kind, edge, version):
        self._memo.invalidate()


class BetweennessScorer(MetricScorer):
    """Normalized *global* edge betweenness (Brandes) -- the ``BT``
    baseline the paper's Exp-7/8 case studies rank against.  Exact but
    whole-graph; serve ``metric=betweenness`` (ego-betweenness) on hot
    paths."""

    name = "betweenness_global"

    def __init__(self) -> None:
        self._memo = _RevisionMemo(
            lambda graph, prev: edge_betweenness(graph)
        )

    def score(self, graph, edge, *, tau=2, index=None):
        u, v = edge
        if not graph.has_edge(u, v):
            return 0.0
        return self._memo.get(graph).get(canonical_edge(u, v), 0.0)

    def topk(self, graph, k, *, tau=2, index=None):
        return rank_edges(self._memo.get(graph), k)

    def warm(self, graph):
        self._memo.get(graph)

    def on_mutation(self, kind, edge, version):
        self._memo.invalidate()


class CommonNeighborsScorer(MetricScorer):
    """``|N(u) ∩ N(v)|`` -- the numerator of the paper's common-neighbor
    upper bound, and the classic link-strength baseline."""

    name = "common_neighbors"

    def __init__(self) -> None:
        self._memo = _RevisionMemo(
            lambda graph, prev: {
                canonical_edge(u, v): len(graph.common_neighbors(u, v))
                for u, v in graph.edges()
            }
        )

    def score(self, graph, edge, *, tau=2, index=None):
        # O(min-degree) per edge, straight off the adjacency -- a single
        # score never populates the whole-graph memo.  With kernels
        # enabled the intersection runs on the CSR snapshot (amortized:
        # the snapshot is cached per revision and patched on mutation).
        u, v = edge
        if not graph.has_edge(u, v):
            return 0
        if kernels_enabled():
            from repro.kernels.csr import snapshot_csr
            from repro.kernels.intersect import intersect_count

            csr = snapshot_csr(graph)
            return intersect_count(csr, csr.intern(u), csr.intern(v))
        return len(graph.common_neighbors(u, v))

    def topk(self, graph, k, *, tau=2, index=None):
        return rank_edges(self._memo.get(graph), k)

    def warm(self, graph):
        self._memo.get(graph)

    def on_mutation(self, kind, edge, version):
        self._memo.invalidate()


# -- registry ------------------------------------------------------------------

_REGISTRY: Dict[str, MetricScorer] = {}


def register_metric(scorer: MetricScorer, *, replace: bool = False) -> MetricScorer:
    """Register ``scorer`` under its ``name``; returns it (decorator-ish).

    Names are the protocol-level identifiers, so they must be non-empty
    identifiers; re-registering an existing name requires ``replace``.
    """
    name = scorer.name
    if not isinstance(name, str) or not name.isidentifier():
        raise ValueError(
            f"metric name must be a non-empty identifier, got {name!r}"
        )
    if name in _REGISTRY and not replace:
        raise ValueError(f"metric {name!r} is already registered")
    _REGISTRY[name] = scorer
    return scorer


def get_metric(name: str) -> MetricScorer:
    """The registered scorer for ``name``; ``ValueError`` when unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown metric {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None


def metric_names() -> List[str]:
    """Sorted names of every registered metric."""
    return sorted(_REGISTRY)


def scorer_stats() -> Dict[str, Dict[str, int]]:
    """Per-metric single-flight memo counters, keyed by metric name.

    Only scorers that own a :class:`_RevisionMemo` appear.  Feeds the
    ``scorer_memos`` registry source (``esd_scorer_memos_*`` in the
    Prometheus text).
    """
    out: Dict[str, Dict[str, int]] = {}
    for name in metric_names():
        memo = getattr(_REGISTRY[name], "_memo", None)
        if isinstance(memo, _RevisionMemo):
            out[name] = memo.stats()
    return out


register_metric(EsdScorer())
register_metric(TrussScorer())
register_metric(EgoBetweennessScorer())
register_metric(BetweennessScorer())
register_metric(CommonNeighborsScorer())
