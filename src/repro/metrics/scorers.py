"""Pluggable edge-ranking metrics behind one ``topk(metric=...)`` surface.

The paper's experiments rank edges by component-count structural
diversity, but its case studies (Exp-7/8) and the related work map three
sibling problems onto machinery this repo already has: truss-based
structural diversity (Huang/Huang/Xu -- the k-truss peel in
:mod:`repro.analytics.truss`), top-k ego-betweenness (Zhang et al. --
Brandes' accumulation in :mod:`repro.analytics.betweenness`), and the
common-neighbor count that upper-bounds the paper's score.  This module
serves them all through the same engine/cache/batcher: each metric is a
:class:`MetricScorer` registered by name, and every serving-layer
``topk``/``score`` call carries a ``metric`` field that selects one.

The scorer contract
-------------------

* ``score(graph, edge, tau=..., index=...)`` -- one edge's metric value;
* ``topk(graph, k, tau=..., index=...)`` -- the ranked top-k
  ``[(edge, value), ...]`` with a deterministic, mixed-label-safe
  tie-break;
* ``on_mutation(kind, edge, version)`` -- optional incremental-
  maintenance hook the engine calls after each committed edge update
  (the default drops any cached whole-graph score table).

``index``, when provided, is the serving layer's
:class:`~repro.core.maintenance.DynamicESDIndex`; the ``esd`` scorer
answers straight from it (bit-identical to the pre-registry serving
path), every other scorer computes from the graph.  Whole-graph score
tables (truss numbers, betweenness) are memoized against
``graph.revision`` so a burst of same-version queries decomposes the
graph once.

Adding a metric is ~50 lines: subclass :class:`MetricScorer`, implement
``score``/``topk``, call :func:`register_metric` -- the protocol field,
cache keys, batcher keys, CLI choices, per-metric latency labels and
Prometheus export all follow from the registry.
"""

from __future__ import annotations

import threading
import weakref
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.analytics.betweenness import edge_betweenness
from repro.analytics.truss import truss_numbers
from repro.core.diversity import (
    all_edge_structural_diversities,
    edge_structural_diversity,
)
from repro.graph.graph import Edge, Graph, canonical_edge
from repro.graph.ordering import edge_sort_key

__all__ = [
    "DEFAULT_METRIC",
    "MetricScorer",
    "EsdScorer",
    "TrussScorer",
    "BetweennessScorer",
    "CommonNeighborsScorer",
    "register_metric",
    "get_metric",
    "metric_names",
]

#: The metric every surface defaults to: the paper's index-backed
#: component-count structural diversity.
DEFAULT_METRIC = "esd"


def rank_edges(
    scores: Dict[Edge, Any], k: int
) -> List[Tuple[Edge, Any]]:
    """Top-k of a whole-graph score table, highest first.

    Ties break on the type-tagged :func:`edge_sort_key`, never the raw
    edge tuple, so mixed ``int``/``str`` vertex labels rank
    deterministically instead of raising ``TypeError``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    ranked = sorted(
        scores.items(), key=lambda item: (-item[1], edge_sort_key(item[0]))
    )
    return ranked[:k]


class _RevisionMemo:
    """One whole-graph score table, valid for one ``(graph, revision)``.

    A single slot is enough: the serving layer queries one graph, and a
    different graph (or a newer revision) simply recomputes.  The table
    is treated as immutable by all readers; the lock only guards the
    slot swap, so concurrent readers at the same revision may compute
    twice but never observe a torn entry.
    """

    __slots__ = ("_compute", "_lock", "_ref", "_revision", "_table")

    def __init__(self, compute: Callable[[Graph], Dict[Edge, Any]]) -> None:
        self._compute = compute
        self._lock = threading.Lock()
        self._ref: Optional[weakref.ref] = None
        self._revision = -1
        self._table: Optional[Dict[Edge, Any]] = None

    def get(self, graph: Graph) -> Dict[Edge, Any]:
        with self._lock:
            if (
                self._ref is not None
                and self._ref() is graph
                and self._revision == graph.revision
                and self._table is not None
            ):
                return self._table
        table = self._compute(graph)
        with self._lock:
            self._ref = weakref.ref(graph)
            self._revision = graph.revision
            self._table = table
        return table

    def invalidate(self) -> None:
        with self._lock:
            self._ref = None
            self._revision = -1
            self._table = None


class MetricScorer:
    """Base class / contract for one pluggable edge metric."""

    #: Registry name; what the ``metric`` protocol field selects.
    name: str = ""
    #: Whether ``tau`` changes this metric's values.  Metrics that
    #: ignore it still accept the parameter (one uniform call surface).
    uses_tau: bool = False

    def score(
        self, graph: Graph, edge: Edge, *, tau: int = 2, index=None
    ) -> Any:
        """The metric value of one edge (0 for an absent edge)."""
        raise NotImplementedError

    def topk(
        self, graph: Graph, k: int, *, tau: int = 2, index=None
    ) -> List[Tuple[Edge, Any]]:
        """Top-k edges, highest metric first, deterministic tie-break."""
        raise NotImplementedError

    def on_mutation(self, kind: str, edge: Edge, version: int) -> None:
        """Incremental-maintenance hook: one committed edge update.

        The default is a no-op; scorers that cache whole-graph tables
        override it to drop them eagerly (revision keying already makes
        stale reuse impossible -- this only reclaims the memory sooner).
        """

    def describe(self) -> Dict[str, Any]:
        """JSON-ready contract summary (shown by docs/CLI introspection)."""
        return {"name": self.name, "uses_tau": self.uses_tau}


class EsdScorer(MetricScorer):
    """The paper's metric: component-count edge structural diversity.

    With a serving ``index`` this answers straight from the maintained
    :class:`~repro.core.maintenance.DynamicESDIndex` -- the exact call
    the engine made before the registry existed, so ``metric=esd``
    results (values, tie order, dict order) are bit-identical to the
    pre-metric serving path.  Incremental maintenance is the index's own
    Algorithms 4/5; the hook here has nothing left to do.
    """

    name = "esd"
    uses_tau = True

    def score(self, graph, edge, *, tau=2, index=None):
        u, v = edge
        if index is not None:
            return index.index.score((u, v), tau)
        if not graph.has_edge(u, v):
            return 0
        return edge_structural_diversity(graph, u, v, tau)

    def topk(self, graph, k, *, tau=2, index=None):
        if index is not None:
            return index.topk(k, tau)
        return rank_edges(all_edge_structural_diversities(graph, tau), k)


class TrussScorer(MetricScorer):
    """Truss-number strength (Huang/Huang/Xu): the largest ``k`` such
    that the edge survives in the k-truss.  ``tau`` is accepted but does
    not parameterize the decomposition."""

    name = "truss"

    def __init__(self) -> None:
        self._memo = _RevisionMemo(truss_numbers)

    def score(self, graph, edge, *, tau=2, index=None):
        u, v = edge
        if not graph.has_edge(u, v):
            return 0
        return self._memo.get(graph).get(canonical_edge(u, v), 0)

    def topk(self, graph, k, *, tau=2, index=None):
        return rank_edges(self._memo.get(graph), k)

    def on_mutation(self, kind, edge, version):
        self._memo.invalidate()


class BetweennessScorer(MetricScorer):
    """Normalized edge betweenness (Brandes) -- the ``BT`` baseline the
    paper's Exp-7/8 case studies rank against."""

    name = "betweenness"

    def __init__(self) -> None:
        self._memo = _RevisionMemo(edge_betweenness)

    def score(self, graph, edge, *, tau=2, index=None):
        u, v = edge
        if not graph.has_edge(u, v):
            return 0.0
        return self._memo.get(graph).get(canonical_edge(u, v), 0.0)

    def topk(self, graph, k, *, tau=2, index=None):
        return rank_edges(self._memo.get(graph), k)

    def on_mutation(self, kind, edge, version):
        self._memo.invalidate()


class CommonNeighborsScorer(MetricScorer):
    """``|N(u) ∩ N(v)|`` -- the numerator of the paper's common-neighbor
    upper bound, and the classic link-strength baseline."""

    name = "common_neighbors"

    def score(self, graph, edge, *, tau=2, index=None):
        u, v = edge
        if not graph.has_edge(u, v):
            return 0
        return len(graph.common_neighbors(u, v))

    def topk(self, graph, k, *, tau=2, index=None):
        scores = {
            (u, v): len(graph.common_neighbors(u, v))
            for u, v in graph.edges()
        }
        return rank_edges(scores, k)


# -- registry ------------------------------------------------------------------

_REGISTRY: Dict[str, MetricScorer] = {}


def register_metric(scorer: MetricScorer, *, replace: bool = False) -> MetricScorer:
    """Register ``scorer`` under its ``name``; returns it (decorator-ish).

    Names are the protocol-level identifiers, so they must be non-empty
    identifiers; re-registering an existing name requires ``replace``.
    """
    name = scorer.name
    if not isinstance(name, str) or not name.isidentifier():
        raise ValueError(
            f"metric name must be a non-empty identifier, got {name!r}"
        )
    if name in _REGISTRY and not replace:
        raise ValueError(f"metric {name!r} is already registered")
    _REGISTRY[name] = scorer
    return scorer


def get_metric(name: str) -> MetricScorer:
    """The registered scorer for ``name``; ``ValueError`` when unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown metric {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None


def metric_names() -> List[str]:
    """Sorted names of every registered metric."""
    return sorted(_REGISTRY)


register_metric(EsdScorer())
register_metric(TrussScorer())
register_metric(BetweennessScorer())
register_metric(CommonNeighborsScorer())
