"""repro.obs -- cross-cutting observability for the reproduction.

Four cooperating pieces, all stdlib-only at import time so every layer
(core, service, persistence) can depend on them without cycles:

* :mod:`~repro.obs.trace` -- structured tracing: nestable spans with
  ids/durations/attributes, near-zero overhead when disabled, emitted
  through a pluggable sink.  ``TRACER`` is the process-wide instance
  the built-in instrumentation uses.
* :mod:`~repro.obs.sinks` -- JSONL / collecting / null span sinks.
* :mod:`~repro.obs.registry` -- :class:`UnifiedRegistry`, folding the
  service ``MetricsRegistry`` plus per-component ``stats()`` providers
  and core-layer counters into one metrics document.
* :mod:`~repro.obs.slowlog` -- :class:`SlowQueryLog`, a ring buffer of
  requests over a latency threshold.
* :mod:`~repro.obs.sampler` -- :class:`InvariantSampler`, sampled
  production self-checking of the dynamic index.

``esd profile`` (see :mod:`~repro.obs.profile`) drives one traced
build/query/update/persist cycle and reports per-stage timings from the
real emitted spans.  See docs/OBSERVABILITY.md for the full tour.
"""

from repro.obs.registry import UnifiedRegistry
from repro.obs.sampler import InvariantSampler, InvariantViolation
from repro.obs.sinks import CollectingSink, JsonlSink, NullSink, span_tree
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import TRACER, Span, Tracer

__all__ = [
    "TRACER",
    "Tracer",
    "Span",
    "JsonlSink",
    "CollectingSink",
    "NullSink",
    "span_tree",
    "UnifiedRegistry",
    "SlowQueryLog",
    "InvariantSampler",
    "InvariantViolation",
]
