"""``esd profile``: trace one build / query / update / persist cycle.

Rather than timing stages with ad-hoc stopwatches, the profiler runs the
real code paths with tracing enabled and derives its report *from the
emitted spans* -- the same spans ``esd serve --trace`` produces -- so
the numbers an operator profiles offline are definitionally the numbers
the instrumentation reports online.

The cycle:

1. **build**   -- construct a :class:`DynamicESDIndex` from the graph;
2. **query**   -- ``repeat`` indexed top-k queries plus one online
   (dequeue-twice) run, which also exercises the core counters
   (bound-rule evaluations, heap stale-skips);
3. **update**  -- delete and re-insert ``updates`` existing edges (the
   graph ends bit-identical, the maintenance path is fully exercised);
4. **persist** -- write a snapshot and WAL-append the update batch into
   a throwaway directory.

The report aggregates span durations per stage and per span name and
folds in the core-layer counters through a
:class:`~repro.obs.registry.UnifiedRegistry`.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.registry import UnifiedRegistry
from repro.obs.sinks import CollectingSink
from repro.obs.trace import TRACER, Tracer

__all__ = ["ProfileReport", "profile_cycle"]

#: The stage roots the profiler opens, in execution order.
STAGES = ("build", "query", "update", "persist")


@dataclass
class ProfileReport:
    """Per-stage and per-span timing derived from real emitted spans."""

    n: int = 0
    m: int = 0
    stages: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    span_aggregates: List[Dict[str, Any]] = field(default_factory=list)
    counters: Dict[str, Any] = field(default_factory=dict)
    records: List[Dict[str, Any]] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"esd profile: n={self.n}, m={self.m}"]
        lines.append("")
        lines.append(f"{'stage':<10} {'spans':>6} {'total_ms':>10}")
        for name in STAGES:
            stage = self.stages.get(name)
            if stage is None:
                continue
            lines.append(
                f"{name:<10} {stage['spans']:>6} {stage['total_ms']:>10.2f}"
            )
        lines.append("")
        lines.append(f"{'span':<22} {'count':>6} {'total_ms':>10} {'mean_ms':>9}")
        for agg in self.span_aggregates:
            lines.append(
                f"{agg['name']:<22} {agg['count']:>6} "
                f"{agg['total_ms']:>10.2f} {agg['mean_ms']:>9.3f}"
            )
        lines.append("")
        lines.append("counters:")
        for key in sorted(self.counters):
            lines.append(f"  {key:<28} {self.counters[key]}")
        return "\n".join(lines)


def _aggregate(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Fold span records into per-name (count, total, mean) rows."""
    totals: Dict[str, List[float]] = {}
    for record in records:
        entry = totals.setdefault(record["name"], [0, 0.0])
        entry[0] += 1
        entry[1] += record["duration_ms"]
    return [
        {
            "name": name,
            "count": count,
            "total_ms": round(total, 4),
            "mean_ms": round(total / count, 4) if count else 0.0,
        }
        for name, (count, total) in sorted(
            totals.items(), key=lambda item: -item[1][1]
        )
    ]


def profile_cycle(
    graph,
    *,
    k: int = 10,
    tau: int = 2,
    repeat: int = 5,
    updates: int = 8,
    tracer: Optional[Tracer] = None,
) -> ProfileReport:
    """Run the traced build+query+update+persist cycle on ``graph``.

    Temporarily points ``tracer`` (default: the process tracer) at a
    collecting sink; the previous sink/enabled state is restored on
    exit, so profiling composes with an already-configured tracer.

    The built-in instrumentation (index, WAL, store) emits to the
    process-wide :data:`~repro.obs.trace.TRACER`; passing a private
    tracer therefore captures only the stage roots, not the per-layer
    child spans -- useful for isolated stage totals, nothing more.
    """
    from repro.core.maintenance import DynamicESDIndex
    from repro.core.online import topk_online
    from repro.persistence.store import DataDirectory
    from repro.persistence.wal import WriteAheadLog

    if k < 1 or tau < 1 or repeat < 1 or updates < 0:
        raise ValueError(
            f"invalid profile parameters: k={k}, tau={tau}, "
            f"repeat={repeat}, updates={updates}"
        )
    from repro.kernels.counters import KERNEL_COUNTERS

    tracer = tracer if tracer is not None else TRACER
    sink = CollectingSink()
    previous = (tracer.sink, tracer.enabled)
    kernel_baseline = KERNEL_COUNTERS.snapshot()
    tracer.configure(sink)
    try:
        with tracer.span("profile.build", n=graph.n, m=graph.m):
            dyn = DynamicESDIndex(graph)

        with tracer.span("profile.query", k=k, tau=tau, repeat=repeat):
            for _ in range(repeat):
                dyn.topk(k, tau)
            with tracer.span("online.topk", k=k, tau=tau):
                _, online_stats = topk_online(
                    graph, k, tau, with_stats=True
                )

        edges = dyn.graph.edge_list()[: min(updates, dyn.graph.m)]
        with tracer.span("profile.update", updates=2 * len(edges)):
            for u, v in edges:
                dyn.delete_edge(u, v)
                dyn.insert_edge(u, v)

        with tracer.span("profile.persist", updates=len(edges)):
            with tempfile.TemporaryDirectory(prefix="esd-profile-") as tmp:
                store = DataDirectory(tmp)
                store.write_snapshot(dyn)
                with WriteAheadLog(store.wal_path) as wal:
                    version = dyn.graph_version
                    for offset, (u, v) in enumerate(edges, start=1):
                        wal.append("insert", u, v, version + offset)
    finally:
        prev_sink, prev_enabled = previous
        if prev_sink is None and not prev_enabled:
            tracer.disable()
        else:
            tracer.configure(prev_sink, enabled=prev_enabled)

    records = sink.records
    report = ProfileReport(n=graph.n, m=graph.m, records=records)
    stage_ids: Dict[str, str] = {}
    for record in records:
        name = record["name"]
        if name.startswith("profile."):
            stage = name.split(".", 1)[1]
            stage_ids[record["span_id"]] = stage
            report.stages[stage] = {
                "total_ms": round(record["duration_ms"], 4),
                "spans": 0,
            }
    for record in records:
        stage = stage_ids.get(record.get("trace_id"))
        if stage is not None and not record["name"].startswith("profile."):
            report.stages[stage]["spans"] += 1

    report.span_aggregates = _aggregate(
        [r for r in records if not r["name"].startswith("profile.")]
    )

    registry = UnifiedRegistry()
    counters = dyn.mutation_counters
    registry.add_source(
        "core",
        lambda: {
            "insertions": counters.insertions,
            "deletions": counters.deletions,
            "edges_rescored": counters.edges_rescored,
        },
    )
    registry.add_source(
        "online",
        lambda: {
            "bound_evaluations": online_stats.bound_evaluations,
            "heap_stale_skips": online_stats.heap_stale_skips,
            "evaluated": online_stats.evaluated,
            "pruned": online_stats.pruned,
        },
    )
    # Kernel counters are process-wide cumulative; report only the
    # increments this cycle caused (zero across the board in set mode).
    registry.add_source(
        "kernels",
        lambda: {
            name: value
            for name, value in KERNEL_COUNTERS.delta_since(
                kernel_baseline
            ).items()
            if value
        },
    )
    merged = registry.snapshot()
    for group, values in merged.items():
        for key, value in values.items():
            report.counters[f"{group}.{key}"] = value
    return report
