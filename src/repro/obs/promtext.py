"""Prometheus text-exposition rendering of a metrics snapshot.

:func:`render_prometheus` flattens the nested JSON document produced by
:class:`~repro.obs.registry.UnifiedRegistry` into the Prometheus text
format (version 0.0.4), so any node of the serving tier -- a standalone
``esd serve``, a cluster writer, a replica, or the router -- can be
scraped by an external monitor over the same socket it serves queries
on (``metrics-text`` op, or a literal ``GET /metrics`` request line).

Flattening rules:

* nested dict keys join with ``_`` and are sanitized to the metric-name
  alphabet ``[a-zA-Z0-9_]`` (``p50_ms`` stays ``p50_ms``, ``esd
  serve``-style keys become ``esd_serve``);
* numeric leaves render as ``<prefix>_<path> <value>``; booleans render
  as 0/1 gauges; strings and ``None`` are skipped (Prometheus has no
  text samples);
* lists are skipped wholesale -- ring buffers like the slow-query log
  would otherwise mint an unbounded metric-name space;
* one well-known sub-document gets labels instead of name-mangling: the
  per-endpoint latency table renders as
  ``esd_endpoint_requests{endpoint="topk"} 5`` and friends, which is
  the shape dashboards actually want to aggregate across nodes.
  Endpoint names carrying ``|key=value`` parts (the registries'
  convention for dimensioned series, e.g. ``topk|metric=truss``) render
  those parts as extra labels:
  ``esd_endpoint_requests{endpoint="topk",metric="truss"} 5``.

Rendering never raises on snapshot content: a malformed source value is
skipped, because a scrape must not take the node down (the same
contract :class:`UnifiedRegistry` itself keeps).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "render_prometheus",
    "http_metrics_response",
    "Sample",
    "parse_prometheus",
    "samples_by_name",
]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")

#: The per-endpoint sub-document rendered with labels rather than
#: flattened names (see module docstring).
_ENDPOINTS_KEY = "endpoints"


def _sanitize(part: str) -> str:
    part = _NAME_OK.sub("_", str(part))
    if not part or part[0].isdigit():
        part = "_" + part
    return part


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            return "NaN" if math.isnan(value) else (
                "+Inf" if value > 0 else "-Inf"
            )
        return repr(value)
    return str(value)


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float, bool))


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _endpoint_labels(endpoint: str) -> str:
    """The rendered ``{...}`` label set of one endpoint name.

    Plain names label as ``endpoint="name"``.  Names of the form
    ``name|key=value|...`` (the registries' convention for dimensioned
    series, e.g. ``topk|metric=truss``) split into
    ``endpoint="name",key="value",...`` so dashboards can aggregate and
    slice per metric.  A part that is not a well-formed
    ``identifier=value`` pair falls back to escaping the whole original
    name into the ``endpoint`` label -- rendering never drops a series.
    """
    if "|" not in endpoint:
        return f'endpoint="{_escape_label(endpoint)}"'
    name, *parts = endpoint.split("|")
    pairs: List[Tuple[str, str]] = []
    for part in parts:
        key, sep, value = part.partition("=")
        if not sep or not key.isidentifier() or key == "endpoint" or not value:
            return f'endpoint="{_escape_label(endpoint)}"'
        pairs.append((key, value))
    labels = [f'endpoint="{_escape_label(name)}"']
    labels.extend(
        f'{key}="{_escape_label(value)}"' for key, value in sorted(pairs)
    )
    return ",".join(labels)


def _render_endpoints(
    prefix: str, endpoints: Dict[str, Any], lines: List[str]
) -> None:
    for endpoint in sorted(endpoints):
        stats = endpoints[endpoint]
        if not isinstance(stats, dict):
            continue
        labels = _endpoint_labels(str(endpoint))
        for field in sorted(stats):
            value = stats[field]
            if not _is_number(value):
                continue
            lines.append(
                f"{prefix}_endpoint_{_sanitize(field)}"
                f"{{{labels}}} {_format_value(value)}"
            )


def _walk(prefix: str, node: Any, lines: List[str]) -> None:
    if isinstance(node, dict):
        for key in sorted(node, key=str):
            value = node[key]
            if key == _ENDPOINTS_KEY and isinstance(value, dict):
                _render_endpoints(prefix, value, lines)
            else:
                _walk(f"{prefix}_{_sanitize(key)}", value, lines)
    elif _is_number(node):
        lines.append(f"{prefix} {_format_value(node)}")
    # strings, None, lists: no Prometheus representation -- skip.


def render_prometheus(snapshot: Dict[str, Any], prefix: str = "esd") -> str:
    """Render a metrics snapshot as Prometheus text exposition."""
    lines: List[str] = []
    _walk(_sanitize(prefix), snapshot, lines)
    return "\n".join(lines) + "\n"


# -- parsing ------------------------------------------------------------------
#
# The loadgen harness scrapes ``GET /metrics`` before and after a run
# and folds the deltas into its report, so it needs to read the format
# back.  The parser is deliberately *tolerant*: a scrape consumer must
# not die on one malformed line (comments, future types, exemplars...),
# so anything unparseable is skipped, mirroring the renderer's
# never-raise contract in the other direction.


@dataclass(frozen=True)
class Sample:
    """One parsed exposition line: ``name{labels} value``."""

    name: str
    labels: Tuple[Tuple[str, str], ...]  #: sorted (key, value) pairs
    value: float

    @property
    def labels_dict(self) -> Dict[str, str]:
        return dict(self.labels)


_METRIC_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?\s*$"
)

_LABEL_PAIR = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"(?P<value>(?:\\.|[^"\\])*)"\s*(?:,|$)'
)

_UNESCAPE = {"\\\\": "\\", '\\"': '"', "\\n": "\n"}


def _unescape_label(raw: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(raw):
        pair = raw[i : i + 2]
        if pair in _UNESCAPE:
            out.append(_UNESCAPE[pair])
            i += 2
        else:
            out.append(raw[i])
            i += 1
    return "".join(out)


def _parse_labels(raw: Optional[str]) -> Optional[Tuple[Tuple[str, str], ...]]:
    """Parse the inside of ``{...}``; None when malformed."""
    if raw is None or raw.strip() == "":
        return ()
    pairs: List[Tuple[str, str]] = []
    position = 0
    while position < len(raw):
        match = _LABEL_PAIR.match(raw, position)
        if match is None:
            return None
        pairs.append(
            (match.group("key"), _unescape_label(match.group("value")))
        )
        position = match.end()
    return tuple(sorted(pairs))


def _parse_value(raw: str) -> Optional[float]:
    try:
        return float(raw)  # accepts "+Inf", "-Inf", "NaN" spellings too
    except ValueError:
        return None


def parse_prometheus(text: str) -> List[Sample]:
    """Parse text exposition into samples, skipping what it cannot read.

    Handles label-value escaping (``\\\\``, ``\\"``, ``\\n``), ``+Inf`` /
    ``-Inf`` / ``NaN`` values, optional trailing timestamps, ``# HELP`` /
    ``# TYPE`` comments, and arbitrary garbage lines (skipped).  The
    round trip ``parse_prometheus(render_prometheus(snapshot))`` loses
    nothing the renderer emitted.
    """
    samples: List[Sample] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _METRIC_LINE.match(line)
        if match is None:
            continue
        labels = _parse_labels(match.group("labels"))
        if labels is None:
            continue
        value = _parse_value(match.group("value"))
        if value is None:
            continue
        samples.append(Sample(match.group("name"), labels, value))
    return samples


def samples_by_name(
    samples: List[Sample],
) -> Dict[str, Dict[Tuple[Tuple[str, str], ...], float]]:
    """Index samples as ``name -> {labels: value}`` (later lines win)."""
    table: Dict[str, Dict[Tuple[Tuple[str, str], ...], float]] = {}
    for sample in samples:
        table.setdefault(sample.name, {})[sample.labels] = sample.value
    return table


def http_metrics_response(body: str) -> bytes:
    """Wrap rendered metrics text in a minimal HTTP/1.0 response.

    Lets a stock Prometheus scraper (or ``curl``) hit the JSON-line
    port directly: the servers special-case request lines starting with
    ``GET `` and answer with this instead of a protocol error.
    """
    payload = body.encode("utf-8")
    head = (
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("ascii")
    return head + payload
