"""Unified metrics registry: one snapshot over many metric sources.

Before this module, operational state was scattered: the service's
``MetricsRegistry`` held endpoint latencies and counters, the cache,
batcher, lock and persistence store each had their own ``stats()``, and
the core layer's counters (edges rescored, heap stale-skips, bound-rule
evaluations) were not surfaced at all.  :class:`UnifiedRegistry` folds
them into the single JSON document returned by the ``metrics`` op and
``esd profile``.

A **source** is a named zero-argument callable returning a JSON-ready
value, polled lazily at snapshot time -- registering one costs nothing
on the hot path.  A source that raises contributes an ``{"error": ...}``
stanza instead of poisoning the whole snapshot (a metrics scrape must
never take the service down).

This module is duck-typed on purpose: the wrapped ``metrics`` object
only needs ``snapshot()``/``incr()``, so there is no import edge from
``repro.obs`` to ``repro.service``.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Optional

__all__ = ["UnifiedRegistry"]

#: A metric source: no arguments, JSON-ready return value.
Source = Callable[[], Any]


class UnifiedRegistry:
    """Compose a base metrics registry with named snapshot sources."""

    def __init__(self, metrics=None) -> None:
        self._metrics = metrics
        self._lock = threading.Lock()
        self._sources: Dict[str, Source] = {}

    @property
    def metrics(self):
        """The wrapped base registry (``None`` if standalone)."""
        return self._metrics

    def add_source(self, name: str, source: Source) -> None:
        """Register ``source`` under ``name`` (replacing any previous one).

        The name becomes a top-level key of :meth:`snapshot`; it must not
        collide with the base registry's own keys.
        """
        if not callable(source):
            raise TypeError(f"source {name!r} must be callable, got {source!r}")
        with self._lock:
            self._sources[name] = source

    def remove_source(self, name: str) -> bool:
        """Deregister ``name``; returns whether it existed."""
        with self._lock:
            return self._sources.pop(name, None) is not None

    def incr(self, counter: str, amount: int = 1) -> None:
        """Forward to the base registry's counter (no-op when standalone)."""
        if self._metrics is not None:
            self._metrics.incr(counter, amount)

    def snapshot(self) -> Dict[str, Any]:
        """One merged, JSON-ready metrics document.

        Base-registry keys first (endpoints, counters, uptime), then one
        key per registered source.  Sources run outside the registry
        lock so a slow provider cannot block registration.
        """
        base: Dict[str, Any] = (
            dict(self._metrics.snapshot()) if self._metrics is not None else {}
        )
        with self._lock:
            sources = list(self._sources.items())
        for name, source in sources:
            try:
                base[name] = source()
            except Exception as exc:  # a scrape must never fail whole
                base[name] = {"error": f"{type(exc).__name__}: {exc}"}
        return base
