"""Invariant sampling: production self-checking for the dynamic index.

``DynamicESDIndex.check_invariants()`` exists as a testing hook, but a
full check recomputes every edge's ego-network -- far too expensive for
a serve loop.  :class:`InvariantSampler` turns it into something a
production service can afford: every ``every`` successful mutations it
draws a deterministic pseudo-random sample of live edges and verifies,
for each, that the maintained ``M`` structure still matches a
from-scratch recomputation (component-size multiset *and* membership,
the same two assertions the full check makes per edge).

A detected mismatch is recorded -- never raised by default -- because a
monitoring probe must not take down the write path; the serve loop
surfaces ``violations`` through the ``metrics`` op where an operator
(or an alert) can see it.  ``strict=True`` opts into raising, which the
tests use.

Cost model: one check touches ``sample_size`` ego-networks, so with
``every=N`` the amortized overhead per mutation is ``sample_size / N``
ego-network BFS runs -- tunable to arbitrarily cheap.
"""

from __future__ import annotations

import random
import threading
from typing import Any, Dict, List, Optional

__all__ = ["InvariantSampler", "InvariantViolation"]


class InvariantViolation(AssertionError):
    """A sampled edge's maintained state diverged from recomputation."""

    def __init__(self, edge, reason: str) -> None:
        super().__init__(f"invariant violation on edge {edge}: {reason}")
        self.edge = edge
        self.reason = reason


class InvariantSampler:
    """Run sampled invariant checks every ``every`` mutations."""

    def __init__(
        self,
        dyn,
        *,
        every: int,
        sample_size: int = 8,
        seed: int = 0x5EED,
        strict: bool = False,
    ) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        if sample_size < 1:
            raise ValueError(f"sample_size must be >= 1, got {sample_size}")
        self._dyn = dyn
        self.every = every
        self.sample_size = sample_size
        self.strict = strict
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._since = 0
        self.checks = 0
        self.edges_checked = 0
        self.violations: List[Dict[str, Any]] = []
        self.last_check_version: Optional[int] = None

    # -- serve-loop hook ---------------------------------------------------

    def on_mutation(self, version: int) -> bool:
        """Count one mutation; run a sampled check when the period elapses.

        Called from the index's mutation hook, i.e. under the writer's
        exclusive lock -- the sampled state cannot move underneath the
        check.  Returns whether a check ran.
        """
        with self._lock:
            self._since += 1
            if self._since < self.every:
                return False
            self._since = 0
        self.check_now(version)
        return True

    def check_now(self, version: Optional[int] = None) -> int:
        """Check a fresh sample immediately; returns edges verified.

        Raises :class:`InvariantViolation` on a mismatch in strict mode;
        otherwise records it in :attr:`violations` (bounded to the most
        recent 32) and keeps going.
        """
        # Local import: repro.obs must stay import-cycle-free with core.
        from repro.core.diversity import ego_component_sizes

        graph = self._dyn.graph
        edges = graph.edge_list()
        if not edges:
            self.checks += 1
            self.last_check_version = (
                version if version is not None else self._dyn.graph_version
            )
            return 0
        sample = self._rng.sample(edges, min(self.sample_size, len(edges)))
        checked = 0
        for u, v in sample:
            checked += 1
            self.edges_checked += 1
            m = self._dyn.components_of((u, v))
            expected_sizes = sorted(ego_component_sizes(graph, u, v))
            actual_sizes = sorted(m.component_sizes())
            if actual_sizes != expected_sizes:
                self._record(
                    (u, v),
                    f"component sizes {actual_sizes} != expected {expected_sizes}",
                    version,
                )
                continue
            expected_members = graph.common_neighbors(u, v)
            if set(m.members()) != expected_members:
                self._record(
                    (u, v),
                    f"members {sorted(m.members())} != "
                    f"expected {sorted(expected_members)}",
                    version,
                )
        self.checks += 1
        self.last_check_version = (
            version if version is not None else self._dyn.graph_version
        )
        return checked

    def _record(self, edge, reason: str, version: Optional[int]) -> None:
        violation = {
            "edge": list(edge),
            "reason": reason,
            "graph_version": (
                version if version is not None else self._dyn.graph_version
            ),
        }
        with self._lock:
            self.violations.append(violation)
            del self.violations[:-32]
        if self.strict:
            raise InvariantViolation(edge, reason)

    # -- reporting ---------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        """JSON-ready stanza for the unified metrics document."""
        with self._lock:
            return {
                "enabled": True,
                "every": self.every,
                "sample_size": self.sample_size,
                "strict": self.strict,
                "checks": self.checks,
                "edges_checked": self.edges_checked,
                "violations": len(self.violations),
                "recent_violations": list(self.violations[-5:]),
                "last_check_version": self.last_check_version,
            }
