"""Span sinks: where finished spans go.

A sink is anything with an ``emit(record: dict)`` method (or any plain
callable).  Three implementations cover the built-in needs:

* :class:`JsonlSink` -- one JSON object per line to a file or stream;
  the on-disk interchange format (``esd serve --trace``,
  ``esd profile --trace-out``).
* :class:`CollectingSink` -- in-memory buffer; powers ``esd profile``'s
  per-stage breakdown and the tracing tests.
* :class:`NullSink` -- counts and drops; for overhead measurements.
"""

from __future__ import annotations

import json
import sys
import threading
from typing import Any, Dict, List, Optional

__all__ = ["JsonlSink", "CollectingSink", "NullSink", "span_tree"]


class JsonlSink:
    """Append spans as JSON lines to a path or an open text stream.

    Writes are serialized under a lock (spans finish on many threads)
    and flushed per record so a crash loses at most the span being
    written -- the same durability posture as the WAL's logging, minus
    the fsync (traces are diagnostics, not data).
    """

    def __init__(self, target) -> None:
        self._lock = threading.Lock()
        if isinstance(target, (str, bytes)) or hasattr(target, "__fspath__"):
            self._stream = open(target, "a", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self.emitted = 0

    def emit(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            self._stream.write(line + "\n")
            self._stream.flush()
            self.emitted += 1

    def close(self) -> None:
        with self._lock:
            if self._owns_stream and not self._stream.closed:
                self._stream.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def stderr_sink() -> JsonlSink:
    """A :class:`JsonlSink` over ``sys.stderr`` (``--trace -``)."""
    return JsonlSink(sys.stderr)


class CollectingSink:
    """Keep every span record in memory (optionally bounded)."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        self._lock = threading.Lock()
        self._records: List[Dict[str, Any]] = []
        self.capacity = capacity
        self.dropped = 0

    def emit(self, record: Dict[str, Any]) -> None:
        with self._lock:
            if self.capacity is not None and len(self._records) >= self.capacity:
                self.dropped += 1
                return
            self._records.append(record)

    @property
    def records(self) -> List[Dict[str, Any]]:
        """Snapshot copy of the collected spans (emission order)."""
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


class NullSink:
    """Count spans, keep nothing -- for measuring tracing overhead."""

    def __init__(self) -> None:
        self.emitted = 0

    def emit(self, record: Dict[str, Any]) -> None:
        self.emitted += 1


def span_tree(records: List[Dict[str, Any]]) -> Dict[Optional[str], List[Dict[str, Any]]]:
    """Index span records by ``parent_id`` (``None`` keys the roots).

    A convenience for tests and report code walking emitted spans:
    ``tree[None]`` are the roots, ``tree[span["span_id"]]`` its children.
    """
    tree: Dict[Optional[str], List[Dict[str, Any]]] = {}
    for record in records:
        tree.setdefault(record.get("parent_id"), []).append(record)
    return tree
