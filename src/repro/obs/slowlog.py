"""Slow-query log: a bounded ring of the worst recent requests.

Latency percentiles say *that* the tail is bad; the slow-query log says
*which requests* were in it.  Every endpoint observation above the
threshold is recorded into a fixed-capacity ring buffer (oldest entries
fall off), exposed over the service's ``metrics`` op, so an operator can
see the offending endpoint, duration and context without any external
tooling.

The hot path pays one float comparison per request when the log is
enabled and nothing is slow; recording takes a short critical section.
A threshold of ``0`` disables the log entirely.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List

__all__ = ["SlowQueryLog"]


class SlowQueryLog:
    """Ring buffer of requests slower than ``threshold`` seconds."""

    def __init__(self, threshold: float = 0.25, capacity: int = 128) -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.threshold = threshold
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._recorded = 0  # total ever recorded, ring may have dropped some

    @property
    def enabled(self) -> bool:
        return self.threshold > 0

    def record(
        self, endpoint: str, seconds: float, error: bool = False, **detail: Any
    ) -> bool:
        """Log the request if it crossed the threshold; return whether it did.

        Signature-compatible with the ``MetricsRegistry`` observation
        hook, so one log can shadow every timed endpoint.
        """
        if not self.enabled or seconds < self.threshold:
            return False
        entry: Dict[str, Any] = {
            "ts": round(time.time(), 3),
            "endpoint": endpoint,
            "duration_ms": round(seconds * 1000.0, 3),
        }
        if error:
            entry["error"] = True
        if detail:
            entry["detail"] = detail
        with self._lock:
            self._ring.append(entry)
            self._recorded += 1
        return True

    def entries(self) -> List[Dict[str, Any]]:
        """The retained entries, oldest first (a snapshot copy)."""
        with self._lock:
            return list(self._ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready stanza for the unified metrics document."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "threshold_ms": round(self.threshold * 1000.0, 3),
                "capacity": self.capacity,
                "recorded": self._recorded,
                "entries": list(self._ring),
            }
