"""Lightweight structured tracing: nestable spans over a pluggable sink.

The model is a cut-down version of the OpenTelemetry span: a **span** is
one timed operation with a name, a few key/value attributes, a unique
id, and a parent id linking it into a per-thread tree.  The root span of
a tree carries a fresh ``trace_id`` that all descendants share, so a
single request can be followed through the layers it touches (engine ->
batcher -> cache -> index -> WAL).

Design constraints, in priority order:

1. **Near-zero overhead when disabled.**  Tracing is off by default;
   ``Tracer.span`` then returns a shared no-op context manager before
   looking at its arguments, so an instrumented hot path costs one
   attribute read and one method call per span site.
2. **No inter-layer imports.**  This module depends only on the standard
   library; core, service and persistence all import *it*, never the
   other way around, so instrumentation cannot introduce import cycles.
3. **Pluggable output.**  Finished spans are emitted as plain dicts to a
   **sink** -- any callable or object with an ``emit(dict)`` method (see
   :mod:`repro.obs.sinks` for JSONL, collecting and null sinks).

Spans nest through a thread-local stack: a span opened while another is
active on the same thread becomes its child.  Cross-thread hand-offs
(a batch follower waiting on the leader's execution) intentionally start
separate trees -- the leader's tree contains the shared index work.

Usage::

    from repro.obs.trace import TRACER

    with TRACER.span("index.topk", k=k, tau=tau) as span:
        ...
        span.set(results=len(out))

``TRACER`` is the process-wide default tracer used by all built-in
instrumentation; tests may build private :class:`Tracer` instances.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Dict, List, Optional

__all__ = ["Span", "Tracer", "TRACER", "NullSpan"]


class NullSpan:
    """Do-nothing stand-in returned by a disabled tracer.

    Supports the full :class:`Span` surface so call sites never branch
    on whether tracing is enabled.
    """

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        return None

    @property
    def enabled(self) -> bool:
        return False


#: Shared instance handed out by every disabled ``span()`` call.
_NULL_SPAN = NullSpan()


class Span:
    """One live, timed operation; emitted to the sink when it closes."""

    __slots__ = (
        "_tracer", "name", "span_id", "parent_id", "trace_id",
        "attrs", "started_at", "_start", "duration_ms", "error",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = tracer._next_id()
        self.parent_id: Optional[str] = None
        self.trace_id: Optional[str] = None
        self.started_at = 0.0
        self._start = 0.0
        self.duration_ms = 0.0
        self.error: Optional[str] = None

    @property
    def enabled(self) -> bool:
        return True

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        if stack:
            parent = stack[-1]
            self.parent_id = parent.span_id
            self.trace_id = parent.trace_id
        else:
            self.trace_id = self.span_id
        stack.append(self)
        self.started_at = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration_ms = (time.perf_counter() - self._start) * 1000.0
        if exc_type is not None:
            self.error = f"{exc_type.__name__}: {exc}"
        stack = self._tracer._stack()
        # The span may close on a different nesting level after an
        # exception unwound intermediate frames; pop down to (and
        # including) this span rather than assuming it is on top.
        while stack:
            if stack.pop() is self:
                break
        self._tracer._emit(self.to_dict())
        return None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready image of the finished span (one JSONL record)."""
        record = {
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "ts": round(self.started_at, 6),
            "duration_ms": round(self.duration_ms, 4),
        }
        if self.attrs:
            record["attrs"] = self.attrs
        if self.error is not None:
            record["error"] = self.error
        return record


class Tracer:
    """Span factory bound to one sink; disabled unless configured.

    Thread-safe: spans may be opened concurrently from many threads;
    each thread keeps its own nesting stack.
    """

    def __init__(self) -> None:
        self._enabled = False
        self._sink = None
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._id_lock = threading.Lock()
        self.spans_emitted = 0
        self.emit_errors = 0

    # -- configuration -----------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    @property
    def sink(self):
        return self._sink

    def configure(self, sink, *, enabled: bool = True) -> None:
        """Attach ``sink`` (callable or ``.emit(dict)`` object) and enable."""
        if sink is None and enabled:
            raise ValueError("cannot enable tracing without a sink")
        self._sink = sink
        self._enabled = enabled

    def disable(self) -> None:
        """Turn tracing off; the sink is detached (close it yourself)."""
        self._enabled = False
        self._sink = None

    def status(self) -> Dict[str, Any]:
        """Introspection for the unified metrics snapshot."""
        return {
            "enabled": self._enabled,
            "sink": type(self._sink).__name__ if self._sink is not None else None,
            "spans_emitted": self.spans_emitted,
            "emit_errors": self.emit_errors,
        }

    # -- span creation -----------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Open a span named ``name``; a context manager either way.

        The disabled fast path returns a shared :class:`NullSpan`
        without allocating anything.
        """
        if not self._enabled:
            return _NULL_SPAN
        return Span(self, name, attrs)

    # -- internals ---------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_id(self) -> str:
        with self._id_lock:
            return f"{next(self._ids):012x}"

    def _emit(self, record: Dict[str, Any]) -> None:
        sink = self._sink
        if sink is None:
            return
        try:
            emit = getattr(sink, "emit", None)
            if emit is not None:
                emit(record)
            else:
                sink(record)
            self.spans_emitted += 1
        except Exception:
            # A broken sink must never take down the traced operation.
            self.emit_errors += 1


#: Process-wide default tracer used by the built-in instrumentation.
TRACER = Tracer()
