"""Durable persistence: snapshots, write-ahead logging, crash recovery.

The modules compose bottom-up:

=============  =========================================================
``errors``     structured exception taxonomy (corrupt / missing / gap)
``format``     magic + versioned + per-section-CRC32 container framing
``snapshot``   one durable image of a :class:`DynamicESDIndex`
``wal``        append-only mutation log with torn-tail detection
``store``      :class:`DataDirectory` -- recovery path + compaction
``faults``     fault injection: crash points and file manglers
``fsck``       offline data-directory validation (``esd fsck``)
=============  =========================================================

Durability contract: a mutation is acknowledged only after its WAL
record is fsynced, so ``load snapshot -> replay WAL tail`` after any
crash restores every acknowledged mutation; at most the in-flight,
unacknowledged one is lost (as a torn tail, truncated on recovery).
Recovery either reproduces the exact state a clean rebuild would give
or raises a structured error -- it never silently serves wrong scores.
See ``docs/PERSISTENCE.md``.
"""

from repro.persistence.errors import (
    CorruptSnapshotError,
    CorruptWALError,
    InjectedCrash,
    MissingSnapshotError,
    PersistenceError,
    RecoveryError,
)
from repro.persistence.faults import FaultInjector
from repro.persistence.fsck import FsckReport, fsck_data_dir
from repro.persistence.snapshot import read_snapshot, write_snapshot
from repro.persistence.store import DataDirectory, RecoveryReport
from repro.persistence.wal import WALRecord, WriteAheadLog, scan_wal

__all__ = [
    "PersistenceError",
    "CorruptSnapshotError",
    "CorruptWALError",
    "MissingSnapshotError",
    "RecoveryError",
    "InjectedCrash",
    "FaultInjector",
    "DataDirectory",
    "RecoveryReport",
    "WriteAheadLog",
    "WALRecord",
    "scan_wal",
    "read_snapshot",
    "write_snapshot",
    "fsck_data_dir",
    "FsckReport",
]
