"""Structured error types for the durability layer.

Every failure mode recovery can hit maps to one exception class, and
every instance carries a machine-readable ``details`` dict alongside the
human message.  The contract (tested by the crash-recovery suite) is:
recovery either restores a state identical to a clean rebuild, or raises
one of these -- it never silently serves wrong scores.

``InjectedCrash`` deliberately subclasses :class:`BaseException` so that
fault-injection "crashes" tear through ``except Exception`` handlers the
same way a real ``kill -9`` would skip them.
"""

from __future__ import annotations

from typing import Any, Dict


class PersistenceError(Exception):
    """Base class: a message plus structured ``details``."""

    def __init__(self, message: str, **details: Any) -> None:
        super().__init__(message)
        self.message = message
        self.details: Dict[str, Any] = details

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form, used by ``esd fsck`` reports."""
        return {
            "error": type(self).__name__,
            "message": self.message,
            "details": self.details,
        }

    def __str__(self) -> str:
        if not self.details:
            return self.message
        extras = ", ".join(f"{k}={v!r}" for k, v in sorted(self.details.items()))
        return f"{self.message} ({extras})"


class CorruptSnapshotError(PersistenceError):
    """A snapshot file failed magic/version/CRC/structure validation."""


class CorruptWALError(PersistenceError):
    """A WAL record that is fully present failed its checksum or parse.

    Distinct from a *torn tail* (the file ends mid-record), which is the
    expected signature of a crash during append and is tolerated: the
    tail is truncated and reported, never an exception.
    """


class MissingSnapshotError(PersistenceError):
    """The data directory has no snapshot and no bootstrap graph was given."""


class RecoveryError(PersistenceError):
    """Snapshot and WAL are individually valid but mutually inconsistent.

    Examples: a version gap between the snapshot and the first WAL record
    to replay, or a WAL record whose precondition does not hold against
    the recovered graph (inserting an edge that is already present).
    """


class InjectedCrash(BaseException):
    """A simulated ``kill -9`` raised by a :class:`~repro.persistence.faults.FaultInjector`.

    BaseException on purpose: production code that catches ``Exception``
    must not be able to swallow an injected crash, otherwise the fault
    tests would exercise a code path no real crash takes.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"injected crash at {point!r}")
        self.point = point
