"""Deliberate fault injection for the durability layer.

Two complementary toolkits live here:

* :class:`FaultInjector` -- *in-process crash simulation*.  Production
  code calls ``injector.check("point")`` at named checkpoints; a test
  arms a point and the next pass through it raises
  :class:`~repro.persistence.errors.InjectedCrash` (a ``BaseException``,
  so nothing short of the test harness catches it -- like ``kill -9``
  landing between two syscalls).  Checkpoints currently wired in:

  ========================  =========================================
  ``wal.append.before``     crash before any bytes of a record land
  ``wal.append.partial``    half a record lands, then crash (torn)
  ``wal.append.after``      record durable, mutation never applied
  ``snapshot.after_tmp``    temp snapshot written, not yet renamed
  ``snapshot.after_replace``  snapshot renamed, WAL not yet compacted
  ========================  =========================================

* File manglers -- *post-hoc byte surgery* on real files, for the fault
  modes a crash cannot produce (bit rot, partial page loss): tearing a
  WAL tail, flipping payload bytes so CRCs fail.

Both exist so the crash-recovery tests exercise the same code paths a
real failure would, not mocks of them.
"""

from __future__ import annotations

import os
from typing import List, Set

from repro.persistence import wal as wal_format
from repro.persistence.errors import InjectedCrash

__all__ = [
    "FaultInjector",
    "InjectedCrash",
    "tear_wal_tail",
    "flip_byte",
    "corrupt_wal_record",
    "corrupt_snapshot_section",
]


class FaultInjector:
    """Named crash points, armed per test, observed in production code."""

    def __init__(self) -> None:
        self._armed: Set[str] = set()
        self.visited: List[str] = []

    def crash_at(self, point: str) -> "FaultInjector":
        """Arm ``point``; the next :meth:`check` there raises. Chainable."""
        self._armed.add(point)
        return self

    def disarm(self, point: str) -> None:
        self._armed.discard(point)

    def armed(self, point: str) -> bool:
        return point in self._armed

    def check(self, point: str) -> None:
        """Record the visit; crash if the point is armed (one-shot)."""
        self.visited.append(point)
        if point in self._armed:
            self._armed.discard(point)
            raise InjectedCrash(point)


# -- file manglers ----------------------------------------------------------


def tear_wal_tail(path, keep_fraction: float = 0.5) -> int:
    """Truncate the final WAL record mid-payload; returns bytes removed.

    Produces exactly the on-disk state of a crash during the last
    append.  Raises ``ValueError`` if the log holds no records.
    """
    report = wal_format.scan_wal(path)
    if not report.records:
        raise ValueError(f"WAL at {path} has no records to tear")
    size = os.path.getsize(path)
    last_record = report.records[-1].encode()
    record_start = size - len(last_record)
    keep = record_start + max(1, int(len(last_record) * keep_fraction))
    with open(path, "r+b") as handle:
        handle.truncate(keep)
    return size - keep


def flip_byte(path, offset: int) -> None:
    """XOR one byte of ``path`` at ``offset`` (negative = from the end)."""
    with open(path, "r+b") as handle:
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
        if offset < 0:
            offset += size
        if not 0 <= offset < size:
            raise ValueError(f"offset {offset} outside file of {size} bytes")
        handle.seek(offset)
        original = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([original[0] ^ 0xFF]))


def corrupt_wal_record(path, index: int = -1) -> None:
    """Flip a payload byte of one *fully written* record (CRC will fail)."""
    report = wal_format.scan_wal(path)
    if not report.records:
        raise ValueError(f"WAL at {path} has no records to corrupt")
    records = report.records
    if index < 0:
        index += len(records)
    if not 0 <= index < len(records):
        raise ValueError(f"record index {index} out of range")
    # Walk the framing to the target record's payload.
    offset = wal_format._HEADER.size
    with open(path, "rb") as handle:
        data = handle.read()
    for i in range(len(records)):
        length, _crc = wal_format._RECORD.unpack_from(data, offset)
        payload_at = offset + wal_format._RECORD.size
        if i == index:
            flip_byte(path, payload_at)
            return
        offset = payload_at + length


def corrupt_snapshot_section(path, tag: bytes) -> None:
    """Flip the first payload byte of section ``tag`` in a container file."""
    from repro.persistence import format as container

    with open(path, "rb") as handle:
        data = handle.read()
    offset = container._HEADER.size
    while offset < len(data):
        sec_tag, length, _crc = container._SECTION.unpack_from(data, offset)
        payload_at = offset + container._SECTION.size
        if sec_tag == tag:
            if length == 0:
                raise ValueError(f"section {tag!r} is empty")
            flip_byte(path, payload_at)
            return
        offset = payload_at + length
    raise ValueError(f"no section {tag!r} in {path}")
