"""The on-disk container format: magic header + checksummed sections.

Every durable artifact (index files, data-directory snapshots) shares
one framing so a single validator covers them all::

    offset  size  field
    ------  ----  -----------------------------------------------------
    0       8     magic  b"ESDBIN\\r\\n"  (the \\r\\n catches text-mode
                  transfer mangling, PNG-style)
    8       4     container format version, big-endian u32
    then, repeated until EOF, one *section* per logical payload:
    +0      4     section tag, 4 ASCII bytes (e.g. b"META")
    +4      8     payload length in bytes, big-endian u64
    +12     4     CRC32 of the payload, big-endian u32
    +16     len   payload bytes

The first section of every container must be ``META``: a canonical JSON
object carrying at least ``{"kind": ...}`` so readers can reject a file
of the wrong kind with a precise error instead of a section mismatch.

Payloads are canonical JSON (sorted keys, compact separators, UTF-8) so
that identical logical state always produces identical bytes -- the
golden-file test relies on this determinism, and any format change must
come with a :data:`FORMAT_VERSION` bump.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any, Dict, List, Tuple

from repro.persistence.errors import CorruptSnapshotError

MAGIC = b"ESDBIN\r\n"
FORMAT_VERSION = 1

_HEADER = struct.Struct(">8sI")
_SECTION = struct.Struct(">4sQI")

META_TAG = b"META"


def encode_json(obj: Any) -> bytes:
    """Canonical JSON bytes: sorted keys, no whitespace, UTF-8."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("ascii")


def crc32(payload: bytes) -> int:
    return zlib.crc32(payload) & 0xFFFFFFFF


def encode_container(kind: str, sections: List[Tuple[bytes, bytes]]) -> bytes:
    """Serialize ``sections`` (ordered ``(tag, payload)`` pairs) to bytes.

    A ``META`` section with ``{"kind": kind, "sections": [...]}`` is
    prepended automatically; it names the remaining tags in order so a
    truncated file is detectable even when the cut falls exactly on a
    section boundary.
    """
    for tag, _ in sections:
        if len(tag) != 4:
            raise ValueError(f"section tag must be 4 bytes, got {tag!r}")
        if tag == META_TAG:
            raise ValueError("META is written automatically")
    meta = encode_json(
        {
            "kind": kind,
            "format_version": FORMAT_VERSION,
            "sections": [tag.decode("ascii") for tag, _ in sections],
        }
    )
    out = [_HEADER.pack(MAGIC, FORMAT_VERSION)]
    for tag, payload in [(META_TAG, meta)] + list(sections):
        out.append(_SECTION.pack(tag, len(payload), crc32(payload)))
        out.append(payload)
    return b"".join(out)


def decode_container(
    data: bytes, *, expect_kind: str, path: Any = None
) -> Dict[bytes, bytes]:
    """Parse and fully validate a container; return ``{tag: payload}``.

    Raises :class:`CorruptSnapshotError` (with structured details) on bad
    magic, unsupported version, truncation, checksum mismatch, duplicate
    or missing sections, or a ``kind`` other than ``expect_kind``.
    """
    where = {"path": str(path)} if path is not None else {}
    if len(data) < _HEADER.size:
        raise CorruptSnapshotError(
            "file too short for container header", size=len(data), **where
        )
    magic, version = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise CorruptSnapshotError(
            "bad magic bytes", expected=MAGIC.hex(), actual=magic.hex(), **where
        )
    if version != FORMAT_VERSION:
        raise CorruptSnapshotError(
            "unsupported container format version",
            supported=FORMAT_VERSION,
            actual=version,
            **where,
        )
    sections: Dict[bytes, bytes] = {}
    offset = _HEADER.size
    while offset < len(data):
        if offset + _SECTION.size > len(data):
            raise CorruptSnapshotError(
                "truncated section header", offset=offset, **where
            )
        tag, length, expected_crc = _SECTION.unpack_from(data, offset)
        offset += _SECTION.size
        payload = data[offset : offset + length]
        if len(payload) != length:
            raise CorruptSnapshotError(
                "truncated section payload",
                section=tag.decode("ascii", "replace"),
                expected_bytes=length,
                actual_bytes=len(payload),
                **where,
            )
        actual_crc = crc32(payload)
        if actual_crc != expected_crc:
            raise CorruptSnapshotError(
                "section checksum mismatch",
                section=tag.decode("ascii", "replace"),
                expected_crc=f"{expected_crc:08x}",
                actual_crc=f"{actual_crc:08x}",
                **where,
            )
        if tag in sections:
            raise CorruptSnapshotError(
                "duplicate section", section=tag.decode("ascii", "replace"), **where
            )
        sections[tag] = payload
        offset += length

    if META_TAG not in sections:
        raise CorruptSnapshotError("missing META section", **where)
    try:
        meta = json.loads(sections[META_TAG])
    except ValueError as exc:
        raise CorruptSnapshotError(
            "META section is not valid JSON", reason=str(exc), **where
        ) from None
    if not isinstance(meta, dict) or meta.get("kind") != expect_kind:
        raise CorruptSnapshotError(
            "container kind mismatch",
            expected=expect_kind,
            actual=meta.get("kind") if isinstance(meta, dict) else None,
            **where,
        )
    declared = meta.get("sections", [])
    present = [t.decode("ascii", "replace") for t in sections if t != META_TAG]
    if sorted(declared) != sorted(present):
        raise CorruptSnapshotError(
            "declared sections do not match file contents",
            declared=declared,
            present=present,
            **where,
        )
    return sections


def read_container(path, *, expect_kind: str) -> Dict[bytes, bytes]:
    """Read and validate a container file (see :func:`decode_container`)."""
    with open(path, "rb") as handle:
        data = handle.read()
    return decode_container(data, expect_kind=expect_kind, path=path)


def json_section(sections: Dict[bytes, bytes], tag: bytes, path=None) -> Any:
    """Decode one section's payload as JSON with a structured error."""
    where = {"path": str(path)} if path is not None else {}
    if tag not in sections:
        raise CorruptSnapshotError(
            "missing required section",
            section=tag.decode("ascii", "replace"),
            **where,
        )
    try:
        return json.loads(sections[tag])
    except ValueError as exc:
        raise CorruptSnapshotError(
            "section payload is not valid JSON",
            section=tag.decode("ascii", "replace"),
            reason=str(exc),
            **where,
        ) from None
