"""Offline validation of a data directory (``esd fsck``).

Shallow checks (always run) validate what can be validated without
rebuilding anything: container framing, per-section CRCs, snapshot
cross-consistency, WAL framing/checksums, and the version contiguity
between snapshot and WAL.  A torn WAL tail is a *warning* (recovery
handles it by design); everything else wrong is an *error*.

``deep=True`` additionally performs a full dress rehearsal of recovery:
restore the index, replay the WAL, run the paper-level invariant checker
(:meth:`DynamicESDIndex.check_invariants`), and compare top-k answers
against a from-scratch :func:`build_index_fast` rebuild of the recovered
graph across several ``(k, τ)`` pairs -- the same oracle the
property-based differential harness uses.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.persistence.errors import PersistenceError, RecoveryError
from repro.persistence.snapshot import read_snapshot
from repro.persistence.store import SNAPSHOT_NAME, WAL_NAME, replay_records
from repro.persistence.wal import scan_wal

#: ``(k, τ)`` pairs the deep check compares against a fresh rebuild.
DEEP_CHECK_QUERIES = ((1, 1), (5, 1), (10, 2), (3, 3), (25, 4))


@dataclass
class FsckIssue:
    severity: str  #: "error" or "warning"
    code: str
    message: str
    details: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        return f"[{self.severity}] {self.code}: {self.message}"


@dataclass
class FsckReport:
    path: str
    issues: List[FsckIssue] = field(default_factory=list)
    snapshot_version: Optional[int] = None
    wal_records: int = 0
    replayable_records: int = 0
    final_version: Optional[int] = None
    deep_checked: bool = False

    @property
    def errors(self) -> List[FsckIssue]:
        return [i for i in self.issues if i.severity == "error"]

    @property
    def warnings(self) -> List[FsckIssue]:
        return [i for i in self.issues if i.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def add(self, severity: str, code: str, message: str, **details) -> None:
        self.issues.append(FsckIssue(severity, code, message, details))

    def render(self) -> str:
        lines = [f"fsck {self.path}"]
        lines.append(
            f"  snapshot: version={self.snapshot_version} "
            f"wal_records={self.wal_records} "
            f"replayable={self.replayable_records}"
        )
        if self.final_version is not None:
            lines.append(f"  recovered version: {self.final_version}")
        for issue in self.issues:
            lines.append("  " + issue.render())
        verdict = "clean" if self.ok else "CORRUPT"
        if self.ok and self.warnings:
            verdict = "clean (with warnings)"
        if self.deep_checked and self.ok:
            verdict += ", deep check passed"
        lines.append(f"  verdict: {verdict}")
        return "\n".join(lines)


def fsck_data_dir(path, *, deep: bool = False) -> FsckReport:
    """Validate a data directory; never raises for findable problems."""
    report = FsckReport(path=str(path))
    if not os.path.isdir(path):
        report.add("error", "no_data_dir", f"not a directory: {path}")
        return report
    snapshot_path = os.path.join(path, SNAPSHOT_NAME)
    wal_path = os.path.join(path, WAL_NAME)

    state = None
    if not os.path.exists(snapshot_path):
        report.add(
            "error", "missing_snapshot", "no snapshot.esd in data directory"
        )
    else:
        try:
            state = read_snapshot(snapshot_path)
            report.snapshot_version = state["graph_version"]
        except PersistenceError as exc:
            report.add(
                "error", "corrupt_snapshot", exc.message, **exc.details
            )

    scan = None
    if not os.path.exists(wal_path):
        report.add(
            "warning", "missing_wal", "no wal.log (clean if just snapshotted)"
        )
    else:
        try:
            scan = scan_wal(wal_path)
            report.wal_records = len(scan.records)
            if scan.torn:
                report.add(
                    "warning",
                    "torn_wal_tail",
                    "WAL ends mid-record (crash during append); recovery "
                    "will truncate it",
                    torn_bytes=scan.torn_tail_bytes,
                )
        except PersistenceError as exc:
            report.add("error", "corrupt_wal", exc.message, **exc.details)

    if state is not None and scan is not None:
        snap_version = state["graph_version"]
        expected = snap_version + 1
        replayable = 0
        for record in scan.records:
            if record.version <= snap_version:
                if replayable:
                    report.add(
                        "error",
                        "wal_version_regression",
                        "record version went backwards mid-log",
                        record_version=record.version,
                    )
                    break
                continue
            if record.version != expected:
                report.add(
                    "error",
                    "wal_version_gap",
                    "WAL does not continue contiguously from the snapshot",
                    expected=expected,
                    record_version=record.version,
                )
                break
            expected += 1
            replayable += 1
        report.replayable_records = replayable

    if deep and report.ok and state is not None:
        _deep_check(report, state, scan)
    return report


def _deep_check(report: FsckReport, state, scan) -> None:
    """Rebuild-and-compare: the strongest (and slowest) verification."""
    from repro.core.build import build_index_fast
    from repro.core.maintenance import DynamicESDIndex

    try:
        dyn = DynamicESDIndex.from_state(state)
        if scan is not None:
            replay_records(dyn, scan.records)
        report.final_version = dyn.graph_version
        dyn.check_invariants()
    except RecoveryError as exc:
        report.add("error", "replay_failed", exc.message, **exc.details)
        return
    except AssertionError as exc:
        report.add(
            "error",
            "invariant_violation",
            f"recovered index failed invariant checks: {exc}",
        )
        return
    fresh = build_index_fast(dyn.graph)
    for k, tau in DEEP_CHECK_QUERIES:
        recovered = dyn.topk(k, tau)
        rebuilt = fresh.topk(k, tau)
        if recovered != rebuilt:
            report.add(
                "error",
                "topk_mismatch",
                "recovered index disagrees with a fresh rebuild",
                k=k,
                tau=tau,
                recovered=recovered[:5],
                rebuilt=rebuilt[:5],
            )
    report.deep_checked = True
