"""Snapshot encoding: one durable image of a :class:`DynamicESDIndex`.

A snapshot stores exactly the state the dynamic index cannot cheaply
recompute: the graph itself and the per-edge ego-network component
*partitions* (the paper's ``M`` structures).  From those, the ESDIndex
is bulk-loaded in ``O(α m log m)`` on restore -- skipping the 4-clique
enumeration that dominates a cold build, which is the whole point of
persisting (§IV: the index exists to amortize construction).

Container layout (see :mod:`repro.persistence.format` for framing):

=======  ==============================================================
``STAT``  ``{"graph_version", "insertions", "deletions", "n", "m"}``
``VERT``  sorted vertex list (isolated vertices would be lost from the
          edge list alone)
``EDGE``  sorted canonical edge list, each ``[u, v]``
``COMP``  per-edge component groups, aligned index-for-index with
          ``EDGE``: entry *i* is a list of sorted member lists
          partitioning ``N(u_i v_i)``
=======  ==============================================================

Vertices must round-trip through JSON (ints / strings); this matches
the service protocol's constraint, so anything servable is snapshotable.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.persistence.errors import CorruptSnapshotError
from repro.persistence.format import (
    decode_container,
    encode_container,
    encode_json,
    json_section,
)

SNAPSHOT_KIND = "esd-datadir-snapshot"


def encode_snapshot(state: Dict[str, Any]) -> bytes:
    """Serialize an exported dynamic-index state to container bytes."""
    stat = {
        "graph_version": state["graph_version"],
        "insertions": state["insertions"],
        "deletions": state["deletions"],
        "n": len(state["vertices"]),
        "m": len(state["edges"]),
    }
    return encode_container(
        SNAPSHOT_KIND,
        [
            (b"STAT", encode_json(stat)),
            (b"VERT", encode_json(state["vertices"])),
            (b"EDGE", encode_json(state["edges"])),
            (b"COMP", encode_json(state["components"])),
        ],
    )


def write_snapshot(path, state: Dict[str, Any], *, fsync: bool = True) -> int:
    """Write a snapshot file; returns the byte size written.

    Callers wanting atomicity write to a temp name and ``os.replace``
    (that is what :class:`~repro.persistence.store.DataDirectory` does).
    """
    data = encode_snapshot(state)
    with open(path, "wb") as handle:
        handle.write(data)
        handle.flush()
        if fsync:
            import os

            os.fsync(handle.fileno())
    return len(data)


def csr_from_state(state: Dict[str, Any]):
    """CSR snapshot of a decoded state, without materializing a ``Graph``.

    The restore fast path for nodes that need an id-space view of the
    snapshot -- a replica publishing the shared CSR segment, or a
    restored index seeding its maintenance kernel: the state dict's
    ``vertices``/``edges`` sections feed
    :meth:`~repro.kernels.csr.CSRGraph.from_edgelist` directly.  The
    result is identical to ``CSRGraph.from_graph`` on the restored
    graph.
    """
    from repro.kernels.csr import CSRGraph

    return CSRGraph.from_edgelist(
        state["vertices"], (tuple(edge) for edge in state["edges"])
    )


def read_snapshot(path) -> Dict[str, Any]:
    """Read + validate a snapshot file; return the state dict."""
    with open(path, "rb") as handle:
        data = handle.read()
    return decode_snapshot(data, path=path)


def decode_snapshot(data: bytes, *, path=None) -> Dict[str, Any]:
    """Validate snapshot bytes (file or wire) and return the state dict.

    Beyond the framing checks, cross-validates the section contents
    against each other (counts, alignment, canonical edge form) so a
    *logically* inconsistent snapshot fails loudly here rather than as a
    mystery during replay.  The replication path
    (:mod:`repro.cluster.replication`) ships these same bytes to
    replicas, so a snapshot that survives this function is loadable
    whether it arrived from disk or from the writer.
    """
    sections = decode_container(data, expect_kind=SNAPSHOT_KIND, path=path)
    stat = json_section(sections, b"STAT", path)
    vertices = json_section(sections, b"VERT", path)
    edges = json_section(sections, b"EDGE", path)
    components = json_section(sections, b"COMP", path)

    for field in ("graph_version", "insertions", "deletions", "n", "m"):
        if not isinstance(stat.get(field), int) or stat[field] < 0:
            raise CorruptSnapshotError(
                "STAT field missing or invalid", field=field,
                value=stat.get(field), path=str(path),
            )
    if len(vertices) != stat["n"]:
        raise CorruptSnapshotError(
            "vertex count mismatch", declared=stat["n"],
            actual=len(vertices), path=str(path),
        )
    if len(edges) != stat["m"]:
        raise CorruptSnapshotError(
            "edge count mismatch", declared=stat["m"],
            actual=len(edges), path=str(path),
        )
    if len(components) != len(edges):
        raise CorruptSnapshotError(
            "COMP/EDGE misalignment", edges=len(edges),
            components=len(components), path=str(path),
        )
    vertex_set = set(vertices)
    for i, pair in enumerate(edges):
        if not isinstance(pair, list) or len(pair) != 2:
            raise CorruptSnapshotError(
                "malformed edge entry", index=i, entry=pair, path=str(path)
            )
        u, v = pair
        if u not in vertex_set or v not in vertex_set or not u < v:
            raise CorruptSnapshotError(
                "edge is not canonical over the vertex set",
                index=i, entry=pair, path=str(path),
            )
    return {
        "graph_version": stat["graph_version"],
        "insertions": stat["insertions"],
        "deletions": stat["deletions"],
        "vertices": vertices,
        "edges": [tuple(pair) for pair in edges],
        "components": components,
    }
