"""The data directory: snapshot + WAL + the recovery path that joins them.

Layout of ``--data-dir``::

    snapshot.esd       latest durable snapshot (atomic tmp+rename)
    snapshot.esd.tmp   in-flight snapshot write (ignored by recovery)
    wal.log            mutations since (and possibly before) the snapshot

Recovery (`DataDirectory.open`) is ``load snapshot -> replay WAL tail ->
verify graph_version``:

1. read + validate the snapshot, restore the
   :class:`~repro.core.maintenance.DynamicESDIndex` without rebuilding;
2. scan the WAL; records with ``ver <= snapshot_version`` predate the
   snapshot (a crash between snapshot rename and WAL compaction leaves
   them behind) and are skipped; the rest must be contiguous,
   ``ver == current + 1`` each, and applicable -- anything else raises
   :class:`~repro.persistence.errors.RecoveryError`;
3. after each applied record the live ``graph_version`` must equal the
   record's ``ver`` (self-verifying replay);
4. a torn WAL tail is truncated and reported -- at most the final
   unacknowledged mutation is lost, never an acknowledged one (appends
   fsync before the mutation is applied or acked).

Compaction: ``maybe_compact``/``compact`` write a fresh snapshot
atomically *first*, then reset the WAL.  A crash between the two steps
is safe by construction (step 2 above skips the stale records).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.maintenance import DynamicESDIndex
from repro.graph.graph import Graph
from repro.obs.trace import TRACER
from repro.persistence.errors import (
    MissingSnapshotError,
    RecoveryError,
)
from repro.persistence.faults import FaultInjector
from repro.persistence.snapshot import read_snapshot, encode_snapshot
from repro.persistence.wal import WriteAheadLog, scan_wal, truncate_torn_tail

SNAPSHOT_NAME = "snapshot.esd"
SNAPSHOT_TMP_NAME = "snapshot.esd.tmp"
WAL_NAME = "wal.log"


@dataclass
class RecoveryReport:
    """What :meth:`DataDirectory.open` did, for logs and assertions."""

    bootstrapped: bool = False
    snapshot_version: int = 0
    records_replayed: int = 0
    records_skipped: int = 0  #: pre-snapshot records left by a crash
    torn_tail_truncated_bytes: int = 0
    final_version: int = 0
    notes: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bootstrapped": self.bootstrapped,
            "snapshot_version": self.snapshot_version,
            "records_replayed": self.records_replayed,
            "records_skipped": self.records_skipped,
            "torn_tail_truncated_bytes": self.torn_tail_truncated_bytes,
            "final_version": self.final_version,
            "notes": list(self.notes),
        }


def replay_records(dyn: DynamicESDIndex, records, *, wal_path=None) -> Tuple[int, int]:
    """Apply a scanned record sequence to ``dyn``; return (replayed, skipped).

    Shared by recovery and ``fsck --deep``.  Raises
    :class:`RecoveryError` on version gaps, inapplicable mutations, or a
    post-apply version mismatch.
    """
    where = {"wal": str(wal_path)} if wal_path is not None else {}
    replayed = skipped = 0
    for record in records:
        if record.version <= dyn.graph_version:
            if replayed:
                raise RecoveryError(
                    "WAL version went backwards mid-replay",
                    record_version=record.version,
                    live_version=dyn.graph_version,
                    **where,
                )
            skipped += 1
            continue
        if record.version != dyn.graph_version + 1:
            raise RecoveryError(
                "version gap between snapshot and WAL",
                expected=dyn.graph_version + 1,
                record_version=record.version,
                **where,
            )
        try:
            if record.op == "insert":
                dyn.insert_edge(record.u, record.v)
            else:
                dyn.delete_edge(record.u, record.v)
        except (ValueError, KeyError) as exc:
            raise RecoveryError(
                "WAL record not applicable to recovered state",
                op=record.op,
                edge=[record.u, record.v],
                record_version=record.version,
                reason=str(exc),
                **where,
            ) from None
        if dyn.graph_version != record.version:
            raise RecoveryError(
                "graph_version diverged from WAL during replay",
                expected=record.version,
                actual=dyn.graph_version,
                **where,
            )
        replayed += 1
    return replayed, skipped


class DataDirectory:
    """Owns one data directory's files and its open WAL appender."""

    def __init__(
        self,
        path,
        *,
        fsync: bool = True,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.path = str(path)
        self._fsync = fsync
        self.faults = faults
        self.wal: Optional[WriteAheadLog] = None
        self.snapshots_written = 0
        self.last_snapshot_version = 0
        os.makedirs(self.path, exist_ok=True)

    # -- paths ---------------------------------------------------------------

    @property
    def snapshot_path(self) -> str:
        return os.path.join(self.path, SNAPSHOT_NAME)

    @property
    def snapshot_tmp_path(self) -> str:
        return os.path.join(self.path, SNAPSHOT_TMP_NAME)

    @property
    def wal_path(self) -> str:
        return os.path.join(self.path, WAL_NAME)

    def has_snapshot(self) -> bool:
        return os.path.exists(self.snapshot_path)

    # -- recovery ------------------------------------------------------------

    def open(
        self, bootstrap_graph: Optional[Graph] = None
    ) -> Tuple[DynamicESDIndex, RecoveryReport]:
        """Recover (or bootstrap) the index and open the WAL for appends."""
        report = RecoveryReport()
        if not self.has_snapshot():
            leftover = scan_wal(self.wal_path)
            if leftover.records:
                raise RecoveryError(
                    "WAL present but snapshot missing; refusing to guess "
                    "the base state",
                    wal_records=len(leftover.records),
                    path=self.path,
                )
            if bootstrap_graph is None:
                raise MissingSnapshotError(
                    "data directory has no snapshot and no bootstrap "
                    "graph was provided",
                    path=self.path,
                )
            dyn = DynamicESDIndex(bootstrap_graph)
            self.write_snapshot(dyn)
            report.bootstrapped = True
            report.notes.append("bootstrapped from provided graph")
        else:
            state = read_snapshot(self.snapshot_path)
            dyn = DynamicESDIndex.from_state(state)
            report.snapshot_version = state["graph_version"]
            self.last_snapshot_version = state["graph_version"]
            scan = scan_wal(self.wal_path)
            if scan.torn:
                report.torn_tail_truncated_bytes = truncate_torn_tail(
                    self.wal_path, scan
                )
                report.notes.append(
                    f"truncated torn WAL tail "
                    f"({report.torn_tail_truncated_bytes} bytes)"
                )
            replayed, skipped = replay_records(
                dyn, scan.records, wal_path=self.wal_path
            )
            report.records_replayed = replayed
            report.records_skipped = skipped
        # Clean up an interrupted snapshot write, if any.
        if os.path.exists(self.snapshot_tmp_path):
            os.remove(self.snapshot_tmp_path)
            report.notes.append("removed stale snapshot temp file")
        self.wal = WriteAheadLog(
            self.wal_path, fsync=self._fsync, faults=self.faults
        )
        report.final_version = dyn.graph_version
        return dyn, report

    # -- durability operations -------------------------------------------------

    def append_wal(self, op: str, u, v, version: int) -> None:
        """Durably log a mutation *before* it is applied to the index."""
        if self.wal is None:
            raise RuntimeError("DataDirectory is not open")
        self.wal.append(op, u, v, version)

    def write_snapshot(self, dyn: DynamicESDIndex) -> int:
        """Atomically replace the snapshot with the current state."""
        with TRACER.span(
            "store.snapshot", version=dyn.graph_version
        ) as span:
            data = encode_snapshot(dyn.export_state())
            span.set(bytes=len(data))
            with open(self.snapshot_tmp_path, "wb") as handle:
                handle.write(data)
                handle.flush()
                if self._fsync:
                    os.fsync(handle.fileno())
            if self.faults is not None:
                self.faults.check("snapshot.after_tmp")
            os.replace(self.snapshot_tmp_path, self.snapshot_path)
            if self._fsync:
                dir_fd = os.open(self.path, os.O_RDONLY)
                try:
                    os.fsync(dir_fd)
                finally:
                    os.close(dir_fd)
            if self.faults is not None:
                self.faults.check("snapshot.after_replace")
            self.snapshots_written += 1
            self.last_snapshot_version = dyn.graph_version
            return len(data)

    def compact(self, dyn: DynamicESDIndex) -> int:
        """Snapshot the current state, then truncate the WAL."""
        with TRACER.span("store.compact", version=dyn.graph_version):
            size = self.write_snapshot(dyn)
            if self.wal is not None:
                self.wal.reset()
            return size

    def stats(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "snapshots_written": self.snapshots_written,
            "last_snapshot_version": self.last_snapshot_version,
            "wal_appends": self.wal.appended if self.wal else 0,
            "wal_bytes": self.wal.size_bytes() if self.wal else 0,
            "fsync": self._fsync,
        }

    def close(self) -> None:
        if self.wal is not None:
            self.wal.close()
            self.wal = None

    def __enter__(self) -> "DataDirectory":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
