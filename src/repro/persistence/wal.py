"""Append-only write-ahead log of edge mutations.

File layout::

    offset  size  field
    ------  ----  ------------------------------------------
    0       8     magic b"ESDWALOG"
    8       4     WAL format version, big-endian u32
    then, per record:
    +0      4     payload length, big-endian u32
    +4      4     CRC32 of the payload, big-endian u32
    +8      len   payload: canonical JSON
                  {"op": "insert"|"delete", "u":..., "v":..., "ver": n}

``ver`` is the :attr:`~repro.core.maintenance.DynamicESDIndex.graph_version`
the mutation *produces*, which makes replay self-verifying: after
applying a record the live version must equal ``ver`` exactly.

Failure taxonomy (the distinction the whole recovery design hangs on):

* **torn tail** -- the file ends mid-record.  This is the expected
  debris of a crash during ``append`` and is *not* an error: the scan
  reports the last good offset so recovery can truncate and continue.
  Only the final, unacknowledged mutation can be lost.
* **corruption** -- a record is fully present but its checksum or JSON
  fails.  That means bytes changed after a successful write (bit rot,
  bad disk, tampering); trusting anything after it would be guessing,
  so the scan raises :class:`CorruptWALError`.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.obs.trace import TRACER
from repro.persistence.errors import CorruptWALError

MAGIC = b"ESDWALOG"
FORMAT_VERSION = 1

_HEADER = struct.Struct(">8sI")
_RECORD = struct.Struct(">II")

#: Upper bound on one record's payload; a length beyond this cannot come
#: from :meth:`WriteAheadLog.append` and is classified as corruption.
MAX_RECORD_BYTES = 1 << 20

VALID_OPS = ("insert", "delete")


@dataclass(frozen=True)
class WALRecord:
    """One logged mutation."""

    op: str
    u: Any
    v: Any
    version: int

    def encode(self) -> bytes:
        payload = json.dumps(
            {"op": self.op, "u": self.u, "v": self.v, "ver": self.version},
            sort_keys=True,
            separators=(",", ":"),
            ensure_ascii=True,
        ).encode("ascii")
        return _RECORD.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF) + payload


@dataclass
class WALScanReport:
    """Outcome of scanning a WAL file."""

    records: List[WALRecord] = field(default_factory=list)
    valid_bytes: int = 0  #: offset just past the last intact record
    torn_tail_bytes: int = 0  #: trailing bytes belonging to a torn record

    @property
    def torn(self) -> bool:
        return self.torn_tail_bytes > 0


def _parse_payload(payload: bytes, offset: int, path) -> WALRecord:
    try:
        obj = json.loads(payload)
    except ValueError as exc:
        raise CorruptWALError(
            "WAL record payload is not valid JSON",
            offset=offset, reason=str(exc), path=str(path),
        ) from None
    if (
        not isinstance(obj, dict)
        or obj.get("op") not in VALID_OPS
        or "u" not in obj
        or "v" not in obj
        or not isinstance(obj.get("ver"), int)
    ):
        raise CorruptWALError(
            "WAL record payload has invalid shape",
            offset=offset, payload=obj, path=str(path),
        )
    return WALRecord(op=obj["op"], u=obj["u"], v=obj["v"], version=obj["ver"])


def scan_wal(path) -> WALScanReport:
    """Read every intact record; detect a torn tail; raise on corruption.

    Raises :class:`CorruptWALError` for a bad header or any fully-present
    record that fails validation.  A missing file scans as empty.
    """
    report = WALScanReport()
    if not os.path.exists(path):
        return report
    with open(path, "rb") as handle:
        data = handle.read()
    if not data:
        return report
    if len(data) < _HEADER.size:
        # Even the header did not make it to disk: torn at file birth.
        report.torn_tail_bytes = len(data)
        return report
    magic, version = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise CorruptWALError(
            "bad WAL magic", expected=MAGIC.hex(), actual=magic.hex(),
            path=str(path),
        )
    if version != FORMAT_VERSION:
        raise CorruptWALError(
            "unsupported WAL format version",
            supported=FORMAT_VERSION, actual=version, path=str(path),
        )
    offset = _HEADER.size
    report.valid_bytes = offset
    while offset < len(data):
        if offset + _RECORD.size > len(data):
            report.torn_tail_bytes = len(data) - offset
            break
        length, expected_crc = _RECORD.unpack_from(data, offset)
        if length > MAX_RECORD_BYTES:
            raise CorruptWALError(
                "WAL record length is implausible",
                offset=offset, length=length, path=str(path),
            )
        start = offset + _RECORD.size
        payload = data[start : start + length]
        if len(payload) < length:
            report.torn_tail_bytes = len(data) - offset
            break
        actual_crc = zlib.crc32(payload) & 0xFFFFFFFF
        if actual_crc != expected_crc:
            raise CorruptWALError(
                "WAL record checksum mismatch",
                offset=offset,
                expected_crc=f"{expected_crc:08x}",
                actual_crc=f"{actual_crc:08x}",
                path=str(path),
            )
        report.records.append(_parse_payload(payload, offset, path))
        offset = start + length
        report.valid_bytes = offset
    return report


def truncate_torn_tail(path, report: WALScanReport) -> int:
    """Chop a torn tail off in place; returns bytes removed."""
    if not report.torn:
        return 0
    with open(path, "r+b") as handle:
        handle.truncate(report.valid_bytes)
        handle.flush()
        os.fsync(handle.fileno())
    return report.torn_tail_bytes


class WriteAheadLog:
    """Appender side of the WAL (reading goes through :func:`scan_wal`).

    ``fsync=True`` (the default) makes every acknowledged mutation
    durable at the cost of one fsync per append; ``fsync=False`` trades
    the tail of the log for throughput (crash may lose recent acks).

    ``faults`` accepts a :class:`~repro.persistence.faults.FaultInjector`;
    the append path exposes the crash points ``wal.append.before``,
    ``wal.append.partial`` (half the record reaches the file -- a real
    torn write) and ``wal.append.after``.
    """

    def __init__(self, path, *, fsync: bool = True, faults=None) -> None:
        self.path = path
        self._fsync = fsync
        self._faults = faults
        self.appended = 0
        fresh = not os.path.exists(path) or os.path.getsize(path) == 0
        self._file = open(path, "ab")
        if fresh:
            self._file.write(_HEADER.pack(MAGIC, FORMAT_VERSION))
            self._sync()

    def _sync(self) -> None:
        self._file.flush()
        if self._fsync:
            with TRACER.span("wal.fsync"):
                os.fsync(self._file.fileno())

    def append(self, op: str, u: Any, v: Any, version: int) -> WALRecord:
        """Durably append one mutation record *before* it is applied."""
        if op not in VALID_OPS:
            raise ValueError(f"op must be one of {VALID_OPS}, got {op!r}")
        record = WALRecord(op=op, u=u, v=v, version=version)
        encoded = record.encode()
        with TRACER.span(
            "wal.append", op=op, version=version, bytes=len(encoded)
        ):
            if self._faults is not None:
                self._faults.check("wal.append.before")
                if self._faults.armed("wal.append.partial"):
                    self._file.write(encoded[: len(encoded) // 2])
                    self._sync()
                    self._faults.check("wal.append.partial")
            self._file.write(encoded)
            self._sync()
            if self._faults is not None:
                self._faults.check("wal.append.after")
        self.appended += 1
        return record

    def reset(self) -> None:
        """Truncate to a fresh header (post-snapshot compaction)."""
        self._file.close()
        self._file = open(self.path, "wb")
        self._file.write(_HEADER.pack(MAGIC, FORMAT_VERSION))
        self._sync()

    def size_bytes(self) -> int:
        self._file.flush()
        return os.path.getsize(self.path)

    def close(self) -> None:
        if not self._file.closed:
            self._sync()
            self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
