"""Serving layer: a concurrent top-k query service over one shared index.

The modules compose bottom-up:

=================  =======================================================
``rwlock``         write-preferring readers-writer lock (snapshot reads)
``cache``          LRU result cache keyed by ``(k, τ, graph_version)``
``batcher``        coalesces concurrent topk queries into one index pass
``metrics``        per-endpoint counters and latency quantiles
``engine``         :class:`QueryEngine` -- the transport-independent core
``protocol``       JSON line framing, envelopes, error codes
``server``         :class:`ESDServer` -- threaded TCP + admission control
``client``         :class:`ServiceClient` -- blocking line-protocol client
``verify``         offline audit of recorded responses vs fresh recompute
=================  =======================================================

Start a server programmatically::

    from repro.service import ESDServer, ServerConfig

    server = ESDServer(graph, ServerConfig(port=7031)).start()
    host, port = server.address

or from the shell with ``esd serve``; see ``docs/SERVICE.md``.
"""

from repro.service.batcher import TopKBatcher
from repro.service.cache import ResultCache
from repro.service.client import ServiceClient, ServiceError, wait_until_ready
from repro.service.engine import QueryEngine
from repro.service.metrics import MetricsRegistry, percentile
from repro.service.protocol import ProtocolError
from repro.service.rwlock import RWLock
from repro.service.server import ESDServer, ServerConfig

__all__ = [
    "ESDServer",
    "ServerConfig",
    "QueryEngine",
    "ServiceClient",
    "ServiceError",
    "wait_until_ready",
    "TopKBatcher",
    "ResultCache",
    "MetricsRegistry",
    "percentile",
    "RWLock",
    "ProtocolError",
]
