"""Request batching: coalesce concurrent top-k queries into one index pass.

Under concurrent load many clients ask for the same or similar
``(metric, k, τ)`` at the same graph version.  The batcher turns a burst
of concurrent ``submit`` calls into a single execution:

* the first caller in an idle batcher becomes the **leader**: it waits
  ``window`` seconds for followers to pile in, then drains the pending
  set and runs ``execute`` once over all distinct ``(metric, k, τ)``
  keys (the engine runs that under a single read-lock acquisition -- one
  index pass);
* every other caller (a **follower**) parks on its key's event and wakes
  with the shared result;
* duplicate keys within a batch are answered by one computation
  (single-flight), so a thundering herd of identical queries costs one
  ``topk`` regardless of herd size.

``window = 0`` degenerates to pure single-flight: no deliberate delay,
but queries that arrive while a batch is executing still coalesce into
the next one.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Hashable, List, Tuple

from repro.obs.trace import TRACER


def _per_waiter_error(exc: BaseException) -> BaseException:
    """A fresh exception instance for one waiter to raise.

    A failed batch is observed by *every* waiter concurrently; raising
    the one shared instance from each waiter thread made the threads
    race on ``exc.__traceback__`` (every ``raise`` rewrites it), so a
    traceback captured in one thread could show frames from another.
    Each waiter gets its own copy instead, chained to the original via
    ``__cause__`` so nothing about the root failure is lost.
    """
    try:
        copy = type(exc)(*exc.args)
    except Exception:
        # Exotic constructor signature: fall back to a plain wrapper.
        copy = RuntimeError(f"{type(exc).__name__}: {exc}")
    copy.__cause__ = exc
    return copy


class _Pending:
    """One distinct key awaited by one or more callers."""

    __slots__ = ("event", "result", "error", "waiters")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None
        self.waiters = 0


class TopKBatcher:
    """Window-based coalescer; see module docstring.

    ``execute`` receives the list of distinct pending keys and must
    return ``{key: result}`` covering all of them.
    """

    def __init__(
        self,
        execute: Callable[[List[Hashable]], Dict[Hashable, Any]],
        window: float = 0.002,
    ) -> None:
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        self._execute = execute
        self.window = window
        self._lock = threading.Lock()
        self._pending: Dict[Hashable, _Pending] = {}
        self._leader_active = False
        # accounting
        self.batches = 0
        self.requests = 0
        self.coalesced = 0
        self.largest_batch = 0

    def submit(self, key: Hashable, timeout: float = 60.0) -> Tuple[Any, int]:
        """Submit ``key``; return ``(result, batch_requests)``.

        ``batch_requests`` is the number of requests answered by the
        batch this key rode in (1 = no coalescing happened).
        """
        with self._lock:
            entry = self._pending.get(key)
            if entry is None:
                entry = _Pending()
                self._pending[key] = entry
            entry.waiters += 1
            self.requests += 1
            lead = not self._leader_active
            if lead:
                self._leader_active = True
        with TRACER.span(
            "batcher.submit", role="leader" if lead else "follower"
        ) as span:
            if lead:
                self._run_batch()
            if not entry.event.wait(timeout):
                raise TimeoutError(f"batched query timed out after {timeout}s")
            if entry.error is not None:
                raise _per_waiter_error(entry.error)
            span.set(batch_requests=entry.result[1])
            return entry.result

    def _run_batch(self) -> None:
        if self.window:
            time.sleep(self.window)
        with self._lock:
            batch = self._pending
            self._pending = {}
            self._leader_active = False
            batch_requests = sum(e.waiters for e in batch.values())
            self.batches += 1
            self.coalesced += batch_requests - len(batch)
            self.largest_batch = max(self.largest_batch, batch_requests)
        try:
            results = self._execute(list(batch))
        except BaseException as exc:  # propagate to every waiter
            for entry in batch.values():
                entry.error = exc
                entry.event.set()
            return
        for key, entry in batch.items():
            if key in results:
                entry.result = (results[key], batch_requests)
            else:
                entry.error = KeyError(f"execute returned no result for {key!r}")
            entry.event.set()

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "requests": self.requests,
                "batches": self.batches,
                "coalesced": self.coalesced,
                "largest_batch": self.largest_batch,
                "window_ms": self.window * 1000,
            }
