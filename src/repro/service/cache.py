"""Thread-safe LRU cache for query results, keyed by graph version.

Keys are ``(k, tau, graph_version)`` tuples: because
:attr:`~repro.core.maintenance.DynamicESDIndex.graph_version` increases
on every successful mutation and is never reused, an entry written at
version ``V`` can only ever be read back while the graph is still at
``V`` -- stale results are unreachable by construction.  Old-version
entries would still occupy LRU slots until they age out, so the engine
also calls :meth:`purge_stale` from its mutation hook to reclaim them
eagerly.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Tuple

#: Sentinel distinguishing "miss" from a cached ``None``.
_MISS = object()


class ResultCache:
    """Bounded LRU mapping with hit/miss/eviction accounting."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.purged = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; a hit refreshes the key's recency."""
        with self._lock:
            value = self._entries.get(key, _MISS)
            if value is _MISS:
                self.misses += 1
                return False, None
            self._entries.move_to_end(key)
            self.hits += 1
            return True, value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/overwrite ``key``, evicting the LRU entry when full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            self._entries[key] = value
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def purge_stale(self, current_version: int) -> int:
        """Drop entries whose version component is below ``current_version``.

        Assumes keys are tuples whose last element is the graph version
        (the engine's convention); returns the number of entries dropped.
        """
        with self._lock:
            stale = [
                key
                for key in self._entries
                if isinstance(key, tuple) and key[-1] < current_version
            ]
            for key in stale:
                del self._entries[key]
            self.purged += len(stale)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when none yet)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, object]:
        with self._lock:
            size = len(self._entries)
        return {
            "size": size,
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "purged": self.purged,
            "hit_rate": round(self.hit_rate, 4),
        }
