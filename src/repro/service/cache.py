"""Thread-safe LRU cache for query results, keyed by graph version.

Keys are ``(metric, k, tau, graph_version)`` tuples: because
:attr:`~repro.core.maintenance.DynamicESDIndex.graph_version` increases
on every successful mutation and is never reused, an entry written at
version ``V`` can only ever be read back while the graph is still at
``V`` -- stale results are unreachable by construction.  Old-version
entries would still occupy LRU slots until they age out, so the engine
also calls :meth:`purge_stale` from its mutation hook to reclaim them
eagerly.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Tuple

#: Sentinel distinguishing "miss" from a cached ``None``.
_MISS = object()


def _is_versioned_key(key: Hashable) -> bool:
    """The key schema shared with ``QueryEngine``: a non-empty tuple whose
    last element is the integer graph version (``(metric, k, tau,
    version)`` -- the version always rides last, whatever leads).
    ``purge_stale`` relies on this shape; ``bool`` is excluded because it
    is an ``int`` subtype but never a version."""
    return (
        isinstance(key, tuple)
        and len(key) > 0
        and isinstance(key[-1], int)
        and not isinstance(key[-1], bool)
    )


class ResultCache:
    """Bounded LRU mapping with hit/miss/eviction accounting."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.purged = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; a hit refreshes the key's recency."""
        with self._lock:
            value = self._entries.get(key, _MISS)
            if value is _MISS:
                self.misses += 1
                return False, None
            self._entries.move_to_end(key)
            self.hits += 1
            return True, value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/overwrite ``key``, evicting the LRU entry when full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            self._entries[key] = value
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def purge_stale(self, current_version: int) -> int:
        """Drop entries whose version component is below ``current_version``.

        Every key must follow the version-suffixed tuple schema shared
        with ``QueryEngine`` (see :func:`_is_versioned_key`); a key that
        does not is a caller bug and raises ``ValueError`` loudly
        instead of being silently skipped and retained forever.  Returns
        the number of entries dropped.
        """
        with self._lock:
            stale = []
            for key in self._entries:
                if not _is_versioned_key(key):
                    raise ValueError(
                        f"cache key {key!r} does not follow the "
                        f"(..., graph_version) tuple schema required by "
                        f"purge_stale"
                    )
                if key[-1] < current_version:
                    stale.append(key)
            for key in stale:
                del self._entries[key]
            self.purged += len(stale)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def _hit_rate_locked(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when none yet)."""
        with self._lock:
            return self._hit_rate_locked()

    def stats(self) -> Dict[str, object]:
        """Consistent counter snapshot: every field from one locked read.

        The whole read runs under ``_lock`` so ``hits``/``misses`` and
        ``hit_rate`` always agree; reading them field-by-field outside
        the lock produced torn snapshots under concurrent load (a rate
        computed from different counter values than the ones reported).
        """
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "purged": self.purged,
                "hit_rate": round(self._hit_rate_locked(), 4),
            }
