"""Blocking client for the ``esd serve`` JSON line protocol.

Example::

    from repro.service.client import ServiceClient

    with ServiceClient("127.0.0.1", 7031) as client:
        reply = client.topk(k=10, tau=2)
        print(reply.graph_version, reply.items[:3])
        client.insert_edge(1, 99)
        print(client.topk(k=10, tau=2).items[:3])

One :class:`ServiceClient` is one TCP connection issuing requests
sequentially; use one client per thread for concurrent load.  Errors the
server reports (including ``overloaded`` backpressure rejections) are
raised as :class:`ServiceError` with the structured code preserved.
"""

from __future__ import annotations

import json
import socket
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.service import protocol


class ServiceError(RuntimeError):
    """A structured error response from the server."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


@dataclass(frozen=True)
class TopKReply:
    """A decoded ``topk`` response."""

    items: List[Tuple[Tuple[Any, Any], int]]
    graph_version: int
    cached: bool
    batched: int
    metric: str = "esd"


def wait_until_ready(
    host: str, port: int, timeout: float = 10.0, interval: float = 0.05
) -> None:
    """Block until a server accepts connections (for scripts and CI)."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            with socket.create_connection((host, port), timeout=interval + 1):
                return
        except OSError:
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"no server at {host}:{port} after {timeout}s"
                )
            time.sleep(interval)


class ServiceClient:
    """One connection to an :class:`~repro.service.server.ESDServer`."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 7031, timeout: float = 30.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    # -- transport ------------------------------------------------------------

    def request(self, op: str, **fields: Any) -> Any:
        """Send one request; return its ``result`` or raise ServiceError."""
        self._next_id += 1
        message: Dict[str, Any] = {"op": op, "id": self._next_id, **fields}
        self._file.write(protocol.encode(message))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = json.loads(line.decode("utf-8"))
        if not isinstance(response, dict):
            raise ConnectionError(f"malformed response line: {response!r}")
        if response.get("ok"):
            return response.get("result")
        error = response.get("error") or {}
        raise ServiceError(
            error.get("code", protocol.INTERNAL),
            error.get("message", "malformed error response"),
        )

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- typed helpers --------------------------------------------------------

    def ping(self) -> bool:
        return self.request("ping") == "pong"

    def topk(
        self, k: int = 10, tau: int = 2, metric: str = "esd"
    ) -> TopKReply:
        """Top-k by any registered metric (``esd``, ``truss``,
        ``betweenness``, ``common_neighbors``, ...)."""
        result = self.request("topk", k=k, tau=tau, metric=metric)
        return TopKReply(
            items=[((u, v), score) for u, v, score in result["items"]],
            graph_version=result["graph_version"],
            cached=result["cached"],
            batched=result["batched"],
            metric=result.get("metric", "esd"),
        )

    def score(
        self, u: Any, v: Any, tau: int = 2, metric: str = "esd"
    ) -> Dict[str, Any]:
        return self.request("score", u=u, v=v, tau=tau, metric=metric)

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")

    def update(self, action: str, u: Any, v: Any) -> Dict[str, Any]:
        return self.request("update", action=action, u=u, v=v)

    def insert_edge(self, u: Any, v: Any) -> Dict[str, Any]:
        return self.update("insert", u, v)

    def delete_edge(self, u: Any, v: Any) -> Dict[str, Any]:
        return self.update("delete", u, v)

    def watch(
        self, k: int = 10, tau: int = 2, metric: str = "esd"
    ) -> Dict[str, Any]:
        # Only ``esd`` rides the incrementally maintained index; the
        # server rejects anything else with ``invalid_argument``.
        return self.request("watch", k=k, tau=tau, metric=metric)

    def changes(self, watch_id: int) -> List[Dict[str, Any]]:
        return self.request("changes", watch_id=watch_id)["changes"]

    def unwatch(self, watch_id: int) -> Dict[str, Any]:
        return self.request("unwatch", watch_id=watch_id)

    def metrics(self) -> Dict[str, Any]:
        return self.request("metrics")
