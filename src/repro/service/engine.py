"""The query engine: one shared DynamicESDIndex behind locks + cache.

:class:`QueryEngine` is the transport-independent core of the service --
the TCP server, the CLI and the in-process tests all talk to it.  It
composes the serving-layer pieces around one
:class:`~repro.core.maintenance.DynamicESDIndex`:

* **snapshot consistency** -- every read runs under the shared side of a
  write-preferring :class:`~repro.service.rwlock.RWLock`, every mutation
  under the exclusive side, so queries never observe a half-applied
  update;
* **result caching** -- top-k answers are cached in an LRU keyed by
  ``(metric, k, τ, graph_version)``; the index's mutation hook purges
  stale versions eagerly and the version component (kept last, which is
  what the purge keys on) makes stale hits impossible (see
  :mod:`repro.service.cache`);
* **batching** -- concurrent ``topk`` calls coalesce through a
  :class:`~repro.service.batcher.TopKBatcher` into one read-locked index
  pass per distinct ``(metric, k, τ)``;
* **metric family** -- ``topk``/``score`` take a ``metric`` selector
  resolved through the :mod:`repro.metrics` scorer registry; ``esd``
  (the default) answers straight from the maintained index, the other
  scorers compute from the graph under the same read lock, and each
  metric gets its own labeled latency series (``topk|metric=...``);
* **change feeds** -- standing ``(k, τ)`` queries registered via
  :meth:`watch` are :class:`~repro.core.monitor.TopKMonitor` instances
  attached to the shared index and refreshed inside each update's write
  section;
* **durability** (optional) -- given a
  :class:`~repro.persistence.store.DataDirectory`, every mutation is
  appended to the write-ahead log *before* it is applied (under the same
  exclusive lock, after precondition checks, so a logged record is
  always applicable on replay), and every ``snapshot_interval``
  mutations the engine compacts: snapshot atomically, then truncate the
  WAL.

All public methods return JSON-ready dictionaries (edges as ``[u, v]``
lists) and raise ``ValueError``/``KeyError`` for domain errors, which the
server maps to protocol error codes.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.core.maintenance import DynamicESDIndex
from repro.core.monitor import TopKChange, TopKMonitor
from repro.graph.graph import Graph, canonical_edge
from repro.kernels.counters import KERNEL_COUNTERS
from repro.kernels.shm import shm_metrics
from repro.metrics import (
    DEFAULT_METRIC,
    get_metric,
    metric_names,
    scorer_stats,
)
from repro.obs.registry import UnifiedRegistry
from repro.obs.sampler import InvariantSampler
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import TRACER
from repro.service.batcher import TopKBatcher
from repro.service.cache import ResultCache
from repro.service.metrics import MetricsRegistry
from repro.service.rwlock import RWLock


class _Watch:
    """A registered standing query and its undelivered changes."""

    __slots__ = ("monitor", "unread")

    def __init__(self, monitor: TopKMonitor) -> None:
        self.monitor = monitor
        self.unread: List[TopKChange] = []


def _validate_k_tau(k: int, tau: int) -> None:
    if isinstance(k, bool) or not isinstance(k, int) or k < 1:
        raise ValueError(f"k must be an integer >= 1, got {k!r}")
    if isinstance(tau, bool) or not isinstance(tau, int) or tau < 1:
        raise ValueError(f"tau must be an integer >= 1, got {tau!r}")


def _validate_metric(metric: str):
    """Resolve ``metric`` to its registered scorer (ValueError if unknown)."""
    if not isinstance(metric, str):
        raise ValueError(f"metric must be a string, got {metric!r}")
    return get_metric(metric)


def _metric_endpoint(op: str, metric: str) -> str:
    """The labeled endpoint name for per-metric latency/counter series.

    ``"topk|metric=esd"`` renders in Prometheus text exposition as
    ``...{endpoint="topk",metric="esd"}`` (see
    :func:`repro.obs.promtext.render_prometheus`), so each metric of the
    diversity-query family gets its own disjoint request/error/latency
    series while the plain ``op`` endpoint keeps the aggregate.
    """
    return f"{op}|metric={metric}"


def _items(pairs) -> List[List[Any]]:
    """``[((u, v), score), ...] -> [[u, v, score], ...]`` (JSON-ready)."""
    return [[u, v, score] for (u, v), score in pairs]


class QueryEngine:
    """Concurrent façade over one maintained ESD index."""

    def __init__(
        self,
        graph: Optional[Graph] = None,
        *,
        dynamic_index: Optional[DynamicESDIndex] = None,
        store=None,
        snapshot_interval: int = 1000,
        cache_size: int = 1024,
        batch_window: float = 0.002,
        slow_query_threshold: float = 0.25,
        slow_log_capacity: int = 128,
        invariant_check_interval: int = 0,
        invariant_sample_size: int = 8,
        warm_metrics: Optional[List[str]] = None,
    ) -> None:
        if (graph is None) == (dynamic_index is None):
            raise ValueError(
                "provide exactly one of graph or dynamic_index"
            )
        if snapshot_interval < 1:
            raise ValueError(
                f"snapshot_interval must be >= 1, got {snapshot_interval}"
            )
        if invariant_check_interval < 0:
            raise ValueError(
                f"invariant_check_interval must be >= 0, got "
                f"{invariant_check_interval}"
            )
        self._dyn = (
            dynamic_index if dynamic_index is not None else DynamicESDIndex(graph)
        )
        self._store = store
        self._snapshot_interval = snapshot_interval
        self._since_snapshot = 0
        self._lock = RWLock()
        self._cache = ResultCache(cache_size)
        self._batcher = TopKBatcher(self._run_batch, window=batch_window)
        self.slow_log = SlowQueryLog(
            threshold=slow_query_threshold, capacity=slow_log_capacity
        )

        def _slow_observe(endpoint: str, seconds: float, error: bool) -> None:
            # Per-metric labeled series ("topk|metric=esd") time the same
            # request the aggregate endpoint already timed; only the
            # aggregate feeds the slow-query ring, or every slow query
            # would appear twice.
            if "|" not in endpoint:
                self.slow_log.record(endpoint, seconds, error)

        self.metrics = MetricsRegistry(on_observe=_slow_observe)
        self.sampler: Optional[InvariantSampler] = (
            InvariantSampler(
                self._dyn,
                every=invariant_check_interval,
                sample_size=invariant_sample_size,
            )
            if invariant_check_interval > 0
            else None
        )
        self._watch_lock = threading.Lock()
        self._watches: Dict[int, _Watch] = {}
        self._watch_ids = itertools.count(1)
        # Per-edge hook: sampler + watch bookkeeping need every version.
        # Batch hook: cache purge + scorer maintenance fire once per
        # commit group (once per apply_batch instead of once per edge).
        self._dyn.subscribe(self._on_mutation)
        self._dyn.subscribe_batch(self._on_batch)
        # Opt-in background warmer: after mutations, recompute the named
        # scorers' tables off the query path.
        self._warm_metrics: Tuple[str, ...] = tuple(warm_metrics or ())
        for name in self._warm_metrics:
            get_metric(name)  # unknown names fail loudly at construction
        self._warm_cond = threading.Condition()
        self._warm_dirty = False
        self._warm_stop = False
        self._warm_thread: Optional[threading.Thread] = None
        if self._warm_metrics:
            self._warm_thread = threading.Thread(
                target=self._warm_loop,
                name="esd-metric-warmer",
                daemon=True,
            )
            self._warm_thread.start()
        self.obs = self._build_registry()

    # -- plumbing -------------------------------------------------------------

    @property
    def graph_version(self) -> int:
        return self._dyn.graph_version

    @property
    def dynamic_index(self) -> DynamicESDIndex:
        """The underlying index (read-only use; mutate via :meth:`update`)."""
        return self._dyn

    @property
    def store(self):
        """The attached :class:`DataDirectory`, or ``None`` (in-memory)."""
        return self._store

    def read_locked(self):
        """The engine's shared read lock, as a context manager.

        For components that must observe a mutation-free snapshot of
        the index *and* coordinate with the mutation subscribers -- the
        replication publisher exports catch-up state under this lock so
        no committed version can fall between its snapshot and its live
        stream.  Lock ordering: the engine lock is always taken before
        any component-internal lock (the mutation path already holds
        the write side when subscribers run).
        """
        return self._lock.read_locked()

    def close(self) -> None:
        """Flush durability state and release file handles.

        On a *clean* shutdown, mutations that arrived since the last
        snapshot are compacted into a fresh one so the next start
        replays nothing.  A crash skips this path by definition -- then
        recovery replays the WAL tail instead.  The background metric
        warmer (if any) is stopped first, outside the engine lock.
        """
        if self._warm_thread is not None:
            with self._warm_cond:
                self._warm_stop = True
                self._warm_cond.notify_all()
            self._warm_thread.join(timeout=5.0)
            self._warm_thread = None
        if self._store is None:
            return
        with self._lock.write_locked():
            if self._since_snapshot > 0:
                self._store.compact(self._dyn)
                self._since_snapshot = 0
            self._store.close()

    def _build_registry(self) -> UnifiedRegistry:
        """Fold every component's stats into one snapshot provider."""
        registry = UnifiedRegistry(self.metrics)
        registry.add_source("cache", self._cache.stats)
        registry.add_source("batcher", self._batcher.stats)
        registry.add_source("lock", self._lock.snapshot)
        registry.add_source("graph_version", lambda: self._dyn.graph_version)
        registry.add_source("core", self._core_counters)
        registry.add_source("kernels", KERNEL_COUNTERS.snapshot)
        registry.add_source("scorer_memos", scorer_stats)
        registry.add_source("shm", shm_metrics)
        registry.add_source("slow_queries", self.slow_log.snapshot)
        registry.add_source(
            "invariant_sampler",
            (self.sampler.status if self.sampler is not None
             else lambda: {"enabled": False}),
        )
        registry.add_source("tracing", TRACER.status)
        if self._store is not None:
            registry.add_source("persistence", self._store.stats)
        return registry

    def _core_counters(self) -> Dict[str, Any]:
        """The core-layer counters of the maintained index."""
        counters = self._dyn.mutation_counters
        return {
            "insertions": counters.insertions,
            "deletions": counters.deletions,
            "edges_rescored": counters.edges_rescored,
        }

    def _on_mutation(self, kind: str, edge, version: int) -> None:
        # Runs under the write lock, once per committed edge update.
        if self.sampler is not None and self.sampler.on_mutation(version):
            # Violation details live in the sampler's own metrics stanza.
            self.metrics.incr("invariant_checks")

    def _on_batch(self, events, version: int) -> None:
        # Runs under the write lock, once per commit group (a single
        # update is a one-event group; apply_batch delivers the whole
        # ordered event list at its final version).
        purged = self._cache.purge_stale(version)
        if purged:
            self.metrics.incr("cache_purged_entries", purged)
        for name in metric_names():
            # The scorers' incremental-maintenance hook, once per scorer
            # per batch -- invalidating a memo N times per batch bought
            # nothing.
            get_metric(name).on_batch(events, version)
        if self._warm_thread is not None:
            with self._warm_cond:
                self._warm_dirty = True
                self._warm_cond.notify_all()

    def _warm_loop(self) -> None:
        """Background warmer: repopulate scorer tables after mutations.

        Waits for a dirty signal, then calls each named scorer's
        ``warm`` under the read lock.  Coalescing is free: however many
        mutations landed while a pass ran, the next pass warms the
        latest revision once.  Best-effort -- a failing scorer is
        counted, not fatal.
        """
        while True:
            with self._warm_cond:
                while not self._warm_dirty and not self._warm_stop:
                    self._warm_cond.wait()
                if self._warm_stop:
                    return
                self._warm_dirty = False
            for name in self._warm_metrics:
                try:
                    with self._lock.read_locked():
                        get_metric(name).warm(self._dyn.graph)
                except Exception:
                    self.metrics.incr("metric_warm_errors")
            self.metrics.incr("metric_warm_passes")

    def _run_batch(
        self, keys: List[Hashable]
    ) -> Dict[Hashable, Dict[str, Any]]:
        """Answer all distinct ``(metric, k, τ)`` keys in one read-locked pass."""
        results: Dict[Hashable, Dict[str, Any]] = {}
        with TRACER.span("engine.batch", keys=len(keys)) as span:
            hits = 0
            with self._lock.read_locked():
                version = self._dyn.graph_version
                for key in keys:
                    metric, k, tau = key
                    hit, payload = self._cache.get((metric, k, tau, version))
                    if hit:
                        hits += 1
                    else:
                        scorer = get_metric(metric)
                        payload = {
                            "items": _items(
                                scorer.topk(
                                    self._dyn.graph, k,
                                    tau=tau, index=self._dyn,
                                )
                            ),
                            "graph_version": version,
                            "metric": metric,
                        }
                        self._cache.put((metric, k, tau, version), payload)
                    results[key] = payload
            span.set(cache_hits=hits, graph_version=version)
        return results

    # -- read endpoints -------------------------------------------------------

    def topk(
        self, k: int = 10, tau: int = 2, metric: str = DEFAULT_METRIC
    ) -> Dict[str, Any]:
        """Top-k query; served from cache or a coalesced index pass.

        ``metric`` selects the scorer (see :mod:`repro.metrics`):
        ``esd`` (default, the paper's index-backed structural
        diversity), ``truss``, ``betweenness``, ``common_neighbors``...
        Cache keys are ``(metric, k, τ, version)`` and batch keys
        ``(metric, k, τ)``, so two metrics never share a cache entry or
        coalesce into one batched result.
        """
        _validate_k_tau(k, tau)
        _validate_metric(metric)
        with self.metrics.timed("topk"), \
                self.metrics.timed(_metric_endpoint("topk", metric)):
            with TRACER.span(
                "engine.topk", k=k, tau=tau, metric=metric
            ) as span:
                # Racy fast path: a hit for the version we just read is
                # valid by keying even if a writer lands concurrently --
                # the answer was current at some instant inside this
                # request.
                version = self._dyn.graph_version
                hit, payload = self._cache.get((metric, k, tau, version))
                if hit:
                    span.set(cache="hit", graph_version=version)
                    return dict(payload, cached=True, batched=1)
                span.set(cache="miss")
                payload, batch_requests = self._batcher.submit(
                    (metric, k, tau)
                )
                span.set(batched=batch_requests)
                return dict(payload, cached=False, batched=batch_requests)

    def score(
        self, u, v, tau: int = 2, metric: str = DEFAULT_METRIC
    ) -> Dict[str, Any]:
        """One edge's metric value at threshold ``tau`` (default: the
        paper's structural diversity, straight from the index)."""
        _validate_k_tau(1, tau)
        scorer = _validate_metric(metric)
        with self.metrics.timed("score"), \
                self.metrics.timed(_metric_endpoint("score", metric)):
            with self._lock.read_locked():
                return {
                    "edge": [u, v],
                    "tau": tau,
                    "metric": metric,
                    "score": scorer.score(
                        self._dyn.graph, (u, v), tau=tau, index=self._dyn
                    ),
                    "in_graph": self._dyn.graph.has_edge(u, v),
                    "graph_version": self._dyn.graph_version,
                }

    def stats(self) -> Dict[str, Any]:
        """Graph/index snapshot: sizes, version, mutation counters."""
        with self.metrics.timed("stats"):
            with self._lock.read_locked():
                graph = self._dyn.graph
                counters = self._dyn.mutation_counters
                return {
                    "n": graph.n,
                    "m": graph.m,
                    "graph_version": self._dyn.graph_version,
                    "mutations": {
                        "insertions": counters.insertions,
                        "deletions": counters.deletions,
                        "total": counters.total,
                    },
                    "index": self._dyn.index.stats(),
                    "watches": len(self._watches),
                }

    # -- write endpoint -------------------------------------------------------

    def update(self, action: str, u, v) -> Dict[str, Any]:
        """Apply one edge mutation under the exclusive lock.

        ``action`` is ``"insert"`` or ``"delete"``.  Registered watches
        are refreshed inside the same write section, so their change
        feeds observe every version exactly once.

        With a persistence store attached, the mutation is WAL-logged
        *before* being applied (write-ahead).  Preconditions are checked
        first under the same exclusive lock, so the log never contains a
        record that would fail on replay; a mutation is only
        acknowledged after its record is durable.
        """
        if action not in ("insert", "delete"):
            raise ValueError(
                f"action must be 'insert' or 'delete', got {action!r}"
            )
        with self.metrics.timed("update"):
            with TRACER.span(
                "engine.update", action=action, edge=[u, v]
            ) as span, self._lock.write_locked():
                if self._store is not None:
                    edge = canonical_edge(u, v)  # rejects self-loops early
                    exists = self._dyn.graph.has_edge(u, v)
                    if action == "insert" and exists:
                        raise ValueError(f"edge already in graph: {edge}")
                    if action == "delete" and not exists:
                        raise KeyError(f"edge not in graph: {edge}")
                    self._store.append_wal(
                        action, u, v, self._dyn.graph_version + 1
                    )
                    self.metrics.incr("wal_appends")
                if action == "insert":
                    stats = self._dyn.insert_edge(u, v)
                else:
                    stats = self._dyn.delete_edge(u, v)
                if self._store is not None:
                    self._since_snapshot += 1
                    if self._since_snapshot >= self._snapshot_interval:
                        self._store.compact(self._dyn)
                        self._since_snapshot = 0
                        self.metrics.incr("snapshots_written")
                version = self._dyn.graph_version
                notified = 0
                with self._watch_lock:
                    for watch in self._watches.values():
                        change = watch.monitor.refresh(action, (u, v))
                        if change.changed:
                            watch.unread.append(change)
                            notified += 1
                span.set(
                    graph_version=version,
                    edges_rescored=stats.edges_rescored,
                    watches_notified=notified,
                )
                return {
                    "applied": True,
                    "action": action,
                    "edge": [u, v],
                    "graph_version": version,
                    "update_stats": {
                        "common_neighbors": stats.common_neighbors,
                        "ego_edges": stats.ego_edges,
                        "edges_rescored": stats.edges_rescored,
                    },
                    "watches_notified": notified,
                }

    # -- change feeds ---------------------------------------------------------

    def watch(
        self, k: int = 10, tau: int = 2, metric: str = DEFAULT_METRIC
    ) -> Dict[str, Any]:
        """Register a standing ``(k, τ)`` query; returns its feed id.

        Watches ride the index's incremental maintenance, which only the
        ``esd`` metric has -- other metrics are rejected rather than
        silently served stale.
        """
        _validate_k_tau(k, tau)
        if metric != DEFAULT_METRIC:
            raise ValueError(
                f"watch supports only metric {DEFAULT_METRIC!r} "
                f"(incrementally maintained); got {metric!r}"
            )
        with self.metrics.timed("watch"):
            with self._lock.read_locked():
                monitor = TopKMonitor.attach(self._dyn, k, tau)
                with self._watch_lock:
                    watch_id = next(self._watch_ids)
                    self._watches[watch_id] = _Watch(monitor)
                return {
                    "watch_id": watch_id,
                    "k": k,
                    "tau": tau,
                    "top": _items(monitor.top),
                    "graph_version": self._dyn.graph_version,
                }

    def changes(self, watch_id: int) -> Dict[str, Any]:
        """Drain the undelivered top-k changes of one watch."""
        with self.metrics.timed("changes"):
            with self._watch_lock:
                watch = self._watches.get(watch_id)
                if watch is None:
                    raise KeyError(f"no such watch: {watch_id}")
                drained, watch.unread = watch.unread, []
            return {
                "watch_id": watch_id,
                "changes": [
                    {
                        "update": change.update,
                        "edge": list(change.edge) if change.edge else None,
                        "entered": _items(change.entered),
                        "left": _items(change.left),
                    }
                    for change in drained
                ],
            }

    def unwatch(self, watch_id: int) -> Dict[str, Any]:
        """Deregister a standing query."""
        with self.metrics.timed("unwatch"):
            with self._watch_lock:
                if self._watches.pop(watch_id, None) is None:
                    raise KeyError(f"no such watch: {watch_id}")
            return {"watch_id": watch_id, "removed": True}

    # -- observability --------------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The ``/metrics`` payload, from the unified registry.

        One document folding endpoint latencies and counters with every
        component's stats (cache, batcher, lock, persistence), the
        core-layer counters, the slow-query ring, the invariant-sampler
        status and the tracer state -- see
        :class:`repro.obs.registry.UnifiedRegistry`.
        """
        return self.obs.snapshot()
