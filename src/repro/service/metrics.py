"""Per-endpoint service metrics: request counts, errors, latency quantiles.

Every engine endpoint wraps its work in :meth:`MetricsRegistry.timed`;
the server's ``metrics`` op returns :meth:`MetricsRegistry.snapshot`,
the JSON equivalent of a ``/metrics`` scrape.  Latency quantiles are
computed over a bounded ring of recent samples (the standard trade-off:
exact percentiles over a sliding window rather than approximate ones
over all time).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Deque, Dict, Iterator

#: Per-endpoint latency samples retained for quantile estimation.
SAMPLE_WINDOW = 4096


def percentile(samples, fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` (0.0 for an empty list)."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


class EndpointMetrics:
    """Counters and a latency window for one endpoint."""

    def __init__(self) -> None:
        self.requests = 0
        self.errors = 0
        self.total_seconds = 0.0
        self.samples: Deque[float] = deque(maxlen=SAMPLE_WINDOW)

    def observe(self, seconds: float, error: bool = False) -> None:
        self.requests += 1
        if error:
            self.errors += 1
        self.total_seconds += seconds
        self.samples.append(seconds)

    def snapshot(self) -> Dict[str, object]:
        window = list(self.samples)
        mean = self.total_seconds / self.requests if self.requests else 0.0
        return {
            "requests": self.requests,
            "errors": self.errors,
            "mean_ms": round(mean * 1000, 3),
            "p50_ms": round(percentile(window, 0.50) * 1000, 3),
            "p99_ms": round(percentile(window, 0.99) * 1000, 3),
        }


class MetricsRegistry:
    """Thread-safe collection of endpoint metrics plus free-form counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._endpoints: Dict[str, EndpointMetrics] = {}
        self._counters: Dict[str, int] = {}
        self._started = time.time()

    def observe(self, endpoint: str, seconds: float, error: bool = False) -> None:
        with self._lock:
            metrics = self._endpoints.get(endpoint)
            if metrics is None:
                metrics = self._endpoints[endpoint] = EndpointMetrics()
            metrics.observe(seconds, error)

    @contextmanager
    def timed(self, endpoint: str) -> Iterator[None]:
        """Time one request; exceptions are recorded as errors and re-raised."""
        start = time.perf_counter()
        try:
            yield
        except Exception:
            self.observe(endpoint, time.perf_counter() - start, error=True)
            raise
        self.observe(endpoint, time.perf_counter() - start)

    def incr(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[counter] = self._counters.get(counter, 0) + amount

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "uptime_seconds": round(time.time() - self._started, 3),
                "endpoints": {
                    name: metrics.snapshot()
                    for name, metrics in sorted(self._endpoints.items())
                },
                "counters": dict(sorted(self._counters.items())),
            }
