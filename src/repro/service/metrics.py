"""Per-endpoint service metrics: request counts, errors, latency quantiles.

Every engine endpoint wraps its work in :meth:`MetricsRegistry.timed`;
the server's ``metrics`` op returns :meth:`MetricsRegistry.snapshot`,
the JSON equivalent of a ``/metrics`` scrape.  Latency quantiles are
computed over a bounded ring of recent samples (the standard trade-off:
exact percentiles over a sliding window rather than approximate ones
over all time).
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Callable, Deque, Dict, Iterator, Optional

#: Per-endpoint latency samples retained for quantile estimation.
SAMPLE_WINDOW = 4096

#: Observation hook signature: ``(endpoint, seconds, error)``.
ObserveHook = Callable[[str, float, bool], object]


def percentile(samples, fraction: float) -> float:
    """Ceil-based nearest-rank percentile of ``samples`` (0.0 if empty).

    The rank is ``ceil(fraction * (n - 1))`` -- always rounded *up*, so
    a reported pXX is never below the true quantile.  The previous
    implementation used ``round()`` (banker's rounding), which rounded
    *down* exactly where it matters: p99 over a 100-sample window
    returned the 99th-worst sample instead of the worst, systematically
    under-reporting tail latency.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, math.ceil(fraction * (len(ordered) - 1)))
    return ordered[rank]


class EndpointMetrics:
    """Counters and a latency window for one endpoint."""

    def __init__(self) -> None:
        self.requests = 0
        self.errors = 0
        self.total_seconds = 0.0
        self.samples: Deque[float] = deque(maxlen=SAMPLE_WINDOW)

    def observe(self, seconds: float, error: bool = False) -> None:
        self.requests += 1
        if error:
            self.errors += 1
        self.total_seconds += seconds
        self.samples.append(seconds)

    def snapshot(self) -> Dict[str, object]:
        window = list(self.samples)
        mean = self.total_seconds / self.requests if self.requests else 0.0
        return {
            "requests": self.requests,
            "errors": self.errors,
            "mean_ms": round(mean * 1000, 3),
            "p50_ms": round(percentile(window, 0.50) * 1000, 3),
            "p99_ms": round(percentile(window, 0.99) * 1000, 3),
        }


class MetricsRegistry:
    """Thread-safe collection of endpoint metrics plus free-form counters.

    ``on_observe``, if given, is invoked as ``(endpoint, seconds, error)``
    after every observation, outside the registry lock -- the hook the
    slow-query log rides on.  Hook exceptions are swallowed: metrics
    plumbing must never fail the request it measures.
    """

    def __init__(self, on_observe: Optional[ObserveHook] = None) -> None:
        self._lock = threading.Lock()
        self._endpoints: Dict[str, EndpointMetrics] = {}
        self._counters: Dict[str, int] = {}
        self._started = time.time()
        self._on_observe = on_observe

    def observe(self, endpoint: str, seconds: float, error: bool = False) -> None:
        with self._lock:
            metrics = self._endpoints.get(endpoint)
            if metrics is None:
                metrics = self._endpoints[endpoint] = EndpointMetrics()
            metrics.observe(seconds, error)
        if self._on_observe is not None:
            try:
                self._on_observe(endpoint, seconds, error)
            except Exception:
                pass

    @contextmanager
    def timed(self, endpoint: str) -> Iterator[None]:
        """Time one request; exceptions are recorded as errors and re-raised."""
        start = time.perf_counter()
        try:
            yield
        except Exception:
            self.observe(endpoint, time.perf_counter() - start, error=True)
            raise
        self.observe(endpoint, time.perf_counter() - start)

    def incr(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[counter] = self._counters.get(counter, 0) + amount

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "uptime_seconds": round(time.time() - self._started, 3),
                "endpoints": {
                    name: metrics.snapshot()
                    for name, metrics in sorted(self._endpoints.items())
                },
                "counters": dict(sorted(self._counters.items())),
            }
