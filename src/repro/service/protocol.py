"""The service's JSON line protocol: framing, envelopes, error codes.

One request per line, one response per line, UTF-8 JSON (no embedded
newlines).  Requests are objects with an ``op`` field plus op-specific
fields and an optional caller-chosen ``id`` echoed back verbatim::

    {"op": "topk", "k": 10, "tau": 2, "metric": "esd", "id": 7}

``topk`` and ``score`` take an optional ``metric`` string selecting the
scorer (default ``"esd"``; see :mod:`repro.metrics`); unknown names are
answered with ``invalid_argument``.

Responses are either::

    {"ok": true, "result": {...}, "id": 7}
    {"ok": false, "error": {"code": "...", "message": "..."}, "id": 7}

Edges travel as 2-element arrays ``[u, v]`` and scored edges as
3-element arrays ``[u, v, score]``; vertex ids must match the server's
graph exactly (the stand-in datasets use integers).

Error codes
-----------
``bad_request``        malformed JSON, oversized line, or missing ``op``
``unknown_op``         the ``op`` value is not served
``invalid_argument``   a field has the wrong type/value (e.g. ``k < 1``,
                       inserting an edge that already exists)
``not_found``          the referenced edge/watch does not exist
``overloaded``         admission control rejected the request (backpressure)
``internal``           unexpected server-side failure
``read_only``          a mutation was sent to a read replica
``unavailable``        the cluster cannot serve this request right now
                       (writer down, no replica fresh enough, backend
                       timeout) -- safe to retry

Cluster extension: read requests may carry an optional integer
``min_version`` -- a *version token*.  A server honouring tokens only
answers from state whose ``graph_version`` is at least that value (a
replica that is behind answers ``unavailable`` instead).  Every
successful response carries the serving ``graph_version`` in its
result; echoing it back as ``min_version`` gives read-your-writes and
monotonic reads across nodes (see docs/CLUSTER.md).

One non-JSON special case: a request line starting with ``GET `` is
treated as an HTTP scrape of the node's metrics and answered with a
Prometheus text-exposition HTTP response (see
:mod:`repro.obs.promtext`), then the connection is closed.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

#: Hard cap on one request line; longer lines are rejected, not buffered.
MAX_LINE_BYTES = 1 << 20

BAD_REQUEST = "bad_request"
UNKNOWN_OP = "unknown_op"
INVALID_ARGUMENT = "invalid_argument"
NOT_FOUND = "not_found"
OVERLOADED = "overloaded"
INTERNAL = "internal"
READ_ONLY = "read_only"
UNAVAILABLE = "unavailable"

ERROR_CODES = frozenset(
    {
        BAD_REQUEST,
        UNKNOWN_OP,
        INVALID_ARGUMENT,
        NOT_FOUND,
        OVERLOADED,
        INTERNAL,
        READ_ONLY,
        UNAVAILABLE,
    }
)


def is_http_get(line: bytes) -> bool:
    """Is this request line the start of an HTTP GET (metrics scrape)?"""
    return line.startswith(b"GET ") or line == b"GET"


class ProtocolError(Exception):
    """A request the server can answer only with a structured error."""

    def __init__(self, code: str, message: str) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code: {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message


def encode(message: Dict[str, Any]) -> bytes:
    """Serialize one protocol message to a newline-terminated JSON line."""
    return (
        json.dumps(message, separators=(",", ":"), sort_keys=True) + "\n"
    ).encode("utf-8")


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one request line; raise :class:`ProtocolError` when malformed."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            BAD_REQUEST, f"request line exceeds {MAX_LINE_BYTES} bytes"
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(BAD_REQUEST, f"malformed JSON request: {exc}")
    if not isinstance(message, dict):
        raise ProtocolError(BAD_REQUEST, "request must be a JSON object")
    if not isinstance(message.get("op"), str):
        raise ProtocolError(BAD_REQUEST, "request must carry a string 'op'")
    return message


def ok_response(
    result: Any, request_id: Optional[Any] = None
) -> Dict[str, Any]:
    response: Dict[str, Any] = {"ok": True, "result": result}
    if request_id is not None:
        response["id"] = request_id
    return response


def error_response(
    code: str, message: str, request_id: Optional[Any] = None
) -> Dict[str, Any]:
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code: {code!r}")
    response: Dict[str, Any] = {
        "ok": False,
        "error": {"code": code, "message": message},
    }
    if request_id is not None:
        response["id"] = request_id
    return response


def int_field(
    message: Dict[str, Any],
    name: str,
    default: Optional[int] = None,
    minimum: int = 1,
) -> int:
    """Extract a required/defaulted integer field, validating its range."""
    value = message.get(name, default)
    if value is None:
        raise ProtocolError(INVALID_ARGUMENT, f"missing required field {name!r}")
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(
            INVALID_ARGUMENT, f"field {name!r} must be an integer, got {value!r}"
        )
    if value < minimum:
        raise ProtocolError(
            INVALID_ARGUMENT, f"field {name!r} must be >= {minimum}, got {value}"
        )
    return value


def metric_field(
    message: Dict[str, Any], name: str = "metric", default: str = "esd"
) -> str:
    """Extract the optional metric-selector field (a string name).

    Only string-ness is validated here; whether the name is a
    *registered* metric is the engine's call (its ``ValueError`` maps to
    ``invalid_argument``), so the protocol layer needs no import of the
    scorer registry.
    """
    value = message.get(name, default)
    if not isinstance(value, str) or not value:
        raise ProtocolError(
            INVALID_ARGUMENT,
            f"field {name!r} must be a non-empty string, got {value!r}",
        )
    return value


def vertex_field(message: Dict[str, Any], name: str) -> Any:
    """Extract a vertex id (any JSON scalar except null/bool)."""
    value = message.get(name)
    if value is None or isinstance(value, bool) or isinstance(value, (list, dict)):
        raise ProtocolError(
            INVALID_ARGUMENT,
            f"field {name!r} must be a vertex id (number or string), got {value!r}",
        )
    return value
