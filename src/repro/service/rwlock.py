"""A write-preferring readers-writer lock for snapshot-consistent reads.

The query service wraps every index read (``topk``, ``score``, ``stats``)
in :meth:`RWLock.read_locked` and every mutation in
:meth:`RWLock.write_locked`.  Any number of readers share the lock, so
concurrent queries proceed in parallel (useful even under the GIL: the
index query releases it during allocation-heavy work); a writer gets
exclusive access, so a query can never observe a half-applied edge
update -- :class:`~repro.core.maintenance.DynamicESDIndex` touches the
graph, the ``M`` structures and the treaps in sequence, and only the
final state is a legal snapshot.

Write preference: once a writer is waiting, new readers queue behind it.
Updates are rare relative to queries in the intended workload, so this
bounds writer latency without starving readers for long.

The lock is not reentrant: a thread holding it in either mode must not
re-acquire it.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class RWLock:
    """Shared/exclusive lock; see module docstring for the policy."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._waiting_writers = 0

    # -- reader side ---------------------------------------------------------

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._waiting_writers:
                self._cond.wait()
            self._active_readers += 1

    def release_read(self) -> None:
        with self._cond:
            if self._active_readers <= 0:
                raise RuntimeError("release_read without a matching acquire")
            self._active_readers -= 1
            if self._active_readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # -- writer side ---------------------------------------------------------

    def acquire_write(self) -> None:
        with self._cond:
            self._waiting_writers += 1
            try:
                while self._writer_active or self._active_readers:
                    self._cond.wait()
            finally:
                self._waiting_writers -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            if not self._writer_active:
                raise RuntimeError("release_write without a matching acquire")
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # -- introspection (metrics/tests) --------------------------------------

    def snapshot(self) -> dict:
        """Point-in-time lock state (racy by nature; for diagnostics)."""
        with self._cond:
            return {
                "active_readers": self._active_readers,
                "writer_active": self._writer_active,
                "waiting_writers": self._waiting_writers,
            }
