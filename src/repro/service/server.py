"""Threaded TCP server speaking the JSON line protocol.

:class:`ESDServer` owns one :class:`~repro.service.engine.QueryEngine`
and serves it over a ``ThreadingTCPServer`` (one daemon thread per
connection, many requests per connection).  On top of the engine it adds
**admission control**: a counting semaphore bounds how many requests may
be queued-or-executing at once; a request that cannot obtain a slot
within ``queue_timeout`` seconds is answered with a structured
``overloaded`` error instead of hanging -- callers get an explicit
backpressure signal they can retry on.

Start it in-process (``server.start()``; it binds in the constructor, so
``server.address`` is usable immediately) or via ``esd serve`` from the
command line.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.graph.graph import Graph
from repro.obs.promtext import http_metrics_response, render_prometheus
from repro.service import protocol
from repro.service.engine import QueryEngine
from repro.service.protocol import ProtocolError

#: Content type of the Prometheus text-exposition format we render.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


@dataclass
class ServerConfig:
    """Tunables for one :class:`ESDServer`."""

    host: str = "127.0.0.1"
    port: int = 0  #: 0 = ephemeral; read the bound port from ``address``
    max_pending: int = 64  #: admission-control slots (queued + executing)
    queue_timeout: float = 2.0  #: seconds to wait for a slot before rejecting
    batch_window: float = 0.002  #: topk coalescing window (seconds)
    cache_size: int = 1024  #: LRU result-cache capacity
    debug: bool = False  #: enable the test-only ``sleep`` op
    data_dir: Optional[str] = None  #: durable snapshot+WAL directory
    snapshot_interval: int = 1000  #: mutations between WAL compactions
    fsync: bool = True  #: fsync each WAL append (durable acks)
    slow_query_threshold: float = 0.25  #: seconds; 0 disables the slow log
    slow_log_capacity: int = 128  #: slow-query ring-buffer entries
    invariant_check_interval: int = 0  #: mutations between sampled checks (0 = off)
    invariant_sample_size: int = 8  #: edges verified per sampled check
    warm_metrics: Tuple[str, ...] = ()  #: scorers re-warmed in the background after writes

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {self.max_pending}")
        if self.queue_timeout < 0:
            raise ValueError(
                f"queue_timeout must be >= 0, got {self.queue_timeout}"
            )
        if self.snapshot_interval < 1:
            raise ValueError(
                f"snapshot_interval must be >= 1, got {self.snapshot_interval}"
            )
        if self.slow_query_threshold < 0:
            raise ValueError(
                f"slow_query_threshold must be >= 0, got "
                f"{self.slow_query_threshold}"
            )
        if self.invariant_check_interval < 0:
            raise ValueError(
                f"invariant_check_interval must be >= 0, got "
                f"{self.invariant_check_interval}"
            )


class _LineHandler(socketserver.StreamRequestHandler):
    """One connection: read request lines, write response lines."""

    def handle(self) -> None:
        server: "_TCPServer" = self.server  # type: ignore[assignment]
        while True:
            try:
                line = self.rfile.readline(protocol.MAX_LINE_BYTES + 1)
            except OSError:
                return
            if not line:
                return
            stripped = line.strip()
            if not stripped:
                continue
            if protocol.is_http_get(stripped):
                # Prometheus/text scrape: answer with HTTP and close.
                try:
                    self.wfile.write(server.owner.handle_http_get())
                    self.wfile.flush()
                except OSError:
                    pass
                return
            response = server.owner.handle_line(stripped)
            try:
                self.wfile.write(protocol.encode(response))
                self.wfile.flush()
            except OSError:
                return


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, owner: "ESDServer") -> None:
        self.owner = owner
        self._connections: set = set()
        self._connections_lock = threading.Lock()
        super().__init__(address, _LineHandler)

    # Track live connection sockets so shutdown can sever them: the
    # stock ThreadingTCPServer only closes the *listener*, leaving
    # established connections (and their daemon handler threads) alive
    # -- peers like the cluster router would never see EOF.

    def get_request(self):
        request, addr = super().get_request()
        with self._connections_lock:
            self._connections.add(request)
        return request, addr

    def shutdown_request(self, request) -> None:
        with self._connections_lock:
            self._connections.discard(request)
        super().shutdown_request(request)

    def close_all_connections(self) -> None:
        with self._connections_lock:
            connections = list(self._connections)
            self._connections.clear()
        for request in connections:
            try:
                request.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                request.close()
            except OSError:
                pass


class ESDServer:
    """A long-lived top-k structural diversity query service.

    With ``config.data_dir`` set, the server is durable: an existing
    data directory is *recovered* (snapshot + WAL replay; any provided
    ``graph`` is then only a fallback for an empty directory), and every
    subsequent mutation is write-ahead logged before it is applied.
    ``server.recovery`` holds the
    :class:`~repro.persistence.store.RecoveryReport` of the startup.
    """

    def __init__(
        self, graph: Optional[Graph] = None, config: Optional[ServerConfig] = None
    ) -> None:
        self.config = config or ServerConfig()
        self.recovery = None
        if self.config.data_dir is not None:
            from repro.persistence.store import DataDirectory

            store = DataDirectory(self.config.data_dir, fsync=self.config.fsync)
            dyn, self.recovery = store.open(bootstrap_graph=graph)
            self.engine = QueryEngine(
                dynamic_index=dyn,
                store=store,
                snapshot_interval=self.config.snapshot_interval,
                cache_size=self.config.cache_size,
                batch_window=self.config.batch_window,
                slow_query_threshold=self.config.slow_query_threshold,
                slow_log_capacity=self.config.slow_log_capacity,
                invariant_check_interval=self.config.invariant_check_interval,
                invariant_sample_size=self.config.invariant_sample_size,
                warm_metrics=list(self.config.warm_metrics),
            )
        else:
            if graph is None:
                raise ValueError("a graph is required without a data_dir")
            self.engine = QueryEngine(
                graph,
                cache_size=self.config.cache_size,
                batch_window=self.config.batch_window,
                slow_query_threshold=self.config.slow_query_threshold,
                slow_log_capacity=self.config.slow_log_capacity,
                invariant_check_interval=self.config.invariant_check_interval,
                invariant_sample_size=self.config.invariant_sample_size,
                warm_metrics=list(self.config.warm_metrics),
            )
        self._admission = threading.Semaphore(self.config.max_pending)
        self._tcp = _TCPServer((self.config.host, self.config.port), self)
        self._thread: Optional[threading.Thread] = None
        self._serving = threading.Event()
        self._shutdown_lock = threading.Lock()
        self._closed = False

    # -- lifecycle ------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (valid as soon as constructed)."""
        host, port = self._tcp.server_address[:2]
        return host, port

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._serving.set()
        try:
            self._tcp.serve_forever(poll_interval=0.1)
        finally:
            self._serving.clear()

    def start(self) -> "ESDServer":
        """Serve on a background daemon thread; returns ``self``."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self.serve_forever, name="esd-serve", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self, join_timeout: float = 5.0) -> None:
        """Stop accepting connections, close the socket, flush durability.

        Idempotent (a second call is a no-op) and bounded (the serve
        thread is joined for at most ``join_timeout`` seconds), so a
        supervisor cycling servers rapidly can always make progress.
        The listening socket is ``SO_REUSEADDR``, so a successor may
        rebind the same port immediately.
        """
        with self._shutdown_lock:
            if self._closed:
                return
            self._closed = True
        if self._thread is not None or self._serving.is_set():
            # socketserver's shutdown() handshakes with serve_forever and
            # would block forever if the serve loop never ran; only wave
            # it down when someone is (or is about to be) serving.
            self._tcp.shutdown()
        self._tcp.server_close()
        self._tcp.close_all_connections()
        if self._thread is not None:
            self._thread.join(timeout=join_timeout)
            self._thread = None
        self.engine.close()

    def __enter__(self) -> "ESDServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- request handling -----------------------------------------------------

    def metrics_text(self) -> str:
        """The unified registry rendered as Prometheus text exposition."""
        return render_prometheus(self.engine.metrics_snapshot())

    def handle_http_get(self) -> bytes:
        """Answer a literal ``GET ...`` request line (metrics scrape)."""
        return http_metrics_response(self.metrics_text())

    def handle_line(self, line: bytes) -> Dict[str, Any]:
        """Decode, admit, dispatch one request; always returns a response."""
        try:
            message = protocol.decode_line(line)
        except ProtocolError as exc:
            return protocol.error_response(exc.code, exc.message)
        request_id = message.get("id")
        if not self._admission.acquire(timeout=self.config.queue_timeout):
            self.engine.metrics.incr("rejected_overload")
            return protocol.error_response(
                protocol.OVERLOADED,
                f"server at capacity ({self.config.max_pending} pending); "
                "retry later",
                request_id,
            )
        self.engine.metrics.incr("inflight")
        try:
            return protocol.ok_response(self._dispatch(message), request_id)
        except ProtocolError as exc:
            return protocol.error_response(exc.code, exc.message, request_id)
        except (ValueError, TypeError) as exc:
            return protocol.error_response(
                protocol.INVALID_ARGUMENT, str(exc), request_id
            )
        except KeyError as exc:
            detail = exc.args[0] if exc.args else exc
            return protocol.error_response(
                protocol.NOT_FOUND, str(detail), request_id
            )
        except Exception as exc:  # never crash the connection thread
            self.engine.metrics.incr("internal_errors")
            return protocol.error_response(
                protocol.INTERNAL, f"{type(exc).__name__}: {exc}", request_id
            )
        finally:
            self.engine.metrics.incr("inflight", -1)
            self._admission.release()

    def _dispatch(self, message: Dict[str, Any]) -> Any:
        engine = self.engine
        op = message["op"]
        if op == "ping":
            return "pong"
        if op == "topk":
            return engine.topk(
                protocol.int_field(message, "k", default=10),
                protocol.int_field(message, "tau", default=2),
                metric=protocol.metric_field(message),
            )
        if op == "score":
            return engine.score(
                protocol.vertex_field(message, "u"),
                protocol.vertex_field(message, "v"),
                protocol.int_field(message, "tau", default=2),
                metric=protocol.metric_field(message),
            )
        if op == "stats":
            return engine.stats()
        if op == "update":
            action = message.get("action")
            if action not in ("insert", "delete"):
                raise ProtocolError(
                    protocol.INVALID_ARGUMENT,
                    f"field 'action' must be 'insert' or 'delete', got {action!r}",
                )
            return engine.update(
                action,
                protocol.vertex_field(message, "u"),
                protocol.vertex_field(message, "v"),
            )
        if op == "watch":
            return engine.watch(
                protocol.int_field(message, "k", default=10),
                protocol.int_field(message, "tau", default=2),
                metric=protocol.metric_field(message),
            )
        if op == "changes":
            return engine.changes(protocol.int_field(message, "watch_id"))
        if op == "unwatch":
            return engine.unwatch(protocol.int_field(message, "watch_id"))
        if op == "metrics":
            return engine.metrics_snapshot()
        if op == "metrics-text":
            return {"content_type": PROMETHEUS_CONTENT_TYPE,
                    "text": self.metrics_text()}
        if op == "sleep":
            # Test/bench hook: occupy an admission slot for a while so
            # backpressure behaviour is observable deterministically.
            if not self.config.debug:
                raise ProtocolError(
                    protocol.UNKNOWN_OP, "op 'sleep' requires debug mode"
                )
            seconds = message.get("seconds", 0.1)
            if not isinstance(seconds, (int, float)) or not 0 <= seconds <= 5:
                raise ProtocolError(
                    protocol.INVALID_ARGUMENT,
                    f"field 'seconds' must be in [0, 5], got {seconds!r}",
                )
            time.sleep(float(seconds))
            return {"slept": float(seconds)}
        raise ProtocolError(protocol.UNKNOWN_OP, f"unknown op: {op!r}")
