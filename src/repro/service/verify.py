"""Offline correctness checking for service responses.

The service tags every ``topk`` answer and every applied update with the
:attr:`~repro.core.maintenance.DynamicESDIndex.graph_version` it was
computed at.  Because versions advance by exactly 1 per edge mutation,
the full update log replayed onto the initial graph reconstructs the
graph at *any* version -- so a recorded load (the bench workload, the
concurrency tests) can be audited after the fact: every response must
equal ``build_index_fast(graph_at_that_version).topk(k, τ)``.

Both ``ESDIndex.topk`` and the maintained index order results by
``(-score, edge)``, so equal inputs give byte-identical answers and the
comparison is exact, not set-based.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.core.build import build_index_fast
from repro.graph.graph import Graph

#: One applied mutation: ``(graph_version_after, action, (u, v))``.
UpdateRecord = Tuple[int, str, Tuple[Any, Any]]

#: One recorded ``topk`` response: ``(k, tau, payload_dict)``.
TopKRecord = Tuple[int, int, Dict[str, Any]]


def graph_at_version(
    initial: Graph,
    updates: Iterable[UpdateRecord],
    version: int,
    base_version: int = 0,
) -> Graph:
    """Replay ``updates`` (sorted by version) up to ``version``.

    ``initial`` is the graph at ``base_version``; updates at versions
    ``base_version+1 .. version`` are applied in order.  Raises
    ``ValueError`` on gaps, so a lost update record is loud.
    """
    graph = initial.copy()
    expected = base_version + 1
    for record_version, action, (u, v) in sorted(updates):
        if record_version > version:
            break
        if record_version != expected:
            raise ValueError(
                f"update log gap: expected version {expected}, "
                f"got {record_version}"
            )
        expected += 1
        if action == "insert":
            graph.add_edge(u, v)
        elif action == "delete":
            graph.remove_edge(u, v)
        else:
            raise ValueError(f"unknown action in update log: {action!r}")
    if expected <= version:
        raise ValueError(
            f"update log ends at version {expected - 1}, need {version}"
        )
    return graph


def verify_topk_responses(
    initial: Graph,
    updates: Sequence[UpdateRecord],
    responses: Sequence[TopKRecord],
    base_version: int = 0,
) -> List[str]:
    """Audit recorded ``topk`` payloads against from-scratch recomputes.

    Returns a list of human-readable mismatch descriptions (empty =
    every response was exactly correct at its graph version).  Builds
    one fresh index per distinct version, so cost scales with the number
    of versions actually queried, not the number of responses.
    """
    by_version: Dict[int, List[TopKRecord]] = {}
    for record in responses:
        by_version.setdefault(record[2]["graph_version"], []).append(record)

    mismatches: List[str] = []
    for version in sorted(by_version):
        graph = graph_at_version(initial, updates, version, base_version)
        index = build_index_fast(graph)
        expected_cache: Dict[Tuple[int, int], List[List[Any]]] = {}
        for k, tau, payload in by_version[version]:
            expected = expected_cache.get((k, tau))
            if expected is None:
                expected = [
                    [u, v, score] for (u, v), score in index.topk(k, tau)
                ]
                expected_cache[(k, tau)] = expected
            if payload["items"] != expected:
                mismatches.append(
                    f"topk(k={k}, tau={tau}) at version {version}: "
                    f"served {payload['items']!r} != expected {expected!r}"
                )
    return mismatches
