"""Core data structures: union-find, lazy heaps, order-statistic treaps."""

from repro.structures.dsu import DisjointSet, EdgeComponentSets
from repro.structures.heap import LazyMaxHeap
from repro.structures.treap import OrderStatTreap

__all__ = ["DisjointSet", "EdgeComponentSets", "LazyMaxHeap", "OrderStatTreap"]
