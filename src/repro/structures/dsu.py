"""Disjoint-set (union-find) structures.

Two flavours live here:

* :class:`DisjointSet` -- a classic union-find over an arbitrary universe
  of hashable elements, with path halving and union by size.  Its amortized
  cost per operation is ``O(gamma(n))`` where ``gamma`` is the inverse
  Ackermann function, matching the bound used throughout the paper's
  complexity analysis.

* :class:`EdgeComponentSets` -- the paper's per-edge disjoint-set map
  ``M_uv`` (Algorithm 3, lines 1-4).  For an edge ``(u, v)`` it partitions
  the common neighborhood ``N(uv)`` into the connected components of the
  edge ego-network ``G_N(uv)``, and tracks the size (``count``) of each
  component so component-size multisets can be read off without a BFS.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Hashable, Iterable, Iterator, List


class DisjointSet:
    """Union-find over hashable elements with path halving + union by size.

    Elements are added lazily by :meth:`add` or on first use by
    :meth:`union`.  :meth:`find` raises ``KeyError`` for unknown elements so
    that silent mistakes in callers surface early.
    """

    __slots__ = ("_parent", "_size", "_count")

    def __init__(self, elements: Iterable[Hashable] = ()) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}
        self._count = 0
        for x in elements:
            self.add(x)

    def add(self, x: Hashable) -> None:
        """Add ``x`` as a singleton set (no-op if already present)."""
        if x not in self._parent:
            self._parent[x] = x
            self._size[x] = 1
            self._count += 1

    def __contains__(self, x: Hashable) -> bool:
        return x in self._parent

    def __len__(self) -> int:
        """Number of elements (not sets) currently tracked."""
        return len(self._parent)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._parent)

    @property
    def set_count(self) -> int:
        """Number of disjoint sets."""
        return self._count

    def find(self, x: Hashable) -> Hashable:
        """Return the canonical representative of ``x``'s set."""
        parent = self._parent
        root = x
        while parent[root] != root:
            # Path halving: point every other node at its grandparent.
            parent[root] = parent[parent[root]]
            root = parent[root]
        return root

    def union(self, x: Hashable, y: Hashable) -> bool:
        """Merge the sets of ``x`` and ``y``; return True if they differed.

        Unknown elements are added as singletons first.
        """
        self.add(x)
        self.add(y)
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        if self._size[rx] < self._size[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        self._size[rx] += self._size[ry]
        del self._size[ry]
        self._count -= 1
        return True

    def connected(self, x: Hashable, y: Hashable) -> bool:
        """True if ``x`` and ``y`` are in the same set."""
        return self.find(x) == self.find(y)

    def size_of(self, x: Hashable) -> int:
        """Size of the set containing ``x``."""
        return self._size[self.find(x)]

    def roots(self) -> List[Hashable]:
        """Canonical representatives of all sets."""
        return [x for x in self._parent if self.find(x) == x]

    def component_sizes(self) -> List[int]:
        """Sizes of all sets (unordered multiset as a list)."""
        return list(self._size.values())

    def groups(self) -> Dict[Hashable, List[Hashable]]:
        """Mapping root -> members, materializing the full partition."""
        out: Dict[Hashable, List[Hashable]] = {}
        for x in self._parent:
            out.setdefault(self.find(x), []).append(x)
        return out


class EdgeComponentSets:
    """The per-edge disjoint-set structure ``M_uv`` from the paper.

    For one edge ``(u, v)``, this partitions the common neighbors
    ``w in N(uv)`` into the connected components of the ego-network
    ``G_N(uv)``.  It mirrors the paper's fields: each member ``w`` has a
    ``root`` pointer and roots carry a ``count`` (Algorithm 3 lines 2-4,
    25-35).  On top of the plain union-find it supports the maintenance
    primitives of Algorithms 4 and 5: adding a member, removing a
    *singleton* member, and being rebuilt from an explicit member/edge set.
    """

    __slots__ = ("_dsu",)

    def __init__(self, members: Iterable[Hashable] = ()) -> None:
        self._dsu = DisjointSet(members)

    # -- membership -------------------------------------------------------

    def add(self, w: Hashable) -> None:
        """Insert ``w`` as an isolated (size-1) component."""
        self._dsu.add(w)

    def discard_singleton(self, w: Hashable) -> bool:
        """Remove ``w`` iff it is an isolated component; return success.

        Algorithm 5 (lines 6-9) only ever deletes members whose component is
        a singleton; removing a non-singleton member would require splitting
        a set, which union-find cannot do -- callers rebuild instead.
        """
        if w not in self._dsu:
            return False
        if self._dsu.size_of(w) != 1:
            return False
        # Safe to physically delete: w is its own root with count 1.
        del self._dsu._parent[w]
        del self._dsu._size[w]
        self._dsu._count -= 1
        return True

    def __contains__(self, w: Hashable) -> bool:
        return w in self._dsu

    def __len__(self) -> int:
        return len(self._dsu)

    def members(self) -> List[Hashable]:
        """All tracked common neighbors."""
        return list(self._dsu)

    # -- component structure ----------------------------------------------

    def union(self, w1: Hashable, w2: Hashable) -> bool:
        """Merge the components of two common neighbors."""
        return self._dsu.union(w1, w2)

    def find(self, w: Hashable) -> Hashable:
        """Canonical representative of ``w``'s component."""
        return self._dsu.find(w)

    def connected(self, w1: Hashable, w2: Hashable) -> bool:
        """True if the two common neighbors share a component."""
        return self._dsu.connected(w1, w2)

    def component_count(self) -> int:
        """Number of connected components in the ego-network."""
        return self._dsu.set_count

    def component_sizes(self) -> List[int]:
        """Multiset of component sizes of ``G_N(uv)``."""
        return self._dsu.component_sizes()

    def size_histogram(self) -> Counter:
        """Counter mapping component size -> number of components."""
        return Counter(self._dsu.component_sizes())

    def component_of(self, w: Hashable) -> List[Hashable]:
        """Members of the component containing ``w``."""
        root = self._dsu.find(w)
        return [x for x in self._dsu if self._dsu.find(x) == root]

    def groups(self) -> Dict[Hashable, List[Hashable]]:
        """Mapping root -> component members."""
        return self._dsu.groups()

    def score(self, tau: int) -> int:
        """Number of components with size >= tau (Definition 2)."""
        if tau < 1:
            raise ValueError(f"tau must be >= 1, got {tau}")
        return sum(1 for s in self._dsu.component_sizes() if s >= tau)

    def replace_members(
        self, members: Iterable[Hashable], edges: Iterable[tuple]
    ) -> None:
        """Rebuild from scratch: ``members`` partitioned by ``edges``.

        This is the ``T_{w1w2}`` rebuild of Algorithm 5's Update procedure,
        generalized to the whole structure.
        """
        self._dsu = DisjointSet(members)
        for a, b in edges:
            self._dsu.union(a, b)

    def rebuild_component(
        self, anchor: Hashable, edges: Iterable[tuple]
    ) -> None:
        """Re-partition the component containing ``anchor`` using ``edges``.

        Implements the core of Algorithm 5's ``Update`` procedure: the old
        component ``S`` containing ``anchor`` is dissolved, its members are
        re-inserted as singletons, and the surviving ``edges`` (pairs of
        members of ``S``) are union-ed back in.  Members outside ``S`` are
        untouched.  Edges with an endpoint outside ``S`` are ignored, which
        is safe because a deleted graph edge can only split, never extend,
        the component.
        """
        if anchor not in self._dsu:
            return
        component = set(self.component_of(anchor))
        parent, size = self._dsu._parent, self._dsu._size
        for w in component:
            parent[w] = w
            size[w] = 1
        self._dsu._count += len(component) - 1
        for a, b in edges:
            if a in component and b in component:
                self._dsu.union(a, b)

    def replace_partition(self, groups: Iterable[List[Hashable]]) -> None:
        """Install an explicit partition, replacing all current state.

        Unlike :meth:`replace_members` the components are given directly
        (no edge scan): the kernel maintenance path derives the partition
        from a bitset flood fill and installs it here.  Mutates the
        structure in place so holders of this object (via
        ``DynamicESDIndex.components_of``) keep seeing live state.
        """
        parent: Dict[Hashable, Hashable] = {}
        size: Dict[Hashable, int] = {}
        count = 0
        for group in groups:
            root = group[0]
            for w in group:
                parent[w] = root
            size[root] = len(group)
            count += 1
        dsu = self._dsu
        dsu._parent = parent
        dsu._size = size
        dsu._count = count

    def copy(self) -> "EdgeComponentSets":
        """Independent deep copy of the structure."""
        clone = EdgeComponentSets()
        clone._dsu._parent = dict(self._dsu._parent)
        clone._dsu._size = dict(self._dsu._size)
        clone._dsu._count = self._dsu._count
        return clone
