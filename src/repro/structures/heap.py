"""Priority queues for the dequeue-twice search framework.

The paper's Algorithm 1 maintains a max-priority queue over all edges where
an edge's priority is first its upper bound and later its exact score.
Python's :mod:`heapq` is a min-heap with no decrease-key, so
:class:`LazyMaxHeap` implements the standard lazy-update scheme: pushing an
item again supersedes the old entry, and stale entries are skipped on pop.
This preserves the amortized ``O(log m)`` per-operation bound used in
Theorem 2 (each edge is pushed at most twice in Algorithm 1, so the heap
never holds more than ``2m`` entries).
"""

from __future__ import annotations

import heapq
from typing import Dict, Generic, Hashable, List, Optional, Tuple, TypeVar

T = TypeVar("T", bound=Hashable)


class LazyMaxHeap(Generic[T]):
    """Max-heap over hashable items with lazy priority updates.

    Ties are broken by the item's natural ordering (ascending), making pops
    deterministic -- important for reproducible top-k output when many
    edges share a score.
    """

    __slots__ = ("_heap", "_priority", "_stale")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, T]] = []
        self._priority: Dict[T, float] = {}
        self._stale = 0

    def __len__(self) -> int:
        return len(self._priority)

    def __bool__(self) -> bool:
        return bool(self._priority)

    def __contains__(self, item: T) -> bool:
        return item in self._priority

    def priority_of(self, item: T) -> Optional[float]:
        """Current priority of ``item`` or None if absent."""
        return self._priority.get(item)

    def push(self, item: T, priority: float) -> None:
        """Insert ``item`` or update its priority (last write wins)."""
        self._priority[item] = priority
        # Negate for max-heap behaviour on heapq's min-heap.
        heapq.heappush(self._heap, (-priority, item))

    def pop(self) -> Tuple[T, float]:
        """Remove and return ``(item, priority)`` with the max priority.

        Raises ``IndexError`` when empty.
        """
        while self._heap:
            neg, item = heapq.heappop(self._heap)
            current = self._priority.get(item)
            if current is not None and current == -neg:
                del self._priority[item]
                return item, current
            self._stale += 1
        raise IndexError("pop from empty LazyMaxHeap")

    def peek(self) -> Tuple[T, float]:
        """Return the max entry without removing it."""
        while self._heap:
            neg, item = self._heap[0]
            current = self._priority.get(item)
            if current is not None and current == -neg:
                return item, current
            heapq.heappop(self._heap)
            self._stale += 1
        raise IndexError("peek from empty LazyMaxHeap")

    def discard(self, item: T) -> bool:
        """Remove ``item`` lazily; return True if it was present."""
        if item in self._priority:
            del self._priority[item]
            return True
        return False

    @property
    def stale_skips(self) -> int:
        """Instrumentation: number of stale heap entries skipped so far."""
        return self._stale
