"""Order-statistic treap: the "self-balance binary search tree" of the paper.

The ESDIndex keeps, for every component size ``c``, a list ``H(c)`` of
edges sorted by structural diversity.  The paper stores each ``H(c)`` in a
self-balancing binary search tree so that insertions, deletions and top-k
extraction are all logarithmic.  :class:`OrderStatTreap` provides exactly
that: a set of totally-ordered keys supporting

* ``insert`` / ``remove`` in expected ``O(log n)``,
* ``kth(i)`` (i-th smallest, 0-based) in expected ``O(log n)``,
* ``smallest(k)`` -- the first ``k`` keys in order, in ``O(k + log n)``,
* ``rank(key)`` and ordered iteration.

Priorities are drawn from a per-instance :class:`random.Random` seeded at
construction, so tree shape (and therefore timing) is reproducible while
remaining balanced in expectation.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, Iterator, List, Optional


class _Node:
    __slots__ = ("key", "prio", "left", "right", "size")

    def __init__(self, key: Any, prio: float) -> None:
        self.key = key
        self.prio = prio
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None
        self.size = 1


def _size(node: Optional[_Node]) -> int:
    return node.size if node is not None else 0


def _pull(node: _Node) -> None:
    node.size = 1 + _size(node.left) + _size(node.right)


class OrderStatTreap:
    """A set of totally-ordered keys with order statistics.

    Duplicate keys are rejected with ``KeyError`` -- ESDIndex keys embed the
    edge id, so every key is unique by construction.
    """

    __slots__ = ("_root", "_rng")

    def __init__(self, keys: Iterable[Any] = (), seed: int = 0x5EED) -> None:
        self._root: Optional[_Node] = None
        self._rng = random.Random(seed)
        for key in keys:
            self.insert(key)

    @classmethod
    def from_sorted(
        cls, sorted_keys: List[Any], seed: int = 0x5EED
    ) -> "OrderStatTreap":
        """Build in O(n) from strictly-increasing keys.

        A balanced tree is built by midpoint recursion; drawing the random
        priorities in descending order and handing them out in *preorder*
        guarantees every parent outranks its children, so the result is a
        valid treap and later inserts/removals stay logarithmic.
        """
        treap = cls(seed=seed)
        n = len(sorted_keys)
        if n == 0:
            return treap
        priorities = sorted((treap._rng.random() for _ in range(n)), reverse=True)
        next_prio = iter(priorities)

        def build(lo: int, hi: int) -> Optional[_Node]:
            if lo >= hi:
                return None
            mid = (lo + hi) // 2
            node = _Node(sorted_keys[mid], next(next_prio))
            node.left = build(lo, mid)
            node.right = build(mid + 1, hi)
            node.size = hi - lo
            return node

        treap._root = build(0, n)
        return treap

    def __len__(self) -> int:
        return _size(self._root)

    def __bool__(self) -> bool:
        return self._root is not None

    def __contains__(self, key: Any) -> bool:
        node = self._root
        while node is not None:
            if key < node.key:
                node = node.left
            elif node.key < key:
                node = node.right
            else:
                return True
        return False

    def __iter__(self) -> Iterator[Any]:
        """In-order (ascending) iteration over all keys."""
        stack: List[_Node] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key
            node = node.right

    # -- split/merge core ---------------------------------------------------

    def _merge(self, a: Optional[_Node], b: Optional[_Node]) -> Optional[_Node]:
        """Merge two treaps where every key of ``a`` < every key of ``b``."""
        if a is None:
            return b
        if b is None:
            return a
        if a.prio > b.prio:
            a.right = self._merge(a.right, b)
            _pull(a)
            return a
        b.left = self._merge(a, b.left)
        _pull(b)
        return b

    def _split(self, node: Optional[_Node], key: Any):
        """Split into (< key, >= key)."""
        if node is None:
            return None, None
        if node.key < key:
            left, right = self._split(node.right, key)
            node.right = left
            _pull(node)
            return node, right
        left, right = self._split(node.left, key)
        node.left = right
        _pull(node)
        return left, node

    # -- public operations ----------------------------------------------------

    def insert(self, key: Any) -> None:
        """Insert ``key``; raises KeyError if already present."""
        if key in self:
            raise KeyError(f"duplicate key: {key!r}")
        node = _Node(key, self._rng.random())
        left, right = self._split(self._root, key)
        self._root = self._merge(self._merge(left, node), right)

    def remove(self, key: Any) -> None:
        """Remove ``key``; raises KeyError if absent."""
        self._root, removed = self._remove(self._root, key)
        if not removed:
            raise KeyError(f"key not found: {key!r}")

    def _remove(self, node: Optional[_Node], key: Any):
        if node is None:
            return None, False
        if key < node.key:
            node.left, removed = self._remove(node.left, key)
        elif node.key < key:
            node.right, removed = self._remove(node.right, key)
        else:
            return self._merge(node.left, node.right), True
        if removed:
            _pull(node)
        return node, removed

    def discard(self, key: Any) -> bool:
        """Remove ``key`` if present; return whether it was removed."""
        self._root, removed = self._remove(self._root, key)
        return removed

    def kth(self, index: int) -> Any:
        """Return the ``index``-th smallest key (0-based)."""
        if not 0 <= index < len(self):
            raise IndexError(f"index {index} out of range for size {len(self)}")
        node = self._root
        while node is not None:
            left = _size(node.left)
            if index < left:
                node = node.left
            elif index == left:
                return node.key
            else:
                index -= left + 1
                node = node.right
        raise AssertionError("unreachable: size bookkeeping corrupted")

    def rank(self, key: Any) -> int:
        """Number of keys strictly smaller than ``key``."""
        node = self._root
        count = 0
        while node is not None:
            if key < node.key:
                node = node.left
            elif node.key < key:
                count += _size(node.left) + 1
                node = node.right
            else:
                return count + _size(node.left)
        return count

    def smallest(self, k: int) -> List[Any]:
        """The first ``min(k, n)`` keys in ascending order, in O(k + log n)."""
        if k <= 0:
            return []
        out: List[Any] = []
        stack: List[_Node] = []
        node = self._root
        while (stack or node is not None) and len(out) < k:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            out.append(node.key)
            node = node.right
        return out

    def min(self) -> Any:
        """Smallest key; raises IndexError when empty."""
        if self._root is None:
            raise IndexError("min of empty treap")
        node = self._root
        while node.left is not None:
            node = node.left
        return node.key

    def max(self) -> Any:
        """Largest key; raises IndexError when empty."""
        if self._root is None:
            raise IndexError("max of empty treap")
        node = self._root
        while node.right is not None:
            node = node.right
        return node.key

    def clear(self) -> None:
        """Remove every key."""
        self._root = None

    def check_invariants(self) -> None:
        """Validate BST order, heap priorities and subtree sizes (testing)."""
        def walk(node: Optional[_Node], lo: Any, hi: Any) -> int:
            if node is None:
                return 0
            assert lo is None or lo < node.key, "BST order violated (low)"
            assert hi is None or node.key < hi, "BST order violated (high)"
            for child in (node.left, node.right):
                if child is not None:
                    assert child.prio <= node.prio, "heap priority violated"
            size = 1 + walk(node.left, lo, node.key) + walk(node.right, node.key, hi)
            assert size == node.size, "size bookkeeping violated"
            return size

        walk(self._root, None, None)
