"""Tests for betweenness, community detection and contagion."""

from itertools import combinations

import pytest

from repro.analytics import (
    communities_from_labels,
    communities_touched,
    diversity_cascade,
    edge_betweenness,
    expected_reach,
    label_propagation,
)
from repro.graph import Graph, planted_partition


def brute_force_edge_betweenness(graph: Graph):
    """O(n^3)-ish reference: enumerate shortest paths via BFS per pair."""
    from collections import deque

    scores = {edge: 0.0 for edge in graph.edges()}
    vertices = sorted(graph.vertices())
    for s, t in combinations(vertices, 2):
        # BFS layers from s.
        dist = {s: 0}
        queue = deque([s])
        while queue:
            v = queue.popleft()
            for w in graph.neighbors(v):
                if w not in dist:
                    dist[w] = dist[v] + 1
                    queue.append(w)
        if t not in dist:
            continue
        # Count shortest paths through each edge by DP.
        sigma = {s: 1}
        order = sorted(dist, key=dist.get)
        for v in order:
            if v == s:
                continue
            sigma[v] = sum(
                sigma[u]
                for u in graph.neighbors(v)
                if dist.get(u) == dist[v] - 1
            )
        # Paths from t backwards.
        sigma_t = {t: 1}
        for v in sorted(dist, key=dist.get, reverse=True):
            if v == t:
                continue
            sigma_t[v] = sum(
                sigma_t[u]
                for u in graph.neighbors(v)
                if dist.get(u) == dist[v] + 1
            )
        total = sigma[t]
        for u, v in graph.edges():
            du, dv = dist.get(u), dist.get(v)
            if du is None or dv is None:
                continue
            if du + 1 == dv and v in sigma_t and dist[v] <= dist[t]:
                through = sigma[u] * sigma_t.get(v, 0)
            elif dv + 1 == du and u in sigma_t and dist[u] <= dist[t]:
                through = sigma[v] * sigma_t.get(u, 0)
            else:
                through = 0
            if through:
                scores[(u, v)] += through / total
    return scores


class TestEdgeBetweenness:
    def test_path_graph(self, path4):
        scores = edge_betweenness(path4, normalized=False)
        # Middle edge carries pairs {0,1}x{2,3} plus its endpoints' pairs.
        assert scores[(1, 2)] == pytest.approx(4.0)
        assert scores[(0, 1)] == pytest.approx(3.0)

    def test_triangle_symmetric(self, triangle):
        scores = edge_betweenness(triangle, normalized=False)
        assert all(s == pytest.approx(1.0) for s in scores.values())

    def test_normalization(self, path4):
        raw = edge_betweenness(path4, normalized=False)
        norm = edge_betweenness(path4, normalized=True)
        pairs = 4 * 3 / 2
        for edge in raw:
            assert norm[edge] == pytest.approx(raw[edge] / pairs)

    def test_matches_brute_force(self, fig1):
        fast = edge_betweenness(fig1, normalized=False)
        slow = brute_force_edge_betweenness(fig1)
        for edge in fast:
            assert fast[edge] == pytest.approx(slow[edge], rel=1e-9)

    def test_disconnected_graph(self):
        g = Graph([(0, 1), (2, 3)])
        scores = edge_betweenness(g, normalized=False)
        assert scores[(0, 1)] == pytest.approx(1.0)


class TestLabelPropagation:
    def test_planted_blocks_recovered(self):
        g = planted_partition(3, 15, p_in=0.6, p_out=0.005, seed=2)
        labels = label_propagation(g, seed=1)
        comms = communities_from_labels(labels)
        big = [c for c in comms if len(c) >= 10]
        assert len(big) == 3

    def test_labels_cover_vertices(self, fig1):
        labels = label_propagation(fig1, seed=0)
        assert set(labels) == set(fig1.vertices())

    def test_communities_touched(self):
        labels = {1: 0, 2: 0, 3: 1, 4: 2}
        assert communities_touched(labels, {1, 2}) == 1
        assert communities_touched(labels, {1, 3, 4}) == 3
        assert communities_touched(labels, {99}) == 0


class TestContagion:
    def test_cascade_spreads_on_clique(self, k5):
        result = diversity_cascade(k5, seeds=[0], adoption_rate=0.9, seed=1)
        assert result.size >= 4

    def test_zero_rate_never_spreads(self, k5):
        result = diversity_cascade(k5, seeds=[0], adoption_rate=0.0, seed=1)
        assert result.adopted == {0}

    def test_unknown_seeds_ignored(self, triangle):
        result = diversity_cascade(triangle, seeds=[99], adoption_rate=0.5)
        assert result.size == 0

    def test_rate_validation(self, triangle):
        with pytest.raises(ValueError):
            diversity_cascade(triangle, [0], adoption_rate=1.5)

    def test_expected_reach_deterministic(self, k5):
        a = expected_reach(k5, [0], trials=5, seed=3)
        b = expected_reach(k5, [0], trials=5, seed=3)
        assert a == b
        with pytest.raises(ValueError):
            expected_reach(k5, [0], trials=0)

    def test_diverse_seeds_reach_more(self):
        """Seeding across two blocks reaches more than inside one."""
        g = planted_partition(2, 20, p_in=0.4, p_out=0.01, seed=5)
        inside = expected_reach(g, [0, 1], trials=8, adoption_rate=0.25, seed=7)
        across = expected_reach(g, [0, 20], trials=8, adoption_rate=0.25, seed=7)
        assert across >= inside * 0.8  # noisy, but across should not collapse
