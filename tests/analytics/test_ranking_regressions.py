"""Regressions: mixed-label tie-breaks and the normalization boundary.

Both top-k rankers used to break ties with the raw edge tuple, which
raises ``TypeError`` the moment two tied edges carry vertex labels of
different types -- perfectly legal input, since a graph may hold an
``int``-labelled component next to a ``str``-labelled one (only a
single *edge* must be homogeneous for :func:`canonical_edge`).
"""

import pytest

from repro.analytics.betweenness import (
    betweenness_normalization,
    edge_betweenness,
    topk_edge_betweenness,
)
from repro.analytics.truss import topk_truss_edges
from repro.graph import Graph


def mixed_label_graph() -> Graph:
    """Two int triangles and one str triangle: three-way ties everywhere."""
    return Graph(
        [
            (1, 2), (2, 3), (1, 3),
            (4, 5), (5, 6), (4, 6),
            ("a", "b"), ("b", "c"), ("a", "c"),
        ]
    )


class TestMixedLabelTieBreak:
    def test_truss_topk_does_not_raise_and_is_deterministic(self):
        graph = mixed_label_graph()
        ranked = topk_truss_edges(graph, 9)
        assert all(score == 3 for _, score in ranked)
        # Type-tagged order: int edges (type name "int") before str ones.
        assert [edge for edge, _ in ranked] == [
            (1, 2), (1, 3), (2, 3),
            (4, 5), (4, 6), (5, 6),
            ("a", "b"), ("a", "c"), ("b", "c"),
        ]

    def test_betweenness_topk_does_not_raise(self):
        graph = mixed_label_graph()
        ranked = topk_edge_betweenness(graph, 9)
        assert len(ranked) == 9
        assert ranked == topk_edge_betweenness(graph, 9)  # deterministic


class TestNormalizationBoundary:
    def test_divisor_values(self):
        assert betweenness_normalization(0) == 0.0
        assert betweenness_normalization(1) == 0.0
        assert betweenness_normalization(2) == 1.0
        assert betweenness_normalization(3) == 3.0

    def test_n2_takes_the_normalized_branch(self):
        # One edge, one shortest path: raw betweenness 1.0, and the
        # n=2 divisor is n(n-1)/2 = 1.0 -- the fixed guard must route
        # through it rather than skipping normalization for n <= 2.
        graph = Graph([(0, 1)])
        assert edge_betweenness(graph, normalized=True) == {(0, 1): 1.0}
        assert edge_betweenness(graph, normalized=False) == {(0, 1): 1.0}

    def test_n3_path_normalizes_by_three(self):
        graph = Graph([(0, 1), (1, 2)])
        raw = edge_betweenness(graph, normalized=False)
        normalized = edge_betweenness(graph, normalized=True)
        assert raw == {(0, 1): 2.0, (1, 2): 2.0}
        assert normalized == pytest.approx(
            {edge: score / 3.0 for edge, score in raw.items()}
        )
