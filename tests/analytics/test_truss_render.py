"""Tests for truss decomposition and ego-network rendering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics import (
    k_truss_subgraph,
    max_truss,
    render_ego_network,
    topk_truss_edges,
    truss_numbers,
)
from repro.graph import Graph

edge_lists = st.lists(
    st.tuples(st.integers(0, 10), st.integers(0, 10)).filter(lambda e: e[0] != e[1]),
    min_size=1,
    max_size=35,
)


class TestTrussNumbers:
    def test_triangle_free_is_truss_two(self, path4):
        assert set(truss_numbers(path4).values()) == {2}

    def test_triangle(self, triangle):
        assert set(truss_numbers(triangle).values()) == {3}

    def test_k5_is_five_truss(self, k5):
        assert set(truss_numbers(k5).values()) == {5}
        assert max_truss(k5) == 5

    def test_clique_plus_tail(self):
        g = Graph([(a, b) for a in range(4) for b in range(a + 1, 4)])
        g.add_edge(3, 9)
        numbers = truss_numbers(g)
        assert numbers[(3, 9)] == 2
        assert all(
            numbers[e] == 4 for e in numbers if e != (3, 9)
        )

    def test_fig1_six_clique_core(self, fig1):
        numbers = truss_numbers(fig1)
        clique = {"j", "k", "p", "q", "u", "v"}
        for (u, v), t in numbers.items():
            if {u, v} <= clique:
                assert t == 6

    def test_empty_graph(self):
        assert truss_numbers(Graph()) == {}
        assert max_truss(Graph()) == 0

    @settings(max_examples=25, deadline=None)
    @given(edge_lists, st.integers(2, 5))
    def test_k_truss_defining_property(self, edges, k):
        """Every edge of the k-truss closes >= k-2 triangles inside it."""
        g = Graph(edges)
        sub = k_truss_subgraph(g, k)
        for u, v in sub.edges():
            assert len(sub.common_neighbors(u, v)) >= k - 2

    @settings(max_examples=25, deadline=None)
    @given(edge_lists)
    def test_truss_number_is_peel_consistent(self, edges):
        """The k-truss computed from truss numbers is maximal: adding any
        removed edge back would violate the support requirement...
        checked via monotonicity: (k+1)-truss ⊆ k-truss."""
        g = Graph(edges)
        numbers = truss_numbers(g)
        if not numbers:
            return
        top = max(numbers.values())
        previous = None
        for k in range(2, top + 1):
            sub = set(k_truss_subgraph(g, k).edges())
            if previous is not None:
                assert sub <= previous
            previous = sub

    def test_topk_and_validation(self, fig1):
        top = topk_truss_edges(fig1, 3)
        assert len(top) == 3
        assert all(t == 6 for _, t in top)
        with pytest.raises(ValueError):
            topk_truss_edges(fig1, 0)
        with pytest.raises(ValueError):
            k_truss_subgraph(fig1, 1)


class TestRenderEgoNetwork:
    def test_fig1_fg(self, fig1):
        text = render_ego_network(fig1, "f", "g", tau=2)
        assert "score 2 at tau=2" in text
        assert "component 1 (size 2)" in text
        assert "d-e" in text or "{d, e}" in text

    def test_below_threshold_section(self, fig1):
        text = render_ego_network(fig1, "b", "c", tau=2)
        assert "score 0" in text
        assert "below threshold" in text

    def test_empty_ego(self):
        g = Graph([(0, 1)])
        assert "(empty ego-network)" in render_ego_network(g, 0, 1)

    def test_labels(self, fig1):
        text = render_ego_network(
            fig1, "f", "g", labels={"d": "Dana", "e": "Eli"}
        )
        assert "Dana" in text
        assert "Eli" in text

    def test_tau_validation(self, fig1):
        with pytest.raises(ValueError):
            render_ego_network(fig1, "f", "g", tau=0)
