"""Smoke tests for the experiment runners (tiny scale).

The full-scale runs live in ``benchmarks/``; here each runner is checked
for structure and its headline qualitative claim at 10-20% scale, so
regressions in the harness surface in the unit suite.
"""

import pytest

from repro.bench.experiments import (
    run_ablation,
    run_exp1_fig5,
    run_exp2_fig6,
    run_exp3_fig7,
    run_exp4_fig8,
    run_exp5_fig10,
    run_exp5_fig9,
    run_exp6_fig11,
    run_exp7_fig12,
    run_exp8_fig13,
    run_table1,
)

SCALE = 0.12


@pytest.fixture(autouse=True)
def _small_maintenance(monkeypatch):
    # Keep the Exp-6 smoke run fast.
    import repro.bench.experiments as experiments

    monkeypatch.setattr(experiments, "MAINTENANCE_UPDATES", 10)


def test_table1_has_five_rows():
    (table,) = run_table1(SCALE)
    assert len(table.rows) == 5
    assert table.columns == ["dataset", "n", "m", "d_max", "delta"]


def test_fig5_structure():
    tables = run_exp1_fig5(SCALE)
    assert len(tables) == 4  # 2 datasets x (k-sweep, tau-sweep)
    for table in tables:
        assert len(table.rows) == 6


def test_fig6_claims():
    size_table, time_table = run_exp2_fig6(SCALE)
    assert len(size_table.rows) == len(time_table.rows) == 5
    for row in size_table.rows:
        assert row[2] > 0  # entries


def test_fig7_speedups_trend_upward():
    tables = run_exp3_fig7(SCALE)
    for table in tables:
        speedups = [row[1] for row in table.rows]
        # At smoke scale the per-chunk timings are microsecond-noisy, so
        # only the trend is asserted (strict monotonicity is checked at
        # full scale in benchmarks/test_fig7_parallel.py).
        assert speedups[-1] >= speedups[0]
        assert all(s >= 0.75 for s in speedups)


def test_fig8_speedup_positive():
    by_k, by_tau = run_exp4_fig8(SCALE)
    assert len(by_k.rows) == 30  # 5 datasets x 6 k values
    assert len(by_tau.rows) == 30
    for row in by_k.rows:
        assert row[4] >= 1


def test_fig9_fraction_sweep():
    tables = run_exp5_fig9(SCALE)
    assert len(tables) == 2
    for table in tables:
        assert [row[0] for row in table.rows] == [
            "20%", "40%", "60%", "80%", "100%"
        ]


def test_fig10_columns():
    (table,) = run_exp5_fig10(SCALE)
    assert len(table.rows) == 5
    assert all(row[4] > 0 for row in table.rows)


def test_fig11_maintenance_cheap():
    (table,) = run_exp6_fig11(SCALE)
    for _name, build, ins, dele in table.rows:
        assert ins < build
        assert dele < build


def test_fig12_methods_present():
    (table,) = run_exp7_fig12()
    methods = [row[0] for row in table.rows]
    assert methods.count("ESD") == 5
    assert methods.count("CN") == 2
    assert methods.count("BT") == 2


def test_fig13_bank_money_top():
    (table,) = run_exp8_fig13()
    assert table.rows[0][0] == "(bank, money)"
    assert table.rows[0][1] == 6


def test_ablation_structure():
    (prune, structure, load, frameworks, orientation,
     builders) = run_ablation(SCALE)
    assert len(prune.rows) == 5
    assert len(structure.rows) == 2
    assert len(load.rows) == 2
    assert len(frameworks.rows) == 5
    assert len(orientation.rows) == 2
    assert len(builders.rows) == 2


def test_service_bench_smoke(monkeypatch):
    import repro.bench.workloads as workloads

    from repro.bench.experiments import run_service_bench

    # A scaled-down fleet keeps the unit suite fast; the full 64-client
    # run lives in benchmarks/test_service_load.py.
    monkeypatch.setattr(workloads, "SERVICE_CLIENTS", 12)
    monkeypatch.setattr(workloads, "SERVICE_REQUESTS_PER_CLIENT", 4)
    latency, summary = run_service_bench(SCALE)
    values = {row[0]: row[1] for row in summary.rows}
    assert values["incorrect topk responses"] == 0
    assert values["client-side errors"] == 0
    assert values["cache hits"] > 0
    assert values["overload rejections (probe)"] > 0
    assert values["requests served"] >= 12 * 4
