"""Tests for the benchmark harness and reporting machinery."""

import json

import pytest

from repro.bench import ExperimentTable, bench_scale, time_call
from repro.bench.harness import RESULTS_DIR, Seconds, _fmt, save_tables


class TestTimeCall:
    def test_returns_seconds(self):
        t = time_call(lambda: sum(range(100)))
        assert isinstance(t, Seconds)
        assert t >= 0

    def test_repeats_validation(self):
        with pytest.raises(ValueError):
            time_call(lambda: None, repeats=0)

    def test_best_of_repeats(self):
        calls = []
        t = time_call(lambda: calls.append(1), repeats=3)
        assert len(calls) == 3
        assert t >= 0


class TestFormatting:
    def test_seconds_units(self):
        assert _fmt(Seconds(0.0000005)).endswith("ms")
        assert _fmt(Seconds(0.5)) == "500.0ms"
        assert _fmt(Seconds(2.5)) == "2.50s"
        assert _fmt(Seconds(0)) == "0"

    def test_plain_float_no_units(self):
        assert _fmt(3.14159) == "3.14"

    def test_other_types(self):
        assert _fmt(42) == "42"
        assert _fmt("x") == "x"


class TestExperimentTable:
    def test_row_arity_checked(self):
        table = ExperimentTable("E", "t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_render_contains_all_cells(self):
        table = ExperimentTable("Fig. X", "demo", ["name", "value"])
        table.add_row("alpha", 1)
        table.add_row("beta", 22)
        table.note("a note")
        text = table.render()
        assert "Fig. X: demo" in text
        assert "alpha" in text
        assert "22" in text
        assert "note: a note" in text

    def test_as_dict_round_trips_json(self):
        table = ExperimentTable("E", "t", ["a"])
        table.add_row(Seconds(0.25))
        payload = json.dumps(table.as_dict())
        back = json.loads(payload)
        assert back["rows"] == [[0.25]]
        assert back["rendered_rows"] == [["250.0ms"]]


class TestPersistence:
    def test_save_tables_writes_files(self, tmp_path, monkeypatch):
        import repro.bench.harness as harness

        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
        table = ExperimentTable("E", "t", ["a"])
        table.add_row(1)
        path = harness.save_tables("demo", [table])
        assert path.exists()
        assert (tmp_path / "demo.txt").exists()
        record = json.loads(path.read_text())
        assert record["name"] == "demo"
        assert harness.load_results("demo") == record

    def test_load_missing_returns_none(self, tmp_path, monkeypatch):
        import repro.bench.harness as harness

        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
        assert harness.load_results("nope") is None


class TestScale:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("ESD_BENCH_SCALE", raising=False)
        assert bench_scale() == 1.0

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("ESD_BENCH_SCALE", "0.25")
        assert bench_scale() == 0.25
