"""Unit tests for the perf-regression harness (``esd bench regress``)."""

import json

import pytest

from repro.bench import regress
from repro.bench.regress import (
    DEFAULT_TOLERANCE,
    compare,
    find_baseline,
    run_and_persist,
    run_regress,
)


def payload_with(speedup, median, suite="quick", op="build_index_fast"):
    return {
        "bench": "X",
        "suites": {
            suite: {
                "workload": {"n": 10, "m": 9, "k": 2, "tau": 1},
                "ops": {
                    op: {
                        "csr_median_s": median,
                        "set_median_s": median * speedup,
                        "speedup": speedup,
                        "repeats": 3,
                    }
                },
            }
        },
    }


class TestCompare:
    def test_speedup_ok_within_tolerance(self):
        result = compare(
            payload_with(1.9, 0.01), payload_with(2.0, 0.01), metric="speedup"
        )
        assert result["regressions"] == []
        assert result["entries"][0]["status"] == "ok"

    def test_speedup_regression_beyond_tolerance(self):
        result = compare(
            payload_with(1.0, 0.01),
            payload_with(2.0, 0.01),
            tolerance=0.25,
            metric="speedup",
        )
        assert result["regressions"] == ["quick/build_index_fast"]
        entry = result["entries"][0]
        assert entry["status"] == "regression"
        assert entry["ratio"] == pytest.approx(0.5)

    def test_speedup_improvement_never_fails(self):
        result = compare(
            payload_with(5.0, 0.01), payload_with(2.0, 0.01), metric="speedup"
        )
        assert result["regressions"] == []

    def test_median_regression_is_slower_time(self):
        result = compare(
            payload_with(2.0, 0.05),
            payload_with(2.0, 0.01),
            tolerance=0.25,
            metric="median",
        )
        assert result["regressions"] == ["quick/build_index_fast"]

    def test_median_faster_time_is_ok(self):
        result = compare(
            payload_with(2.0, 0.005),
            payload_with(2.0, 0.01),
            metric="median",
        )
        assert result["regressions"] == []

    def test_ungated_op_reported_noisy_not_failed(self, monkeypatch):
        monkeypatch.setattr(regress, "UNGATED_OPS", ("build_index_fast",))
        result = compare(
            payload_with(1.0, 0.01),
            payload_with(2.0, 0.01),
            tolerance=0.25,
            metric="speedup",
        )
        assert result["regressions"] == []
        assert result["entries"][0]["status"] == "noisy"

    def test_new_op_reported_not_failed(self):
        current = payload_with(2.0, 0.01)
        current["suites"]["quick"]["ops"]["novel_op"] = {
            "csr_median_s": 1.0,
            "set_median_s": 1.0,
            "speedup": 1.0,
            "repeats": 3,
        }
        result = compare(current, payload_with(2.0, 0.01))
        statuses = {e["op"]: e["status"] for e in result["entries"]}
        assert statuses["novel_op"] == "new"
        assert result["regressions"] == []

    def test_missing_suite_skipped(self):
        current = payload_with(2.0, 0.01, suite="full")
        baseline = payload_with(2.0, 0.01, suite="quick")
        result = compare(current, baseline)
        assert result["entries"] == []
        assert result["regressions"] == []

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            compare(
                payload_with(2.0, 0.01),
                payload_with(2.0, 0.01),
                metric="p99",
            )

    def test_default_tolerance_is_25_percent(self):
        assert DEFAULT_TOLERANCE == 0.25


class TestFindBaseline:
    @staticmethod
    def _regress_record(path):
        path.write_text(json.dumps({"suites": {}}))

    def test_picks_newest_other_bench_file(self, tmp_path, monkeypatch):
        monkeypatch.setattr(regress, "REPO_ROOT", tmp_path)
        self._regress_record(tmp_path / "BENCH_PR4.json")
        self._regress_record(tmp_path / "BENCH_PR5.json")
        assert find_baseline(tmp_path / "BENCH_PR5.json") == (
            tmp_path / "BENCH_PR4.json"
        )

    def test_none_when_no_other_files(self, tmp_path, monkeypatch):
        monkeypatch.setattr(regress, "REPO_ROOT", tmp_path)
        self._regress_record(tmp_path / "BENCH_PR5.json")
        assert find_baseline(tmp_path / "BENCH_PR5.json") is None

    def test_orders_numerically_not_lexically(self, tmp_path, monkeypatch):
        # Lexically BENCH_PR10 < BENCH_PR7; the finder must not fall
        # for it once the chain passes PR 9.
        monkeypatch.setattr(regress, "REPO_ROOT", tmp_path)
        self._regress_record(tmp_path / "BENCH_PR7.json")
        self._regress_record(tmp_path / "BENCH_PR10.json")
        assert find_baseline(tmp_path / "BENCH_PR11.json") == (
            tmp_path / "BENCH_PR10.json"
        )

    def test_skips_non_regress_records(self, tmp_path, monkeypatch):
        # Loadgen capacity records share the BENCH_*.json naming but
        # carry no "suites" table; unparseable files are skipped too.
        monkeypatch.setattr(regress, "REPO_ROOT", tmp_path)
        self._regress_record(tmp_path / "BENCH_PR7.json")
        (tmp_path / "BENCH_PR8.json").write_text(
            json.dumps({"kind": "loadgen", "sweep": {}})
        )
        (tmp_path / "BENCH_PR9.json").write_text("not json {")
        assert find_baseline(tmp_path / "BENCH_PR10.json") == (
            tmp_path / "BENCH_PR7.json"
        )


@pytest.fixture
def tiny_suites(monkeypatch, tmp_path):
    """Shrink the pinned workloads so a real run takes milliseconds.

    Also points ``REPO_ROOT`` at the temp dir so ``find_baseline`` never
    picks up the repository's committed BENCH files.
    """
    monkeypatch.setattr(regress, "REPO_ROOT", tmp_path)
    monkeypatch.setattr(
        regress,
        "SUITES",
        {
            "quick": {
                "n": 24,
                "p": 0.2,
                "seed": 7,
                "k": 3,
                "tau": 1,
                "repeats": 1,
            }
        },
    )


class TestRunAndPersist:
    def test_quick_run_writes_payload(self, tiny_suites, tmp_path):
        output = tmp_path / "BENCH_TEST.json"
        payload, tables, exit_code = run_and_persist(
            quick=True, output=output, baseline=None
        )
        assert exit_code == 0
        on_disk = json.loads(output.read_text())
        assert on_disk["suites"].keys() == {"quick"}
        ops = on_disk["suites"]["quick"]["ops"]
        assert set(ops) == set(regress.OPS)
        for record in ops.values():
            assert record["csr_median_s"] > 0
            assert record["set_median_s"] > 0
        # The CSR snapshot itself is built during op *setup* (before the
        # counter baseline), so assert on counters the timed ops bump.
        counters = on_disk["suites"]["quick"]["kernel_counters"]
        assert counters["component_kernels"] >= 1
        assert counters["triangle_kernels"] >= 1
        assert tables  # one rendered table per suite

    def test_regression_vs_baseline_exits_nonzero(self, tiny_suites, tmp_path):
        output = tmp_path / "BENCH_TEST.json"
        baseline_path = tmp_path / "BENCH_OLD.json"
        baseline = run_regress(quick=True)
        # Pretend the old kernels were impossibly fast: every op's
        # speedup shrinks by far more than the tolerance.
        for record in baseline["suites"]["quick"]["ops"].values():
            record["speedup"] *= 100.0
        baseline_path.write_text(json.dumps(baseline))
        payload, _tables, exit_code = run_and_persist(
            quick=True, output=output, baseline=baseline_path
        )
        assert exit_code == 1
        assert payload["comparison"]["regressions"]

    def test_matching_baseline_exits_zero(self, tiny_suites, tmp_path):
        output = tmp_path / "BENCH_TEST.json"
        baseline_path = tmp_path / "BENCH_OLD.json"
        run_and_persist(quick=True, output=baseline_path, baseline=None)
        # Speedup ratios are stable run-to-run well within 25% at this
        # size?  No -- timing noise on tiny graphs is huge, so compare
        # against the just-written file with an enormous tolerance: the
        # plumbing (baseline load, comparison attach, exit code), not
        # the timings, is what is under test.
        payload, _tables, exit_code = run_and_persist(
            quick=True,
            output=output,
            baseline=baseline_path,
            tolerance=1000.0,
        )
        assert exit_code == 0
        assert payload["comparison"]["baseline_path"] == str(baseline_path)
        assert payload["comparison"]["regressions"] == []


class TestCheckFloors:
    def test_floor_violation_reported(self, monkeypatch):
        monkeypatch.setattr(
            regress, "SPEEDUP_FLOORS", {"build_index_fast": 1.5}
        )
        assert regress.check_floors(payload_with(1.2, 0.01)) == [
            "quick/build_index_fast"
        ]

    def test_floor_held_passes(self, monkeypatch):
        monkeypatch.setattr(
            regress, "SPEEDUP_FLOORS", {"build_index_fast": 1.5}
        )
        assert regress.check_floors(payload_with(1.6, 0.01)) == []

    def test_missing_op_ignored(self, monkeypatch):
        monkeypatch.setattr(regress, "SPEEDUP_FLOORS", {"novel_op": 9.0})
        assert regress.check_floors(payload_with(1.0, 0.01)) == []


@pytest.fixture
def tiny_new_suites(monkeypatch, tmp_path):
    """Millisecond-sized variants of the specialized suites."""
    monkeypatch.setattr(regress, "REPO_ROOT", tmp_path)
    monkeypatch.setattr(
        regress,
        "SUITES",
        {
            "truss_build": {
                "kind": "truss_build",
                "n": 20, "p": 0.3, "seed": 11, "repeats": 1,
            },
            "metric_maintenance": {
                "kind": "metric_maintenance",
                "communities": 3, "community_size": 8, "p_in": 0.5,
                "seed": 11, "k": 3, "probes": 2,
                "bt_n": 16, "bt_p": 0.3, "bt_probes": 1,
                "repeats": 1,
            },
        },
    )


class TestSpecializedSuites:
    def test_new_suites_produce_records(self, tiny_new_suites):
        payload = run_regress(quick=True)
        assert set(payload["suites"]) == {"truss_build", "metric_maintenance"}
        build_ops = payload["suites"]["truss_build"]["ops"]
        assert set(build_ops) == set(regress.SUITE_KIND_OPS["truss_build"])
        maint_ops = payload["suites"]["metric_maintenance"]["ops"]
        assert set(maint_ops) == set(
            regress.SUITE_KIND_OPS["metric_maintenance"]
        )
        for record in (*build_ops.values(), *maint_ops.values()):
            assert record["csr_median_s"] > 0
            assert record["set_median_s"] > 0
        # The csr pass must actually exercise the truss kernel / the
        # incremental maintenance path, not silently fall back.
        assert (
            payload["suites"]["truss_build"]["kernel_counters"][
                "truss_kernels"
            ]
            >= 1
        )
        maint_counters = payload["suites"]["metric_maintenance"][
            "kernel_counters"
        ]
        assert (
            maint_counters["truss_repeels"] + maint_counters["truss_rebuilds"]
            > 0
        )

    def test_quick_run_keeps_specialized_suites(self, tiny_new_suites):
        # --quick drops only the classic "full" suite: the specialized
        # suites carry the PR-10 floors, so CI must keep running them.
        payload = run_regress(quick=True)
        assert "metric_maintenance" in payload["suites"]
        assert "truss_build" in payload["suites"]


class TestCommittedBenchFile:
    def test_bench_pr10_record_is_valid(self):
        path = regress.REPO_ROOT / "BENCH_PR10.json"
        payload = json.loads(path.read_text())
        assert payload["bench"] == "PR10"
        assert payload["schema"] == 1
        assert payload["floor_failures"] == []
        for name in ("full", "quick"):
            ops = payload["suites"][name]["ops"]
            assert set(ops) == set(regress.OPS)
            for op in regress.SPEEDUP_OPS:
                # Carried over from the PR5 acceptance gate: >= 2x.
                assert ops[op]["speedup"] >= 2.0
        for suite in ("truss_build", "metric_maintenance"):
            ops = payload["suites"][suite]["ops"]
            assert set(ops) == set(regress.SUITE_KIND_OPS[suite])
        # Every floor -- including the PR-10 >= 5x incremental-
        # maintenance gate -- holds in the committed record.
        assert regress.check_floors(payload) == []
        for op in regress.SUITE_KIND_OPS["metric_maintenance"]:
            assert regress.SPEEDUP_FLOORS[op] >= 5.0
