"""Unit tests for the perf-regression harness (``esd bench regress``)."""

import json

import pytest

from repro.bench import regress
from repro.bench.regress import (
    DEFAULT_TOLERANCE,
    compare,
    find_baseline,
    run_and_persist,
    run_regress,
)


def payload_with(speedup, median, suite="quick", op="build_index_fast"):
    return {
        "bench": "X",
        "suites": {
            suite: {
                "workload": {"n": 10, "m": 9, "k": 2, "tau": 1},
                "ops": {
                    op: {
                        "csr_median_s": median,
                        "set_median_s": median * speedup,
                        "speedup": speedup,
                        "repeats": 3,
                    }
                },
            }
        },
    }


class TestCompare:
    def test_speedup_ok_within_tolerance(self):
        result = compare(
            payload_with(1.9, 0.01), payload_with(2.0, 0.01), metric="speedup"
        )
        assert result["regressions"] == []
        assert result["entries"][0]["status"] == "ok"

    def test_speedup_regression_beyond_tolerance(self):
        result = compare(
            payload_with(1.0, 0.01),
            payload_with(2.0, 0.01),
            tolerance=0.25,
            metric="speedup",
        )
        assert result["regressions"] == ["quick/build_index_fast"]
        entry = result["entries"][0]
        assert entry["status"] == "regression"
        assert entry["ratio"] == pytest.approx(0.5)

    def test_speedup_improvement_never_fails(self):
        result = compare(
            payload_with(5.0, 0.01), payload_with(2.0, 0.01), metric="speedup"
        )
        assert result["regressions"] == []

    def test_median_regression_is_slower_time(self):
        result = compare(
            payload_with(2.0, 0.05),
            payload_with(2.0, 0.01),
            tolerance=0.25,
            metric="median",
        )
        assert result["regressions"] == ["quick/build_index_fast"]

    def test_median_faster_time_is_ok(self):
        result = compare(
            payload_with(2.0, 0.005),
            payload_with(2.0, 0.01),
            metric="median",
        )
        assert result["regressions"] == []

    def test_ungated_op_reported_noisy_not_failed(self, monkeypatch):
        monkeypatch.setattr(regress, "UNGATED_OPS", ("build_index_fast",))
        result = compare(
            payload_with(1.0, 0.01),
            payload_with(2.0, 0.01),
            tolerance=0.25,
            metric="speedup",
        )
        assert result["regressions"] == []
        assert result["entries"][0]["status"] == "noisy"

    def test_new_op_reported_not_failed(self):
        current = payload_with(2.0, 0.01)
        current["suites"]["quick"]["ops"]["novel_op"] = {
            "csr_median_s": 1.0,
            "set_median_s": 1.0,
            "speedup": 1.0,
            "repeats": 3,
        }
        result = compare(current, payload_with(2.0, 0.01))
        statuses = {e["op"]: e["status"] for e in result["entries"]}
        assert statuses["novel_op"] == "new"
        assert result["regressions"] == []

    def test_missing_suite_skipped(self):
        current = payload_with(2.0, 0.01, suite="full")
        baseline = payload_with(2.0, 0.01, suite="quick")
        result = compare(current, baseline)
        assert result["entries"] == []
        assert result["regressions"] == []

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            compare(
                payload_with(2.0, 0.01),
                payload_with(2.0, 0.01),
                metric="p99",
            )

    def test_default_tolerance_is_25_percent(self):
        assert DEFAULT_TOLERANCE == 0.25


class TestFindBaseline:
    def test_picks_newest_other_bench_file(self, tmp_path, monkeypatch):
        monkeypatch.setattr(regress, "REPO_ROOT", tmp_path)
        (tmp_path / "BENCH_PR4.json").write_text("{}")
        (tmp_path / "BENCH_PR5.json").write_text("{}")
        assert find_baseline(tmp_path / "BENCH_PR5.json") == (
            tmp_path / "BENCH_PR4.json"
        )

    def test_none_when_no_other_files(self, tmp_path, monkeypatch):
        monkeypatch.setattr(regress, "REPO_ROOT", tmp_path)
        (tmp_path / "BENCH_PR5.json").write_text("{}")
        assert find_baseline(tmp_path / "BENCH_PR5.json") is None


@pytest.fixture
def tiny_suites(monkeypatch, tmp_path):
    """Shrink the pinned workloads so a real run takes milliseconds.

    Also points ``REPO_ROOT`` at the temp dir so ``find_baseline`` never
    picks up the repository's committed BENCH files.
    """
    monkeypatch.setattr(regress, "REPO_ROOT", tmp_path)
    monkeypatch.setattr(
        regress,
        "SUITES",
        {
            "quick": {
                "n": 24,
                "p": 0.2,
                "seed": 7,
                "k": 3,
                "tau": 1,
                "repeats": 1,
            }
        },
    )


class TestRunAndPersist:
    def test_quick_run_writes_payload(self, tiny_suites, tmp_path):
        output = tmp_path / "BENCH_TEST.json"
        payload, tables, exit_code = run_and_persist(
            quick=True, output=output, baseline=None
        )
        assert exit_code == 0
        on_disk = json.loads(output.read_text())
        assert on_disk["suites"].keys() == {"quick"}
        ops = on_disk["suites"]["quick"]["ops"]
        assert set(ops) == set(regress.OPS)
        for record in ops.values():
            assert record["csr_median_s"] > 0
            assert record["set_median_s"] > 0
        # The CSR snapshot itself is built during op *setup* (before the
        # counter baseline), so assert on counters the timed ops bump.
        counters = on_disk["suites"]["quick"]["kernel_counters"]
        assert counters["component_kernels"] >= 1
        assert counters["triangle_kernels"] >= 1
        assert tables  # one rendered table per suite

    def test_regression_vs_baseline_exits_nonzero(self, tiny_suites, tmp_path):
        output = tmp_path / "BENCH_TEST.json"
        baseline_path = tmp_path / "BENCH_OLD.json"
        baseline = run_regress(quick=True)
        # Pretend the old kernels were impossibly fast: every op's
        # speedup shrinks by far more than the tolerance.
        for record in baseline["suites"]["quick"]["ops"].values():
            record["speedup"] *= 100.0
        baseline_path.write_text(json.dumps(baseline))
        payload, _tables, exit_code = run_and_persist(
            quick=True, output=output, baseline=baseline_path
        )
        assert exit_code == 1
        assert payload["comparison"]["regressions"]

    def test_matching_baseline_exits_zero(self, tiny_suites, tmp_path):
        output = tmp_path / "BENCH_TEST.json"
        baseline_path = tmp_path / "BENCH_OLD.json"
        run_and_persist(quick=True, output=baseline_path, baseline=None)
        # Speedup ratios are stable run-to-run well within 25% at this
        # size?  No -- timing noise on tiny graphs is huge, so compare
        # against the just-written file with an enormous tolerance: the
        # plumbing (baseline load, comparison attach, exit code), not
        # the timings, is what is under test.
        payload, _tables, exit_code = run_and_persist(
            quick=True,
            output=output,
            baseline=baseline_path,
            tolerance=1000.0,
        )
        assert exit_code == 0
        assert payload["comparison"]["baseline_path"] == str(baseline_path)
        assert payload["comparison"]["regressions"] == []


class TestCheckFloors:
    def test_floor_violation_reported(self, monkeypatch):
        monkeypatch.setattr(
            regress, "SPEEDUP_FLOORS", {"build_index_fast": 1.5}
        )
        assert regress.check_floors(payload_with(1.2, 0.01)) == [
            "quick/build_index_fast"
        ]

    def test_floor_held_passes(self, monkeypatch):
        monkeypatch.setattr(
            regress, "SPEEDUP_FLOORS", {"build_index_fast": 1.5}
        )
        assert regress.check_floors(payload_with(1.6, 0.01)) == []

    def test_missing_op_ignored(self, monkeypatch):
        monkeypatch.setattr(regress, "SPEEDUP_FLOORS", {"novel_op": 9.0})
        assert regress.check_floors(payload_with(1.0, 0.01)) == []


class TestCommittedBenchFile:
    def test_bench_pr7_record_is_valid(self):
        path = regress.REPO_ROOT / "BENCH_PR7.json"
        payload = json.loads(path.read_text())
        assert payload["bench"] == "PR7"
        assert payload["schema"] == 1
        assert payload["floor_failures"] == []
        for name in ("full", "quick"):
            ops = payload["suites"][name]["ops"]
            assert set(ops) == set(regress.OPS)
            for op in regress.SPEEDUP_OPS:
                # Carried over from the PR5 acceptance gate: >= 2x.
                assert ops[op]["speedup"] >= 2.0
            for op, floor in regress.SPEEDUP_FLOORS.items():
                # PR7's acceptance gate: batched kernel maintenance
                # holds >= 1.5x over the set path on the dense suite.
                assert ops[op]["speedup"] >= floor
