"""Tests for the EXPERIMENTS.md report builder."""

import json

import pytest

import repro.bench.harness as harness
import repro.bench.report as report
from repro.bench import ExperimentTable, save_tables


@pytest.fixture
def results_dir(tmp_path, monkeypatch):
    monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
    monkeypatch.setattr(report, "RESULTS_DIR", tmp_path)
    return tmp_path


def _sample_table() -> ExperimentTable:
    table = ExperimentTable("Fig. X", "sample", ["a", "b"])
    table.add_row("row1", 2)
    table.note("hello")
    return table


class TestBuildExperimentsMd:
    def test_missing_results_noted(self, results_dir, tmp_path, capsys):
        out = tmp_path / "EXPERIMENTS.md"
        report.build_experiments_md(out)
        text = out.read_text()
        assert "No measured results yet" in text
        assert "missing sections" in capsys.readouterr().out

    def test_tables_rendered(self, results_dir, tmp_path):
        save_tables("fig5", [_sample_table()])
        out = tmp_path / "EXPERIMENTS.md"
        report.build_experiments_md(out)
        text = out.read_text()
        assert "**Fig. X: sample**" in text
        assert "| row1 | 2 |" in text
        assert "*hello*" in text

    def test_every_section_has_paper_claim(self, results_dir, tmp_path):
        out = tmp_path / "EXPERIMENTS.md"
        report.build_experiments_md(out)
        text = out.read_text()
        for _name, heading, claim in report.SECTIONS:
            assert heading in text
            assert claim.split(";")[0][:40] in text

    def test_rendered_rows_preferred(self, results_dir, tmp_path):
        # A record with rendered rows uses them verbatim.
        payload = {
            "name": "fig6",
            "tables": [{
                "experiment": "E", "title": "t", "columns": ["x"],
                "rows": [[0.25]], "rendered_rows": [["250.0ms"]],
                "notes": [],
            }],
        }
        (results_dir / "fig6.json").write_text(json.dumps(payload))
        out = tmp_path / "EXPERIMENTS.md"
        report.build_experiments_md(out)
        assert "250.0ms" in out.read_text()

    def test_section_list_matches_benchmark_files(self):
        """Every results-producing benchmark has a report section."""
        from pathlib import Path

        bench_dir = Path(__file__).resolve().parents[2] / "benchmarks"
        emitted = set()
        for path in bench_dir.glob("test_*.py"):
            text = path.read_text()
            for line in text.splitlines():
                if 'emit(tables, "' in line:
                    emitted.add(line.split('emit(tables, "')[1].split('"')[0])
        section_names = {name for name, _h, _c in report.SECTIONS}
        assert emitted <= section_names
