"""Tests for triangle/4-clique enumeration and arboricity bounds."""

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cliques import (
    arboricity_bounds,
    core_numbers,
    count_cliques,
    count_four_cliques,
    count_triangles,
    degeneracy,
    iter_cliques,
    iter_four_cliques,
    iter_triangles,
    triangle_count_per_edge,
)
from repro.graph import Graph, erdos_renyi

edge_lists = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 12)).filter(lambda e: e[0] != e[1]),
    max_size=45,
)


def brute_force_cliques(graph: Graph, k: int):
    """All k-cliques by brute force over vertex combinations."""
    vertices = sorted(graph.vertices())
    out = set()
    for combo in combinations(vertices, k):
        if all(graph.has_edge(a, b) for a, b in combinations(combo, 2)):
            out.add(combo)
    return out


class TestTriangles:
    def test_triangle_graph(self, triangle):
        assert count_triangles(triangle) == 1
        assert list(iter_triangles(triangle))[0] is not None

    def test_path_has_none(self, path4):
        assert count_triangles(path4) == 0

    def test_k4_has_four(self, k4):
        assert count_triangles(k4) == 4

    def test_k5_has_ten(self, k5):
        assert count_triangles(k5) == 10

    def test_each_triangle_once(self, k5):
        tris = list(iter_triangles(k5))
        assert len(tris) == len({tuple(sorted(t)) for t in tris}) == 10

    def test_per_edge_counts_fig1(self, fig1):
        counts = triangle_count_per_edge(fig1)
        # |N(u) ∩ N(v)| per edge equals the triangle count through it.
        for (u, v), c in counts.items():
            assert c == len(fig1.common_neighbors(u, v))

    @settings(max_examples=40, deadline=None)
    @given(edge_lists)
    def test_matches_brute_force(self, edges):
        g = Graph(edges)
        expected = brute_force_cliques(g, 3)
        got = {tuple(sorted(t)) for t in iter_triangles(g)}
        assert got == expected
        assert count_triangles(g) == len(expected)


class TestFourCliques:
    def test_k4_single(self, k4):
        cliques = list(iter_four_cliques(k4))
        assert len(cliques) == 1
        assert tuple(sorted(cliques[0])) == (0, 1, 2, 3)

    def test_k5_five(self, k5):
        assert count_four_cliques(k5) == 5

    def test_path_none(self, path4):
        assert count_four_cliques(path4) == 0

    def test_fig1_contains_6clique_subcliques(self, fig1):
        """{j,k,u,v,p,q} is a 6-clique -> C(6,4)=15 4-cliques inside it."""
        got = {tuple(sorted(c)) for c in iter_four_cliques(fig1)}
        inside = {c for c in got if set(c) <= {"j", "k", "u", "v", "p", "q"}}
        assert len(inside) == 15

    def test_ordering_invariant(self, fig1):
        """Emitted as (u, v, w1, w2) with u,v the lowest-ranked pair."""
        for u, v, w1, w2 in iter_four_cliques(fig1):
            assert len({u, v, w1, w2}) == 4
            for a, b in combinations((u, v, w1, w2), 2):
                assert fig1.has_edge(a, b)

    @settings(max_examples=30, deadline=None)
    @given(edge_lists)
    def test_matches_brute_force(self, edges):
        g = Graph(edges)
        expected = brute_force_cliques(g, 4)
        got = {tuple(sorted(c)) for c in iter_four_cliques(g)}
        assert got == expected

    @settings(max_examples=30, deadline=None)
    @given(edge_lists)
    def test_no_duplicates(self, edges):
        g = Graph(edges)
        cliques = [tuple(sorted(c)) for c in iter_four_cliques(g)]
        assert len(cliques) == len(set(cliques))


class TestGenericKClique:
    def test_k1_is_vertices(self, triangle):
        assert count_cliques(triangle, 1) == 3

    def test_k2_is_edges(self, fig1):
        assert count_cliques(fig1, 2) == fig1.m

    def test_k3_matches_triangles(self, fig1):
        assert count_cliques(fig1, 3) == count_triangles(fig1)

    def test_k4_matches_dedicated(self, fig1):
        assert count_cliques(fig1, 4) == count_four_cliques(fig1)

    def test_k6_finds_planted_clique(self, fig1):
        cliques = list(iter_cliques(fig1, 6))
        assert len(cliques) == 1
        assert set(cliques[0]) == {"j", "k", "u", "v", "p", "q"}

    def test_k_validation(self, triangle):
        with pytest.raises(ValueError):
            list(iter_cliques(triangle, 0))

    @settings(max_examples=20, deadline=None)
    @given(edge_lists, st.integers(2, 5))
    def test_matches_brute_force(self, edges, k):
        g = Graph(edges)
        expected = brute_force_cliques(g, k)
        got = {tuple(sorted(c)) for c in iter_cliques(g, k)}
        assert got == expected


class TestArboricity:
    def test_core_numbers_clique(self, k5):
        assert set(core_numbers(k5).values()) == {4}

    def test_core_numbers_star(self):
        g = Graph([(0, i) for i in range(1, 6)])
        cores = core_numbers(g)
        assert cores[0] == 1
        assert all(cores[i] == 1 for i in range(1, 6))

    def test_degeneracy_empty(self):
        assert degeneracy(Graph()) == 0

    def test_bounds_sandwich(self, fig1):
        lower, upper = arboricity_bounds(fig1)
        assert 0 < lower <= upper
        # K6 subgraph forces arboricity >= 3 = ceil(15/5); degeneracy 5.
        assert lower >= 3
        assert upper == 5

    def test_bounds_tree(self):
        tree = Graph([(0, 1), (1, 2), (1, 3)])
        assert arboricity_bounds(tree) == (1, 1)

    def test_bounds_empty_graph(self):
        assert arboricity_bounds(Graph()) == (0, 0)

    @settings(max_examples=30, deadline=None)
    @given(edge_lists)
    def test_core_number_defining_property(self, edges):
        g = Graph(edges)
        if g.n == 0:
            return
        cores = core_numbers(g)
        k = max(cores.values())
        # The max-core subgraph has min degree >= k.
        members = [u for u, c in cores.items() if c == k]
        sub = g.induced_subgraph(members)
        if sub.m:
            assert min(sub.degree(u) for u in sub.vertices()) >= k

    def test_random_graph_bounds_consistent(self):
        g = erdos_renyi(80, 0.1, seed=12)
        lower, upper = arboricity_bounds(g)
        assert lower <= upper
        assert upper == degeneracy(g)
