"""Tests for maximal clique enumeration and forest decomposition."""

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cliques import (
    arboricity_bounds,
    clique_number,
    degeneracy,
    forest_decomposition,
    greedy_arboricity_upper_bound,
    iter_maximal_cliques,
    maximal_cliques,
    verify_forest_decomposition,
)
from repro.graph import Graph, erdos_renyi

edge_lists = st.lists(
    st.tuples(st.integers(0, 11), st.integers(0, 11)).filter(lambda e: e[0] != e[1]),
    min_size=1,
    max_size=40,
)


def brute_force_maximal_cliques(graph: Graph):
    vertices = sorted(graph.vertices())
    cliques = set()
    for size in range(1, graph.n + 1):
        for combo in combinations(vertices, size):
            if all(graph.has_edge(a, b) for a, b in combinations(combo, 2)):
                cliques.add(combo)
    return {
        c for c in cliques
        if not any(set(c) < set(d) for d in cliques if len(d) > len(c))
    }


class TestMaximalCliques:
    def test_triangle(self, triangle):
        assert maximal_cliques(triangle) == [(0, 1, 2)]

    def test_path(self, path4):
        assert maximal_cliques(path4) == [(0, 1), (1, 2), (2, 3)]

    def test_k5(self, k5):
        assert maximal_cliques(k5) == [(0, 1, 2, 3, 4)]
        assert clique_number(k5) == 5

    def test_isolated_vertex_is_maximal(self):
        g = Graph([(0, 1)])
        g.add_vertex(9)
        assert (9,) in maximal_cliques(g)

    def test_fig1_contains_six_clique(self, fig1):
        cliques = maximal_cliques(fig1)
        assert ("j", "k", "p", "q", "u", "v") in cliques
        assert clique_number(fig1) == 6

    def test_no_duplicates(self, fig1):
        cliques = list(iter_maximal_cliques(fig1))
        assert len(cliques) == len(set(cliques))

    def test_empty_graph(self):
        assert maximal_cliques(Graph()) == []
        assert clique_number(Graph()) == 0

    @settings(max_examples=25, deadline=None)
    @given(edge_lists)
    def test_matches_brute_force(self, edges):
        g = Graph(edges)
        assert set(iter_maximal_cliques(g)) == brute_force_maximal_cliques(g)


class TestForestDecomposition:
    def test_empty(self):
        assert forest_decomposition(Graph()) == []

    def test_tree_is_one_forest(self):
        tree = Graph([(0, 1), (1, 2), (1, 3), (3, 4)])
        forests = forest_decomposition(tree)
        assert len(forests) == 1
        verify_forest_decomposition(tree, forests)

    def test_k5_within_bounds(self, k5):
        forests = forest_decomposition(k5)
        verify_forest_decomposition(k5, forests)
        lower, upper = arboricity_bounds(k5)
        # alpha(K5) = ceil(10/4) = 3; greedy may use a bit more but must
        # stay within the degeneracy envelope.
        assert lower <= len(forests) <= max(upper, lower) + 1

    def test_fig1(self, fig1):
        forests = forest_decomposition(fig1)
        verify_forest_decomposition(fig1, forests)
        lower, _upper = arboricity_bounds(fig1)
        assert len(forests) >= lower

    def test_greedy_upper_bound_sandwiched(self):
        g = erdos_renyi(60, 0.12, seed=4)
        lower, _ = arboricity_bounds(g)
        greedy = greedy_arboricity_upper_bound(g)
        assert greedy >= lower
        assert greedy <= 2 * max(degeneracy(g), 1)

    @settings(max_examples=30, deadline=None)
    @given(edge_lists)
    def test_always_valid_partition(self, edges):
        g = Graph(edges)
        forests = forest_decomposition(g)
        verify_forest_decomposition(g, forests)

    def test_verify_rejects_cycle(self, triangle):
        with pytest.raises(AssertionError):
            verify_forest_decomposition(triangle, [[(0, 1), (1, 2), (0, 2)]])

    def test_verify_rejects_missing_edges(self, triangle):
        with pytest.raises(AssertionError):
            verify_forest_decomposition(triangle, [[(0, 1)]])
