"""Replication correctness: replicas are bit-identical to a local replay.

For randomized mutation streams (the same generator the persistence
differential tests use), a writer + 2 replicas cluster must satisfy:
at every quiesce point ``v``, each replica's ``topk``/``stats`` answers
over the wire are *bit-identical* to a single-process
:class:`DynamicESDIndex` replayed to version ``v``.  Failures reuse the
persistence harness's delta-debugging shrinker (``shrink_case`` with a
cluster-specific ``check``) so the report names a minimal stream.
"""

import time

import pytest

from repro.cluster import ReplicaConfig, ReplicaNode, WriterConfig, WriterNode
from repro.core.maintenance import DynamicESDIndex
from repro.graph.generators import gnm_random
from repro.service.client import ServiceClient
from tests.persistence.harness import Case, generate_case, shrink_case

SEEDS = (1, 7, 23)
QUERY_PAIRS = ((1, 1), (5, 1), (10, 2), (4, 3))
CHUNKS = 3  # quiesce points per stream


def _wait_applied(replicas, version, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if all(r.applied_version >= version for r in replicas):
            return True
        time.sleep(0.01)
    return False


def check_cluster_case(case: Case, _tmp_dir=None):
    """Run one trial; return ``None`` on success or a failure description.

    ``_tmp_dir`` is accepted (and ignored) so this oracle slots into
    ``shrink_case`` unchanged.
    """
    base = gnm_random(case.n, case.m, seed=case.seed)
    reference = DynamicESDIndex(gnm_random(case.n, case.m, seed=case.seed))
    writer = WriterNode(base, WriterConfig(batch_window=0.0)).start()
    replicas = [
        ReplicaNode(
            ReplicaConfig(
                writer_host=writer.repl_address[0],
                writer_repl_port=writer.repl_address[1],
                name=f"diff-r{i}",
            )
        ).start()
        for i in range(2)
    ]
    try:
        if not _wait_applied(replicas, 0):
            return "replicas never bootstrapped"
        chunk = max(1, (len(case.ops) + CHUNKS - 1) // CHUNKS)
        for start in range(0, len(case.ops), chunk):
            for action, u, v in case.ops[start:start + chunk]:
                try:
                    writer.engine.update(action, u, v)
                except (ValueError, KeyError):
                    continue  # inapplicable ops skipped on both sides
                if action == "insert":
                    reference.insert_edge(u, v)
                else:
                    reference.delete_edge(u, v)
            version = writer.engine.graph_version
            assert version == reference.graph_version
            if not _wait_applied(replicas, version):
                return f"replicas never reached version {version}"
            expected = {
                (k, tau): [
                    [u, v, score]
                    for (u, v), score in reference.topk(k, tau)
                ]
                for k, tau in QUERY_PAIRS
            }
            for replica in replicas:
                with ServiceClient(*replica.address) as client:
                    for k, tau in QUERY_PAIRS:
                        result = client.request(
                            "topk", k=k, tau=tau, min_version=version
                        )
                        if result["graph_version"] != version:
                            return (
                                f"{replica.config.name} answered at version "
                                f"{result['graph_version']}, wanted {version}"
                            )
                        if result["items"] != expected[(k, tau)]:
                            return (
                                f"{replica.config.name} topk({k},{tau}) at "
                                f"v{version}: {result['items']} != "
                                f"{expected[(k, tau)]}"
                            )
                    stats = client.request("stats")
                    if (stats["n"], stats["m"]) != (
                        reference.graph.n, reference.graph.m
                    ):
                        return (
                            f"{replica.config.name} stats n/m "
                            f"({stats['n']}, {stats['m']}) != "
                            f"({reference.graph.n}, {reference.graph.m})"
                        )
        return None
    finally:
        for replica in replicas:
            replica.shutdown()
        writer.shutdown()


@pytest.mark.parametrize("seed", SEEDS)
def test_replicas_bit_identical_to_local_replay(seed, tmp_path_factory):
    case = generate_case(seed, max_n=18, max_ops=24)
    failure = check_cluster_case(case)
    if failure is not None:
        shrunk = shrink_case(
            case,
            lambda: tmp_path_factory.mktemp("cluster_shrink"),
            max_attempts=20,
            check=check_cluster_case,
        )
        pytest.fail(
            f"cluster differential failure: {failure}\n"
            f"minimal reproduction: {shrunk.describe()}"
        )


def test_replica_rejects_stale_read_at_token(tmp_path_factory):
    """A min_version ahead of the replica is refused, never silently stale."""
    writer = WriterNode(
        gnm_random(12, 30, seed=3), WriterConfig(batch_window=0.0)
    ).start()
    replica = ReplicaNode(
        ReplicaConfig(
            writer_host=writer.repl_address[0],
            writer_repl_port=writer.repl_address[1],
            name="stale",
        )
    ).start()
    try:
        assert _wait_applied([replica], 0)
        with ServiceClient(*replica.address) as client:
            from repro.service.client import ServiceError

            with pytest.raises(ServiceError) as info:
                client.request("topk", k=5, min_version=999)
            assert info.value.code == "unavailable"
    finally:
        replica.shutdown()
        writer.shutdown()
