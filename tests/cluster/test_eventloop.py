"""Unit tests for the selectors-based event loop the cluster serves on."""

import socket
import threading
import time

import pytest

from repro.cluster.eventloop import EventLoop


class LoopFixture:
    """An EventLoop running on a daemon thread, plus helpers."""

    def __init__(self, **kwargs):
        self.loop = EventLoop(**kwargs)
        self.thread = None

    def start(self):
        self.thread = threading.Thread(target=self.loop.run, daemon=True)
        self.thread.start()

    def stop(self):
        self.loop.stop()
        if self.thread is not None:
            self.thread.join(timeout=5)
            assert not self.thread.is_alive()


@pytest.fixture
def loop_fixture():
    fixture = LoopFixture(tick_interval=0.02)
    yield fixture
    fixture.stop()


def _connect(address, timeout=5.0):
    sock = socket.create_connection(address, timeout=timeout)
    return sock, sock.makefile("rwb")


def test_echo_many_lines_one_connection(loop_fixture):
    loop = loop_fixture.loop
    listener = loop.listen(
        "127.0.0.1", 0, lambda ch, line: ch.send_bytes(line + b"\n")
    )
    loop_fixture.start()
    sock, f = _connect(listener.address)
    try:
        for i in range(50):
            f.write(b"hello %d\n" % i)
        f.flush()
        for i in range(50):
            assert f.readline() == b"hello %d\n" % i
    finally:
        sock.close()
    assert loop.stats["lines"] >= 50


def test_partial_lines_are_buffered_until_newline(loop_fixture):
    loop = loop_fixture.loop
    listener = loop.listen(
        "127.0.0.1", 0, lambda ch, line: ch.send_bytes(line + b"\n")
    )
    loop_fixture.start()
    sock, f = _connect(listener.address)
    try:
        sock.sendall(b"abc")
        time.sleep(0.1)
        sock.sendall(b"def\nsecond")
        assert f.readline() == b"abcdef\n"
        sock.sendall(b"\n")
        assert f.readline() == b"second\n"
    finally:
        sock.close()


def test_overflow_line_answered_and_closed(loop_fixture):
    loop = loop_fixture.loop
    loop.overflow_response = b"TOO BIG\n"
    loop._max_line_bytes = 1024
    listener = loop.listen(
        "127.0.0.1", 0, lambda ch, line: ch.send_bytes(line + b"\n")
    )
    loop_fixture.start()
    sock, f = _connect(listener.address)
    try:
        sock.sendall(b"x" * 4096)  # no newline: an unbounded "line"
        assert f.readline() == b"TOO BIG\n"
        assert f.readline() == b""  # connection closed after the answer
    finally:
        sock.close()
    assert loop.stats["overflow_closed"] == 1


def test_idle_connections_swept(loop_fixture):
    loop = loop_fixture.loop
    listener = loop.listen(
        "127.0.0.1", 0, lambda ch, line: ch.send_bytes(line + b"\n"),
        idle_timeout=0.1,
    )
    loop_fixture.start()
    sock, f = _connect(listener.address)
    try:
        assert f.readline() == b""  # closed by the idle sweep, not by us
    finally:
        sock.close()
    assert loop.stats["idle_closed"] == 1


def test_call_soon_runs_on_loop_thread(loop_fixture):
    loop = loop_fixture.loop
    loop_fixture.start()
    seen = []
    done = threading.Event()

    def record():
        seen.append(threading.current_thread())
        done.set()

    loop.call_soon(record)
    assert done.wait(timeout=5)
    assert seen[0] is loop_fixture.thread


def test_outbound_connect_round_trip(loop_fixture):
    loop = loop_fixture.loop
    received = []
    got = threading.Event()
    server = socket.socket()
    server.bind(("127.0.0.1", 0))
    server.listen(1)

    def serve():
        conn, _ = server.accept()
        conn.sendall(b"from server\n")
        conn.close()

    threading.Thread(target=serve, daemon=True).start()
    loop_fixture.start()
    done = threading.Event()

    def connect():
        loop.connect(
            "127.0.0.1", server.getsockname()[1],
            lambda ch, line: (received.append(line), got.set()),
        )
        done.set()

    loop.call_soon(connect)
    assert done.wait(timeout=5)
    assert got.wait(timeout=5)
    assert received == [b"from server"]
    server.close()


def test_stop_closes_all_sockets(loop_fixture):
    loop = loop_fixture.loop
    listener = loop.listen(
        "127.0.0.1", 0, lambda ch, line: ch.send_bytes(line + b"\n")
    )
    loop_fixture.start()
    sock, f = _connect(listener.address)
    loop_fixture.stop()
    # The peer socket is closed by teardown: reads see EOF.
    assert f.readline() == b""
    sock.close()
    assert loop.snapshot()["open_connections"] == 0
