"""Cluster failure modes with real OS processes and SIGKILL.

Two acceptance scenarios:

* ``kill -9`` a replica process mid-stream -- a fresh replica (same
  name, new process) rejoins through the snapshot + catch-up protocol
  and converges to the writer's exact answers;
* ``kill -9`` the writer process -- the router fails writes fast with
  ``unavailable`` while reads keep serving from the replicas.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from tests.conftest import wait_until

from repro.cluster import (
    ReplicaConfig,
    ReplicaNode,
    Router,
    RouterConfig,
    WriterConfig,
    WriterNode,
)
from repro.cluster.supervisor import wait_for_address
from repro.graph.generators import gnm_random
from repro.graph.io import write_edge_list
from repro.service.client import ServiceClient, ServiceError

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(SRC) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return env


def _spawn(argv):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *argv],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=_env(),
        text=True,
        bufsize=1,
    )


#: Bounded predicate polling -- no bare sleeps (see tests/conftest.py).
_wait = wait_until


def _replica_version(address):
    try:
        with ServiceClient(*address, timeout=5.0) as client:
            return client.request("cluster-info")["applied_version"]
    except (OSError, ServiceError):
        return -2


def test_kill9_replica_rejoins_via_snapshot_and_catchup(tmp_path):
    writer = WriterNode(
        gnm_random(20, 60, seed=9),
        # retain=4: the dead replica's versions age out of the ring, so
        # the rejoin MUST take the snapshot path, not records-only.
        WriterConfig(batch_window=0.0, retain=4),
    ).start()
    repl_host, repl_port = writer.repl_address

    def spawn_replica():
        proc = _spawn(
            [
                "cluster", "replica", "--name", "victim",
                "--host", "127.0.0.1", "--port", "0",
                "--writer-host", repl_host,
                "--writer-repl-port", str(repl_port),
            ]
        )
        address = wait_for_address(proc.stdout, "listening")
        return proc, address

    proc, address = spawn_replica()
    try:
        _wait(
            lambda: _replica_version(address) == 0,
            message="replica bootstrap",
        )
        for i in range(5):
            writer.engine.update("insert", 300 + i, 301 + i)
        _wait(
            lambda: _replica_version(address) == 5,
            message="replica catch-up before the kill",
        )
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=10)

        # The writer keeps committing while the replica is dead; far
        # more than `retain`, so the ring no longer covers version 5.
        for i in range(20):
            writer.engine.update("insert", 400 + i, 401 + i)
        snapshots_before = writer.publisher.snapshots_sent

        proc2, address2 = spawn_replica()
        try:
            _wait(
                lambda: _replica_version(address2) == 25,
                message="rejoined replica catch-up",
            )
            assert writer.publisher.snapshots_sent == snapshots_before + 1
            with ServiceClient(*address2) as client:
                result = client.request("topk", k=10, tau=2)
            expected = [
                [u, v, score]
                for (u, v), score in writer.engine.dynamic_index.topk(10, 2)
            ]
            assert result["items"] == expected
            assert result["graph_version"] == 25
        finally:
            if proc2.poll() is None:
                os.kill(proc2.pid, signal.SIGKILL)
            proc2.wait(timeout=10)
            proc2.stdout.close()
    finally:
        if proc.poll() is None:
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)
        proc.stdout.close()
        writer.shutdown()


def test_kill9_writer_fails_writes_fast_reads_keep_serving(tmp_path):
    graph_file = tmp_path / "graph.txt"
    write_edge_list(gnm_random(20, 60, seed=13), graph_file)
    writer_proc = _spawn(
        [
            "cluster", "writer", "--graph", str(graph_file),
            "--host", "127.0.0.1", "--port", "0", "--repl-port", "0",
        ]
    )
    router = None
    replicas = []
    try:
        writer_address = wait_for_address(writer_proc.stdout, "listening")
        repl_address = wait_for_address(writer_proc.stdout, "replicating")
        replicas = [
            ReplicaNode(
                ReplicaConfig(
                    writer_host=repl_address[0],
                    writer_repl_port=repl_address[1],
                    name=f"wk-r{i}",
                )
            ).start()
            for i in range(2)
        ]
        _wait(
            lambda: all(r.applied_version >= 0 for r in replicas),
            message="replica bootstrap",
        )
        router = Router(
            RouterConfig(
                writer=writer_address,
                replicas=[(r.config.name,) + r.address for r in replicas],
                probe_interval=0.05,
            )
        ).start()
        _wait(
            lambda: router.status()["writer"]["connected"]
            and all(
                entry["connected"]
                for entry in router.status()["replicas"]
            ),
            message="router backend links",
        )
        with ServiceClient(*router.address) as client:
            version = client.request(
                "update", action="insert", u=900, v=901
            )["graph_version"]
            assert client.topk(k=5).graph_version >= version
        _wait(
            lambda: all(r.applied_version >= version for r in replicas),
            message="replicas applying the write",
        )

        os.kill(writer_proc.pid, signal.SIGKILL)
        writer_proc.wait(timeout=10)
        _wait(
            lambda: not router.status()["writer"]["connected"],
            message="router noticing the dead writer",
        )

        with ServiceClient(*router.address) as client:
            start = time.monotonic()
            with pytest.raises(ServiceError) as info:
                client.request("update", action="insert", u=902, v=903)
            assert info.value.code == "unavailable"
            assert time.monotonic() - start < 1.0
            # Reads keep serving from replicas, at the last applied state.
            reply = client.topk(k=5)
            assert reply.items
            assert reply.graph_version >= version
        failovers = router.metrics.snapshot()["counters"]["failover_events"]
        assert failovers >= 1
    finally:
        if router is not None:
            router.shutdown()
        for replica in replicas:
            replica.shutdown()
        if writer_proc.poll() is None:
            os.kill(writer_proc.pid, signal.SIGKILL)
            writer_proc.wait(timeout=10)
        writer_proc.stdout.close()
