"""Replication frame codec + publisher/tailer end-to-end tests."""

import functools
import socket
import threading

import pytest

from tests.conftest import wait_until

from repro.cluster.replication import (
    FRAME_ACK,
    FRAME_HELLO,
    FRAME_RECORD,
    FRAME_SNAPSHOT,
    FRAME_VERSION,
    ReplicationError,
    ReplicationPublisher,
    ReplicationTailer,
    record_from_payload,
    record_to_payload,
    recv_frame,
    send_frame,
    send_json,
)
from repro.core.maintenance import DynamicESDIndex
from repro.graph.generators import gnm_random
from repro.persistence.wal import WALRecord
from repro.service.engine import QueryEngine


# -- frame codec ---------------------------------------------------------------


def _pair():
    a, b = socket.socketpair()
    return a, b


def test_frame_round_trip_all_types():
    a, b = _pair()
    try:
        for ftype in (FRAME_HELLO, FRAME_SNAPSHOT, FRAME_RECORD,
                      FRAME_VERSION, FRAME_ACK):
            send_frame(a, ftype, b"payload-" + ftype)
            assert recv_frame(b) == (ftype, b"payload-" + ftype)
        send_frame(a, FRAME_VERSION, b"")  # empty payload is legal
        assert recv_frame(b) == (FRAME_VERSION, b"")
    finally:
        a.close()
        b.close()


def test_clean_eof_between_frames_is_none():
    a, b = _pair()
    send_frame(a, FRAME_VERSION, b"{}")
    a.close()
    try:
        assert recv_frame(b) == (FRAME_VERSION, b"{}")
        assert recv_frame(b) is None
    finally:
        b.close()


def test_eof_mid_frame_raises():
    a, b = _pair()
    a.sendall(b"R\x00\x00\x00\x10partial")  # claims 16 bytes, sends 7
    a.close()
    try:
        with pytest.raises(ReplicationError):
            recv_frame(b)
    finally:
        b.close()


def test_unknown_frame_type_raises():
    a, b = _pair()
    a.sendall(b"Z\x00\x00\x00\x00")
    try:
        with pytest.raises(ReplicationError):
            recv_frame(b)
    finally:
        a.close()
        b.close()


def test_record_payload_round_trip():
    record = WALRecord(op="insert", u=3, v=9, version=17)
    a, b = _pair()
    try:
        send_json(a, FRAME_RECORD, record_to_payload(record))
        ftype, payload = recv_frame(b)
        assert ftype == FRAME_RECORD
        assert record_from_payload(payload) == record
    finally:
        a.close()
        b.close()


def test_malformed_record_payload_raises():
    with pytest.raises(ReplicationError):
        record_from_payload(b'{"op": "explode", "u": 1, "v": 2, "ver": 3}')
    with pytest.raises(ReplicationError):
        record_from_payload(b"not json at all")


# -- publisher / tailer --------------------------------------------------------


class TailSink:
    """Minimal replica-side state machine driven by a ReplicationTailer."""

    def __init__(self):
        self.dyn = None
        self.writer_version = -1
        self.lock = threading.Lock()

    def applied(self):
        with self.lock:
            return -1 if self.dyn is None else self.dyn.graph_version

    def on_snapshot(self, state):
        with self.lock:
            self.dyn = DynamicESDIndex.from_state(state)

    def on_record(self, record):
        with self.lock:
            if self.dyn is None or record.version != self.dyn.graph_version + 1:
                return False
            if record.op == "insert":
                self.dyn.insert_edge(record.u, record.v)
            else:
                self.dyn.delete_edge(record.u, record.v)
            return True

    def on_writer_version(self, version):
        self.writer_version = max(self.writer_version, version)

    def tail(self, publisher, name, **kwargs):
        return ReplicationTailer(
            *publisher.address, name=name,
            get_applied=self.applied,
            on_snapshot=self.on_snapshot,
            on_record=self.on_record,
            on_writer_version=self.on_writer_version,
            **kwargs,
        )


#: Bounded predicate polling -- no bare sleeps (see tests/conftest.py).
_wait = functools.partial(wait_until, timeout=10.0, interval=0.01)


@pytest.fixture
def engine():
    instance = QueryEngine(gnm_random(20, 60, seed=5), batch_window=0.0)
    yield instance
    instance.close()


def test_snapshot_then_live_stream(engine):
    publisher = ReplicationPublisher(engine, heartbeat_interval=0.05).start()
    sink = TailSink()
    tailer = sink.tail(publisher, "t1").start()
    try:
        _wait(lambda: sink.applied() == 0, message="initial snapshot")
        assert sink.dyn.topk(5, 2) == engine.dynamic_index.topk(5, 2)
        for i in range(12):
            engine.update("insert", 100 + i, 101 + i)
        _wait(lambda: sink.applied() == 12, message="live records")
        assert sink.dyn.topk(10, 2) == engine.dynamic_index.topk(10, 2)
        assert tailer.snapshots_loaded == 1
        assert tailer.records_applied == 12
        _wait(
            lambda: sink.writer_version >= 12,
            message="version heartbeat",
        )
    finally:
        tailer.stop()
        publisher.stop()


def test_late_joiner_inside_ring_catches_up_with_records_only(engine):
    publisher = ReplicationPublisher(engine, retain=64).start()
    sink = TailSink()
    tailer = sink.tail(publisher, "early").start()
    try:
        _wait(lambda: sink.applied() == 0, message="snapshot")
        tailer.stop()  # disconnect at version 0
        for i in range(10):  # well inside retain=64
            engine.update("insert", 200 + i, 201 + i)
        tailer2 = sink.tail(publisher, "late").start()
        try:
            _wait(lambda: sink.applied() == 10, message="record catch-up")
            # Records only: the rejoin must not have shipped a snapshot.
            assert tailer2.snapshots_loaded == 0
            assert tailer2.records_applied == 10
        finally:
            tailer2.stop()
    finally:
        tailer.stop()
        publisher.stop()


def test_late_joiner_outside_ring_gets_fresh_snapshot(engine):
    publisher = ReplicationPublisher(engine, retain=4).start()
    sink = TailSink()
    tailer = sink.tail(publisher, "early").start()
    try:
        _wait(lambda: sink.applied() == 0, message="snapshot")
        tailer.stop()
        for i in range(20):  # far beyond retain=4: the ring forgot v1..v16
            engine.update("insert", 300 + i, 301 + i)
        tailer2 = sink.tail(publisher, "late").start()
        try:
            _wait(lambda: sink.applied() == 20, message="snapshot catch-up")
            assert tailer2.snapshots_loaded == 1
            assert sink.dyn.topk(10, 2) == engine.dynamic_index.topk(10, 2)
        finally:
            tailer2.stop()
    finally:
        tailer.stop()
        publisher.stop()


def test_tailer_reconnects_after_publisher_restart(engine):
    publisher = ReplicationPublisher(engine).start()
    host, port = publisher.address
    sink = TailSink()
    tailer = sink.tail(publisher, "t", reconnect_backoff=0.05).start()
    try:
        _wait(lambda: sink.applied() == 0, message="first snapshot")
        publisher.stop()
        engine.update("insert", 400, 401)
        # A new publisher on the same port (the engine re-subscribes).
        publisher2 = ReplicationPublisher(engine, host=host, port=port).start()
        try:
            _wait(lambda: sink.applied() == 1, message="resync")
            assert tailer.reconnects >= 1
        finally:
            publisher2.stop()
    finally:
        tailer.stop()


def test_publisher_status_reports_peers(engine):
    publisher = ReplicationPublisher(engine).start()
    sink = TailSink()
    tailer = sink.tail(publisher, "status-peer").start()
    try:
        _wait(lambda: sink.applied() == 0, message="snapshot")
        engine.update("insert", 500, 501)
        _wait(lambda: sink.applied() == 1, message="record")
        _wait(
            lambda: publisher.status()["replicas"]
            .get("status-peer", {}).get("acked_version") == 1,
            message="ack propagation",
        )
        status = publisher.status()
        assert status["version"] == 1
        peer = status["replicas"]["status-peer"]
        assert peer["lag"] == 0
        assert peer["snapshot_sent"] is True
    finally:
        tailer.stop()
        publisher.stop()
