"""Router behaviour: routing policy, version tokens, degradation, eviction."""

import functools
import time

import pytest

from tests.conftest import wait_until

from repro.cluster import (
    ReplicaConfig,
    ReplicaNode,
    Router,
    RouterConfig,
    WriterConfig,
    WriterNode,
)
from repro.cluster.router import _Backend
from repro.graph.generators import gnm_random
from repro.service.client import ServiceClient, ServiceError

#: Bounded predicate polling -- no bare sleeps (see tests/conftest.py).
_wait = functools.partial(wait_until, timeout=15.0, interval=0.01)


@pytest.fixture
def cluster():
    """In-process writer + 2 replicas + router, all caught up."""
    writer = WriterNode(
        gnm_random(18, 50, seed=11), WriterConfig(batch_window=0.0)
    ).start()
    replicas = [
        ReplicaNode(
            ReplicaConfig(
                writer_host=writer.repl_address[0],
                writer_repl_port=writer.repl_address[1],
                name=f"r{i}",
            )
        ).start()
        for i in range(2)
    ]
    _wait(
        lambda: all(r.applied_version == 0 for r in replicas),
        message="replica bootstrap",
    )
    router = Router(
        RouterConfig(
            writer=writer.address,
            replicas=[(r.config.name,) + r.address for r in replicas],
            probe_interval=0.05,
            request_timeout=5.0,
        )
    ).start()
    _wait(
        lambda: all(
            entry["connected"] for entry in router.status()["replicas"]
        ) and router.status()["writer"]["connected"],
        message="router backend links",
    )
    yield writer, replicas, router
    router.shutdown()
    for replica in replicas:
        replica.shutdown()
    writer.shutdown()


class TestRouting:
    def test_reads_are_balanced_across_replicas(self, cluster):
        writer, replicas, router = cluster
        with ServiceClient(*router.address) as client:
            for _ in range(40):
                client.topk(k=5)
        routed = [
            entry["routed"] for entry in router.status()["replicas"]
        ]
        assert sum(routed) >= 40
        assert all(count > 0 for count in routed)
        assert router.status()["writer"]["routed"] == 0  # probes aside

    def test_writes_reach_the_writer(self, cluster):
        writer, replicas, router = cluster
        with ServiceClient(*router.address) as client:
            result = client.request("update", action="insert", u=900, v=901)
            assert result["applied"] is True
            assert result["graph_version"] == 1
        assert writer.engine.graph_version == 1

    def test_read_your_writes_on_one_connection(self, cluster):
        writer, replicas, router = cluster
        with ServiceClient(*router.address) as client:
            for i in range(8):
                write = client.request(
                    "update", action="insert", u=700 + i, v=701 + i
                )
                read = client.topk(k=5)
                # Immediately after each acked write, this connection's
                # reads must reflect it -- however stale a replica is.
                assert read.graph_version >= write["graph_version"]

    def test_explicit_min_version_token_is_enforced(self, cluster):
        writer, replicas, router = cluster
        with ServiceClient(*router.address) as client:
            version = client.request(
                "update", action="insert", u=800, v=801
            )["graph_version"]
        _wait(
            lambda: all(r.applied_version >= version for r in replicas),
            message="replication",
        )
        # A *different* connection carrying the token still sees >= v.
        with ServiceClient(*router.address) as client:
            result = client.request("topk", k=5, min_version=version)
            assert result["graph_version"] >= version

    def test_replica_is_read_only(self, cluster):
        writer, replicas, router = cluster
        with ServiceClient(*replicas[0].address) as client:
            with pytest.raises(ServiceError) as info:
                client.request("update", action="insert", u=1, v=99)
            assert info.value.code == "read_only"

    def test_writer_down_fails_writes_fast_reads_keep_serving(self, cluster):
        writer, replicas, router = cluster
        writer.shutdown()
        _wait(
            lambda: not router.status()["writer"]["connected"],
            message="router noticing the dead writer",
        )
        with ServiceClient(*router.address) as client:
            start = time.monotonic()
            with pytest.raises(ServiceError) as info:
                client.request("update", action="insert", u=1, v=2)
            assert info.value.code == "unavailable"
            assert time.monotonic() - start < 1.0  # fail fast, no timeout
            # Reads degrade gracefully to the replicas.
            assert client.topk(k=5).items
            assert client.ping()

    def test_replica_down_reads_fall_back(self, cluster):
        writer, replicas, router = cluster
        for replica in replicas:
            replica.shutdown()
        _wait(
            lambda: not any(
                entry["connected"]
                for entry in router.status()["replicas"]
            ),
            message="router noticing dead replicas",
        )
        with ServiceClient(*router.address) as client:
            assert client.topk(k=5).items  # served by the writer
        assert router.status()["writer"]["routed"] >= 1

    def test_unknown_op_and_ping_are_local(self, cluster):
        writer, replicas, router = cluster
        with ServiceClient(*router.address) as client:
            assert client.ping()
            with pytest.raises(ServiceError) as info:
                client.request("frobnicate")
            assert info.value.code == "unknown_op"

    def test_cluster_status_shape(self, cluster):
        writer, replicas, router = cluster
        with ServiceClient(*router.address) as client:
            status = client.request("cluster-status")
        assert status["role"] == "router"
        assert status["writer"]["connected"] is True
        assert {entry["name"] for entry in status["replicas"]} == {"r0", "r1"}


class TestStalenessPolicy:
    def _router_with_fake_replicas(self):
        router = Router(RouterConfig(max_lag=10))
        backends = [
            _Backend("a", "replica", "127.0.0.1", 1),
            _Backend("b", "replica", "127.0.0.1", 2),
        ]
        router._replicas = backends
        return router, backends

    def test_lagging_replica_evicted_and_restored_with_hysteresis(self):
        router, (a, b) = self._router_with_fake_replicas()
        try:
            router._writer_version = 100
            a.applied_version = 95  # lag 5 <= max_lag
            b.applied_version = 80  # lag 20 > max_lag
            router._apply_staleness_policy()
            assert not a.evicted and b.evicted
            # Catching up to lag 8 is not enough (restore at <= max_lag/2).
            b.applied_version = 92
            router._apply_staleness_policy()
            assert b.evicted
            b.applied_version = 96  # lag 4 <= 5: back in the pool
            router._apply_staleness_policy()
            assert not b.evicted
            assert router.metrics.snapshot()["counters"][
                "replicas_evicted"] == 1
        finally:
            router.shutdown()

    def test_unbootstrapped_replica_not_evicted(self):
        router, (a, _b) = self._router_with_fake_replicas()
        try:
            router._writer_version = 100
            a.applied_version = -1  # no state yet: not "lagging", just new
            router._apply_staleness_policy()
            assert not a.evicted
        finally:
            router.shutdown()
