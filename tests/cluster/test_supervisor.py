"""End-to-end: ClusterSupervisor boots writer + replicas as OS processes.

This is the ``esd cluster start`` path minus the foreground loop: child
processes come from ``python -m repro.cli cluster writer|replica``, the
router runs in this process, and clients talk to one address.  It is
the same shape the CI cluster-smoke job drives from the shell.
"""

import json
import os
import socket
import subprocess
import sys

import pytest

from tests.conftest import wait_until

from repro.cluster import ClusterConfig, ClusterSupervisor
from repro.graph.generators import gnm_random
from repro.graph.io import write_edge_list
from repro.service.client import ServiceClient

SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src")
)


@pytest.fixture(autouse=True)
def _pythonpath_for_children(monkeypatch):
    monkeypatch.setenv(
        "PYTHONPATH",
        SRC + os.pathsep + os.environ.get("PYTHONPATH", ""),
    )


@pytest.fixture
def cluster(tmp_path):
    graph_file = tmp_path / "graph.txt"
    write_edge_list(gnm_random(20, 60, seed=21), graph_file)
    supervisor = ClusterSupervisor(
        ClusterConfig(
            replicas=2,
            writer_args=["--graph", str(graph_file)],
        )
    ).start()
    try:
        yield supervisor
    finally:
        supervisor.stop()


def _scrape(address):
    with socket.create_connection(address, timeout=10) as sock:
        sock.sendall(b"GET /metrics HTTP/1.0\r\n\r\n")
        data = b""
        while True:
            chunk = sock.recv(1 << 16)
            if not chunk:
                break
            data += chunk
    return data


def test_mixed_read_write_with_read_your_writes(cluster):
    with ServiceClient(*cluster.address) as client:
        assert client.ping()
        baseline = client.topk(k=5)
        assert baseline.graph_version == 0
        for i in range(6):
            version = client.request(
                "update", action="insert", u=800 + i, v=801 + i
            )["graph_version"]
            read = client.topk(k=5)
            assert read.graph_version >= version
        status = client.request("cluster-status")
    assert status["writer"]["connected"] is True
    assert len(status["replicas"]) == 2


def test_replicas_converge_and_report_lag_via_prometheus(cluster):
    with ServiceClient(*cluster.address) as client:
        for i in range(4):
            client.request("update", action="insert", u=850 + i, v=851 + i)
    addresses = list(cluster.replica_addresses.values())

    def converged():
        versions = []
        for address in addresses:
            with ServiceClient(*address) as client:
                versions.append(
                    client.request("cluster-info")["applied_version"]
                )
        return all(v == 4 for v in versions)

    wait_until(
        converged, timeout=30, interval=0.05,
        message="replicas converging to version 4",
    )
    for address in addresses:
        body = _scrape(address).partition(b"\r\n\r\n")[2].decode()
        assert "esd_replication_applied_version 4" in body
        assert "esd_replication_lag 0" in body
    router_body = _scrape(cluster.address).partition(b"\r\n\r\n")[2].decode()
    assert "esd_cluster_writer_version" in router_body


def test_cluster_status_cli_verb(cluster):
    host, port = cluster.address
    result = subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "cluster", "status",
            "--host", host, "--port", str(port),
        ],
        capture_output=True,
        text=True,
        timeout=30,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    status = json.loads(result.stdout)
    assert status["role"] == "router"
    assert {entry["name"] for entry in status["replicas"]} == {
        "replica-0", "replica-1"
    }
