"""Shared fixtures: the paper's Fig. 1 running-example graph and friends.

Also home of :func:`wait_until`, the bounded-polling helper every
timing-sensitive test should use instead of a bare ``time.sleep``: a
sleep picks one duration and is either flaky (too short) or slow (too
long), while a predicate poll exits the moment the condition holds and
fails with a message when it never does.
"""

import time

import pytest

from repro.graph import Graph, paper_example_graph


def wait_until(
    predicate,
    timeout: float = 30.0,
    interval: float = 0.02,
    message: str = "condition",
) -> None:
    """Poll ``predicate`` until truthy; ``pytest.fail`` after ``timeout``."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    pytest.fail(f"timed out after {timeout}s waiting for {message}")


@pytest.fixture
def fig1() -> Graph:
    """The paper's Fig. 1(a) graph (16 vertices, 40 edges)."""
    return paper_example_graph()


@pytest.fixture
def triangle() -> Graph:
    return Graph([(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def path4() -> Graph:
    """Path 0-1-2-3."""
    return Graph([(0, 1), (1, 2), (2, 3)])


@pytest.fixture
def k4() -> Graph:
    return Graph([(a, b) for a in range(4) for b in range(a + 1, 4)])


@pytest.fixture
def k5() -> Graph:
    return Graph([(a, b) for a in range(5) for b in range(a + 1, 5)])
