"""Shared fixtures: the paper's Fig. 1 running-example graph and friends."""

import pytest

from repro.graph import Graph, paper_example_graph


@pytest.fixture
def fig1() -> Graph:
    """The paper's Fig. 1(a) graph (16 vertices, 40 edges)."""
    return paper_example_graph()


@pytest.fixture
def triangle() -> Graph:
    return Graph([(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def path4() -> Graph:
    """Path 0-1-2-3."""
    return Graph([(0, 1), (1, 2), (2, 3)])


@pytest.fixture
def k4() -> Graph:
    return Graph([(a, b) for a in range(4) for b in range(a + 1, 4)])


@pytest.fixture
def k5() -> Graph:
    return Graph([(a, b) for a in range(5) for b in range(a + 1, 5)])
