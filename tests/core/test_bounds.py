"""Tests for the two upper-bounding rules of §III."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    all_bounds,
    common_neighbor_bound,
    edge_structural_diversity,
    min_degree_bound,
)
from repro.graph import Graph

edge_lists = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 12)).filter(lambda e: e[0] != e[1]),
    min_size=1,
    max_size=45,
)


class TestBoundValues:
    def test_min_degree(self, fig1):
        # d(a) = 2, d(b) = 5 -> bound 2 at tau 1, 1 at tau 2.
        assert min_degree_bound(fig1, "a", "b", 1) == 2
        assert min_degree_bound(fig1, "a", "b", 2) == 1

    def test_common_neighbor(self, fig1):
        # |N(f) ∩ N(g)| = 4.
        assert common_neighbor_bound(fig1, "f", "g", 1) == 4
        assert common_neighbor_bound(fig1, "f", "g", 3) == 1
        assert common_neighbor_bound(fig1, "f", "g", 5) == 0

    def test_tau_validation(self, triangle):
        with pytest.raises(ValueError):
            min_degree_bound(triangle, 0, 1, 0)
        with pytest.raises(ValueError):
            common_neighbor_bound(triangle, 0, 1, 0)

    def test_all_bounds_unknown_rule(self, triangle):
        with pytest.raises(KeyError):
            all_bounds(triangle, 1, "magic")

    def test_all_bounds_covers_edges(self, fig1):
        bounds = all_bounds(fig1, 2, "common-neighbor")
        assert set(bounds) == set(fig1.edges())


class TestBoundProperties:
    @settings(max_examples=40, deadline=None)
    @given(edge_lists, st.integers(1, 4))
    def test_bounds_dominate_score(self, edges, tau):
        """Both rules are valid upper bounds of the exact score."""
        g = Graph(edges)
        for u, v in g.edges():
            score = edge_structural_diversity(g, u, v, tau)
            cn = common_neighbor_bound(g, u, v, tau)
            md = min_degree_bound(g, u, v, tau)
            assert score <= cn <= md

    @settings(max_examples=40, deadline=None)
    @given(edge_lists)
    def test_common_neighbor_tighter(self, edges):
        """§III: |N(u) ∩ N(v)| <= min{d(u), d(v)} edge-wise."""
        g = Graph(edges)
        for tau in (1, 2, 3):
            cn = all_bounds(g, tau, "common-neighbor")
            md = all_bounds(g, tau, "min-degree")
            for edge in cn:
                assert cn[edge] <= md[edge]
