"""Tests for ESDIndex construction (Algorithms 2 and 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    build_index_basic,
    build_index_fast,
    build_index_fast_with_components,
    compute_components_fast,
    index_from_sizes,
)
from repro.core.diversity import ego_component_sizes
from repro.graph import Graph, erdos_renyi, gnm_random, load_dataset

edge_lists = st.lists(
    st.tuples(st.integers(0, 13), st.integers(0, 13)).filter(lambda e: e[0] != e[1]),
    min_size=1,
    max_size=50,
)


def indexes_equal(a, b) -> bool:
    if a.size_classes != b.size_classes:
        return False
    return all(a.class_list(c) == b.class_list(c) for c in a.size_classes)


class TestBasicConstruction:
    def test_empty_graph(self):
        index = build_index_basic(Graph())
        assert index.size_classes == []

    def test_triangle(self, triangle):
        index = build_index_basic(triangle)
        assert index.size_classes == [1]
        assert dict(index.class_list(1)) == {(0, 1): 1, (0, 2): 1, (1, 2): 1}

    def test_fig1_valid(self, fig1):
        build_index_basic(fig1).check_invariants(fig1)


class TestFastConstruction:
    def test_components_match_bfs(self, fig1):
        components = compute_components_fast(fig1)
        for u, v in fig1.edges():
            expected = sorted(ego_component_sizes(fig1, u, v))
            assert sorted(components[(u, v)].component_sizes()) == expected

    def test_fig1_valid(self, fig1):
        build_index_fast(fig1).check_invariants(fig1)

    def test_with_components_consistent(self, fig1):
        index, components = build_index_fast_with_components(fig1)
        assert set(components) == set(fig1.edges())
        for edge, m in components.items():
            sizes = sorted(m.component_sizes())
            assert index.component_sizes(edge) == sizes

    def test_graph_without_four_cliques(self, path4):
        """Triangle-free graphs: every common neighbor is a singleton."""
        index = build_index_fast(path4)
        assert index.size_classes in ([], [1])


class TestAlgorithmsAgree:
    @pytest.mark.parametrize("name", ["youtube", "dblp"])
    def test_on_dataset_standins(self, name):
        g = load_dataset(name, scale=0.15)
        assert indexes_equal(build_index_basic(g), build_index_fast(g))

    def test_on_random_graph(self):
        g = erdos_renyi(60, 0.15, seed=2)
        assert indexes_equal(build_index_basic(g), build_index_fast(g))

    @settings(max_examples=40, deadline=None)
    @given(edge_lists)
    def test_property(self, edges):
        g = Graph(edges)
        basic = build_index_basic(g)
        fast = build_index_fast(g)
        assert indexes_equal(basic, fast)
        fast.check_invariants(g)


class TestIndexFromSizes:
    def test_skips_empty_multisets(self):
        index = index_from_sizes({(0, 1): [], (2, 3): [2]})
        assert index.edge_count == 1

    def test_matches_incremental(self):
        g = gnm_random(25, 80, seed=11)
        sizes = {
            (u, v): ego_component_sizes(g, u, v) for u, v in g.edges()
        }
        bulk = index_from_sizes(sizes)
        from repro.core import ESDIndex

        incremental = ESDIndex()
        for edge, s in sizes.items():
            if s:
                incremental.set_edge(edge, s)
        assert indexes_equal(bulk, incremental)
        bulk.check_invariants(g)
