"""Tests for direct structural diversity computation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    all_edge_structural_diversities,
    all_ego_component_sizes,
    edge_structural_diversity,
    ego_component_sizes,
    score_from_sizes,
    topk_exact,
)
from repro.graph import Graph, gnm_random

edge_lists = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 12)).filter(lambda e: e[0] != e[1]),
    min_size=1,
    max_size=45,
)


class TestEgoComponentSizes:
    def test_no_common_neighbors(self):
        g = Graph([(0, 1)])
        assert ego_component_sizes(g, 0, 1) == []

    def test_missing_edge_raises(self, triangle):
        with pytest.raises(KeyError):
            ego_component_sizes(triangle, 0, 99)

    def test_triangle_edge(self, triangle):
        assert ego_component_sizes(triangle, 0, 1) == [1]

    def test_k4_edge(self, k4):
        assert sorted(ego_component_sizes(k4, 0, 1)) == [2]

    def test_k5_edge(self, k5):
        assert sorted(ego_component_sizes(k5, 0, 1)) == [3]


class TestEdgeStructuralDiversity:
    def test_tau_validation(self, triangle):
        with pytest.raises(ValueError):
            edge_structural_diversity(triangle, 0, 1, 0)

    def test_symmetric(self, fig1):
        for u, v in list(fig1.edges())[:15]:
            assert edge_structural_diversity(
                fig1, u, v, 2
            ) == edge_structural_diversity(fig1, v, u, 2)

    def test_monotone_in_tau(self, fig1):
        """score is non-increasing in tau."""
        for u, v in fig1.edges():
            scores = [
                edge_structural_diversity(fig1, u, v, tau) for tau in range(1, 7)
            ]
            assert scores == sorted(scores, reverse=True)

    def test_score_from_sizes(self):
        assert score_from_sizes([1, 2, 5], 2) == 2
        assert score_from_sizes([], 1) == 0
        with pytest.raises(ValueError):
            score_from_sizes([1], 0)


class TestAllEdges:
    def test_covers_every_edge(self, fig1):
        scores = all_edge_structural_diversities(fig1, 2)
        assert set(scores) == set(fig1.edges())

    def test_sizes_cover_every_edge(self, fig1):
        sizes = all_ego_component_sizes(fig1)
        assert set(sizes) == set(fig1.edges())
        for (u, v), s in sizes.items():
            assert sum(s) == len(fig1.common_neighbors(u, v))

    def test_tau_validation(self, triangle):
        with pytest.raises(ValueError):
            all_edge_structural_diversities(triangle, 0)


class TestTopkExact:
    def test_parameter_validation(self, triangle):
        with pytest.raises(ValueError):
            topk_exact(triangle, 0, 1)
        with pytest.raises(ValueError):
            topk_exact(triangle, 1, 0)

    def test_k_larger_than_m(self, triangle):
        top = topk_exact(triangle, 100, 1)
        assert len(top) == 3

    def test_sorted_descending(self):
        g = gnm_random(40, 120, seed=9)
        top = topk_exact(g, 20, 1)
        scores = [s for _, s in top]
        assert scores == sorted(scores, reverse=True)

    def test_deterministic_tie_break(self):
        g = gnm_random(40, 120, seed=9)
        a = topk_exact(g, 10, 2)
        b = topk_exact(g, 10, 2)
        assert a == b

    @settings(max_examples=40, deadline=None)
    @given(edge_lists, st.integers(1, 4))
    def test_scores_match_brute_force(self, edges, tau):
        """Cross-check against a naive implementation built from scratch."""
        g = Graph(edges)
        for u, v in g.edges():
            common = {w for w in g.vertices() if g.has_edge(u, w) and g.has_edge(v, w)}
            # Naive component count via repeated flood fill on a dict.
            remaining = set(common)
            count = 0
            while remaining:
                stack = [next(iter(remaining))]
                comp = set()
                while stack:
                    x = stack.pop()
                    if x in comp:
                        continue
                    comp.add(x)
                    stack.extend(
                        y for y in g.neighbors(x) if y in remaining and y not in comp
                    )
                remaining -= comp
                if len(comp) >= tau:
                    count += 1
            assert edge_structural_diversity(g, u, v, tau) == count
