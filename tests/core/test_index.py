"""Tests for the ESDIndex structure and its query algorithm."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ESDIndex, build_index_fast, topk_exact
from repro.graph import Graph, gnm_random


class TestEmptyIndex:
    def test_queries_empty(self):
        index = ESDIndex()
        assert index.topk(5, 1) == []
        assert index.query(5, 3) == []
        assert index.size_classes == []
        assert index.entry_count == 0
        assert index.edge_count == 0

    def test_parameter_validation(self):
        index = ESDIndex()
        with pytest.raises(ValueError):
            index.topk(0, 1)
        with pytest.raises(ValueError):
            index.topk(1, 0)
        with pytest.raises(ValueError):
            index.score((0, 1), 0)


class TestSetEdge:
    def test_single_edge(self):
        index = ESDIndex()
        index.set_edge((1, 2), [3, 1])
        assert index.size_classes == [1, 3]
        assert index.score((1, 2), 1) == 2
        assert index.score((1, 2), 2) == 1
        assert index.score((1, 2), 4) == 0
        assert index.component_sizes((1, 2)) == [1, 3]
        index.check_invariants()

    def test_edge_canonicalized(self):
        index = ESDIndex()
        index.set_edge((2, 1), [2])
        assert index.score((1, 2), 2) == 1
        assert index.score((2, 1), 2) == 1

    def test_update_changes_entries(self):
        index = ESDIndex()
        index.set_edge((1, 2), [2, 2])
        index.set_edge((1, 2), [3])
        assert index.size_classes == [3]
        assert index.topk(1, 2) == [((1, 2), 1)]
        index.check_invariants()

    def test_update_to_empty_removes(self):
        index = ESDIndex()
        index.set_edge((1, 2), [2])
        index.set_edge((1, 2), [])
        assert index.edge_count == 0
        assert index.size_classes == []
        index.check_invariants()

    def test_invalid_sizes(self):
        index = ESDIndex()
        with pytest.raises(ValueError):
            index.set_edge((1, 2), [0, 2])

    def test_new_class_backfill(self):
        """Creating H(c) must back-fill existing larger-component edges."""
        index = ESDIndex()
        index.set_edge((1, 2), [5])
        index.set_edge((3, 4), [3])  # creates H(3); (1,2) has a comp >= 3
        h3 = dict(index.class_list(3))
        assert h3 == {(1, 2): 1, (3, 4): 1}
        index.check_invariants()

    def test_class_dropped_when_size_vanishes(self):
        index = ESDIndex()
        index.set_edge((1, 2), [2])
        index.set_edge((3, 4), [4])
        index.set_edge((1, 2), [4])  # size 2 no longer occurs anywhere
        assert index.size_classes == [4]
        index.check_invariants()


class TestRemoveEdge:
    def test_remove(self):
        index = ESDIndex()
        index.set_edge((1, 2), [2])
        index.set_edge((3, 4), [2, 1])
        index.remove_edge((1, 2))
        assert index.edge_count == 1
        assert index.topk(5, 1) == [((3, 4), 2)]
        index.check_invariants()

    def test_remove_untracked_is_noop(self):
        index = ESDIndex()
        index.remove_edge((9, 9 + 1))
        assert index.edge_count == 0

    def test_remove_last_drops_classes(self):
        index = ESDIndex()
        index.set_edge((1, 2), [3])
        index.remove_edge((1, 2))
        assert index.size_classes == []
        index.check_invariants()


class TestQuery:
    def test_tau_above_max_returns_empty(self, fig1):
        index = build_index_fast(fig1)
        assert index.topk(3, 6) == []

    def test_tau_between_classes_rounds_up(self):
        index = ESDIndex()
        index.set_edge((1, 2), [2, 5, 5])
        index.set_edge((3, 4), [5])
        # tau=3 -> c*=5: scores at 5.
        assert index.topk(5, 3) == [((1, 2), 2), ((3, 4), 1)]

    def test_topk_truncates(self, fig1):
        index = build_index_fast(fig1)
        assert len(index.topk(2, 1)) == 2

    def test_query_returns_edges(self, fig1):
        index = build_index_fast(fig1)
        assert index.query(3, 2) == [e for e, _ in index.topk(3, 2)]

    def test_entry_count_bounded_by_common_neighbors(self, fig1):
        """Theorem 3: total entries <= sum over edges of |N(u) ∩ N(v)|."""
        index = build_index_fast(fig1)
        budget = sum(
            len(fig1.common_neighbors(u, v)) for u, v in fig1.edges()
        )
        assert index.entry_count <= budget


class TestIndexMatchesExact:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("tau", [1, 2, 3, 4])
    def test_random_graphs_all_k(self, seed, tau):
        g = gnm_random(30, 110, seed=seed)
        index = build_index_fast(g)
        exact = [(e, s) for e, s in topk_exact(g, g.m, tau) if s > 0]
        got = index.topk(g.m, tau)
        assert got == exact

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 12), st.integers(0, 12)).filter(
                lambda e: e[0] != e[1]
            ),
            min_size=1,
            max_size=45,
        ),
        st.integers(1, 5),
        st.integers(1, 10),
    )
    def test_property(self, edges, tau, k):
        g = Graph(edges)
        index = build_index_fast(g)
        exact = [(e, s) for e, s in topk_exact(g, k, tau) if s > 0]
        assert index.topk(k, tau) == exact
        index.check_invariants(g)
