"""Tests for index persistence, introspection and the degeneracy order."""

import pytest

from repro.cliques import count_four_cliques, iter_four_cliques
from repro.core import ESDIndex, build_index_fast, topk_exact
from repro.graph import Graph, OrientedGraph, erdos_renyi, gnm_random


class TestSaveLoad:
    def test_round_trip(self, fig1, tmp_path):
        index = build_index_fast(fig1)
        path = tmp_path / "index.json"
        index.save(path)
        loaded = ESDIndex.load(path)
        assert loaded.size_classes == index.size_classes
        for c in index.size_classes:
            assert loaded.class_list(c) == index.class_list(c)

    def test_round_trip_int_vertices(self, tmp_path):
        g = gnm_random(25, 80, seed=3)
        index = build_index_fast(g)
        path = tmp_path / "i.json"
        index.save(path)
        loaded = ESDIndex.load(path)
        for tau in (1, 2, 3):
            assert loaded.topk(10, tau) == index.topk(10, tau)

    def test_empty_index(self, tmp_path):
        path = tmp_path / "empty.json"
        ESDIndex().save(path)
        assert ESDIndex.load(path).topk(3, 1) == []

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99, "edges": []}')
        with pytest.raises(ValueError):
            ESDIndex.load(path)

    def test_loaded_index_queries_match_exact(self, fig1, tmp_path):
        path = tmp_path / "fig1.json"
        build_index_fast(fig1).save(path)
        loaded = ESDIndex.load(path)
        for tau in (1, 2, 3, 4, 5):
            exact = [(e, s) for e, s in topk_exact(fig1, 40, tau) if s > 0]
            assert loaded.topk(40, tau) == exact


class TestIntrospection:
    def test_stats_shape(self, fig1):
        stats = build_index_fast(fig1).stats()
        assert stats["edges"] == 40
        assert stats["size_classes"] == [1, 2, 4, 5]
        assert stats["entries"] == sum(stats["class_sizes"].values())
        assert stats["histogram_cells"] > 0

    def test_diversity_profile(self, fig1):
        index = build_index_fast(fig1)
        # (f, g): components {2, 2} -> profile {2: 2}.
        assert index.diversity_profile(("f", "g")) == {2: 2}
        # (j, k): components {2, 4} -> at tau<=2 score 2, at tau in (2,4] 1.
        assert index.diversity_profile(("j", "k")) == {2: 2, 4: 1}
        assert index.diversity_profile(("zz", "zz2")) == {}

    def test_profile_consistent_with_score(self, fig1):
        from repro.core import edge_structural_diversity

        index = build_index_fast(fig1)
        for edge in list(fig1.edges())[:12]:
            profile = index.diversity_profile(edge)
            for tau, score in profile.items():
                assert edge_structural_diversity(fig1, *edge, tau) == score


class TestDegeneracyOrientation:
    def test_same_cliques_both_orders(self):
        g = erdos_renyi(50, 0.2, seed=7)
        by_degree = {tuple(sorted(c)) for c in iter_four_cliques(g, order="degree")}
        by_degeneracy = {
            tuple(sorted(c)) for c in iter_four_cliques(g, order="degeneracy")
        }
        assert by_degree == by_degeneracy

    def test_counts_agree(self, fig1):
        assert count_four_cliques(fig1) == count_four_cliques(
            fig1, order="degeneracy"
        )

    def test_unknown_order_rejected(self, triangle):
        with pytest.raises(ValueError):
            OrientedGraph(triangle, order="magic")

    def test_degeneracy_orientation_bounds_outdegree(self):
        """Defining property: out-degrees <= degeneracy under this order."""
        from repro.cliques import degeneracy

        g = erdos_renyi(60, 0.15, seed=9)
        dag = OrientedGraph(g, order="degeneracy")
        assert dag.max_out_degree() <= degeneracy(g)

    def test_orientation_is_partition(self):
        g = gnm_random(30, 90, seed=5)
        dag = OrientedGraph(g, order="degeneracy")
        assert sorted(tuple(sorted(e)) for e in dag.directed_edges()) == sorted(
            g.edges()
        )
