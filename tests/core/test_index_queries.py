"""Tests for the lazy/threshold query surface of ESDIndex."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_index_fast, topk_exact
from repro.graph import Graph, gnm_random

edge_lists = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 12)).filter(lambda e: e[0] != e[1]),
    min_size=1,
    max_size=45,
)


class TestIterRanked:
    def test_streams_in_order(self, fig1):
        index = build_index_fast(fig1)
        for tau in (1, 2, 3, 5):
            streamed = list(index.iter_ranked(tau))
            assert streamed == index.topk(len(streamed) + 5, tau)

    def test_lazy_consumption(self, fig1):
        index = build_index_fast(fig1)
        iterator = index.iter_ranked(1)
        first = next(iterator)
        assert first == index.topk(1, 1)[0]

    def test_empty_for_large_tau(self, fig1):
        index = build_index_fast(fig1)
        assert list(index.iter_ranked(99)) == []

    def test_tau_validation(self, fig1):
        index = build_index_fast(fig1)
        with pytest.raises(ValueError):
            list(index.iter_ranked(0))


class TestThresholdQueries:
    def test_fig1_threshold_two(self, fig1):
        index = build_index_fast(fig1)
        result = index.edges_with_score_at_least(2, 2)
        assert {e for e, _ in result} == {("f", "g"), ("h", "i"), ("j", "k")}

    def test_threshold_one_equals_all_positive(self, fig1):
        index = build_index_fast(fig1)
        result = index.edges_with_score_at_least(1, 1)
        assert len(result) == index.edge_count == 40

    def test_validation(self, fig1):
        index = build_index_fast(fig1)
        with pytest.raises(ValueError):
            index.edges_with_score_at_least(0, 1)

    @settings(max_examples=30, deadline=None)
    @given(edge_lists, st.integers(1, 4), st.integers(1, 4))
    def test_matches_filtered_exact(self, edges, tau, threshold):
        g = Graph(edges)
        index = build_index_fast(g)
        expected = [
            (e, s) for e, s in topk_exact(g, max(g.m, 1), tau)
            if s >= threshold
        ]
        assert index.edges_with_score_at_least(threshold, tau) == expected


class TestWorkloadsCache:
    def test_dataset_cached(self):
        from repro.bench import dataset

        a = dataset("youtube", 0.1)
        b = dataset("youtube", 0.1)
        assert a is b  # lru_cache returns the same object

    def test_all_datasets_order(self):
        from repro.bench import all_datasets
        from repro.graph import DATASET_NAMES

        graphs = all_datasets(0.1)
        assert list(graphs) == DATASET_NAMES
