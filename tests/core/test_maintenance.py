"""Tests for dynamic index maintenance (Algorithms 4 and 5).

The load-bearing checks are differential: after every scripted update,
``DynamicESDIndex.check_invariants`` recomputes M and the index from
scratch and requires exact agreement.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DynamicESDIndex, build_index_fast
from repro.graph import Graph, gnm_random


def indexes_equal(a, b) -> bool:
    if a.size_classes != b.size_classes:
        return False
    return all(a.class_list(c) == b.class_list(c) for c in a.size_classes)


class TestInsertEdge:
    def test_duplicate_insert_rejected(self, fig1):
        dyn = DynamicESDIndex(fig1)
        with pytest.raises(ValueError):
            dyn.insert_edge("a", "b")

    def test_insert_between_new_vertices(self, fig1):
        dyn = DynamicESDIndex(fig1)
        dyn.insert_edge("x1", "x2")
        dyn.check_invariants()
        assert dyn.graph.has_edge("x1", "x2")
        # Edge with empty ego-network is in no H(c).
        assert dyn.index.component_sizes(("x1", "x2")) == []

    def test_insert_closing_triangle(self):
        g = Graph([(0, 1), (1, 2)])
        dyn = DynamicESDIndex(g)
        dyn.insert_edge(0, 2)
        dyn.check_invariants()
        assert dyn.index.component_sizes((0, 1)) == [1]

    def test_insert_matches_rebuild(self, fig1):
        dyn = DynamicESDIndex(fig1)
        dyn.insert_edge("c", "d")
        rebuilt = build_index_fast(dyn.graph)
        assert indexes_equal(dyn.index, rebuilt)

    def test_stats_locality(self, fig1):
        dyn = DynamicESDIndex(fig1)
        stats = dyn.insert_edge("a", "d")  # small neighborhood
        assert stats.edges_rescored < fig1.m

    def test_does_not_mutate_input_graph(self, fig1):
        m_before = fig1.m
        dyn = DynamicESDIndex(fig1)
        dyn.insert_edge("a", "d")
        assert fig1.m == m_before


class TestDeleteEdge:
    def test_missing_delete_rejected(self, fig1):
        dyn = DynamicESDIndex(fig1)
        with pytest.raises(KeyError):
            dyn.delete_edge("a", "w")

    def test_delete_matches_rebuild(self, fig1):
        dyn = DynamicESDIndex(fig1)
        dyn.delete_edge("u", "k")
        assert indexes_equal(dyn.index, build_index_fast(dyn.graph))

    def test_delete_isolated_common_neighbor_case(self):
        # Triangle: deleting one edge leaves the others with empty egos.
        dyn = DynamicESDIndex(Graph([(0, 1), (1, 2), (0, 2)]))
        dyn.delete_edge(0, 1)
        dyn.check_invariants()
        assert dyn.index.edge_count == 0

    def test_delete_splits_component(self, k5):
        """In K5, deleting (0,1) splits nothing (others still connected),
        but the ego of (0,1)-adjacent edges shrinks."""
        dyn = DynamicESDIndex(k5)
        dyn.delete_edge(0, 1)
        dyn.check_invariants()
        # Edge (2,3)'s ego {0,1,4}: 0-1 gone but both still link via 4.
        assert dyn.index.component_sizes((2, 3)) == [3]

    def test_delete_bridge_of_ego(self):
        """Deleting an edge that was the only link between two halves of
        another edge's ego-network must split that component."""
        # Edge (a,b); common neighbors w1, w2; w1-w2 is the deleted edge.
        g = Graph([("a", "b"), ("a", "w1"), ("b", "w1"), ("a", "w2"),
                   ("b", "w2"), ("w1", "w2")])
        dyn = DynamicESDIndex(g)
        assert dyn.index.component_sizes(("a", "b")) == [2]
        dyn.delete_edge("w1", "w2")
        dyn.check_invariants()
        assert dyn.index.component_sizes(("a", "b")) == [1, 1]


class TestInsertDeleteInverse:
    def test_roundtrip_restores_index(self, fig1):
        dyn = DynamicESDIndex(fig1)
        reference = build_index_fast(fig1)
        dyn.insert_edge("c", "d")
        dyn.delete_edge("c", "d")
        dyn.check_invariants()
        assert indexes_equal(dyn.index, reference)

    def test_delete_then_reinsert(self, fig1):
        dyn = DynamicESDIndex(fig1)
        reference = build_index_fast(fig1)
        dyn.delete_edge("f", "g")
        dyn.insert_edge("f", "g")
        dyn.check_invariants()
        assert indexes_equal(dyn.index, reference)


class TestRandomEditScripts:
    @pytest.mark.parametrize("seed", [1, 2])
    def test_scripted_updates_stay_consistent(self, seed):
        rng = random.Random(seed)
        g = gnm_random(18, 45, seed=seed)
        dyn = DynamicESDIndex(g)
        for step in range(30):
            edges = dyn.graph.edge_list()
            if edges and rng.random() < 0.5:
                u, v = rng.choice(edges)
                dyn.delete_edge(u, v)
            else:
                u = rng.randrange(18)
                v = rng.randrange(18)
                if u != v and not dyn.graph.has_edge(u, v):
                    dyn.insert_edge(u, v)
            dyn.check_invariants()

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 9)).filter(
                lambda e: e[0] != e[1]
            ),
            max_size=25,
        ),
        st.lists(
            st.tuples(
                st.sampled_from(["ins", "del"]),
                st.integers(0, 9),
                st.integers(0, 9),
            ).filter(lambda op: op[1] != op[2]),
            max_size=15,
        ),
    )
    def test_property_random_scripts(self, base_edges, ops):
        dyn = DynamicESDIndex(Graph(base_edges))
        for op, u, v in ops:
            if op == "ins":
                if not dyn.graph.has_edge(u, v):
                    dyn.insert_edge(u, v)
            else:
                if dyn.graph.has_edge(u, v):
                    dyn.delete_edge(u, v)
        dyn.check_invariants()
        assert indexes_equal(dyn.index, build_index_fast(dyn.graph))

    def test_queries_after_edits(self, fig1):
        from repro.core import topk_exact

        dyn = DynamicESDIndex(fig1)
        dyn.delete_edge("u", "k")
        dyn.insert_edge("c", "d")
        for tau in (1, 2, 3):
            exact = [(e, s) for e, s in topk_exact(dyn.graph, 10, tau) if s > 0]
            assert dyn.topk(10, tau) == exact


class TestSelfLoopRejection:
    """Self-loops must be rejected loudly at every entry point, leaving
    graph, M and index bit-for-bit untouched (no partial application)."""

    def test_insert_edge_rejected_index_untouched(self, fig1):
        dyn = DynamicESDIndex(fig1)
        before = dyn.export_state()
        with pytest.raises(ValueError, match="self-loop"):
            dyn.insert_edge("a", "a")
        assert dyn.graph_version == 0
        assert dyn.export_state() == before
        dyn.check_invariants()

    def test_delete_edge_self_loop_reports_not_in_graph(self, fig1):
        dyn = DynamicESDIndex(fig1)
        with pytest.raises(KeyError, match="not in graph"):
            dyn.delete_edge("a", "a")
        assert dyn.graph_version == 0

    def test_insert_vertex_rejected_atomically(self, fig1):
        dyn = DynamicESDIndex(fig1)
        before = dyn.export_state()
        # Sorted neighbor order would insert ("z", "a") and ("z", "b")
        # before reaching the self-loop -- the rejection must come first.
        with pytest.raises(ValueError, match="self-loop"):
            dyn.insert_vertex("z", ["a", "z", "b"])
        assert dyn.graph_version == 0
        assert not dyn.graph.has_edge("z", "a")
        assert not dyn.graph.has_edge("z", "b")
        assert "z" not in dyn.graph
        assert dyn.export_state() == before
        dyn.check_invariants()

    def test_apply_batch_rejected_before_any_update(self, fig1):
        dyn = DynamicESDIndex(fig1)
        before = dyn.export_state()
        # Deletions run first in a valid batch; a self-loop anywhere in
        # the batch must reject before even the deletions are applied.
        with pytest.raises(ValueError, match="self-loop"):
            dyn.apply_batch(
                insertions=[("a", "p"), ("q", "q")],
                deletions=[("a", "b")],
            )
        assert dyn.graph_version == 0
        assert dyn.graph.has_edge("a", "b")  # the deletion never ran
        assert not dyn.graph.has_edge("a", "p")
        assert dyn.export_state() == before

    def test_apply_batch_self_loop_in_deletions(self, fig1):
        dyn = DynamicESDIndex(fig1)
        with pytest.raises(ValueError, match="self-loop"):
            dyn.apply_batch(deletions=[("a", "b"), ("c", "c")])
        assert dyn.graph.has_edge("a", "b")
        assert dyn.graph_version == 0

    def test_valid_vertex_insert_still_works(self, fig1):
        dyn = DynamicESDIndex(fig1)
        stats = dyn.insert_vertex("z", ["a", "b"])
        assert len(stats) == 2
        assert dyn.graph_version == 2
        dyn.check_invariants()
