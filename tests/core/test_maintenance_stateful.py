"""Model-based fuzzing of DynamicESDIndex.

The machine applies arbitrary insert/delete/vertex operations and, after
every step, compares the maintained index against a from-scratch rebuild
-- the strongest differential oracle available.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core import DynamicESDIndex, build_index_fast
from repro.graph import Graph

VERTICES = list(range(9))


class DynamicIndexMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        base = Graph([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (0, 3)])
        self.dyn = DynamicESDIndex(base)

    @rule(u=st.sampled_from(VERTICES), v=st.sampled_from(VERTICES))
    def insert(self, u, v):
        if u != v and not self.dyn.graph.has_edge(u, v):
            self.dyn.insert_edge(u, v)

    @rule(u=st.sampled_from(VERTICES), v=st.sampled_from(VERTICES))
    def delete(self, u, v):
        if self.dyn.graph.has_edge(u, v):
            self.dyn.delete_edge(u, v)

    @rule(v=st.sampled_from(VERTICES))
    def delete_vertex(self, v):
        if v in self.dyn.graph:
            self.dyn.delete_vertex(v)

    @rule(
        v=st.sampled_from(VERTICES),
        neighbors=st.sets(st.sampled_from(VERTICES), max_size=4),
    )
    def insert_vertex(self, v, neighbors):
        graph = self.dyn.graph
        if v in graph and graph.degree(v) > 0:
            return
        self.dyn.insert_vertex(
            v, [w for w in neighbors if w != v and w in graph]
        )

    @invariant()
    def matches_rebuild(self):
        self.dyn.check_invariants()
        rebuilt = build_index_fast(self.dyn.graph)
        assert self.dyn.index.size_classes == rebuilt.size_classes
        for c in rebuilt.size_classes:
            assert self.dyn.index.class_list(c) == rebuilt.class_list(c)


TestDynamicIndexStateful = DynamicIndexMachine.TestCase
TestDynamicIndexStateful.settings = settings(
    max_examples=25, stateful_step_count=12, deadline=None
)
