"""Tests for TopKMonitor and the vertex/batch maintenance extensions."""

import pytest

from repro.core import DynamicESDIndex, TopKMonitor, build_index_fast
from repro.graph import Graph, gnm_random, planted_diversity_graph


def indexes_equal(a, b) -> bool:
    if a.size_classes != b.size_classes:
        return False
    return all(a.class_list(c) == b.class_list(c) for c in a.size_classes)


class TestVertexUpdates:
    def test_insert_vertex(self, fig1):
        dyn = DynamicESDIndex(fig1)
        stats = dyn.insert_vertex("z", ["f", "g", "h"])
        assert len(stats) == 3
        dyn.check_invariants()
        assert indexes_equal(dyn.index, build_index_fast(dyn.graph))

    def test_insert_existing_vertex_rejected(self, fig1):
        dyn = DynamicESDIndex(fig1)
        with pytest.raises(ValueError):
            dyn.insert_vertex("a", ["f"])

    def test_insert_isolated_then_connect(self, fig1):
        dyn = DynamicESDIndex(fig1)
        dyn.graph.add_vertex("iso")  # isolated vertices are fine to extend
        stats = dyn.insert_vertex("iso2", [])
        assert stats == []

    def test_delete_vertex(self, fig1):
        dyn = DynamicESDIndex(fig1)
        dyn.delete_vertex("u")
        assert "u" not in dyn.graph
        dyn.check_invariants()
        assert indexes_equal(dyn.index, build_index_fast(dyn.graph))

    def test_delete_missing_vertex(self, fig1):
        dyn = DynamicESDIndex(fig1)
        with pytest.raises(KeyError):
            dyn.delete_vertex("zz")

    def test_vertex_roundtrip(self, fig1):
        dyn = DynamicESDIndex(fig1)
        reference = build_index_fast(fig1)
        neighbors = sorted(fig1.neighbors("w"))
        dyn.delete_vertex("w")
        dyn.insert_vertex("w", neighbors)
        dyn.check_invariants()
        assert indexes_equal(dyn.index, reference)


class TestBatchUpdates:
    def test_batch_matches_sequence(self, fig1):
        batch = DynamicESDIndex(fig1)
        stats = batch.apply_batch(
            insertions=[("c", "d"), ("a", "e")],
            deletions=[("u", "k"), ("f", "g")],
        )
        batch.check_invariants()
        assert stats.edges_rescored > 0
        assert indexes_equal(batch.index, build_index_fast(batch.graph))

    def test_swap_batch_order(self, fig1):
        """Deleting then reinserting the same edge in one batch works
        because deletions run first."""
        dyn = DynamicESDIndex(fig1)
        reference = build_index_fast(fig1)
        dyn.apply_batch(insertions=[("u", "k")], deletions=[("u", "k")])
        assert indexes_equal(dyn.index, reference)

    def test_empty_batch(self, fig1):
        dyn = DynamicESDIndex(fig1)
        stats = dyn.apply_batch()
        assert stats.edges_rescored == 0


class TestTopKMonitor:
    def test_parameter_validation(self, triangle):
        with pytest.raises(ValueError):
            TopKMonitor(triangle, k=0, tau=1)
        with pytest.raises(ValueError):
            TopKMonitor(triangle, k=1, tau=0)

    def test_initial_top_matches_index(self, fig1):
        monitor = TopKMonitor(fig1, k=3, tau=2)
        assert monitor.top == build_index_fast(fig1).topk(3, 2)

    def test_insert_reports_change(self):
        g = planted_diversity_graph(hub_pairs=2, components_per_pair=3,
                                    noise_edges=0, noise_vertices=0, seed=1)
        monitor = TopKMonitor(g, k=1, tau=2)
        ((top_edge, top_score),) = monitor.top
        assert top_edge == (0, 1)
        # Give the runner-up pair (2, 3) two fresh planted components so it
        # overtakes the current leader.
        base = max(g.vertices()) + 1
        changes = []
        for start in (base, base + 2):
            w1, w2 = start, start + 1
            changes.append(monitor.insert(2, w1))
            changes.append(monitor.insert(3, w1))
            changes.append(monitor.insert(2, w2))
            changes.append(monitor.insert(3, w2))
            changes.append(monitor.insert(w1, w2))
        assert any(c.changed for c in changes)
        assert monitor.top[0][0] == (2, 3)
        assert monitor.top[0][1] > top_score

    def test_delete_reports_change(self, fig1):
        monitor = TopKMonitor(fig1, k=3, tau=2)
        change = monitor.delete("f", "g")
        assert change.update == "delete"
        assert change.edge == ("f", "g")
        assert (("f", "g"), 2) in change.left
        assert monitor.history[-1] is change

    def test_no_change_on_irrelevant_update(self, fig1):
        monitor = TopKMonitor(fig1, k=1, tau=5)
        change = monitor.insert("a", "d")
        assert not change.changed

    def test_monitor_stays_exact_over_stream(self):
        import random

        g = gnm_random(16, 40, seed=4)
        monitor = TopKMonitor(g, k=4, tau=1)
        rng = random.Random(9)
        for _ in range(20):
            edges = monitor.dynamic_index.graph.edge_list()
            if edges and rng.random() < 0.5:
                monitor.delete(*rng.choice(edges))
            else:
                u, v = rng.randrange(16), rng.randrange(16)
                if u != v and not monitor.dynamic_index.graph.has_edge(u, v):
                    monitor.insert(u, v)
            expected = build_index_fast(monitor.dynamic_index.graph).topk(4, 1)
            assert monitor.top == expected
