"""TopKMonitor under interleaved insert/delete streams.

Every reported ``entered``/``left`` set is checked against from-scratch
recomputes of consecutive answer sets, and the attach/refresh path (the
service's change feeds) is checked against the owning-constructor path.
"""

import random

import pytest

from repro.core import DynamicESDIndex, build_index_fast
from repro.core.monitor import TopKMonitor
from repro.graph import Graph
from repro.graph.generators import erdos_renyi


def _interleaved_script(graph, steps, seed):
    """Deterministic stream mixing deletions of existing edges with
    re-insertions and brand-new edges."""
    rng = random.Random(seed)
    current = graph.copy()
    script = []
    vertices = sorted(current.vertices())
    for _ in range(steps):
        edges = sorted(current.edges())
        if edges and rng.random() < 0.5:
            edge = rng.choice(edges)
            script.append(("delete", edge))
            current.remove_edge(*edge)
        else:
            u, v = rng.sample(vertices, 2)
            if current.has_edge(u, v):
                script.append(("delete", (u, v)))
                current.remove_edge(u, v)
            else:
                script.append(("insert", (u, v)))
                current.add_edge(u, v)
    return script


@pytest.mark.parametrize("seed", [1, 2])
@pytest.mark.parametrize("k,tau", [(5, 1), (3, 2)])
def test_stream_changes_match_scratch_recompute(seed, k, tau):
    graph = erdos_renyi(25, 0.2, seed=seed)
    monitor = TopKMonitor(graph, k=k, tau=tau)
    current = graph.copy()
    previous_answer = build_index_fast(current).topk(k, tau)
    assert monitor.top == previous_answer

    for action, (u, v) in _interleaved_script(graph, steps=30, seed=seed):
        change = (
            monitor.insert(u, v) if action == "insert" else monitor.delete(u, v)
        )
        if action == "insert":
            current.add_edge(u, v)
        else:
            current.remove_edge(u, v)
        answer = build_index_fast(current).topk(k, tau)
        assert set(monitor.top) == set(answer)
        assert set(change.entered) == set(answer) - set(previous_answer)
        assert set(change.left) == set(previous_answer) - set(answer)
        assert change.changed == (set(answer) != set(previous_answer))
        previous_answer = answer

    assert len(monitor.history) == 30


def test_attach_refresh_matches_owning_monitor():
    graph = erdos_renyi(20, 0.25, seed=9)
    dyn = DynamicESDIndex(graph)
    attached = TopKMonitor.attach(dyn, k=4, tau=1)
    owning = TopKMonitor(graph, k=4, tau=1)
    assert attached.top == owning.top

    script = _interleaved_script(graph, steps=15, seed=9)
    for action, (u, v) in script:
        if action == "insert":
            dyn.insert_edge(u, v)
            truth = owning.insert(u, v)
        else:
            dyn.delete_edge(u, v)
            truth = owning.delete(u, v)
        change = attached.refresh(action, (u, v))
        assert change.entered == truth.entered
        assert change.left == truth.left
        assert change.update == truth.update
        assert attached.top == owning.top
    assert len(attached.history) == len(script)


def test_attach_validates_and_shares_index():
    graph = Graph([(0, 1), (1, 2), (0, 2), (0, 3), (1, 3)])
    dyn = DynamicESDIndex(graph)
    with pytest.raises(ValueError):
        TopKMonitor.attach(dyn, k=0, tau=1)
    with pytest.raises(ValueError):
        TopKMonitor.attach(dyn, k=1, tau=0)
    attached = TopKMonitor.attach(dyn, k=2, tau=1)
    assert attached.dynamic_index is dyn
    # refresh with no update is a no-op change
    change = attached.refresh()
    assert change.update == "external" and change.edge is None
    assert not change.changed


def test_refresh_on_owning_monitor_after_direct_index_mutation():
    graph = Graph([(0, 1), (1, 2), (0, 2), (2, 3), (0, 3)])
    monitor = TopKMonitor(graph, k=3, tau=1)
    # Mutate through the underlying index, bypassing insert()/delete().
    monitor.dynamic_index.insert_edge(1, 3)
    change = monitor.refresh("insert", (1, 3))
    fresh = build_index_fast(monitor.dynamic_index.graph).topk(3, 1)
    assert set(monitor.top) == set(fresh)
    assert change.update == "insert"
