"""Tests for the dequeue-twice online search (Algorithm 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import online_bfs, online_bfs_plus, topk_exact, topk_online
from repro.graph import Graph, gnm_random, planted_diversity_graph

edge_lists = st.lists(
    st.tuples(st.integers(0, 14), st.integers(0, 14)).filter(lambda e: e[0] != e[1]),
    min_size=1,
    max_size=50,
)


class TestOnlineBasics:
    def test_parameter_validation(self, triangle):
        with pytest.raises(ValueError):
            topk_online(triangle, 0, 1)
        with pytest.raises(ValueError):
            topk_online(triangle, 1, 0)
        with pytest.raises(KeyError):
            topk_online(triangle, 1, 1, bound="nope")

    def test_empty_graph(self):
        assert topk_online(Graph(), 3, 1) == []

    def test_k_exceeds_m(self, triangle):
        assert len(topk_online(triangle, 10, 1)) == 3

    def test_results_sorted_descending(self):
        g = gnm_random(40, 150, seed=4)
        results = topk_online(g, 15, 1)
        scores = [s for _, s in results]
        assert scores == sorted(scores, reverse=True)

    def test_aliases(self, fig1):
        assert online_bfs(fig1, 3, 2) == topk_online(fig1, 3, 2, bound="min-degree")
        assert online_bfs_plus(fig1, 3, 2) == topk_online(
            fig1, 3, 2, bound="common-neighbor"
        )

    def test_planted_ranking_found(self):
        g = planted_diversity_graph(hub_pairs=4, components_per_pair=5, seed=8)
        results = topk_online(g, 1, 2)
        assert results[0] == ((0, 1), 5)


class TestDequeueTwiceEquivalence:
    @pytest.mark.parametrize("bound", ["min-degree", "common-neighbor"])
    @pytest.mark.parametrize("k", [1, 3, 10, 100])
    @pytest.mark.parametrize("tau", [1, 2, 3])
    def test_matches_exact_on_random_graph(self, bound, k, tau):
        g = gnm_random(30, 100, seed=k * 7 + tau)
        online = topk_online(g, k, tau, bound=bound)
        exact = topk_exact(g, k, tau)
        assert online == exact

    @settings(max_examples=40, deadline=None)
    @given(edge_lists, st.integers(1, 8), st.integers(1, 4),
           st.sampled_from(["min-degree", "common-neighbor"]))
    def test_matches_exact_property(self, edges, k, tau, bound):
        g = Graph(edges)
        assert topk_online(g, k, tau, bound=bound) == topk_exact(g, k, tau)


class TestPruningInstrumentation:
    def test_stats_shape(self, fig1):
        results, stats = topk_online(fig1, 3, 2, with_stats=True)
        assert stats.edges_total == fig1.m
        assert stats.evaluated <= fig1.m
        assert stats.pruned == fig1.m - stats.evaluated
        assert stats.results == results
        assert stats.bound_rule == "common-neighbor"

    def test_tighter_bound_prunes_no_less(self):
        """The Exp-1 claim: the common-neighbor rule evaluates fewer (or
        equal) edges exactly than the min-degree rule."""
        g = planted_diversity_graph(
            hub_pairs=5, components_per_pair=5, noise_edges=300,
            noise_vertices=150, seed=3,
        )
        _, plus = topk_online(g, 5, 2, bound="common-neighbor", with_stats=True)
        _, base = topk_online(g, 5, 2, bound="min-degree", with_stats=True)
        assert plus.evaluated <= base.evaluated

    def test_small_k_prunes_more(self):
        g = gnm_random(50, 200, seed=6)
        _, s1 = topk_online(g, 1, 2, with_stats=True)
        _, s2 = topk_online(g, 50, 2, with_stats=True)
        assert s1.evaluated <= s2.evaluated


class TestTiedTopKOrdering:
    """Many edges share a score in real graphs; the output order of a
    tied block must be deterministic (ascending edge id, the heap's
    tie-break) so repeated runs and the exact/online variants agree."""

    def test_two_triangles_all_tied(self):
        g = Graph([(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)])
        assert topk_online(g, 6, 1) == [
            ((0, 1), 1), ((0, 2), 1), ((1, 2), 1),
            ((3, 4), 1), ((3, 5), 1), ((4, 5), 1),
        ]

    def test_tied_prefixes_are_stable_for_every_k(self):
        g = Graph([(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)])
        full = topk_online(g, 6, 1)
        for k in range(1, 7):
            assert topk_online(g, k, 1) == full[:k]

    def test_online_and_exact_agree_on_tied_blocks(self):
        g = Graph([(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)])
        for k in range(1, 7):
            assert topk_online(g, k, 1) == topk_exact(g, k, 1)

    def test_bound_rules_agree_on_tie_order(self):
        g = Graph([(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)])
        assert topk_online(g, 6, 1, bound="min-degree") == topk_online(
            g, 6, 1, bound="common-neighbor"
        )


class TestBoundEvaluationCounters:
    def test_bound_evaluations_count_every_edge(self, fig1):
        _, stats = topk_online(fig1, 3, 2, with_stats=True)
        assert stats.bound_evaluations == fig1.m

    def test_heap_stale_skips_surface(self, fig1):
        _, stats = topk_online(fig1, 3, 2, with_stats=True)
        assert stats.heap_stale_skips >= 0
        # Skips can never exceed the re-pushed (evaluated) entries.
        assert stats.heap_stale_skips <= stats.evaluated
