"""Tests for the ordering-based online search (Chang et al. adaptation)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import topk_exact, topk_online, topk_ordering
from repro.graph import Graph, gnm_random, planted_diversity_graph

edge_lists = st.lists(
    st.tuples(st.integers(0, 13), st.integers(0, 13)).filter(lambda e: e[0] != e[1]),
    min_size=1,
    max_size=48,
)


class TestOrderingSearch:
    def test_parameter_validation(self, triangle):
        with pytest.raises(ValueError):
            topk_ordering(triangle, 0, 1)
        with pytest.raises(ValueError):
            topk_ordering(triangle, 1, 0)
        with pytest.raises(KeyError):
            topk_ordering(triangle, 1, 1, bound="nope")

    def test_empty_graph(self):
        assert topk_ordering(Graph(), 3, 1) == []

    def test_fig1_matches_exact(self, fig1):
        for tau in (1, 2, 3, 5):
            got = topk_ordering(fig1, 4, tau)
            exact = topk_exact(fig1, 4, tau)
            assert [s for _, s in got] == [s for _, s in exact]

    def test_planted_top_edge(self):
        g = planted_diversity_graph(hub_pairs=3, components_per_pair=5, seed=2)
        assert topk_ordering(g, 1, 2)[0] == ((0, 1), 5)

    def test_results_sorted(self):
        g = gnm_random(30, 110, seed=3)
        results = topk_ordering(g, 12, 1)
        scores = [s for _, s in results]
        assert scores == sorted(scores, reverse=True)

    def test_stats_instrumentation(self, fig1):
        results, stats = topk_ordering(fig1, 3, 2, with_stats=True)
        assert stats.edges_total == fig1.m
        assert 0 < stats.evaluated <= fig1.m
        assert stats.results == results

    def test_early_termination_prunes(self):
        """High-bound planted edges let the scan stop before the tail."""
        g = planted_diversity_graph(
            hub_pairs=4, components_per_pair=5, noise_edges=250,
            noise_vertices=150, seed=5,
        )
        _, stats = topk_ordering(g, 4, 2, with_stats=True)
        assert stats.evaluated < g.m

    @settings(max_examples=40, deadline=None)
    @given(edge_lists, st.integers(1, 8), st.integers(1, 4),
           st.sampled_from(["min-degree", "common-neighbor"]))
    def test_score_multiset_matches_dequeue_twice(self, edges, k, tau, bound):
        """Both frameworks return the same score multiset (the edge
        identities may differ only within score ties)."""
        g = Graph(edges)
        a = topk_ordering(g, k, tau, bound=bound)
        b = topk_online(g, k, tau, bound=bound)
        assert [s for _, s in a] == [s for _, s in b]
        # Every returned edge's score must be correct.
        exact = dict(topk_exact(g, g.m, tau)) if g.m else {}
        for edge, score in a:
            assert exact[edge] == score
