"""Tests for vertex-pair structural diversity and link prediction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    link_prediction_experiment,
    pair_structural_diversity,
    rank_candidate_links,
    topk_pairs_online,
)
from repro.core.pair_diversity import iter_candidate_pairs
from repro.graph import Graph, gnm_random

edge_lists = st.lists(
    st.tuples(st.integers(0, 11), st.integers(0, 11)).filter(lambda e: e[0] != e[1]),
    min_size=1,
    max_size=40,
)


class TestPairDiversity:
    def test_non_edge_pair(self, fig1):
        """(a, e) are not adjacent; common neighbors {b, c} with b-c edge."""
        assert not fig1.has_edge("a", "e")
        assert fig1.common_neighbors("a", "e") == {"b", "c"}
        assert pair_structural_diversity(fig1, "a", "e", 1) == 1
        assert pair_structural_diversity(fig1, "a", "e", 2) == 1
        assert pair_structural_diversity(fig1, "a", "e", 3) == 0

    def test_agrees_with_edge_diversity_on_edges(self, fig1):
        from repro.core import edge_structural_diversity

        for u, v in list(fig1.edges())[:15]:
            for tau in (1, 2):
                assert pair_structural_diversity(
                    fig1, u, v, tau
                ) == edge_structural_diversity(fig1, u, v, tau)

    def test_validation(self, triangle):
        with pytest.raises(ValueError):
            pair_structural_diversity(triangle, 0, 0)
        with pytest.raises(ValueError):
            pair_structural_diversity(triangle, 0, 1, tau=0)

    def test_no_common_neighbors(self):
        g = Graph([(0, 1), (2, 3)])
        assert pair_structural_diversity(g, 0, 2) == 0


class TestCandidatePairs:
    def test_two_hop_only(self, path4):
        # Path 0-1-2-3: 2-hop non-adjacent pairs are (0,2) and (1,3).
        assert sorted(iter_candidate_pairs(path4)) == [(0, 2), (1, 3)]

    def test_include_edges(self, triangle):
        with_edges = sorted(iter_candidate_pairs(triangle, include_edges=True))
        assert with_edges == [(0, 1), (0, 2), (1, 2)]
        assert list(iter_candidate_pairs(triangle)) == []

    def test_no_duplicates(self, fig1):
        pairs = list(iter_candidate_pairs(fig1, include_edges=True))
        assert len(pairs) == len(set(pairs))

    @settings(max_examples=30, deadline=None)
    @given(edge_lists)
    def test_exactly_pairs_with_common_neighbors(self, edges):
        g = Graph(edges)
        expected = set()
        vertices = sorted(g.vertices())
        for i, u in enumerate(vertices):
            for v in vertices[i + 1:]:
                if g.common_neighbors(u, v) and not g.has_edge(u, v):
                    expected.add((u, v))
        assert set(iter_candidate_pairs(g)) == expected


class TestTopkPairs:
    def test_matches_brute_force(self, fig1):
        got = topk_pairs_online(fig1, 5, 2, include_edges=True)
        brute = sorted(
            (
                (pair, pair_structural_diversity(fig1, *pair, tau=2))
                for pair in iter_candidate_pairs(fig1, include_edges=True)
            ),
            key=lambda item: (-item[1], item[0]),
        )
        brute = [p for p in brute if p[1] > 0][:5]
        assert [s for _, s in got] == [s for _, s in brute]

    def test_validation(self, triangle):
        with pytest.raises(ValueError):
            topk_pairs_online(triangle, 0)
        with pytest.raises(ValueError):
            topk_pairs_online(triangle, 1, tau=0)

    @settings(max_examples=25, deadline=None)
    @given(edge_lists, st.integers(1, 6), st.integers(1, 3))
    def test_property_matches_brute_force(self, edges, k, tau):
        g = Graph(edges)
        got = topk_pairs_online(g, k, tau)
        brute = sorted(
            (
                (pair, pair_structural_diversity(g, *pair, tau=tau))
                for pair in iter_candidate_pairs(g)
            ),
            key=lambda item: (-item[1], item[0]),
        )
        brute = [p for p in brute if p[1] > 0][:k]
        assert [s for _, s in got] == [s for _, s in brute]


class TestLinkPrediction:
    def test_unknown_predictor(self, fig1):
        with pytest.raises(KeyError):
            rank_candidate_links(fig1, "magic")

    def test_rank_descending(self, fig1):
        ranked = rank_candidate_links(fig1, "common-neighbors")
        scores = [s for _, s in ranked]
        assert scores == sorted(scores, reverse=True)
        limited = rank_candidate_links(fig1, "common-neighbors", limit=3)
        assert limited == ranked[:3]

    def test_experiment_shape(self):
        g = gnm_random(40, 160, seed=6)
        results = link_prediction_experiment(
            g, hide_fraction=0.15, ks=(5, 20), seed=2
        )
        assert [r.predictor for r in results] == [
            "diversity", "common-neighbors", "jaccard"
        ]
        for r in results:
            assert r.hidden == round(0.15 * 160)
            assert set(r.precision_at) == {5, 20}
            assert all(0.0 <= p <= 1.0 for p in r.precision_at.values())
            assert r.recovered_in_top[5] <= r.recovered_in_top[20]

    def test_hide_fraction_validation(self, fig1):
        with pytest.raises(ValueError):
            link_prediction_experiment(fig1, hide_fraction=0.0)
        with pytest.raises(ValueError):
            link_prediction_experiment(fig1, hide_fraction=1.0)

    def test_deterministic(self):
        g = gnm_random(30, 110, seed=7)
        a = link_prediction_experiment(g, seed=3)
        b = link_prediction_experiment(g, seed=3)
        assert a == b

    def test_perfect_recovery_on_planted_case(self):
        """If the only candidate pairs are the hidden edges, precision@k
        for small k is 1."""
        # Clique K4 minus one edge: hide nothing manually -- instead build
        # a graph where removing one edge leaves it the unique candidate.
        g = Graph([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
        # candidate (0, 3): common {1, 2}; it is the only candidate.
        ranked = rank_candidate_links(g, "diversity")
        assert ranked[0][0] == (0, 3)
