"""Every worked example in the paper, asserted against Fig. 1's graph.

The Fig. 1(a) graph is reconstructed in
:func:`repro.graph.datasets.paper_example_graph`; these tests pin down
each number the paper derives from it (Examples 1-7, Fig. 2, Figs. 3-4),
so any regression in the core algorithms is caught against ground truth
the authors themselves published.
"""

import pytest

from repro.core import (
    DynamicESDIndex,
    build_index_basic,
    build_index_fast,
    edge_structural_diversity,
    ego_component_sizes,
    topk_exact,
    topk_online,
)
from repro.graph import ego_network


class TestExample1And2:
    """Definition 1/2 on edge (f, g)."""

    def test_ego_network_of_fg(self, fig1):
        ego = ego_network(fig1, "f", "g")
        assert set(ego.vertices()) == {"d", "e", "h", "i"}
        assert sorted(ego.edges()) == [("d", "e"), ("h", "i")]

    @pytest.mark.parametrize("tau,expected", [(1, 2), (2, 2), (3, 0)])
    def test_score_fg(self, fig1, tau, expected):
        assert edge_structural_diversity(fig1, "f", "g", tau) == expected


class TestExample3:
    """Top-3 answers for tau = 2 and tau = 5."""

    def test_tau_2(self, fig1):
        top = topk_exact(fig1, 3, 2)
        assert {edge for edge, _ in top} == {("f", "g"), ("h", "i"), ("j", "k")}
        assert all(score == 2 for _, score in top)

    def test_tau_5(self, fig1):
        top = topk_exact(fig1, 3, 5)
        assert {edge for edge, _ in top} == {("p", "u"), ("q", "u"), ("p", "q")}
        assert all(score == 1 for _, score in top)

    def test_other_edges_zero_at_tau_5(self, fig1):
        answers = {("p", "u"), ("q", "u"), ("p", "q")}
        for u, v in fig1.edges():
            if (u, v) not in answers:
                assert edge_structural_diversity(fig1, u, v, 5) == 0


class TestExample4Fig2:
    """The ESDIndex of Fig. 2: C = {1, 2, 4, 5} and list contents."""

    @pytest.fixture(params=["basic", "fast"])
    def index(self, request, fig1):
        builder = build_index_basic if request.param == "basic" else build_index_fast
        return builder(fig1)

    def test_size_classes(self, index):
        assert index.size_classes == [1, 2, 4, 5]

    def test_h1_contains_all_edges(self, index, fig1):
        assert len(index.class_list(1)) == fig1.m

    def test_h1_top_scores(self, index):
        """(b,c), (b,e), (c,e) have score 2 at tau = 1 (Fig. 2(a))."""
        h1 = dict(index.class_list(1))
        assert h1[("b", "c")] == 2
        assert h1[("b", "e")] == 2
        assert h1[("c", "e")] == 2

    def test_h2_excludes_singleton_only_edges(self, index):
        """Example 4's seven excluded edges."""
        h2 = dict(index.class_list(2))
        for edge in [("a", "b"), ("a", "c"), ("b", "c"), ("b", "d"),
                     ("b", "e"), ("c", "e"), ("c", "g")]:
            assert edge not in h2
        assert len(h2) == 40 - 7

    def test_h2_top_entries(self, index):
        h2 = dict(index.class_list(2))
        assert h2[("f", "g")] == 2
        assert h2[("h", "i")] == 2
        assert h2[("j", "k")] == 2
        assert h2[("q", "w")] == 1

    def test_h4_is_the_six_clique(self, index):
        """H(4) = the 15 edges of the {j,k,u,v,p,q} clique, score 1 each."""
        h4 = dict(index.class_list(4))
        assert len(h4) == 15
        clique = {"j", "k", "u", "v", "p", "q"}
        for (u, v), score in h4.items():
            assert {u, v} <= clique
            assert score == 1

    def test_h5_three_edges(self, index):
        h5 = dict(index.class_list(5))
        assert h5 == {("p", "u"): 1, ("q", "u"): 1, ("p", "q"): 1}


class TestExample5:
    """Query (k=3, tau=2) answered from H(2)."""

    def test_index_query(self, fig1):
        index = build_index_fast(fig1)
        top = index.topk(3, 2)
        assert {edge for edge, _ in top} == {("f", "g"), ("h", "i"), ("j", "k")}

    def test_tau_3_uses_h4(self, fig1):
        """tau=3 is not in C; the smallest c* >= 3 is 4 (Theorem 4)."""
        index = build_index_fast(fig1)
        top = index.topk(15, 3)
        assert len(top) == 15
        exact = dict(topk_exact(fig1, 40, 3))
        for edge, score in top:
            assert exact[edge] == score


class TestOnlineMatchesExamples:
    @pytest.mark.parametrize("bound", ["min-degree", "common-neighbor"])
    @pytest.mark.parametrize("tau", [1, 2, 3, 4, 5, 6])
    def test_online_equals_exact_scores(self, fig1, bound, tau):
        online = topk_online(fig1, 5, tau, bound=bound)
        exact = topk_exact(fig1, 5, tau)
        assert [s for _, s in online] == [s for _, s in exact]


class TestExample6Insertion:
    """Inserting (c, d): Fig. 3's before/after ego-networks of (d, e)."""

    def test_before(self, fig1):
        sizes = sorted(ego_component_sizes(fig1, "d", "e"))
        # {f, g} one component, isolated vertex b another.
        assert sizes == [1, 2]

    def test_after(self, fig1):
        dyn = DynamicESDIndex(fig1)
        dyn.insert_edge("c", "d")
        sizes = dyn.index.component_sizes(("d", "e"))
        assert sizes == [4]  # single component {b, c, f, g}
        dyn.check_invariants()

    def test_n_cd(self, fig1):
        dyn = DynamicESDIndex(fig1)
        dyn.insert_edge("c", "d")
        assert dyn.graph.common_neighbors("c", "d") == {"b", "e", "g"}


class TestExample7Deletion:
    """Deleting (u, k): H(3) is created and (j, k) lands in it."""

    def test_jk_sizes_after_delete(self, fig1):
        dyn = DynamicESDIndex(fig1)
        dyn.delete_edge("u", "k")
        assert dyn.index.component_sizes(("j", "k")) == [2, 3]
        dyn.check_invariants()

    def test_h3_created_with_jk(self, fig1):
        dyn = DynamicESDIndex(fig1)
        dyn.delete_edge("u", "k")
        assert 3 in dyn.index.size_classes
        h3 = dict(dyn.index.class_list(3))
        assert ("j", "k") in h3

    def test_h3_backfilled_with_larger_components(self, fig1):
        """Edges with components >= 3 (e.g. (p,q) with size 5) must also be
        in the new H(3), or tau=3 queries would miss them."""
        dyn = DynamicESDIndex(fig1)
        dyn.delete_edge("u", "k")
        h3 = dict(dyn.index.class_list(3))
        assert ("p", "q") in h3
