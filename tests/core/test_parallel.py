"""Tests for the parallel index construction (PESDIndex+)."""

import pytest

from repro.core import (
    build_index_fast,
    build_index_parallel,
    parallel_component_sizes,
    parallel_four_cliques,
    simulate_parallel_speedup,
)
from repro.cliques import iter_four_cliques
from repro.core.diversity import ego_component_sizes
from repro.graph import Graph, erdos_renyi, load_dataset


def indexes_equal(a, b) -> bool:
    if a.size_classes != b.size_classes:
        return False
    return all(a.class_list(c) == b.class_list(c) for c in a.size_classes)


class TestParallelBuild:
    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_matches_sequential(self, threads):
        g = load_dataset("youtube", scale=0.3)
        assert indexes_equal(
            build_index_fast(g), build_index_parallel(g, threads=threads)
        )

    def test_fig1(self, fig1):
        assert indexes_equal(
            build_index_fast(fig1), build_index_parallel(fig1, threads=2)
        )

    def test_empty_graph(self):
        index = build_index_parallel(Graph(), threads=2)
        assert index.size_classes == []

    def test_thread_validation(self, triangle):
        with pytest.raises(ValueError):
            build_index_parallel(triangle, threads=-1)

    def test_default_thread_count(self, triangle):
        # threads=0 -> cpu count; must still be correct.
        assert indexes_equal(
            build_index_fast(triangle), build_index_parallel(triangle, threads=0)
        )


class TestParallelComponentSizes:
    def test_matches_direct(self, fig1):
        sizes = parallel_component_sizes(fig1, threads=2)
        for (u, v), s in sizes.items():
            assert sorted(s) == sorted(ego_component_sizes(fig1, u, v))

    def test_edges_without_common_neighbors_absent(self):
        g = Graph([(0, 1), (1, 2)])
        assert parallel_component_sizes(g, threads=1) == {}


class TestParallelFourCliques:
    @pytest.mark.parametrize("threads", [1, 3])
    def test_matches_sequential_enumeration(self, fig1, threads):
        expected = {tuple(sorted(c)) for c in iter_four_cliques(fig1)}
        got = {tuple(sorted(c)) for c in parallel_four_cliques(fig1, threads=threads)}
        assert got == expected

    def test_random_graph(self):
        g = erdos_renyi(40, 0.25, seed=7)
        expected = sorted(tuple(sorted(c)) for c in iter_four_cliques(g))
        got = sorted(tuple(sorted(c)) for c in parallel_four_cliques(g, threads=2))
        assert got == expected


class TestSpeedupSimulation:
    def test_monotone_and_bounded(self):
        g = load_dataset("pokec", scale=0.4)
        results = [simulate_parallel_speedup(g, t) for t in (1, 2, 4)]
        speedups = [r["speedup"] for r in results]
        assert speedups[0] == pytest.approx(1.0, abs=0.05)
        assert speedups == sorted(speedups)
        for t, r in zip((1, 2, 4), results):
            assert r["speedup"] <= t + 0.5

    def test_reports_phases(self):
        g = load_dataset("youtube", scale=0.2)
        r = simulate_parallel_speedup(g, 2)
        assert set(r) >= {
            "threads", "serial_seconds", "parallel_seconds", "speedup"
        }
        assert r["parallel_seconds"] > 0


class TestPoolLifecycle:
    """Regression: the pool used to be created inside a generator, so an
    abandoned iterator suspended mid-``with`` kept the worker processes
    alive and ``_WORKER_DAG`` pinned until GC ran the generator's
    finalizer.  Enumeration is eager now: by the time the iterator is
    handed back, the pool is torn down and the module state cleared."""

    def test_abandoned_iterator_leaks_no_workers(self):
        import multiprocessing
        import time as _time

        from repro.core import parallel as parallel_mod

        g = erdos_renyi(40, 0.25, seed=7)
        before = {p.pid for p in multiprocessing.active_children()}
        iterator = parallel_four_cliques(g, threads=2)
        next(iterator, None)  # partially consume ...
        # ... then abandon it.  No GC needed: the pool must already be
        # gone and the fork-inherited module state already cleared.
        assert parallel_mod._WORKER_DAG is None
        deadline = _time.time() + 10
        while _time.time() < deadline:
            leaked = {
                p.pid for p in multiprocessing.active_children()
            } - before
            if not leaked:
                break
            _time.sleep(0.05)
        assert not leaked, f"worker processes outlived the call: {leaked}"

    def test_inline_path_also_clears_state(self, fig1):
        from repro.core import parallel as parallel_mod

        iterator = parallel_four_cliques(fig1, threads=1)
        assert parallel_mod._WORKER_DAG is None
        assert list(iterator)  # the results themselves are still intact


class TestCostBalancedChunks:
    """LPT scheduling of edges by |N(u) ∩ N(v)|-proportional cost."""

    @staticmethod
    def _skew_graph():
        # One hub pair with a huge common neighborhood (a single very
        # heavy edge), its cost-2 spokes, and a tail of disjoint cost-1
        # path edges: the shape that broke the old round-robin dealing.
        edges = [(0, 1)]
        for w in range(2, 22):
            edges += [(0, w), (1, w)]
        for i in range(30):
            edges.append((100 + 2 * i, 100 + 2 * i + 1))
        return Graph(edges)

    def test_chunks_partition_edges(self):
        from repro.core.parallel import _cost_balanced_chunks

        g = self._skew_graph()
        chunks = _cost_balanced_chunks(g, 4)
        flat = [e for chunk in chunks for e in chunk]
        assert len(flat) == g.m
        assert set(flat) == set(g.edges())

    def test_deterministic(self):
        from repro.core.parallel import _cost_balanced_chunks

        g = erdos_renyi(50, 0.15, seed=21)
        assert _cost_balanced_chunks(g, 3) == _cost_balanced_chunks(g, 3)

    def test_lpt_beats_round_robin_on_skew(self):
        from repro.core.parallel import _cost_balanced_chunks, _edge_costs

        g = self._skew_graph()
        parts = 4
        costs = _edge_costs(g)

        def makespan(chunks):
            return max(sum(costs[e] for e in chunk) for chunk in chunks)

        lpt = makespan(_cost_balanced_chunks(g, parts))
        # The replaced strategy: deal the descending-cost edges
        # round-robin.  The stride after the one heavy edge lands every
        # heavy spoke of its residue class on the same worker.
        ordered = sorted(costs, key=lambda e: (-costs[e], e))
        round_robin = makespan(ordered[i::parts] for i in range(parts))
        assert lpt < round_robin

    def test_greedy_makespan_bound(self):
        # List scheduling guarantees makespan <= avg + max single cost;
        # LPT is strictly stronger, so the bound must hold everywhere.
        from repro.core.parallel import _cost_balanced_chunks, _edge_costs

        for seed in (1, 5, 9):
            g = erdos_renyi(60, 0.2, seed=seed)
            for parts in (2, 3, 8):
                costs = _edge_costs(g)
                chunks = _cost_balanced_chunks(g, parts)
                makespan = max(
                    sum(costs[e] for e in chunk) for chunk in chunks
                )
                assert makespan <= sum(costs.values()) / parts + max(
                    costs.values()
                )

    def test_both_modes_agree_on_chunks(self):
        # Kernel and set cost estimates are the same numbers, so the
        # schedule must be identical in both modes.
        from repro.core.parallel import _cost_balanced_chunks
        from repro.kernels.dispatch import use_kernels

        g = erdos_renyi(40, 0.2, seed=12)
        with use_kernels("csr"):
            a = _cost_balanced_chunks(g, 3)
        with use_kernels("set"):
            b = _cost_balanced_chunks(g, 3)
        assert a == b


class TestSharedMemoryShipping:
    """Workers must map the shared CSR segment, not unpickle the arrays."""

    def test_pool_ships_segment_name_not_arrays(self):
        from repro.core import parallel as par
        from repro.kernels import shm
        from repro.kernels.dispatch import use_kernels

        if not shm.shm_available():
            pytest.skip("no shared-memory support")
        # Large enough that m >= 4 * threads engages the pool route.
        g = erdos_renyi(120, 0.12, seed=8)
        with use_kernels("csr"):
            sizes = parallel_component_sizes(g, threads=2)
        info = dict(par.LAST_SHIP_INFO)
        assert info["mode"] == "shm"
        # The initargs carry a segment *name* (a short string), not the
        # pickled CSR arrays: a few hundred bytes versus tens of KB.
        assert info["initargs_bytes"] < 200, info
        assert info["segment_bytes"] > 10_000, info
        # And the answers are the sequential ones.
        for (u, v), s in sizes.items():
            assert sorted(s) == sorted(ego_component_sizes(g, u, v))

    def test_segment_destroyed_after_pool_run(self):
        import os

        from repro.core import parallel as par
        from repro.kernels import shm
        from repro.kernels.dispatch import use_kernels

        if not shm.shm_available():
            pytest.skip("no shared-memory support")
        g = erdos_renyi(120, 0.12, seed=8)
        with use_kernels("csr"):
            parallel_component_sizes(g, threads=2)
        assert par.LAST_SHIP_INFO["mode"] == "shm"
        prefix = f"esd-{os.getpid()}-"
        leftovers = [
            e for e in os.listdir("/dev/shm") if e.startswith(prefix)
        ] if os.path.isdir("/dev/shm") else []
        assert leftovers == [], leftovers

    def test_set_mode_never_ships_a_segment(self):
        from repro.core import parallel as par
        from repro.kernels.dispatch import use_kernels

        g = erdos_renyi(120, 0.12, seed=8)
        par.LAST_SHIP_INFO.clear()
        with use_kernels("set"):
            parallel_component_sizes(g, threads=2)
        # The set route never enters the kernel pool, so the ship-info
        # record stays untouched.
        assert par.LAST_SHIP_INFO == {}
