"""Tests for the vertex-diversity extension and the CN/BT baselines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    all_vertex_structural_diversities,
    topk_common_neighbors,
    topk_edge_betweenness,
    topk_vertex_online,
    vertex_structural_diversity,
)
from repro.graph import Graph, gnm_random

edge_lists = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 12)).filter(lambda e: e[0] != e[1]),
    min_size=1,
    max_size=45,
)


class TestVertexDiversity:
    def test_star_center(self):
        g = Graph([(0, i) for i in range(1, 6)])
        # N(0) = 5 isolated vertices.
        assert vertex_structural_diversity(g, 0, 1) == 5
        assert vertex_structural_diversity(g, 0, 2) == 0
        assert vertex_structural_diversity(g, 1, 1) == 1

    def test_triangle_vertex(self, triangle):
        assert vertex_structural_diversity(triangle, 0, 1) == 1

    def test_tau_validation(self, triangle):
        with pytest.raises(ValueError):
            vertex_structural_diversity(triangle, 0, 0)

    def test_all_vertices_covered(self, fig1):
        scores = all_vertex_structural_diversities(fig1, 2)
        assert set(scores) == set(fig1.vertices())

    def test_online_matches_exact(self, fig1):
        for tau in (1, 2, 3):
            online = topk_vertex_online(fig1, 5, tau)
            exact = sorted(
                all_vertex_structural_diversities(fig1, tau).items(),
                key=lambda item: (-item[1], item[0]),
            )[:5]
            assert [s for _, s in online] == [s for _, s in exact]

    @settings(max_examples=30, deadline=None)
    @given(edge_lists, st.integers(1, 6), st.integers(1, 3))
    def test_online_matches_exact_property(self, edges, k, tau):
        g = Graph(edges)
        online = topk_vertex_online(g, k, tau)
        exact = sorted(
            all_vertex_structural_diversities(g, tau).items(),
            key=lambda item: (-item[1], item[0]),
        )[:k]
        assert online == exact

    def test_parameter_validation(self, triangle):
        with pytest.raises(ValueError):
            topk_vertex_online(triangle, 0, 1)
        with pytest.raises(ValueError):
            topk_vertex_online(triangle, 1, 0)


class TestCommonNeighborBaseline:
    def test_ranks_by_common_neighbors(self, k5):
        top = topk_common_neighbors(k5, 1)
        assert top[0][1] == 3  # every K5 edge has 3 common neighbors

    def test_k_validation(self, triangle):
        with pytest.raises(ValueError):
            topk_common_neighbors(triangle, 0)

    def test_descending(self):
        g = gnm_random(30, 90, seed=5)
        top = topk_common_neighbors(g, 10)
        scores = [s for _, s in top]
        assert scores == sorted(scores, reverse=True)

    def test_cn_differs_from_esd(self, fig1):
        """The Exp-7 contrast: CN's top edge is inside the 6-clique (4
        common neighbors, one component); ESD's top edges have 2
        components."""
        cn_top = topk_common_neighbors(fig1, 1)[0][0]
        assert set(cn_top) <= {"j", "k", "u", "v", "p", "q", "w"}


class TestBetweennessBaseline:
    def test_descending(self, fig1):
        top = topk_edge_betweenness(fig1, 10)
        scores = [s for _, s in top]
        assert scores == sorted(scores, reverse=True)

    def test_bridge_wins(self):
        """In a barbell, the bridge edge has maximal betweenness."""
        left = [(a, b) for a in range(4) for b in range(a + 1, 4)]
        right = [(a, b) for a in range(4, 8) for b in range(a + 1, 8)]
        g = Graph(left + right + [(0, 4)])
        assert topk_edge_betweenness(g, 1)[0][0] == (0, 4)

    def test_k_validation(self, triangle):
        with pytest.raises(ValueError):
            topk_edge_betweenness(triangle, 0)
