"""Tests for the vertex structural diversity index (extension)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    VertexESDIndex,
    all_vertex_structural_diversities,
    build_vertex_index,
    topk_vertex_online,
)
from repro.graph import Graph, gnm_random

edge_lists = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 12)).filter(lambda e: e[0] != e[1]),
    min_size=1,
    max_size=45,
)


class TestBuild:
    def test_star(self):
        g = Graph([(0, i) for i in range(1, 5)])
        index = build_vertex_index(g)
        # Center: 4 singleton components; leaves: 1 singleton each.
        assert index.component_sizes(0) == [1, 1, 1, 1]
        assert index.topk(1, 1) == [(0, 4)]
        index.check_invariants(g)

    def test_triangle(self, triangle):
        index = build_vertex_index(triangle)
        for v in range(3):
            assert index.component_sizes(v) == [2]
        index.check_invariants(triangle)

    def test_fig1(self, fig1):
        index = build_vertex_index(fig1)
        index.check_invariants(fig1)

    def test_empty_graph(self):
        index = build_vertex_index(Graph())
        assert index.topk(3, 1) == []


class TestQueries:
    def test_matches_online_search(self, fig1):
        index = build_vertex_index(fig1)
        for tau in (1, 2, 3):
            got = index.topk(5, tau)
            online = [
                (v, s) for v, s in topk_vertex_online(fig1, 5, tau) if s > 0
            ]
            assert got == online

    def test_score_accessor(self, fig1):
        index = build_vertex_index(fig1)
        scores = all_vertex_structural_diversities(fig1, 2)
        for v in fig1.vertices():
            assert index.score(v, 2) == scores[v]
        with pytest.raises(ValueError):
            index.score("a", 0)

    def test_set_and_remove_vertex(self):
        index = VertexESDIndex()
        index.set_vertex("a", [3, 1])
        assert index.score("a", 2) == 1
        index.remove_vertex("a")
        assert index.score("a", 1) == 0
        index.remove_vertex("a")  # no-op

    @settings(max_examples=40, deadline=None)
    @given(edge_lists, st.integers(1, 4), st.integers(1, 8))
    def test_property_matches_exact(self, edges, tau, k):
        g = Graph(edges)
        index = build_vertex_index(g)
        exact = sorted(
            all_vertex_structural_diversities(g, tau).items(),
            key=lambda item: (-item[1], item[0]),
        )
        exact = [(v, s) for v, s in exact if s > 0][:k]
        assert index.topk(k, tau) == exact
        index.check_invariants(g)
