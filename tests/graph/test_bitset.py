"""Tests for the bitset-packed adjacency fast path."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_index_bitset, build_index_fast
from repro.core.diversity import ego_component_sizes
from repro.graph import BitsetAdjacency, Graph, erdos_renyi

edge_lists = st.lists(
    st.tuples(st.integers(0, 14), st.integers(0, 14)).filter(lambda e: e[0] != e[1]),
    min_size=1,
    max_size=50,
)


class TestBitsetAdjacency:
    def test_indexing_round_trip(self, fig1):
        bits = BitsetAdjacency(fig1)
        for u in fig1.vertices():
            assert bits.vertex_at(bits.index_of(u)) == u
        with pytest.raises(KeyError):
            bits.index_of("nope")

    def test_common_neighbors_match(self, fig1):
        bits = BitsetAdjacency(fig1)
        for u, v in fig1.edges():
            expected = fig1.common_neighbors(u, v)
            assert set(bits.common_neighbors(u, v)) == expected
            assert bits.common_neighbor_count(u, v) == len(expected)

    def test_adjacency_bits_symmetric(self, fig1):
        bits = BitsetAdjacency(fig1)
        for u, v in fig1.edges():
            assert bits.adjacency_bits(u) >> bits.index_of(v) & 1
            assert bits.adjacency_bits(v) >> bits.index_of(u) & 1

    def test_ego_component_sizes_fig1(self, fig1):
        bits = BitsetAdjacency(fig1)
        for u, v in fig1.edges():
            assert sorted(bits.ego_component_sizes(u, v)) == sorted(
                ego_component_sizes(fig1, u, v)
            )

    def test_empty_graph(self):
        bits = BitsetAdjacency(Graph())
        assert bits.n == 0

    def test_snapshot_semantics(self):
        g = Graph([(0, 1)])
        bits = BitsetAdjacency(g)
        g.add_edge(1, 2)
        assert bits.n == 2  # unchanged view

    @settings(max_examples=40, deadline=None)
    @given(edge_lists)
    def test_matches_set_based_computation(self, edges):
        g = Graph(edges)
        bits = BitsetAdjacency(g)
        for u, v in g.edges():
            assert sorted(bits.ego_component_sizes(u, v)) == sorted(
                ego_component_sizes(g, u, v)
            )
            assert set(bits.common_neighbors(u, v)) == g.common_neighbors(u, v)


class TestBitsetBuilder:
    def test_identical_to_fast_builder(self, fig1):
        a = build_index_fast(fig1)
        b = build_index_bitset(fig1)
        assert a.size_classes == b.size_classes
        for c in a.size_classes:
            assert a.class_list(c) == b.class_list(c)

    def test_random_graph(self):
        g = erdos_renyi(50, 0.15, seed=11)
        a = build_index_fast(g)
        b = build_index_bitset(g)
        for tau in (1, 2, 3):
            assert a.topk(20, tau) == b.topk(20, tau)
        b.check_invariants(g)

    @settings(max_examples=30, deadline=None)
    @given(edge_lists)
    def test_property_identical_indexes(self, edges):
        g = Graph(edges)
        a = build_index_fast(g)
        b = build_index_bitset(g)
        assert a.size_classes == b.size_classes
        for c in a.size_classes:
            assert a.class_list(c) == b.class_list(c)
