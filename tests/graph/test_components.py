"""Tests for connected-component routines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    Graph,
    components_of_subset,
    connected_components,
    count_components_at_least,
    is_connected,
    largest_component,
)


class TestConnectedComponents:
    def test_empty_graph(self):
        assert connected_components(Graph()) == []
        assert is_connected(Graph())

    def test_single_component(self, triangle):
        comps = connected_components(triangle)
        assert len(comps) == 1
        assert comps[0] == {0, 1, 2}
        assert is_connected(triangle)

    def test_two_components(self):
        g = Graph([(0, 1), (2, 3)])
        comps = sorted(connected_components(g), key=min)
        assert comps == [{0, 1}, {2, 3}]
        assert not is_connected(g)

    def test_isolated_vertices(self):
        g = Graph()
        g.add_vertex(1)
        g.add_vertex(2)
        comps = connected_components(g)
        assert sorted(map(len, comps)) == [1, 1]

    def test_largest_component(self):
        g = Graph([(0, 1), (1, 2), (5, 6)])
        assert largest_component(g) == {0, 1, 2}
        assert largest_component(Graph()) == set()


class TestComponentsOfSubset:
    def test_subset_splits_component(self):
        # Path 0-1-2: dropping 1 disconnects 0 and 2.
        g = Graph([(0, 1), (1, 2)])
        comps = components_of_subset(g, [0, 2])
        assert sorted(map(len, comps)) == [1, 1]

    def test_fig1_ego_network_of_fg(self, fig1):
        """Example 1: N(fg) = {d, e, h, i}, components {d,e} and {h,i}."""
        subset = fig1.common_neighbors("f", "g")
        assert subset == {"d", "e", "h", "i"}
        comps = sorted(components_of_subset(fig1, subset), key=min)
        assert comps == [{"d", "e"}, {"h", "i"}]

    def test_counts_with_threshold(self, fig1):
        """Example 2: score(f,g) = 2 for tau in {1,2}, 0 for tau = 3."""
        subset = fig1.common_neighbors("f", "g")
        assert count_components_at_least(fig1, subset, 1) == 2
        assert count_components_at_least(fig1, subset, 2) == 2
        assert count_components_at_least(fig1, subset, 3) == 0

    def test_bad_tau_raises(self, fig1):
        with pytest.raises(ValueError):
            count_components_at_least(fig1, [], 0)

    def test_empty_subset(self, triangle):
        assert components_of_subset(triangle, []) == []

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 12), st.integers(0, 12)).filter(
                lambda e: e[0] != e[1]
            ),
            max_size=40,
        ),
        st.sets(st.integers(0, 12), max_size=13),
    )
    def test_components_partition_subset(self, edges, subset):
        g = Graph(edges)
        for v in subset:
            g.add_vertex(v)
        comps = components_of_subset(g, subset)
        union = set().union(*comps) if comps else set()
        assert union == subset
        assert sum(map(len, comps)) == len(subset)
        # No edges between different components.
        for i, a in enumerate(comps):
            for b in comps[i + 1:]:
                for u in a:
                    for v in b:
                        assert not g.has_edge(u, v)
