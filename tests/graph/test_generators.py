"""Tests for random graph generators and dataset stand-ins."""

import pytest

from repro.graph import (
    DATASET_NAMES,
    barabasi_albert,
    chung_lu_power_law,
    collaboration_network,
    connected_components,
    erdos_renyi,
    gnm_random,
    load_dataset,
    planted_diversity_graph,
    planted_partition,
    watts_strogatz,
    word_association_network,
)
from repro.graph.datasets import db_subgraph, tiny_random, word_association


class TestErdosRenyi:
    def test_p_zero_is_empty(self):
        g = erdos_renyi(20, 0.0, seed=1)
        assert g.n == 20
        assert g.m == 0

    def test_p_one_is_complete(self):
        g = erdos_renyi(10, 1.0, seed=1)
        assert g.m == 45

    def test_edge_count_near_expectation(self):
        n, p = 200, 0.05
        g = erdos_renyi(n, p, seed=7)
        expected = p * n * (n - 1) / 2
        assert 0.7 * expected < g.m < 1.3 * expected

    def test_deterministic(self):
        assert erdos_renyi(30, 0.2, seed=5) == erdos_renyi(30, 0.2, seed=5)

    def test_seed_changes_graph(self):
        assert erdos_renyi(30, 0.2, seed=5) != erdos_renyi(30, 0.2, seed=6)

    def test_validation(self):
        with pytest.raises(ValueError):
            erdos_renyi(0, 0.5)
        with pytest.raises(ValueError):
            erdos_renyi(5, 1.5)


class TestGnm:
    def test_exact_edge_count(self):
        g = gnm_random(50, 100, seed=2)
        assert g.n == 50
        assert g.m == 100

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            gnm_random(4, 7)  # max is 6

    def test_zero_edges(self):
        assert gnm_random(5, 0).m == 0


class TestBarabasiAlbert:
    def test_size(self):
        g = barabasi_albert(100, attach=3, seed=3)
        assert g.n == 100
        # seed clique C(4,2)=6 edges + 96 * 3
        assert g.m == 6 + 96 * 3

    def test_hubs_emerge(self):
        g = barabasi_albert(300, attach=2, seed=4)
        degrees = g.degree_sequence()
        assert degrees[0] > 5 * degrees[len(degrees) // 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            barabasi_albert(3, attach=5)


class TestChungLu:
    def test_shape(self):
        g = chung_lu_power_law(400, exponent=2.3, average_degree=6.0, seed=5)
        assert g.n == 400
        assert 0.5 * 1200 < g.m <= 1200

    def test_heavy_tail(self):
        g = chung_lu_power_law(500, exponent=2.1, average_degree=5.0, seed=6)
        degrees = g.degree_sequence()
        assert degrees[0] >= 4 * (2.0 * g.m / g.n)

    def test_validation(self):
        with pytest.raises(ValueError):
            chung_lu_power_law(10, exponent=1.0)


class TestWattsStrogatz:
    def test_no_rewire_is_lattice(self):
        g = watts_strogatz(20, 4, 0.0, seed=1)
        assert g.m == 40
        assert all(g.degree(u) == 4 for u in g.vertices())

    def test_rewire_preserves_edge_count(self):
        g = watts_strogatz(40, 4, 0.5, seed=2)
        assert g.m == 80

    def test_validation(self):
        with pytest.raises(ValueError):
            watts_strogatz(10, 3, 0.1)  # odd k


class TestPlantedPartition:
    def test_blocks_denser_than_cross(self):
        g = planted_partition(4, 20, p_in=0.5, p_out=0.01, seed=3)
        internal = cross = 0
        for u, v in g.edges():
            if u // 20 == v // 20:
                internal += 1
            else:
                cross += 1
        assert internal > 5 * cross

    def test_size(self):
        g = planted_partition(3, 10, 0.3, 0.01, seed=1)
        assert g.n == 30


class TestCaseStudyGenerators:
    def test_collaboration_has_bridge_pairs(self):
        g = collaboration_network(
            communities=6, community_size=12, papers_per_community=10,
            bridge_pairs=2, contexts_per_bridge=4, context_size=3, seed=1,
        )
        n_regular = 6 * 12
        # The first bridge pair is (n_regular, n_regular + 1).
        u, v = n_regular, n_regular + 1
        assert g.has_edge(u, v)
        common = g.common_neighbors(u, v)
        assert len(common) == 4 * 3  # contexts * context_size
        comps = connected_components(g.induced_subgraph(common))
        assert len(comps) == 4  # one component per planted context

    def test_word_association_contains_hub_pairs(self):
        g = word_association_network(seed=2)
        assert g.has_edge("bank", "money")
        assert g.has_edge("wood", "house")
        # The bank/money ego-network has >= 6 context components of size >= 2
        common = g.common_neighbors("bank", "money")
        comps = connected_components(g.induced_subgraph(common))
        big = [c for c in comps if len(c) >= 2]
        assert len(big) == 6

    def test_planted_diversity_graph_ranking(self):
        g = planted_diversity_graph(
            hub_pairs=3, components_per_pair=4, component_size=3,
            noise_edges=50, noise_vertices=40, seed=4,
        )
        # Pair i = (2i, 2i+1) has max(4 - i, 1) planted size-3 components.
        for i, expected in enumerate([4, 3, 2]):
            common = g.common_neighbors(2 * i, 2 * i + 1)
            comps = connected_components(g.induced_subgraph(common))
            assert len(comps) == expected
            assert all(len(c) == 3 for c in comps)


class TestDatasets:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_loads_and_nonempty(self, name):
        g = load_dataset(name, scale=0.2)
        assert g.n > 20
        assert g.m > 20

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("facebook")

    def test_relative_sizes_preserved(self):
        # Table I ordering: youtube < ... < livejournal by edge count.
        sizes = [load_dataset(name).m for name in DATASET_NAMES]
        assert sizes == sorted(sizes)

    def test_db_subgraph_and_word_association(self):
        assert db_subgraph().m > 100
        assert word_association().has_edge("bank", "money")

    def test_tiny_random(self):
        g = tiny_random()
        assert (g.n, g.m) == (60, 180)

    def test_deterministic(self):
        assert load_dataset("youtube", scale=0.2) == load_dataset(
            "youtube", scale=0.2
        )
