"""Tests for the core Graph class."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph, canonical_edge


edge_lists = st.lists(
    st.tuples(st.integers(0, 20), st.integers(0, 20)).filter(lambda e: e[0] != e[1]),
    max_size=60,
)


class TestCanonicalEdge:
    def test_orders_endpoints(self):
        assert canonical_edge(5, 2) == (2, 5)
        assert canonical_edge(2, 5) == (2, 5)
        assert canonical_edge("b", "a") == ("a", "b")

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            canonical_edge(3, 3)


class TestGraphBasics:
    def test_empty(self):
        g = Graph()
        assert g.n == 0
        assert g.m == 0
        assert list(g.edges()) == []
        assert g.max_degree() == 0

    def test_add_edge_creates_vertices(self):
        g = Graph()
        assert g.add_edge(1, 2)
        assert g.n == 2
        assert g.m == 1
        assert g.has_edge(1, 2)
        assert g.has_edge(2, 1)

    def test_add_duplicate_edge(self):
        g = Graph()
        assert g.add_edge(1, 2)
        assert not g.add_edge(2, 1)
        assert g.m == 1

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge(1, 1)

    def test_add_vertex_idempotent(self):
        g = Graph()
        g.add_vertex(1)
        g.add_edge(1, 2)
        g.add_vertex(1)
        assert g.degree(1) == 1

    def test_remove_edge(self):
        g = Graph([(1, 2), (2, 3)])
        g.remove_edge(2, 1)
        assert not g.has_edge(1, 2)
        assert g.m == 1
        assert g.n == 3  # vertices stay

    def test_remove_missing_edge_raises(self):
        g = Graph([(1, 2)])
        with pytest.raises(KeyError):
            g.remove_edge(1, 3)
        with pytest.raises(KeyError):
            g.remove_edge(7, 8)

    def test_remove_vertex(self):
        g = Graph([(1, 2), (1, 3), (2, 3)])
        g.remove_vertex(1)
        assert g.n == 2
        assert g.m == 1
        assert not g.has_edge(1, 2)
        with pytest.raises(KeyError):
            g.remove_vertex(1)

    def test_degree_and_neighbors(self):
        g = Graph([(1, 2), (1, 3)])
        assert g.degree(1) == 2
        assert g.neighbors(1) == {2, 3}
        assert g.neighbors(2) == {1}

    def test_edges_canonical_and_unique(self):
        g = Graph([(3, 1), (2, 1), (3, 2)])
        assert sorted(g.edges()) == [(1, 2), (1, 3), (2, 3)]

    def test_common_neighbors(self):
        g = Graph([(1, 2), (1, 3), (2, 3), (1, 4), (2, 4), (2, 5)])
        assert g.common_neighbors(1, 2) == {3, 4}
        assert g.common_neighbors(3, 4) == {1, 2}
        assert g.common_neighbors(4, 5) == {2}

    def test_copy_independent(self):
        g = Graph([(1, 2)])
        h = g.copy()
        h.add_edge(2, 3)
        assert g.m == 1
        assert h.m == 2
        assert g == Graph([(1, 2)])

    def test_equality(self):
        assert Graph([(1, 2), (2, 3)]) == Graph([(3, 2), (2, 1)])
        assert Graph([(1, 2)]) != Graph([(1, 3)])

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Graph())

    def test_induced_subgraph(self):
        g = Graph([(1, 2), (2, 3), (3, 4), (1, 3)])
        sub = g.induced_subgraph([1, 2, 3])
        assert sorted(sub.edges()) == [(1, 2), (1, 3), (2, 3)]
        assert sub.n == 3

    def test_induced_subgraph_keeps_isolated(self):
        g = Graph([(1, 2)])
        g.add_vertex(9)
        sub = g.induced_subgraph([1, 9])
        assert sub.n == 2
        assert sub.m == 0

    def test_induced_subgraph_ignores_foreign_vertices(self):
        g = Graph([(1, 2)])
        sub = g.induced_subgraph([1, 99])
        assert sub.n == 1

    def test_degree_sequence(self):
        g = Graph([(1, 2), (1, 3), (1, 4)])
        assert g.degree_sequence() == [3, 1, 1, 1]

    def test_fig1_shape(self, fig1):
        assert fig1.n == 16
        assert fig1.m == 40
        # Degrees used in the paper's §II example: d(e) = d(f) = 5.
        assert fig1.degree("e") == fig1.degree("f") == 5


class TestGraphProperties:
    @settings(max_examples=60, deadline=None)
    @given(edge_lists)
    def test_handshake_lemma(self, edges):
        g = Graph(edges)
        assert sum(g.degree(u) for u in g.vertices()) == 2 * g.m

    @settings(max_examples=60, deadline=None)
    @given(edge_lists)
    def test_edges_match_has_edge(self, edges):
        g = Graph(edges)
        listed = set(g.edges())
        assert len(listed) == g.m
        for u, v in listed:
            assert u < v
            assert g.has_edge(u, v)

    @settings(max_examples=40, deadline=None)
    @given(edge_lists)
    def test_remove_all_edges_empties(self, edges):
        g = Graph(edges)
        for u, v in g.edge_list():
            g.remove_edge(u, v)
        assert g.m == 0
        assert all(g.degree(u) == 0 for u in g.vertices())

    @settings(max_examples=40, deadline=None)
    @given(edge_lists)
    def test_common_neighbors_is_intersection(self, edges):
        g = Graph(edges)
        for u, v in g.edge_list()[:10]:
            expected = {
                w for w in g.vertices() if g.has_edge(u, w) and g.has_edge(v, w)
            }
            assert g.common_neighbors(u, v) == expected
